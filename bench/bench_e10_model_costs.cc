// E10 — Model accounting across the three models of §1 (CONGEST, beeping,
// CONGESTED-CLIQUE): rounds, messages, bits, beeps for every algorithm on a
// fixed workload. Not a theorem of the paper, but the bookkeeping every
// claim is stated in — and the sanity check that each engine charges its
// own currency (beeping moves no messages; CONGEST stays within B bits per
// edge per round; the clique pays for routing).
//
// Since the wire layer (DESIGN.md §9) bits are exact per message type, so a
// second table breaks each algorithm's bandwidth down by WireMessageType:
// which message kind dominates, and how far below the model's B each one
// sits.
//
// Flags: --n=<nodes> (default 4096) shrinks/grows the workload; the CI
// smoke step runs --n=256.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/registry.h"
#include "runtime/cost.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

struct AlgoRun {
  std::string name;
  std::string model;
  std::uint64_t rounds = 0;
  std::uint64_t mis_size = 0;
  CostAccounting costs;
};

void summary_table(const std::vector<AlgoRun>& runs, NodeId n) {
  TextTable table({"algorithm", "model", "rounds", "messages", "Mbits",
                   "beeps", "mis_size"});
  for (const AlgoRun& r : runs) {
    table.row()
        .cell(r.name)
        .cell(r.model)
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(static_cast<double>(r.costs.bits) / 1e6, 2)
        .cell(r.costs.beeps)
        .cell(r.mis_size);
  }
  table.print(std::cout);
  // E10 runs every registered algorithm, so the width meta carries the wire
  // ceiling itself (the bound shared by all id-carrying rows) rather than
  // one descriptor's max_nodes.
  bench::BenchMeta meta{{"n", std::to_string(static_cast<std::uint64_t>(n))}};
  bench::append_width_meta(meta, n, kMaxWireNodes);
  bench::write_table_json("e10", table, meta);
}

void per_type_table(const std::vector<AlgoRun>& runs, NodeId n) {
  std::cout << "\nper-message-type breakdown (exact codec widths vs B="
            << congest_bandwidth_bits(n) << " bits)\n\n";
  TextTable table({"algorithm", "type", "messages", "Mbits", "bits/msg"});
  for (const AlgoRun& r : runs) {
    for (std::size_t t = 0; t < kWireMessageTypeCount; ++t) {
      const WireTypeTally& tally = r.costs.by_type[t];
      if (tally.messages == 0) continue;
      table.row()
          .cell(r.name)
          .cell(wire_message_type_name(static_cast<WireMessageType>(t)))
          .cell(tally.messages)
          .cell(static_cast<double>(tally.bits) / 1e6, 2)
          .cell(static_cast<double>(tally.bits) /
                    static_cast<double>(tally.messages),
                1);
    }
  }
  table.print(std::cout);
  bench::BenchMeta meta{
      {"n", std::to_string(static_cast<std::uint64_t>(n))},
      {"bandwidth_bits", std::to_string(congest_bandwidth_bits(n))}};
  bench::append_width_meta(meta, n, kMaxWireNodes);
  bench::write_table_json("e10_types", table, meta);
}

void run(NodeId n) {
  bench::print_banner(
      "E10 / model accounting",
      "All algorithms on G(n=" + std::to_string(n) +
          ", avg deg 32), same seed: rounds / "
          "messages / bits / beeps\nper model, then bandwidth by message "
          "type.");
  const Graph g = gnp(n, 32.0 / (n - 1), 55);
  const std::uint64_t seed = 99;
  std::vector<AlgoRun> runs;

  // Every registered algorithm, default options, one seed. Algorithms whose
  // preconditions the dense workload violates (lowdeg rejects graphs above
  // its packet budget) report as skipped rather than silently vanishing.
  for (const AlgorithmDescriptor* d : AlgorithmRegistry::instance().all()) {
    const AlgoOptions options(*d);
    AlgoRunRequest request;
    request.seed = seed;
    try {
      const AlgoResult r = run_registered_algorithm(*d, g, options, request);
      runs.push_back({d->name, algo_model_name(d->model), r.run.rounds,
                      r.run.mis_size(), r.run.costs});
    } catch (const PreconditionError& e) {
      std::cout << "skipped " << d->name << ": " << e.what() << "\n";
    }
  }

  summary_table(runs, n);
  per_type_table(runs, n);
  std::cout << "\nExpected: the beeping row moves zero messages (1-bit "
               "carrier detection\nonly); the clique pays more bits "
               "(routing) to buy fewer rounds per\nsimulated iteration as R "
               "grows; MIS sizes all land in the same band.\nPer type, "
               "every bits/msg sits at its codec width, below B.\n";
}

NodeId n_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      const long v = std::atol(arg.c_str() + 4);
      if (v >= 16) return static_cast<NodeId>(v);
    }
    if (arg == "--n" && i + 1 < argc) {
      const long v = std::atol(argv[i + 1]);
      if (v >= 16) return static_cast<NodeId>(v);
    }
  }
  return 4096;
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  dmis::run(dmis::n_from_args(argc, argv));
  return 0;
}
