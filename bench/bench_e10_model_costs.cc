// E10 — Model accounting across the three models of §1 (CONGEST, beeping,
// CONGESTED-CLIQUE): rounds, messages, bits, beeps for every algorithm on a
// fixed workload. Not a theorem of the paper, but the bookkeeping every
// claim is stated in — and the sanity check that each engine charges its
// own currency (beeping moves no messages; CONGEST stays within B bits per
// edge per round; the clique pays for routing).
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/beeping.h"
#include "mis/clique_mis.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E10 / model accounting",
      "All algorithms on G(n=4096, avg deg 32), same seed: rounds / "
      "messages / bits / beeps\nper model.");
  const NodeId n = 4096;
  const Graph g = gnp(n, 32.0 / (n - 1), 55);
  const std::uint64_t seed = 99;
  TextTable table({"algorithm", "model", "rounds", "messages", "Mbits",
                   "beeps", "mis_size"});

  {
    LubyOptions o;
    o.randomness = RandomSource(seed);
    const MisRun r = luby_mis(g, o);
    table.row()
        .cell("luby")
        .cell("CONGEST")
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(static_cast<double>(r.costs.bits) / 1e6, 2)
        .cell(r.costs.beeps)
        .cell(r.mis_size());
  }
  {
    GhaffariOptions o;
    o.randomness = RandomSource(seed);
    const MisRun r = ghaffari_mis(g, o);
    table.row()
        .cell("ghaffari16")
        .cell("CONGEST")
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(static_cast<double>(r.costs.bits) / 1e6, 2)
        .cell(r.costs.beeps)
        .cell(r.mis_size());
  }
  {
    BeepingOptions o;
    o.randomness = RandomSource(seed);
    const MisRun r = beeping_mis(g, o);
    table.row()
        .cell("beeping")
        .cell("BEEP")
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(static_cast<double>(r.costs.bits) / 1e6, 2)
        .cell(r.costs.beeps)
        .cell(r.mis_size());
  }
  {
    SparsifiedOptions o;
    o.params = SparsifiedParams::from_n(n);
    o.randomness = RandomSource(seed);
    const MisRun r = sparsified_mis(g, o);
    table.row()
        .cell("sparsified")
        .cell("CONGEST")
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(static_cast<double>(r.costs.bits) / 1e6, 2)
        .cell(r.costs.beeps)
        .cell(r.mis_size());
  }
  {
    CliqueMisOptions o;
    o.params = SparsifiedParams::from_n(n);
    o.randomness = RandomSource(seed);
    const CliqueMisResult r = clique_mis(g, o);
    table.row()
        .cell("clique_sim")
        .cell("CLIQUE")
        .cell(r.run.rounds)
        .cell(r.run.costs.messages)
        .cell(static_cast<double>(r.run.costs.bits) / 1e6, 2)
        .cell(r.run.costs.beeps)
        .cell(r.run.mis_size());
  }
  table.print(std::cout);
  bench::write_table_json("e10", table);
  std::cout << "\nExpected: the beeping row moves zero messages (1-bit "
               "carrier detection\nonly); the clique pays more bits "
               "(routing) to buy fewer rounds per\nsimulated iteration as R "
               "grows; MIS sizes all land in the same band.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
