// E11 — routing substrate: accounted Lenzen cost (the proven 2 rounds per
// feasible batch [25]) vs the measured cost of a real two-hop Valiant
// scheduler that enforces one packet per ordered node pair per round.
//
// Lenzen's theorem says the optimum is 2; Valiant's randomized intermediates
// pay a max-load penalty of O(log n / log log n) at full load. The table
// shows the accounted substitution is *conservative by a small factor* —
// supporting the substitution note in DESIGN.md §5.
#include <iostream>

#include "bench_common.h"
#include "clique/network.h"
#include "rng/mix.h"
#include "util/table.h"

namespace dmis {
namespace {

std::vector<Packet> permutation_load(NodeId n, std::uint64_t seed) {
  // Each node sends one packet to a pseudo-random distinct destination.
  std::vector<Packet> packets;
  for (NodeId s = 0; s < n; ++s) {
    packets.push_back({s, static_cast<NodeId>((s + 1 + mix64(seed, s) %
                                                       (n - 1)) %
                                              n),
                       WirePayload{}});
  }
  return packets;
}

std::vector<Packet> all_to_all(NodeId n) {
  std::vector<Packet> packets;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      packets.push_back({s, d, WirePayload{}});
    }
  }
  return packets;
}

std::vector<Packet> hotspot(NodeId n, int k) {
  // Every node sends k packets to node 0 (dest load = k*n).
  std::vector<Packet> packets;
  for (NodeId s = 0; s < n; ++s) {
    for (int i = 0; i < k; ++i) packets.push_back({s, 0, WirePayload{}});
  }
  return packets;
}

void run() {
  bench::print_banner(
      "E11 / routing substrate",
      "Accounted Lenzen rounds vs measured Valiant scheduling rounds on "
      "canonical loads.");
  TextTable table({"workload", "n", "packets", "lenzen_batches",
                   "lenzen_rounds", "scheduled_rounds", "valiant_rounds",
                   "valiant/lenzen"});
  struct W {
    const char* name;
    NodeId n;
    std::vector<Packet> packets;
  };
  std::vector<W> workloads;
  workloads.push_back({"permutation", 1024, permutation_load(1024, 4)});
  workloads.push_back({"all_to_all", 256, all_to_all(256)});
  workloads.push_back({"hotspot_k4", 512, hotspot(512, 4)});
  workloads.push_back({"hotspot_k16", 256, hotspot(256, 16)});
  for (auto& w : workloads) {
    auto copy1 = w.packets;
    CliqueNetwork lenzen(w.n, RandomSource(1), RouteMode::kAccountedLenzen);
    const RouteReport lr = lenzen.route(copy1);
    auto copy2 = w.packets;
    CliqueNetwork scheduled(w.n, RandomSource(1),
                            RouteMode::kLenzenScheduled);
    const RouteReport sr = scheduled.route(copy2);
    auto copy3 = w.packets;
    CliqueNetwork valiant(w.n, RandomSource(1), RouteMode::kValiant);
    const RouteReport vr = valiant.route(copy3);
    table.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.n))
        .cell(lr.packets)
        .cell(lr.batches)
        .cell(lr.rounds)
        .cell(sr.rounds)
        .cell(vr.rounds)
        .cell(static_cast<double>(vr.rounds) /
                  static_cast<double>(lr.rounds),
              2);
  }
  table.print(std::cout);
  bench::write_table_json("e11", table);
  std::cout
      << "\nExpected: scheduled_rounds == lenzen_rounds on every load — the "
         "2-rounds-per-\nfeasible-batch claim is realized by an explicitly "
         "constructed and verified\nschedule (Kőnig edge coloring of the "
         "demand multigraph), not just accounted.\nValiant's random "
         "intermediates pay the balls-in-bins factor, largest for\n"
         "all-to-all at full load.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
