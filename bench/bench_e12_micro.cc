// E12 — microbenchmarks (google-benchmark): throughput of the substrate
// pieces the experiments lean on. Not a paper claim; a performance floor
// for anyone extending the library.
#include <benchmark/benchmark.h>

#include "clique/gather.h"
#include "clique/lenzen_schedule.h"
#include "clique/mst.h"
#include "clique/triangles.h"
#include "mis/local_oracle.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/beeping.h"
#include "mis/clique_mis.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/sparsified.h"
#include "rng/pow2_prob.h"

namespace dmis {
namespace {

void BM_GnpGeneration(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnp(n, 16.0 / (n - 1), ++seed));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GnpGeneration)->Arg(1 << 12)->Arg(1 << 15);

void BM_GraphBuild(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph src = gnp(n, 16.0 / (n - 1), 1);
  const auto edges = src.edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_GraphBuild)->Arg(1 << 12)->Arg(1 << 15);

void BM_BfsBall(benchmark::State& state) {
  const Graph g = random_regular(1 << 14, 4, 2);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_ball(g, v, 6));
    v = (v + 1) % g.node_count();
  }
}
BENCHMARK(BM_BfsBall);

void BM_Pow2ProbSample(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t i = 0;
  const Pow2Prob p(7);
  for (auto _ : state) {
    acc += p.sample(mix64(++i)) ? 1 : 0;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pow2ProbSample);

void BM_GreedyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = gnp(n, 32.0 / (n - 1), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mis(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyMis)->Arg(1 << 12)->Arg(1 << 15);

void BM_LubyMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = gnp(n, 32.0 / (n - 1), 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    LubyOptions opts;
    opts.randomness = RandomSource(++seed);
    benchmark::DoNotOptimize(luby_mis(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LubyMis)->Arg(1 << 12);

void BM_BeepingMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = gnp(n, 32.0 / (n - 1), 5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    BeepingOptions opts;
    opts.randomness = RandomSource(++seed);
    benchmark::DoNotOptimize(beeping_mis(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BeepingMis)->Arg(1 << 12);

void BM_SparsifiedMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = gnp(n, 32.0 / (n - 1), 6);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    SparsifiedOptions opts;
    opts.params = SparsifiedParams::from_n(n);
    opts.randomness = RandomSource(++seed);
    benchmark::DoNotOptimize(sparsified_mis(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SparsifiedMis)->Arg(1 << 12);

void BM_CliqueMis(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const Graph g = gnp(n, 32.0 / (n - 1), 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    CliqueMisOptions opts;
    opts.params = SparsifiedParams::from_n(n);
    opts.randomness = RandomSource(++seed);
    benchmark::DoNotOptimize(clique_mis(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CliqueMis)->Arg(1 << 11);

void BM_LenzenSchedule(benchmark::State& state) {
  const NodeId n = 128;
  std::vector<Packet> packets;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) packets.push_back({s, d, WirePayload{}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lenzen_schedule(packets, n));
  }
  state.SetItemsProcessed(state.iterations() * packets.size());
}
BENCHMARK(BM_LenzenSchedule);

void BM_CliqueMst(benchmark::State& state) {
  const Graph g = gnp(1 << 12, 8.0 / ((1 << 12) - 1), 10);
  const WeightFn w = hashed_weights(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clique_mst(g, w, {}));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_CliqueMst);

void BM_CliqueTriangles(benchmark::State& state) {
  const Graph g = gnp(1 << 11, 16.0 / ((1 << 11) - 1), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clique_triangle_count(g, {}));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_CliqueTriangles);

void BM_LocalOracleQuery(benchmark::State& state) {
  const Graph g = random_geometric(1 << 13, 0.015, 12);
  LocalMisOracle::Options opts;
  opts.randomness = RandomSource(13);
  opts.simulated_iterations = 3;
  LocalMisOracle oracle(g, opts);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.in_mis(v));
    v = (v + 97) % g.node_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalOracleQuery);

void BM_GatherBalls(benchmark::State& state) {
  const Graph g = random_regular(1 << 11, 4, 8);
  AnnotationTable ann(g.node_count(), 3);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ann.row(v)[0] = ann.row(v)[1] = ann.row(v)[2] = v;
  }
  for (auto _ : state) {
    CliqueNetwork net(g.node_count(), RandomSource(9));
    benchmark::DoNotOptimize(gather_balls(net, g, ann, 2));
  }
}
BENCHMARK(BM_GatherBalls);

}  // namespace
}  // namespace dmis

BENCHMARK_MAIN();
