// E13 — the paper's §1.1 extension claim: "By standard reductions (with
// minor modifications) [28], this round complexity also extends to
// [maximal matching, (Δ+1)-vertex-coloring, (2Δ−1)-edge-coloring]" — plus
// ruling sets, the relaxation the congested-clique related work [7, 18]
// studies.
//
// Each derived problem = MIS on a derived graph whose maximum degree is
// O(Δ); the table reports the derived sizes and the clique-solver rounds,
// which track the base MIS cost up to the degree blow-up the reductions
// promise.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/transforms.h"
#include "mis/clique_mis.h"
#include "mis/reductions.h"
#include "mis/ruling_clique.h"
#include "mis/ruling_clique.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

/// A clique solver that records the rounds of its most recent run, so the
/// reduction's cost is measured without solving each instance twice.
MisSolver recording_clique_solver(std::uint64_t seed,
                                  std::uint64_t* last_rounds) {
  return [seed, last_rounds](const Graph& g) {
    CliqueMisOptions opts;
    opts.params = SparsifiedParams::from_n(g.node_count());
    opts.randomness = RandomSource(seed);
    CliqueMisResult result = clique_mis(g, opts);
    *last_rounds = result.run.rounds;
    return result.run.in_mis;
  };
}

void run() {
  bench::print_banner(
      "E13 / reductions (paper §1.1, via [28])",
      "Maximal matching, (Delta+1)-coloring, (2Delta-1)-edge-coloring and "
      "2-ruling sets,\nall solved through the congested-clique MIS on "
      "derived graphs.");

  TextTable table({"base graph", "n", "Delta", "problem", "derived n",
                   "derived Delta", "clique rounds", "valid"});
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp256_d10", gnp(256, 10.0 / 255, 5)});
  workloads.push_back({"regular256_d6", random_regular(256, 6, 6)});
  workloads.push_back({"grid16x16", grid2d(16, 16)});

  const std::uint64_t seed = 17;
  std::uint64_t rounds = 0;
  const MisSolver solver = recording_clique_solver(seed, &rounds);
  for (const auto& w : workloads) {
    const Graph& g = w.g;
    {
      const LineGraph lg = line_graph(g);
      const MatchingResult m = maximal_matching(g, solver);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell("maximal matching")
          .cell(static_cast<std::uint64_t>(lg.graph.node_count()))
          .cell(static_cast<std::uint64_t>(lg.graph.max_degree()))
          .cell(rounds)
          .cell(is_maximal_matching(g, m.matching) ? "yes" : "NO");
    }
    {
      const std::uint32_t palette = g.max_degree() + 1;
      const Graph product = color_product(g, palette);
      const ColoringResult c = vertex_coloring(g, solver);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell("(D+1)-coloring")
          .cell(static_cast<std::uint64_t>(product.node_count()))
          .cell(static_cast<std::uint64_t>(product.max_degree()))
          .cell(rounds)
          .cell(is_proper_coloring(g, c.colors) ? "yes" : "NO");
    }
    {
      const EdgeColoringResult c = edge_coloring(g, solver);
      const LineGraph lg = line_graph(g);
      const Graph product = color_product(lg.graph, c.palette);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell("(2D-1)-edge-col")
          .cell(static_cast<std::uint64_t>(product.node_count()))
          .cell(static_cast<std::uint64_t>(product.max_degree()))
          .cell(rounds)
          .cell(is_proper_edge_coloring(g, c.edges, c.colors) ? "yes"
                                                              : "NO");
    }
    {
      const Graph g2 = graph_power(g, 2);
      const RulingSetResult r = ruling_set(g, 2, solver);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell("2-ruling (MIS G^2)")
          .cell(static_cast<std::uint64_t>(g2.node_count()))
          .cell(static_cast<std::uint64_t>(g2.max_degree()))
          .cell(rounds)
          .cell(is_ruling_set(g, r.in_set, 2) ? "yes" : "NO");
    }
    {
      // The direct sample-to-leader algorithm ([7, 18]-style): ruling sets
      // are *much* cheaper than MIS in the clique — the reason the related
      // work could reach O(log log n) for this relaxation.
      CliqueRulingOptions ro;
      ro.randomness = RandomSource(seed);
      const CliqueRulingResult r2 = clique_two_ruling_set(g, ro);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell("2-ruling (direct)")
          .cell(static_cast<std::uint64_t>(g.node_count()))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell(r2.costs.rounds)
          .cell(is_ruling_set(g, r2.in_set, 2) ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  bench::write_table_json("e13", table);
  std::cout << "\nExpected: derived Delta = O(Delta) (line graph: 2D-2; "
               "product: D+1; G^2: D^2),\nand clique rounds track the base "
               "MIS cost through log(derived Delta) — the\n\"minor "
               "modifications\" of the paper's reduction claim.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
