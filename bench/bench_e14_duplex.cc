// E14 — the footnote-2 comparison: full-duplex beeping MIS (§2.2, the
// paper's model) vs MIS in the strictly weaker half-duplex model
// (Holzer–Lynch [20, 21], where a beeping node cannot carrier-sense).
//
// Our half-duplex construction (mis/halfduplex_beeping.h) pays a
// deterministic ceil(log2 n)-round id-verification per iteration — the
// model's price for losing collision awareness. The table shows both total
// rounds and the "iterations" view (rounds normalized by iteration length),
// which should roughly agree: the dynamics converge in similar iteration
// counts; only the per-iteration round cost differs.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/beeping.h"
#include "mis/halfduplex_beeping.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E14 / duplex comparison (paper footnote 2)",
      "Full-duplex beeping MIS (paper 2.2) vs half-duplex with id "
      "verification:\nthe Theta(log n) per-iteration price of losing "
      "carrier sensing.");
  TextTable table({"workload", "n", "model", "rounds(mean)", "iters(mean)",
                   "beeps(mean)", "decide_iter_p95"});
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp1024_d16", gnp(1024, 16.0 / 1023, 31)});
  workloads.push_back({"regular1024_d8", random_regular(1024, 8, 32)});
  workloads.push_back({"geo1024", random_geometric(1024, 0.05, 33)});
  const int kSeeds = 6;
  for (const auto& w : workloads) {
    const std::uint64_t half_len =
        2 + static_cast<std::uint64_t>(bits_for_range(w.g.node_count()));
    for (const bool half : {false, true}) {
      Accumulator rounds;
      Accumulator beeps;
      std::vector<double> decide;
      for (int seed = 0; seed < kSeeds; ++seed) {
        MisRun run;
        if (half) {
          HalfDuplexBeepingOptions o;
          o.randomness = RandomSource(4000 + seed);
          run = halfduplex_beeping_mis(w.g, o);
        } else {
          BeepingOptions o;
          o.randomness = RandomSource(4000 + seed);
          run = beeping_mis(w.g, o);
        }
        DMIS_CHECK(is_maximal_independent_set(w.g, run.in_mis), "invalid");
        rounds.add(static_cast<double>(run.rounds));
        beeps.add(static_cast<double>(run.costs.beeps));
        for (const std::uint32_t r : run.decided_round) {
          decide.push_back(static_cast<double>(r));
        }
      }
      const double iter_len = half ? static_cast<double>(half_len) : 2.0;
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(w.g.node_count()))
          .cell(half ? "half-duplex" : "full-duplex")
          .cell(rounds.mean(), 1)
          .cell(rounds.mean() / iter_len, 1)
          .cell(beeps.mean(), 0)
          .cell(percentile(decide, 0.95), 1);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e14", table);
  std::cout
      << "\nExpected: total rounds ~3x larger for half-duplex — less than "
         "the naive\n(2 + log2 n)/2 iteration-length ratio because the id "
         "verification is not\njust overhead: within any clump of "
         "candidates it deterministically elects\na winner, so half-duplex "
         "iterations are individually far more productive\n(see the "
         "iters(mean) column). The models trade carrier sensing for\n"
         "resolution rounds; the product is the footnote-2 gap.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
