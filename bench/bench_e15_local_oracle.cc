// E15 — the paper's §1.2 closing conjecture, made measurable: Linial's
// locality argument turns the O(log Δ)-iteration dynamic into a *local
// computation algorithm* — "is v in the MIS?" answered from a radius-O(log Δ)
// ball, consistently across queries (mis/local_oracle.h).
//
// The LCA figure of merit is per-query probe complexity: work must depend on
// Δ (ball growth), NOT on n. The table sweeps n at fixed Δ and Δ at fixed n;
// columns report balls simulated and the largest ball touched per query,
// amortized over a random query sample.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/local_oracle.h"
#include "rng/mix.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E15 / local computation (paper §1.2)",
      "Per-query cost of the MIS oracle: flat in n at fixed Delta, growing "
      "only with\nball volume (Delta^{O(log Delta)} worst case; polynomial "
      "on bounded-growth\nfamilies).");
  TextTable table({"graph", "n", "Delta", "T", "queries", "balls/query",
                   "max_ball", "max_residual_comp"});
  struct W {
    const char* name;
    Graph g;
    int iterations;
  };
  std::vector<W> workloads;
  workloads.push_back({"cycle4096", cycle(4096), 4});
  workloads.push_back({"cycle65536", cycle(65536), 4});
  workloads.push_back({"grid48x48", grid2d(48, 48), 3});
  workloads.push_back({"grid96x96", grid2d(96, 96), 3});
  workloads.push_back({"geo8192", random_geometric(8192, 0.012, 5), 3});
  workloads.push_back({"geo32768", random_geometric(32768, 0.006, 6), 3});
  const int kQueries = 64;
  for (const auto& w : workloads) {
    LocalMisOracle::Options opts;
    opts.randomness = RandomSource(11);
    opts.simulated_iterations = w.iterations;
    LocalMisOracle oracle(w.g, opts);
    for (int q = 0; q < kQueries; ++q) {
      const NodeId v = static_cast<NodeId>(
          mix64(static_cast<std::uint64_t>(q), 99) % w.g.node_count());
      oracle.in_mis(v);
    }
    const auto& s = oracle.stats();
    table.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.g.node_count()))
        .cell(static_cast<std::uint64_t>(w.g.max_degree()))
        .cell(w.iterations)
        .cell(s.queries)
        .cell(static_cast<double>(s.balls_simulated) /
                  static_cast<double>(s.queries),
              2)
        .cell(s.max_ball_nodes)
        .cell(s.max_component_nodes);
  }
  table.print(std::cout);
  bench::write_table_json("e15", table);
  std::cout
      << "\nExpected: max_ball and max_residual_comp identical between the "
         "small and the\nlarger instance of each family — the per-query "
         "work bound is independent of n,\nthe defining LCA property. "
         "(balls/query may drift with n: on a smaller graph\nrandom queries "
         "share residual components more often, so the memo cache "
         "absorbs\nmore of the work.)\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
