// E16 — the model's founding problem (paper §1 cites Lotker et al. [29, 30]
// as the origin of the CONGESTED-CLIQUE): minimum spanning forest via
// Borůvka phases of O(1) all-to-all rounds each.
//
// The table sweeps n: phases track log2(n) (components at least halve per
// phase) and rounds stay a small constant multiple of phases — already
// exponentially below any CONGEST diameter bound. [29]'s O(log log n)
// merging is the known improvement on this baseline.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "clique/mst.h"
#include "graph/generators.h"
#include "graph/mst_reference.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E16 / congested-clique MST (model context: [29, 30])",
      "Boruvka in the clique: O(1) rounds per phase, <= log2 n phases, "
      "verified against\nKruskal edge-for-edge.");
  TextTable table({"graph", "n", "m", "phases", "log2(n)", "rounds",
                   "weight==kruskal"});
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp1024_d8", gnp(1024, 8.0 / 1023, 1)});
  workloads.push_back({"gnp4096_d8", gnp(4096, 8.0 / 4095, 2)});
  workloads.push_back({"gnp16384_d8", gnp(16384, 8.0 / 16383, 3)});
  workloads.push_back({"regular4096_d4", random_regular(4096, 4, 4)});
  workloads.push_back({"grid64x64", grid2d(64, 64)});
  workloads.push_back({"geo4096", random_geometric(4096, 0.03, 5)});
  for (const auto& w : workloads) {
    const WeightFn weight = hashed_weights(99);
    const MstResult reference = kruskal_msf(w.g, weight);
    CliqueMstOptions opts;
    opts.randomness = RandomSource(6);
    const CliqueMstResult r = clique_mst(w.g, weight, opts);
    DMIS_CHECK(r.edges == reference.edges, "MST mismatch on " << w.name);
    table.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.g.node_count()))
        .cell(w.g.edge_count())
        .cell(r.boruvka_phases)
        .cell(std::log2(static_cast<double>(w.g.node_count())), 1)
        .cell(r.costs.rounds)
        .cell(r.total_weight == reference.total_weight ? "yes" : "NO");
  }
  table.print(std::cout);
  bench::write_table_json("e16", table);
  std::cout << "\nExpected: phases <= log2 n (usually ~log2 of the largest "
               "component), rounds\na small constant times phases, exact "
               "agreement with the centralized MSF.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
