// E17 — triangle counting in the clique (Dolev–Lenzen–Peled [11], cited in
// the paper's §1 as one of the model's early wins): the n^{1/3}-group
// partition scheme. Rounds are driven by the heaviest owner's batch count —
// Θ((n/k)²/n) = Θ(n^{1/3}) at constant density — while correctness is exact
// (checked against the centralized counter on every run).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "clique/triangles.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E17 / clique triangle counting ([11])",
      "n^(1/3)-group partition: exact counts, O(n^(1/3))-ish routed "
      "batches.");
  TextTable table({"graph", "n", "m", "k=n^(1/3)", "edge_packets", "rounds",
                   "triangles", "exact"});
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp512_d16", gnp(512, 16.0 / 511, 1)});
  workloads.push_back({"gnp2048_d16", gnp(2048, 16.0 / 2047, 2)});
  workloads.push_back({"gnp8192_d16", gnp(8192, 16.0 / 8191, 3)});
  workloads.push_back({"ba2048", barabasi_albert(2048, 6, 3, 4)});
  workloads.push_back({"geo2048", random_geometric(2048, 0.04, 5)});
  for (const auto& w : workloads) {
    CliqueTriangleOptions opts;
    opts.randomness = RandomSource(9);
    const CliqueTriangleResult r = clique_triangle_count(w.g, opts);
    const std::uint64_t expected = triangle_count(w.g);
    DMIS_CHECK(r.triangles == expected, "count mismatch on " << w.name);
    table.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.g.node_count()))
        .cell(w.g.edge_count())
        .cell(static_cast<std::uint64_t>(r.groups))
        .cell(r.edge_packets)
        .cell(r.costs.rounds)
        .cell(r.triangles)
        .cell("yes");
  }
  table.print(std::cout);
  bench::write_table_json("e17", table);
  std::cout << "\nExpected: exact counts everywhere; rounds grow mildly "
               "with n (the heaviest\nowner's load ~ (n/k)^2 = n^{4/3} "
               "packets -> ~n^{1/3} batches at fixed density).\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
