// E18 — runtime scaling of the deterministic parallel node stepping.
//
// The engines partition their per-round node fan-outs across a worker pool
// (runtime/parallel.h); per-node randomness is counter-based, so results
// must be bit-identical at any thread count. This bench measures wall-clock
// speedup of beeping and CONGEST MIS on a large instance at 1/2/4 threads,
// verifies the identical-results invariant, and measures the overhead of an
// attached TraceRecorder observer versus an unobserved run.
//
// Note: on a single-core host the speedup columns will sit near 1.0 — the
// determinism check still exercises the multi-threaded code paths.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/registry.h"
#include "runtime/observer.h"
#include "util/table.h"

namespace dmis {
namespace {

std::uint64_t mis_checksum(const MisRun& run) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t v = 0; v < run.in_mis.size(); ++v) {
    h = (h ^ (run.in_mis[v] ? v + 1 : 0)) * 1099511628211ull;
  }
  return h;
}

void run(int max_threads) {
  bench::print_banner(
      "E18 / runtime scaling",
      "Deterministic parallel node stepping: wall-clock speedup at 1/2/4\n"
      "threads with bit-identical MIS output and costs, plus the cost of an\n"
      "attached TraceRecorder observer.");

  const NodeId n = 1 << 16;
  const Graph g = random_regular(n, 64, 18);

  TextTable table({"algorithm", "n", "threads", "observer", "wall_s",
                   "speedup", "rounds", "checksum", "identical"});
  bench::BenchMeta meta{{"n", std::to_string(n)}, {"degree", "64"}};

  // The two heavyweight engines, dispatched through the registry (both are
  // deterministic-parallel + observer-attachable, which is exactly what
  // this bench exercises).
  for (const char* algorithm : {"beeping", "congest"}) {
    const AlgorithmDescriptor& descriptor =
        AlgorithmRegistry::instance().require(algorithm);
    const AlgoOptions options(descriptor);
    double base_s = 0.0;
    std::uint64_t base_checksum = 0;
    CostAccounting base_costs;
    bool warmed_up = false;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      for (const bool observed : {false, true}) {
        if (observed && threads != 1) continue;  // overhead measured at 1t
        TraceRecorder trace;
        const auto execute = [&](bool attach_trace) {
          AlgoRunRequest request;
          request.seed = 99;
          request.threads = threads;
          if (attach_trace) request.observers.push_back(&trace);
          return run_registered_algorithm(descriptor, g, options, request)
              .run;
        };
        // One untimed pass first, so the 1-thread baseline does not absorb
        // the page-fault/cache warmup for the whole series.
        if (!warmed_up) {
          execute(false);
          warmed_up = true;
        }
        bench::WallTimer timer;
        const MisRun run = execute(observed);
        const double wall = timer.seconds();
        const std::uint64_t checksum = mis_checksum(run);
        if (threads == 1 && !observed) {
          base_s = wall;
          base_checksum = checksum;
          base_costs = run.costs;
        }
        const bool identical = checksum == base_checksum &&
                               run.costs.rounds == base_costs.rounds &&
                               run.costs.messages == base_costs.messages &&
                               run.costs.bits == base_costs.bits &&
                               run.costs.beeps == base_costs.beeps;
        table.row()
            .cell(algorithm)
            .cell(static_cast<std::uint64_t>(n))
            .cell(threads)
            .cell(observed ? "trace" : "none")
            .cell(wall, 3)
            .cell(base_s / wall, 2)
            .cell(run.costs.rounds)
            .cell(checksum)
            .cell(identical ? 1 : 0);
        if (!identical) {
          std::cerr << "ERROR: results diverged at " << threads
                    << " threads (" << algorithm << ")\n";
        }
      }
    }
  }
  table.print(std::cout);
  bench::write_table_json("e18", table, meta);
  std::cout << "\nExpected: identical=1 everywhere (bit-identical MIS and "
               "costs at every\nthread count); speedup approaching the "
               "physical core count on\nmulti-core hosts; the trace observer "
               "within a few percent of unobserved.\n";
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  int max_threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-threads=", 0) == 0) {
      max_threads = std::max(1, std::atoi(arg.c_str() + 14));
    }
  }
  dmis::run(max_threads);
  return 0;
}
