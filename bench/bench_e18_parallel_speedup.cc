// E18 — runtime scaling of the deterministic parallel node stepping.
//
// The engines partition their per-round fan-outs over a live-node frontier
// (runtime/parallel.h, DESIGN.md §13); per-node randomness is counter-based,
// so results must be bit-identical at any thread count. This bench measures
// wall-clock of beeping and CONGEST MIS on a large instance across a
// 1/2/4/8-thread ladder, verifies the identical-results invariant, reports
// the mean frontier occupancy (live/n averaged over rounds — the quantity
// the frontier refactor makes the round cost proportional to), and measures
// the overhead of an attached TraceRecorder observer versus an unobserved
// run.
//
// Flags: --n-log2=K (instance size 2^K, default 20), --max-threads=T
// (ladder top, default 8), --require-identical (exit nonzero if any thread
// count diverges from the 1-thread checksum/costs — the CI smoke mode).
//
// Note: on a single-core host the speedup columns will sit near 1.0 — the
// determinism check still exercises the multi-threaded code paths.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/registry.h"
#include "runtime/observer.h"
#include "util/table.h"

namespace dmis {
namespace {

std::uint64_t mis_checksum(const MisRun& run) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t v = 0; v < run.in_mis.size(); ++v) {
    h = (h ^ (run.in_mis[v] ? v + 1 : 0)) * 1099511628211ull;
  }
  return h;
}

/// Mean frontier occupancy: live/n at round begin, averaged over rounds.
/// Deterministic per (algorithm, seed), so one probe pass per algorithm
/// covers every row.
class FrontierProbe final : public RoundObserver {
 public:
  void on_round_begin(const RoundContext& ctx) override {
    live_sum_ += ctx.live;
    ++rounds_;
  }
  double mean_occupancy(std::uint64_t n) const {
    if (rounds_ == 0 || n == 0) return 0.0;
    return static_cast<double>(live_sum_) /
           (static_cast<double>(rounds_) * static_cast<double>(n));
  }

 private:
  std::uint64_t live_sum_ = 0;
  std::uint64_t rounds_ = 0;
};

int run(int n_log2, int max_threads, bool require_identical) {
  bench::print_banner(
      "E18 / runtime scaling",
      "Deterministic parallel node stepping over the live-node frontier:\n"
      "wall-clock at a 1/2/4/8-thread ladder with bit-identical MIS output\n"
      "and costs, mean frontier occupancy per round, and the cost of an\n"
      "attached TraceRecorder observer.");

  const NodeId n = NodeId{1} << n_log2;
  const Graph g = random_regular(n, 64, 18);
  bool diverged = false;

  TextTable table({"algorithm", "n", "threads", "observer", "wall_s",
                   "speedup", "rounds", "frontier", "checksum", "identical"});
  bench::BenchMeta meta{{"n", std::to_string(n)},
                        {"degree", "64"},
                        {"n_log2", std::to_string(n_log2)},
                        {"max_threads", std::to_string(max_threads)}};

  // The two heavyweight engines, dispatched through the registry (both are
  // deterministic-parallel + observer-attachable, which is exactly what
  // this bench exercises).
  for (const char* algorithm : {"beeping", "congest"}) {
    const AlgorithmDescriptor& descriptor =
        AlgorithmRegistry::instance().require(algorithm);
    const AlgoOptions options(descriptor);
    double base_s = 0.0;
    std::uint64_t base_checksum = 0;
    CostAccounting base_costs;
    const auto execute = [&](int threads, RoundObserver* observer) {
      AlgoRunRequest request;
      request.seed = 99;
      request.threads = threads;
      if (observer != nullptr) request.observers.push_back(observer);
      return run_registered_algorithm(descriptor, g, options, request).run;
    };
    // One untimed pass first, so the 1-thread baseline does not absorb the
    // page-fault/cache warmup for the whole series; it doubles as the
    // frontier-occupancy probe pass (occupancy is thread-invariant).
    FrontierProbe probe;
    execute(1, &probe);
    const double occupancy = probe.mean_occupancy(n);
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      for (const bool observed : {false, true}) {
        if (observed && threads != 1) continue;  // overhead measured at 1t
        TraceRecorder trace;
        bench::WallTimer timer;
        const MisRun run = execute(threads, observed ? &trace : nullptr);
        const double wall = timer.seconds();
        const std::uint64_t checksum = mis_checksum(run);
        if (threads == 1 && !observed) {
          base_s = wall;
          base_checksum = checksum;
          base_costs = run.costs;
        }
        const bool identical = checksum == base_checksum &&
                               run.costs.rounds == base_costs.rounds &&
                               run.costs.messages == base_costs.messages &&
                               run.costs.bits == base_costs.bits &&
                               run.costs.beeps == base_costs.beeps;
        table.row()
            .cell(algorithm)
            .cell(static_cast<std::uint64_t>(n))
            .cell(threads)
            .cell(observed ? "trace" : "none")
            .cell(wall, 3)
            .cell(base_s / wall, 2)
            .cell(run.costs.rounds)
            .cell(occupancy, 4)
            .cell(checksum)
            .cell(identical ? 1 : 0);
        if (!identical) {
          diverged = true;
          std::cerr << "ERROR: results diverged at " << threads
                    << " threads (" << algorithm << ")\n";
        }
      }
    }
  }
  table.print(std::cout);
  bench::write_table_json("e18", table, meta);
  std::cout << "\nExpected: identical=1 everywhere (bit-identical MIS and "
               "costs at every\nthread count); speedup approaching the "
               "physical core count on\nmulti-core hosts; frontier well "
               "below 1.0 (shattering empties the\nfrontier early); the "
               "trace observer within a few percent of unobserved.\n";
  if (diverged && require_identical) {
    std::cerr << "FAIL: --require-identical set and a thread count "
                 "diverged\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  int n_log2 = 20;
  int max_threads = 8;
  bool require_identical = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n-log2=", 0) == 0) {
      n_log2 = std::max(4, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--max-threads=", 0) == 0) {
      max_threads = std::max(1, std::atoi(arg.c_str() + 14));
    } else if (arg == "--require-identical") {
      require_identical = true;
    }
  }
  return dmis::run(n_log2, max_threads, require_identical);
}
