// E19 — graceful degradation under the deterministic fault plane.
//
// The paper proves its guarantees in a fault-free synchronous model; this
// experiment measures what actually breaks when messages are dropped or
// bit-corrupted at increasing rates. Two complementary detectors:
//   * the beeping dynamic (§2.2) runs with the InvariantAuditor attached —
//     dropped announces manufacture adjacent joiners, and the violations
//     column counts how often the MIS safety invariants break;
//   * the clique simulation (§2.4) routes typed payloads, so corruption
//     trips the codecs' validation and exercises the driver's phase-retry
//     policy — the retries column shows recovery, the failed column runs
//     where even max_phase_retries re-executions could not rescue a phase.
// Every run is a seeded, thread-count-invariant schedule (runtime/faults.h),
// so any row here can be replayed exactly from a repro bundle.
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/registry.h"
#include "mis/replay.h"
#include "util/table.h"

namespace dmis {
namespace {

NodeId n_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      return static_cast<NodeId>(std::max(8, std::atoi(arg.c_str() + 4)));
    }
    if (arg == "--n" && i + 1 < argc) {
      return static_cast<NodeId>(std::max(8, std::atoi(argv[i + 1])));
    }
  }
  return 400;
}

void run(int argc, char** argv) {
  const NodeId n = n_from_args(argc, argv);
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_banner(
      "E19 / fault sweep (deterministic fault plane)",
      "MIS algorithms under seeded message faults: invariant violations on "
      "the\nbeeping dynamic, codec-validation failures and phase retries on "
      "the clique\nsimulation. Schedules are pure functions of the seed — "
      "every row replays\nbit-identically at any thread count.");

  const Graph g = gnp(n, 8.0 / std::max<NodeId>(n - 1, 1), 19);
  // The sweep population is every registered algorithm with the
  // fault-injection capability. Rate ladders are per model: a clique phase
  // moves orders of magnitude more messages per decision than a beep or
  // CONGEST round (the gather dominates), so the interesting regime —
  // faults realized but sometimes recoverable — sits at much smaller rates
  // there.
  const std::array<double, 4> wire_rates = {0.0, 0.002, 0.01, 0.05};
  const std::array<double, 4> clique_rates = {0.0, 0.00003, 0.0001, 0.001};
  struct AlgoSweep {
    std::string algo;
    std::array<double, 4> rates;
  };
  std::vector<AlgoSweep> sweeps;
  for (const AlgorithmDescriptor* d : AlgorithmRegistry::instance().all()) {
    if (!d->caps.fault_injectable) continue;
    sweeps.push_back({d->name, d->model == AlgoModel::kClique ? clique_rates
                                                              : wire_rates});
  }
  const char* kinds[] = {"drop", "corrupt"};
  const int kSeeds = 3;

  TextTable table({"algo", "fault", "rate", "rounds(mean)", "valid",
                   "failed", "violations", "retries", "realized",
                   "undecided(mean)"});
  for (const AlgoSweep& sweep : sweeps) {
    const std::string& algo = sweep.algo;
    for (const char* kind : kinds) {
      for (const double rate : sweep.rates) {
        double rounds_sum = 0;
        double undecided_sum = 0;
        std::uint64_t valid = 0, failed = 0, violations = 0, retries = 0;
        std::uint64_t realized = 0;
        for (int seed = 0; seed < kSeeds; ++seed) {
          FaultSchedule s;
          s.seed = 900 + seed;
          if (std::string(kind) == "drop") {
            s.drop_rate = rate;
          } else {
            s.corrupt_rate = rate;
          }
          const FaultRunResult r = run_algorithm_with_faults(
              g, algo, 100 + seed, threads, s);
          rounds_sum += static_cast<double>(r.run.rounds);
          undecided_sum += static_cast<double>(r.run.undecided_count());
          violations += r.total_violations;
          retries += r.retries;
          realized += r.fault_stats.dropped + r.fault_stats.corrupted;
          if (r.failed() && r.failure.kind.rfind("invariant:", 0) != 0) {
            ++failed;  // decode/assert failure aborted the run
          } else if (!r.failed() &&
                     is_maximal_independent_set(g, r.run.in_mis)) {
            ++valid;
          }
        }
        table.row()
            .cell(algo)
            .cell(kind)
            .cell(rate, 5)
            .cell(rounds_sum / kSeeds, 1)
            .cell(valid)
            .cell(failed)
            .cell(violations)
            .cell(retries)
            .cell(realized)
            .cell(undecided_sum / kSeeds, 1);
      }
    }
  }
  table.print(std::cout);
  bench::write_table_json(
      "e19", table,
      {{"n", std::to_string(n)}, {"seeds", std::to_string(kSeeds)}});
  std::cout
      << "\nExpected: at rate 0 every run is valid with zero violations "
         "(the null\nplane is bit-identical to no plane). Dropped messages "
         "degrade the beeping\ndynamic first — silence is meaningful there, "
         "so losses directly manufacture\nadjacent joiners (violations "
         "grow with the rate). Corruption on the typed\nwires is mostly "
         "*loud*: range-validated fields throw instead of lying, so\n"
         "the clique driver retries poisoned phases (retries column) and "
         "only heavy\nrates exhaust the budget (failed column). Undecided "
         "nodes appear when\ndrops starve the dynamic of announcements "
         "within the round budget.\n";
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  dmis::run(argc, argv);
  return 0;
}
