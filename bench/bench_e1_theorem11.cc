// E1 — Theorem 1.1: MIS in Õ(log Δ / sqrt(log n) + 1) congested-clique
// rounds, vs O(log n) [Luby '86] and O(log Δ) [Ghaffari SODA'16].
//
// Series: for each (n, Δ) cell, total rounds of
//   * Luby (runs unchanged in the clique, paper §1.1),
//   * the SODA'16 dynamic (CONGEST; also unchanged in the clique),
//   * the sparsified algorithm run directly in CONGEST (§2.3),
//   * the congested-clique simulation (§2.4).
// Also prints the per-phase cost model: direct = 1 + 2R rounds per phase vs
// clique = 3 + 2*ceil(log2(2R+1)) + cleanup; the asymptotic win of Theorem
// 1.1 is the statement that the latter is o(R) as R = Θ(sqrt(log n)) grows —
// the table's "phase cost" columns expose exactly where the crossover sits.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/clique_mis.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/sparsified.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E1 / Theorem 1.1",
      "Congested-clique MIS rounds vs the O(log n) and O(log Delta) "
      "baselines.\nExpected shape: for fixed Delta, clique rounds shrink as "
      "n grows (more\niterations per phase); Luby tracks log n; Ghaffari'16 "
      "tracks log Delta.");

  TextTable table({"n", "Delta", "R", "luby", "ghaffari16", "sparsified",
                   "clique", "clique/phase", "direct/phase", "phases",
                   "residual_edges"});

  const std::uint64_t seed = 20170725;  // PODC'17 conference date
  for (const NodeId n : {512u, 2048u, 8192u}) {
    for (const NodeId d : {8u, 64u}) {
      if (d >= n) continue;
      const Graph g = random_regular(n, d, seed + n + d);

      LubyOptions lo;
      lo.randomness = RandomSource(seed);
      const MisRun luby = luby_mis(g, lo);
      DMIS_CHECK(is_maximal_independent_set(g, luby.in_mis), "luby invalid");

      GhaffariOptions go;
      go.randomness = RandomSource(seed);
      const MisRun gh = ghaffari_mis(g, go);
      DMIS_CHECK(is_maximal_independent_set(g, gh.in_mis),
                 "ghaffari invalid");

      const SparsifiedParams params = SparsifiedParams::from_n(n);
      SparsifiedOptions so;
      so.params = params;
      so.randomness = RandomSource(seed);
      const MisRun sp = sparsified_mis(g, so);
      DMIS_CHECK(is_maximal_independent_set(g, sp.in_mis),
                 "sparsified invalid");

      CliqueMisOptions co;
      co.params = params;
      co.randomness = RandomSource(seed);
      const CliqueMisResult cq = clique_mis(g, co);
      DMIS_CHECK(is_maximal_independent_set(g, cq.run.in_mis),
                 "clique invalid");

      const int R = params.phase_length;
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(g.max_degree()))
          .cell(R)
          .cell(luby.rounds)
          .cell(gh.rounds)
          .cell(sp.rounds)
          .cell(cq.run.rounds)
          .cell(3 + kLenzenRoundsPerBatch * gather_steps_for_radius(2 * R))
          .cell(1 + 2 * R)
          .cell(cq.stats.phases)
          .cell(cq.stats.residual_edges);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e1", table);

  std::cout
      << "\nCrossover model: a clique phase costs 3 + "
         "2*ceil(log2(2R+1)) rounds and\nsimulates R CONGEST iterations "
         "(direct cost 1 + 2R). With the paper's\nconstants R = "
         "sqrt(delta log n)/2 stays tiny at in-memory n (the win is\n"
         "asymptotic, at R >= 6 i.e. n ~ 2^144 for delta = 1). The second "
         "table makes\nthe crossover *measurable* by raising delta on a "
         "linear-growth graph, where\nlarge-R balls stay small:\n\n";

  // (b) Measured crossover: sweep R at fixed n on a cycle (balls grow
  // linearly, so radius-2R gathering stays cheap even for large R).
  TextTable xover({"graph", "n", "delta", "R", "clique_rounds",
                   "direct_congest_rounds", "clique/phase", "direct/phase"});
  const NodeId n = 2048;
  const Graph g = cycle(n);
  for (const double delta : {1.0, 9.0, 25.0}) {
    const SparsifiedParams params = SparsifiedParams::from_n(n, delta);
    SparsifiedOptions so;
    so.params = params;
    so.randomness = RandomSource(seed);
    const MisRun sp = sparsified_mis(g, so);
    DMIS_CHECK(is_maximal_independent_set(g, sp.in_mis), "invalid");
    CliqueMisOptions co;
    co.params = params;
    co.randomness = RandomSource(seed);
    const CliqueMisResult cq = clique_mis(g, co);
    DMIS_CHECK(is_maximal_independent_set(g, cq.run.in_mis), "invalid");
    const int R = params.phase_length;
    xover.row()
        .cell("cycle")
        .cell(static_cast<std::uint64_t>(n))
        .cell(delta, 0)
        .cell(R)
        .cell(cq.run.rounds)
        .cell(sp.rounds)
        .cell(3 + kLenzenRoundsPerBatch * gather_steps_for_radius(2 * R))
        .cell(1 + 2 * R);
  }
  xover.print(std::cout);
  std::cout << "\nExpected: as R grows the clique's per-phase cost grows "
               "only like log R\nwhile it simulates R iterations — "
               "clique_rounds drops below the direct\nCONGEST rounds, the "
               "content of Theorem 1.1.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
