// E20 — batch execution service: throughput, latency and cache leverage.
//
// The service's cache-coherence argument (DESIGN.md §11) is that identical
// job specs produce bit-identical results, so a result cache is not an
// approximation but a proof-carrying shortcut. This experiment measures the
// payoff: a closed-loop client drives the service with a request ladder of
// increasing duplicate fraction and records jobs/sec, per-request latency
// percentiles, and the hit-path/miss-path latency separation. At 100%
// duplicates the hit rate must approach 1 and the p99 hit latency should sit
// orders of magnitude below a cold run — the cache turns recomputation into
// a sharded LRU lookup.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "svc/service.h"
#include "util/stats.h"
#include "util/table.h"

namespace dmis {
namespace {

NodeId n_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      return static_cast<NodeId>(std::max(8, std::atoi(arg.c_str() + 4)));
    }
    if (arg == "--n" && i + 1 < argc) {
      return static_cast<NodeId>(std::max(8, std::atoi(argv[i + 1])));
    }
  }
  return 400;
}

void run(int argc, char** argv) {
  const NodeId n = n_from_args(argc, argv);
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_banner(
      "E20 / execution service (scheduler + result cache)",
      "Closed-loop request ladder over duplicate fractions: every request\n"
      "is a (graph, algorithm, seed) job spec; duplicates are resolvable\n"
      "from the cache because identical specs produce bit-identical results\n"
      "by construction. Columns separate hit-path and miss-path latency.");

  const Graph g = gnp(n, 8.0 / std::max<NodeId>(n - 1, 1), 23);
  const int kJobs = 40;
  const double fractions[] = {0.0, 0.5, 0.9, 1.0};

  TextTable table({"dup_frac", "jobs", "unique", "hits", "hit_rate",
                   "jobs_per_s", "p50_us", "p99_us", "p99_hit_us",
                   "miss_mean_us", "miss_over_hit"});
  for (const double frac : fractions) {
    const int unique =
        std::max(1, static_cast<int>(std::llround(kJobs * (1.0 - frac))));
    svc::ServiceOptions options;
    options.scheduler.workers = 1;
    options.scheduler.total_threads = threads;
    svc::ExecutionService service(options);

    std::vector<double> latencies, hit_latencies, miss_latencies;
    const bench::WallTimer loop_timer;
    for (int j = 0; j < kJobs; ++j) {
      svc::JobSpec spec;
      spec.algorithm = "congest";
      spec.seed = 1000 + static_cast<std::uint64_t>(j % unique);
      spec.graph = g;
      const svc::Completion c = service.run(std::move(spec));
      const double us = c.elapsed_s * 1e6;
      latencies.push_back(us);
      (c.cache_hit ? hit_latencies : miss_latencies).push_back(us);
    }
    const double wall_s = loop_timer.seconds();

    const svc::CacheStats cache = service.cache().stats();
    double miss_mean = 0;
    for (const double us : miss_latencies) miss_mean += us;
    miss_mean /= std::max<std::size_t>(miss_latencies.size(), 1);
    const double p99_hit =
        hit_latencies.empty() ? 0.0 : percentile(hit_latencies, 0.99);
    table.row()
        .cell(frac)
        .cell(kJobs)
        .cell(unique)
        .cell(cache.hits)
        .cell(cache.hit_rate())
        .cell(kJobs / wall_s)
        .cell(percentile(latencies, 0.50))
        .cell(percentile(latencies, 0.99))
        .cell(p99_hit)
        .cell(miss_mean)
        .cell(p99_hit > 0 ? miss_mean / p99_hit : 0.0);
  }
  table.print(std::cout);
  bench::write_table_json("e20", table,
                          {{"n", std::to_string(n)},
                           {"jobs", std::to_string(kJobs)},
                           {"algorithm", "congest"}});
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  dmis::run(argc, argv);
  return 0;
}
