// E21 — scaling ladder of the storage-backend graph substrate.
//
// The tentpole claim of the storage refactor (DESIGN.md §14): sparse
// instances up to n = 10^7 build through the streaming two-pass
// GraphBuilder, run under the registry engines, and stay within a small
// multiple of the final CSR footprint. The ladder sweeps
// n = 2^16, 2^18, 2^20, 2^22, 10^7 G(n,p) graphs at average degree 8 and
// reports, per rung: build wall-clock, process peak RSS after the build
// and after the solve (bench_common.h, getrusage ru_maxrss — monotone, so
// ascending rungs attribute their own high-water mark), rounds, solve
// wall-clock, communication bits, and MIS size. `norm_rounds` divides
// rounds by log2(Delta) * sqrt(log2 n) — the Ghaffari'17 round-complexity
// shape — so a flat column is the paper's scaling story in one number.
//
// Flags: --algo=NAME (any `dmis list` name, default sparsified),
// --n-log2=K (single rung of size 2^K — the CI smoke mode),
// --seed=S (default 21), --threads=T (bench_common.h).
//
// The default engine is the paper's sparsified variant because it scales:
// id-carrying codecs (congest, luby, ghaffari, ruling2) are specified
// against kMaxIdBits = 21 (wire/types.h) and reject n > 2^21, while the
// sparsified phase messages are id-free. Pick those engines with --algo
// only for rungs at or below 2^21.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/registry.h"
#include "util/table.h"

namespace dmis {
namespace {

constexpr double kAvgDegree = 8.0;

int run(const std::string& algorithm, const std::vector<std::uint64_t>& sizes,
        std::uint64_t seed, int threads) {
  bench::print_banner(
      "E21 / storage scaling ladder",
      "Streaming builds + CSR storage backends at the 10^7-node scale:\n"
      "build wall and peak RSS per rung, rounds against the\n"
      "log(Delta)*sqrt(log n) shape of the paper, solve wall and bits.");

  const AlgorithmDescriptor& descriptor =
      AlgorithmRegistry::instance().require(algorithm);
  const AlgoOptions options(descriptor);

  TextTable table({"n", "m", "Delta", "build_wall_s", "build_rss_mb",
                   "rounds", "norm_rounds", "wall_s", "bits", "mis_size",
                   "peak_rss_mb"});
  bench::BenchMeta meta{{"algorithm", algorithm},
                        {"avg_degree", "8"},
                        {"seed", std::to_string(seed)}};

  for (const std::uint64_t n64 : sizes) {
    // The table renders only at the end; rung-by-rung progress goes to
    // stderr so long ladders are observable (and a crash names its rung).
    std::cerr << "[e21] rung n=" << n64 << "...\n";
    const auto n = static_cast<NodeId>(n64);
    const double p = kAvgDegree / static_cast<double>(n64 - 1);
    bench::WallTimer build_timer;
    const Graph g = gnp(n, p, seed);
    const double build_wall = build_timer.seconds();
    const double build_rss_mb =
        static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);

    AlgoRunRequest request;
    request.seed = seed;
    request.threads = threads;
    bench::WallTimer solve_timer;
    const MisRun run =
        run_registered_algorithm(descriptor, g, options, request).run;
    const double solve_wall = solve_timer.seconds();
    const double peak_rss_mb =
        static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);

    const double log_delta =
        std::log2(std::max<double>(2.0, g.max_degree()));
    const double sqrt_log_n =
        std::sqrt(std::log2(std::max<double>(2.0, static_cast<double>(n64))));
    const double norm_rounds =
        static_cast<double>(run.costs.rounds) / (log_delta * sqrt_log_n);

    table.row()
        .cell(n64)
        .cell(g.edge_count())
        .cell(static_cast<std::uint64_t>(g.max_degree()))
        .cell(build_wall, 3)
        .cell(build_rss_mb, 1)
        .cell(run.costs.rounds)
        .cell(norm_rounds, 2)
        .cell(solve_wall, 3)
        .cell(run.costs.bits)
        .cell(run.mis_size())
        .cell(peak_rss_mb, 1);
  }
  table.print(std::cout);
  bench::write_table_json("e21", table, meta);
  std::cout << "\nExpected: norm_rounds roughly flat up the ladder (the\n"
               "O(log Delta * sqrt(log n)) shape); build_rss within a small\n"
               "multiple of the 12-bytes-per-half-edge CSR footprint;\n"
               "build_wall growing linearly in m.\n";
  return 0;
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  const int threads = dmis::bench::threads_from_args(argc, argv);
  std::string algorithm = "sparsified";
  std::uint64_t seed = 21;
  int n_log2 = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algorithm = arg.substr(7);
    } else if (arg.rfind("--n-log2=", 0) == 0) {
      n_log2 = std::max(4, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }
  std::vector<std::uint64_t> sizes;
  if (n_log2 != 0) {
    sizes.push_back(std::uint64_t{1} << n_log2);
  } else {
    sizes = {std::uint64_t{1} << 16, std::uint64_t{1} << 18,
             std::uint64_t{1} << 20, std::uint64_t{1} << 22, 10'000'000};
  }
  return dmis::run(algorithm, sizes, seed, threads);
}
