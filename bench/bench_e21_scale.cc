// E21 — scaling ladder of the storage-backend graph substrate.
//
// The tentpole claim of the storage refactor (DESIGN.md §14): sparse
// instances up to n = 10^7 build through the streaming two-pass
// GraphBuilder, run under the registry engines, and stay within a small
// multiple of the final CSR footprint. The ladder sweeps
// n = 2^16, 2^18, 2^20, 2^22, 10^7 G(n,p) graphs at average degree 8 and
// reports, per rung: build wall-clock, process peak RSS after the build
// and after the solve (bench_common.h, getrusage ru_maxrss — monotone, so
// ascending rungs attribute their own high-water mark), rounds, solve
// wall-clock, communication bits, and MIS size. `norm_rounds` divides
// rounds by log2(Delta) * sqrt(log2 n) — the Ghaffari'17 round-complexity
// shape — so a flat column is the paper's scaling story in one number.
//
// Flags: --algo=NAME (any `dmis list` name, default sparsified),
// --n-log2=K (single rung of size 2^K — the CI smoke mode),
// --seed=S (default 21), --threads=T (bench_common.h),
// --check-threads=1,2,4,8 (determinism ladder: re-solve each rung at every
// listed worker count and assert the MIS membership vector is
// byte-identical — the checksum column is FNV-1a over in_mis).
//
// Since the wide-field wire contract, id-carrying codecs (congest, luby,
// ghaffari, clique, lowdeg, ruling2) are specified against
// kMaxIdBits = 30 (wire/types.h) and run the full ladder — every rung up
// to 10^7 sits below the 2^30 ceiling. Each engine publishes that ceiling
// through its registry descriptor (max_nodes; 0 = unbounded, as for the
// id-free sparsified default); rungs above it are skipped loudly rather
// than tripping the codec admission check mid-ladder.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/registry.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

constexpr double kAvgDegree = 8.0;

/// FNV-1a over the MIS membership vector: one u64 that differs iff any
/// node's in/out decision differs, so the thread ladder compares a column.
std::uint64_t mis_checksum(const std::vector<char>& in_mis) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : in_mis) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

int run(const std::string& algorithm, const std::vector<std::uint64_t>& sizes,
        std::uint64_t seed, int threads,
        const std::vector<int>& check_threads) {
  bench::print_banner(
      "E21 / storage scaling ladder",
      "Streaming builds + CSR storage backends at the 10^7-node scale:\n"
      "build wall and peak RSS per rung, rounds against the\n"
      "log(Delta)*sqrt(log n) shape of the paper, solve wall and bits.");

  const AlgorithmDescriptor& descriptor =
      AlgorithmRegistry::instance().require(algorithm);
  const AlgoOptions options(descriptor);

  TextTable table({"n", "m", "Delta", "build_wall_s", "build_rss_mb",
                   "rounds", "norm_rounds", "wall_s", "bits", "mis_size",
                   "checksum", "peak_rss_mb"});
  bench::BenchMeta meta{{"algorithm", algorithm},
                        {"avg_degree", "8"},
                        {"seed", std::to_string(seed)}};
  std::uint64_t max_rung = 0;
  for (const std::uint64_t n64 : sizes) max_rung = std::max(max_rung, n64);
  bench::append_width_meta(meta, max_rung, descriptor.max_nodes);
  if (!check_threads.empty()) {
    std::string counts;
    for (const int t : check_threads) {
      if (!counts.empty()) counts += ",";
      counts += std::to_string(t);
    }
    meta.emplace_back("check_threads", counts);
  }

  for (const std::uint64_t n64 : sizes) {
    // The table renders only at the end; rung-by-rung progress goes to
    // stderr so long ladders are observable (and a crash names its rung).
    std::cerr << "[e21] rung n=" << n64 << "...\n";
    if (descriptor.max_nodes != 0 && n64 > descriptor.max_nodes) {
      std::cerr << "[e21] skipping rung n=" << n64 << ": above algorithm '"
                << algorithm << "' node ceiling " << descriptor.max_nodes
                << "\n";
      continue;
    }
    const auto n = static_cast<NodeId>(n64);
    const double p = kAvgDegree / static_cast<double>(n64 - 1);
    bench::WallTimer build_timer;
    const Graph g = gnp(n, p, seed);
    const double build_wall = build_timer.seconds();
    const double build_rss_mb =
        static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);

    AlgoRunRequest request;
    request.seed = seed;
    request.threads = threads;
    bench::WallTimer solve_timer;
    const MisRun run =
        run_registered_algorithm(descriptor, g, options, request).run;
    const double solve_wall = solve_timer.seconds();
    const double peak_rss_mb =
        static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);
    const std::uint64_t checksum = mis_checksum(run.in_mis);

    // Determinism ladder: the same rung re-solved at each worker count must
    // reproduce the membership vector byte-for-byte (the engines' claim of
    // deterministic parallelism, now across the wide-field packing).
    for (const int t : check_threads) {
      if (t == threads) continue;
      AlgoRunRequest check = request;
      check.threads = t;
      const MisRun rerun =
          run_registered_algorithm(descriptor, g, options, check).run;
      const std::uint64_t other = mis_checksum(rerun.in_mis);
      DMIS_CHECK(other == checksum,
                 "thread-ladder divergence at n=" << n64 << ": " << t
                     << " threads gave in_mis checksum " << hex64(other)
                     << ", " << threads << " threads gave "
                     << hex64(checksum));
      std::cerr << "[e21] n=" << n64 << " threads=" << t << " checksum "
                << hex64(other) << " OK\n";
    }

    const double log_delta =
        std::log2(std::max<double>(2.0, g.max_degree()));
    const double sqrt_log_n =
        std::sqrt(std::log2(std::max<double>(2.0, static_cast<double>(n64))));
    const double norm_rounds =
        static_cast<double>(run.costs.rounds) / (log_delta * sqrt_log_n);

    table.row()
        .cell(n64)
        .cell(g.edge_count())
        .cell(static_cast<std::uint64_t>(g.max_degree()))
        .cell(build_wall, 3)
        .cell(build_rss_mb, 1)
        .cell(run.costs.rounds)
        .cell(norm_rounds, 2)
        .cell(solve_wall, 3)
        .cell(run.costs.bits)
        .cell(run.mis_size())
        .cell(hex64(checksum))
        .cell(peak_rss_mb, 1);
  }
  table.print(std::cout);
  bench::write_table_json("e21", table, meta);
  std::cout << "\nExpected: norm_rounds roughly flat up the ladder (the\n"
               "O(log Delta * sqrt(log n)) shape); build_rss within a small\n"
               "multiple of the 12-bytes-per-half-edge CSR footprint;\n"
               "build_wall growing linearly in m.\n";
  return 0;
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  const int threads = dmis::bench::threads_from_args(argc, argv);
  std::string algorithm = "sparsified";
  std::uint64_t seed = 21;
  int n_log2 = 0;
  std::vector<int> check_threads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      algorithm = arg.substr(7);
    } else if (arg.rfind("--n-log2=", 0) == 0) {
      n_log2 = std::max(4, std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--check-threads=", 0) == 0) {
      std::string list = arg.substr(16);
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (const int t = std::atoi(tok.c_str()); t >= 1) {
          check_threads.push_back(t);
        }
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    }
  }
  std::vector<std::uint64_t> sizes;
  if (n_log2 != 0) {
    sizes.push_back(std::uint64_t{1} << n_log2);
  } else {
    sizes = {std::uint64_t{1} << 16, std::uint64_t{1} << 18,
             std::uint64_t{1} << 20, std::uint64_t{1} << 22, 10'000'000};
  }
  return dmis::run(algorithm, sizes, seed, threads, check_threads);
}
