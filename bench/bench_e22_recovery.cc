// E22 — durable result store: crash recovery, warm restarts, scan cost.
//
// The durable tier's pitch (DESIGN.md §15) is that determinism turns a disk
// cache into a proof-carrying shortcut that survives process death: a key's
// canonical bytes never change, so a record written once is a warm hit for
// every future process. This experiment measures the three costs of that
// promise: (a) cold vs warm serving — a fresh process over a populated
// --store-dir must serve the same workload from disk hits instead of
// re-executing; (b) the recovery scan — opening a store walks every segment
// record by record, so scan time must stay linear and small across a store
// size ladder; (c) chaos — a child process is SIGKILL'd at a deterministic
// pseudo-random point mid-append, and the parent asserts the recovered
// store is fsck-clean with a valid record prefix (no torn record served,
// no previously-durable record lost).
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "rng/mix.h"
#include "svc/service.h"
#include "svc/store.h"
#include "util/table.h"

namespace dmis {
namespace {

NodeId n_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      return static_cast<NodeId>(std::max(8, std::atoi(arg.c_str() + 4)));
    }
    if (arg == "--n" && i + 1 < argc) {
      return static_cast<NodeId>(std::max(8, std::atoi(argv[i + 1])));
    }
  }
  return 300;
}

std::string make_temp_dir(const char* tag) {
  std::string tmpl = std::string("/tmp/dmis-e22-") + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    std::cerr << "e22: mkdtemp failed for " << tmpl << "\n";
    std::exit(1);
  }
  return std::string(buf.data());
}

svc::JobKey chaos_key(std::uint64_t round, std::uint64_t i) {
  return svc::JobKey{mix64(round, i), mix64(i, round)};
}

std::string chaos_payload(std::uint64_t round, std::uint64_t i) {
  return "e22-round-" + std::to_string(round) + "-rec-" + std::to_string(i) +
         ":" + std::string(180, static_cast<char>('a' + (i % 26)));
}

/// Child body for the chaos phase: append records for `round` into `dir`
/// until killed. Never returns normally in practice — the parent SIGKILLs
/// it mid-loop; the bound is only a runaway backstop.
[[noreturn]] void chaos_child(const std::string& dir, std::uint64_t round) {
  svc::ResultStore store(svc::StoreOptions{dir, 64u << 10});
  for (std::uint64_t i = 0; i < 2'000'000; ++i) {
    store.put(chaos_key(round, i), chaos_payload(round, i));
  }
  ::_exit(0);
}

void run(int argc, char** argv) {
  const NodeId n = n_from_args(argc, argv);
  const int threads = bench::threads_from_args(argc, argv);
  bench::print_banner(
      "E22 / durable store: crash recovery, warm restart, scan cost",
      "Three phases over the WAL-style result store. cold/warm: the same\n"
      "job ladder served by a fresh process before and after the store is\n"
      "populated — warm must serve from disk hits. recover: opening-scan\n"
      "time across a store size ladder. chaos: SIGKILL a child mid-append\n"
      "at deterministic pseudo-random delays; recovery must be fsck-clean\n"
      "with a valid record prefix every round.");

  TextTable table({"phase", "param", "records", "wall_ms", "recs_per_s",
                   "hit_rate", "recovered", "torn_bytes", "clean"});
  bool all_clean = true;

  // ---- Phase A: cold vs warm serving over the same --store-dir. --------
  const std::string serve_dir = make_temp_dir("serve");
  const Graph g = gnp(n, 8.0 / std::max<NodeId>(n - 1, 1), 23);
  const int kJobs = 24;
  double cold_jobs_per_s = 0, warm_jobs_per_s = 0, warm_hit_rate = 0;
  for (const bool warm : {false, true}) {
    svc::ServiceOptions options;
    options.scheduler.workers = 1;
    options.scheduler.total_threads = threads;
    options.store_dir = serve_dir;
    svc::ExecutionService service(options);

    const bench::WallTimer loop_timer;
    for (int j = 0; j < kJobs; ++j) {
      svc::JobSpec spec;
      spec.algorithm = "congest";
      spec.seed = 4000 + static_cast<std::uint64_t>(j);
      spec.graph = g;
      (void)service.run(std::move(spec));
    }
    const double wall_s = loop_timer.seconds();
    const svc::CacheStats cache = service.cache().stats();
    const svc::StoreStats store = service.store()->stats();
    const double hit_rate = static_cast<double>(cache.store_hits) / kJobs;
    (warm ? warm_jobs_per_s : cold_jobs_per_s) = kJobs / wall_s;
    if (warm) warm_hit_rate = hit_rate;
    table.row()
        .cell(warm ? "warm" : "cold")
        .cell(static_cast<std::uint64_t>(n))
        .cell(kJobs)
        .cell(wall_s * 1e3)
        .cell(kJobs / wall_s)
        .cell(hit_rate)
        .cell(store.recovered_records)
        .cell(store.torn_bytes_truncated)
        .cell(1);
    service.seal_store();
  }
  if (warm_hit_rate < 1.0) {
    std::cerr << "e22: FAIL — warm restart hit rate " << warm_hit_rate
              << " < 1.0 (disk tier did not serve the repeat workload)\n";
    all_clean = false;
  }

  // ---- Phase B: recovery-scan time vs store size. ----------------------
  for (const std::uint64_t records : {1000ULL, 5000ULL, 20000ULL}) {
    const std::string dir = make_temp_dir("ladder");
    {
      svc::ResultStore store(svc::StoreOptions{dir, 1u << 20});
      for (std::uint64_t i = 0; i < records; ++i) {
        store.put(chaos_key(0xABCD, i), chaos_payload(0xABCD, i));
      }
      store.seal();
    }
    const bench::WallTimer open_timer;
    svc::ResultStore reopened(svc::StoreOptions{dir, 1u << 20});
    const double open_s = open_timer.seconds();
    const svc::StoreStats stats = reopened.stats();
    const svc::StoreFsckReport report = svc::ResultStore::fsck(dir);
    table.row()
        .cell("recover")
        .cell(records)
        .cell(stats.records)
        .cell(open_s * 1e3)
        .cell(records / std::max(open_s, 1e-9))
        .cell(0.0)
        .cell(stats.recovered_records)
        .cell(stats.torn_bytes_truncated)
        .cell(report.clean() ? 1 : 0);
    if (!report.clean() || stats.recovered_records != records) {
      std::cerr << "e22: FAIL — ladder store of " << records
                << " records recovered " << stats.recovered_records
                << ", fsck clean=" << report.clean() << "\n";
      all_clean = false;
    }
    std::filesystem::remove_all(dir);
  }

  // ---- Phase C: chaos — SIGKILL mid-append, recover, verify prefix. ----
  const std::string chaos_dir = make_temp_dir("chaos");
  const int kRounds = 6;
  std::uint64_t prev_recovered = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t delay_us =
        1000 + mix64(static_cast<std::uint64_t>(round), 0xC4A05) % 15000;
    const pid_t pid = ::fork();
    if (pid == 0) chaos_child(chaos_dir, static_cast<std::uint64_t>(round));
    if (pid < 0) {
      std::cerr << "e22: fork failed\n";
      std::exit(1);
    }
    ::usleep(static_cast<useconds_t>(delay_us));
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);

    const svc::StoreFsckReport report = svc::ResultStore::fsck(chaos_dir);
    const bench::WallTimer open_timer;
    svc::ResultStore recovered(svc::StoreOptions{chaos_dir, 64u << 10});
    const double open_s = open_timer.seconds();
    const svc::StoreStats stats = recovered.stats();

    // Valid prefix for this round's keys: hits for i < k, misses after.
    // (Earlier rounds' records were durable before this child started, so
    // only the just-killed round can have a torn tail.)
    bool prefix_ok = true;
    std::uint64_t hits = 0;
    while (recovered.get(chaos_key(static_cast<std::uint64_t>(round), hits))
               .has_value()) {
      ++hits;
    }
    for (std::uint64_t i = hits + 1; i < hits + 16; ++i) {
      if (recovered.get(chaos_key(static_cast<std::uint64_t>(round), i))
              .has_value()) {
        prefix_ok = false;
      }
    }
    const bool round_ok = report.clean() && prefix_ok &&
                          stats.recovered_records >= prev_recovered;
    if (!round_ok) {
      std::cerr << "e22: FAIL — chaos round " << round
                << ": fsck clean=" << report.clean()
                << " prefix_ok=" << prefix_ok << " recovered="
                << stats.recovered_records << " prev=" << prev_recovered
                << "\n";
      all_clean = false;
    }
    prev_recovered = stats.recovered_records;
    table.row()
        .cell("chaos")
        .cell(round)
        .cell(hits)
        .cell(open_s * 1e3)
        .cell(delay_us)
        .cell(0.0)
        .cell(stats.recovered_records)
        .cell(stats.torn_bytes_truncated)
        .cell(round_ok ? 1 : 0);
  }
  std::filesystem::remove_all(chaos_dir);
  std::filesystem::remove_all(serve_dir);

  table.print(std::cout);
  bench::write_table_json(
      "e22", table,
      {{"n", std::to_string(n)},
       {"jobs", std::to_string(kJobs)},
       {"algorithm", "congest"},
       {"chaos_rounds", std::to_string(kRounds)},
       {"cold_jobs_per_s", std::to_string(cold_jobs_per_s)},
       {"warm_jobs_per_s", std::to_string(warm_jobs_per_s)},
       {"warm_hit_rate", std::to_string(warm_hit_rate)},
       {"all_clean", all_clean ? "true" : "false"}});
  if (!all_clean) std::exit(1);
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  dmis::run(argc, argv);
  return 0;
}
