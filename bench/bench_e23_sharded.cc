// E23 — sharded serving: the router + worker-pool deployment vs the
// single-process service.
//
// The paper's all-to-all model assumes many machines cooperating on one
// problem; the serving layer's version of that shape is `dmis serve
// --router --workers N` (DESIGN.md §16): a router consistent-hashes every
// JobKey over N worker processes, each with its own scheduler, cache and
// durable store. This experiment drives identical digest-addressed request
// workloads through (a) an in-process service and (b) router deployments of
// increasing width, and reports jobs/sec plus the deterministic
// power-of-two latency percentiles from each side's histogram.
//
// Two properties are *asserted* on every run (exit nonzero on violation):
//   * a "graph_digest" request round-trips bit-identically against the
//     equivalent inline-edges request — the content store changes transport
//     economics, never bytes;
//   * every router response line is byte-identical to the single-process
//     response for the same id — sharding is invisible to clients.
// The ≥1.5x cold-miss speedup of router+2 workers over single-process only
// holds with real parallelism, so it is asserted under --require-speedup
// (CI machines with cores) and merely reported elsewhere — the same split
// E18 uses.
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "svc/frontend.h"
#include "svc/net/graph_store.h"
#include "svc/net/line_chunker.h"
#include "svc/net/router.h"
#include "svc/service.h"
#include "util/check.h"

namespace dmis {
namespace {

struct Args {
  NodeId n = 300;
  int jobs = 32;
  std::vector<int> worker_counts = {1, 2, 4};
  bool require_speedup = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      args.n = static_cast<NodeId>(std::max(8, std::atoi(arg.c_str() + 4)));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--workers=", 0) == 0) {
      // Largest deployment to measure: --workers=2 runs {1, 2}.
      const int cap = std::max(1, std::atoi(arg.c_str() + 10));
      args.worker_counts.clear();
      for (int w = 1; w <= cap; w *= 2) args.worker_counts.push_back(w);
    } else if (arg == "--require-speedup") {
      args.require_speedup = true;
    }
  }
  return args;
}

/// The dmis CLI relative to this bench binary (build/bench -> build/tools).
std::string dmis_binary() {
  char exe[4096];
  const ssize_t got = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (got <= 0) return {};
  exe[got] = '\0';
  std::string path(exe);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  path.resize(slash);
  path += "/../tools/dmis";
  return ::access(path.c_str(), X_OK) == 0 ? path : std::string();
}

/// A digest-addressed request workload: `jobs` requests, the trailing
/// dup_frac share of which repeat earlier seeds (cache-resolvable).
std::vector<std::string> make_workload(const std::string& digest, int jobs,
                                       double dup_frac) {
  const int unique =
      std::max(1, static_cast<int>(jobs * (1.0 - dup_frac) + 0.5));
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    lines.push_back("{\"id\":\"j" + std::to_string(j) +
                    "\",\"algorithm\":\"congest\",\"seed\":" +
                    std::to_string(2000 + j % unique) + ",\"graph_digest\":\"" +
                    digest + "\"}");
  }
  return lines;
}

struct RunResult {
  std::vector<std::string> responses;
  double wall_s = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

/// Single-process baseline: serve_stream over in-memory streams.
RunResult run_direct(const std::vector<std::string>& lines,
                     const std::string& graphs_dir) {
  svc::ServiceOptions service_options;
  svc::ExecutionService service(service_options);
  svc::FrontEndOptions options;
  options.include_timing = false;
  options.graphs_dir = graphs_dir;

  std::string request_bytes;
  for (const std::string& line : lines) request_bytes += line + "\n";
  std::istringstream in(request_bytes);
  std::ostringstream out;
  const bench::WallTimer timer;
  serve_stream(in, out, service, options);
  RunResult result;
  result.wall_s = timer.seconds();
  result.p50_us = service.latency().percentile_us(0.50);
  result.p99_us = service.latency().percentile_us(0.99);
  std::istringstream response_stream(out.str());
  std::string line;
  while (std::getline(response_stream, line)) result.responses.push_back(line);
  return result;
}

/// Router deployment: spawned worker processes, requests through serve_fds
/// over pipes (cold caches — workers are fresh per call).
RunResult run_router(const std::vector<std::string>& lines,
                     const std::string& graphs_dir, const std::string& exe,
                     int workers) {
  svc::net::RouterOptions options;
  options.spawn_workers = workers;
  options.exe = exe;
  options.graphs_dir = graphs_dir;
  options.worker_flags = {"--no-timing"};
  svc::net::Router router(options);

  int to_router[2], from_router[2];
  DMIS_CHECK_ENV(::pipe(to_router) == 0 && ::pipe(from_router) == 0,
                 "pipe: " << std::strerror(errno));
  std::string request_bytes;
  for (const std::string& line : lines) request_bytes += line + "\n";
  DMIS_CHECK(request_bytes.size() < 60000,
             "workload outgrows the pipe buffer; lower --jobs");
  DMIS_CHECK_ENV(
      ::write(to_router[1], request_bytes.data(), request_bytes.size()) ==
          static_cast<ssize_t>(request_bytes.size()),
      "write: " << std::strerror(errno));
  ::close(to_router[1]);

  // Responses outgrow a pipe buffer at realistic n, so a reader thread
  // drains them while serve_fds runs — exactly what a remote client does.
  std::string response_bytes;
  std::thread reader([&response_bytes, fd = from_router[0]] {
    char buf[65536];
    for (;;) {
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      response_bytes.append(buf, static_cast<std::size_t>(got));
    }
  });

  const bench::WallTimer timer;
  router.serve_fds(to_router[0], from_router[1]);
  RunResult result;
  result.wall_s = timer.seconds();
  result.p50_us = router.latency().percentile_us(0.50);
  result.p99_us = router.latency().percentile_us(0.99);
  ::close(to_router[0]);
  ::close(from_router[1]);
  reader.join();
  ::close(from_router[0]);

  svc::net::LineChunker chunker;
  chunker.append(response_bytes.data(), response_bytes.size());
  std::string line;
  while (chunker.next_line(&line) == svc::net::LineChunker::Next::kLine) {
    result.responses.push_back(line);
  }
  return result;
}

/// Asserted invariant: a digest request and the equivalent inline-edges
/// request produce the same response bytes (ids equal, so whole lines).
void check_digest_inline_identity(const Graph& g, const std::string& digest,
                                  const std::string& graphs_dir) {
  std::ostringstream edges;
  edges << "\"n\":" << g.node_count() << ",\"edges\":[";
  bool first = true;
  g.for_each_edge([&](NodeId u, NodeId v) {
    if (!first) edges << ',';
    first = false;
    edges << '[' << u << ',' << v << ']';
  });
  edges << ']';
  const std::string inline_line =
      "{\"id\":\"x\",\"algorithm\":\"congest\",\"seed\":77," + edges.str() +
      "}";
  const std::string digest_line =
      "{\"id\":\"x\",\"algorithm\":\"congest\",\"seed\":77,\"graph_digest\":\"" +
      digest + "\"}";

  const RunResult by_edges = run_direct({inline_line}, graphs_dir);
  const RunResult by_digest = run_direct({digest_line}, graphs_dir);
  DMIS_CHECK(by_edges.responses.size() == 1 && by_digest.responses.size() == 1,
             "identity probe expected one response per run");
  DMIS_CHECK(by_edges.responses[0] == by_digest.responses[0],
             "graph_digest response diverged from inline edges:\n  "
                 << by_edges.responses[0] << "\n  " << by_digest.responses[0]);
  std::cout << "digest-vs-inline identity: OK (" << digest << ")\n";
}

/// Asserted invariant: sharding is invisible — same ids, same bytes.
void check_router_matches_direct(const std::vector<std::string>& direct,
                                 const std::vector<std::string>& routed,
                                 int workers) {
  DMIS_CHECK(direct.size() == routed.size(),
             "router(" << workers << ") answered " << routed.size()
                       << " of " << direct.size() << " requests");
  for (std::size_t i = 0; i < direct.size(); ++i) {
    DMIS_CHECK(direct[i] == routed[i],
               "router(" << workers << ") response " << i
                         << " diverged from single-process:\n  " << direct[i]
                         << "\n  " << routed[i]);
  }
}

void run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  bench::threads_from_args(argc, argv);
  bench::print_banner(
      "E23 / sharded serving (router + worker pool vs single process)",
      "Identical digest-addressed workloads through the in-process service\n"
      "and spawned router deployments. Correctness is asserted (responses\n"
      "byte-identical across deployments, digest == inline edges); the\n"
      "table reports deployment economics.");

  const std::string exe = dmis_binary();
  DMIS_CHECK_ENV(!exe.empty(),
                 "dmis CLI not found next to this bench (build all targets)");

  const std::string graphs_dir = "e23_graphs";
  const Graph g = gnp(args.n, 8.0 / std::max<NodeId>(args.n - 1, 1), 23);
  const std::string digest = svc::net::put_graph(graphs_dir, g).digest_hex;
  check_digest_inline_identity(g, digest, graphs_dir);

  const double fractions[] = {0.0, 0.9};
  TextTable table({"mode", "workers", "dup_frac", "jobs", "jobs_per_s",
                   "p50_us", "p99_us", "speedup_vs_direct"});
  std::map<double, double> direct_rate;
  double cold_best_speedup = 0.0;
  int cold_best_workers = 0;

  for (const double frac : fractions) {
    const std::vector<std::string> workload =
        make_workload(digest, args.jobs, frac);
    const RunResult direct = run_direct(workload, graphs_dir);
    direct_rate[frac] = args.jobs / direct.wall_s;
    table.row()
        .cell("direct")
        .cell(1)
        .cell(frac)
        .cell(args.jobs)
        .cell(direct_rate[frac])
        .cell(direct.p50_us)
        .cell(direct.p99_us)
        .cell(1.0);

    for (const int workers : args.worker_counts) {
      const RunResult routed =
          run_router(workload, graphs_dir, exe, workers);
      check_router_matches_direct(direct.responses, routed.responses,
                                  workers);
      const double rate = args.jobs / routed.wall_s;
      const double speedup = rate / direct_rate[frac];
      if (frac == 0.0 && workers >= 2 && speedup > cold_best_speedup) {
        cold_best_speedup = speedup;
        cold_best_workers = workers;
      }
      table.row()
          .cell("router")
          .cell(workers)
          .cell(frac)
          .cell(args.jobs)
          .cell(rate)
          .cell(routed.p50_us)
          .cell(routed.p99_us)
          .cell(speedup);
    }
  }
  table.print(std::cout);

  std::ostringstream speedup_text;
  speedup_text << cold_best_speedup;
  bench::write_table_json(
      "e23", table,
      {{"n", std::to_string(args.n)},
       {"jobs", std::to_string(args.jobs)},
       {"algorithm", "congest"},
       {"graph_digest", digest},
       {"identity_checks", "passed"},
       {"cold_best_speedup", speedup_text.str()},
       {"cold_best_workers", std::to_string(cold_best_workers)}});

  std::cout << "\ncold-miss speedup router(" << cold_best_workers
            << "w) vs single-process: " << cold_best_speedup << "x\n";
  if (args.require_speedup) {
    DMIS_CHECK(cold_best_speedup >= 1.5,
               "cold-miss speedup " << cold_best_speedup
                                    << "x below the required 1.5x");
    std::cout << "speedup requirement (>=1.5x): OK\n";
  }
}

}  // namespace
}  // namespace dmis

int main(int argc, char** argv) {
  try {
    dmis::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_e23_sharded: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
