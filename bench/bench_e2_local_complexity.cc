// E2 — Theorem 2.1: in the Beeping MIS algorithm each node v is decided
// within C (log deg(v) + log 1/eps) iterations with probability >= 1 - eps.
//
// Two views:
//  (a) decision time stratified by initial degree on a heavy-tailed graph —
//      the p95/max columns must stay within the C(log deg + log 1/eps)
//      envelope (hubs actually decide *fastest* — they are covered by a
//      joining neighbor almost immediately; the theorem is an upper bound);
//  (b) survival curves — fraction of nodes still undecided after t
//      iterations should decay exponentially beyond ~C log Delta.
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/beeping.h"
#include "util/stats.h"
#include "util/table.h"

namespace dmis {
namespace {

void degree_stratified() {
  std::cout << "(a) decision iteration by initial degree "
               "(Barabasi-Albert n=4096, 10 seeds)\n\n";
  const Graph g = barabasi_albert(4096, 6, 3, 99);
  std::map<int, Accumulator> by_log_degree;
  std::map<int, std::vector<double>> samples;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BeepingOptions opts;
    opts.randomness = RandomSource(1000 + seed);
    const MisRun run = beeping_mis(g, opts);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const int bucket =
          static_cast<int>(std::floor(std::log2(g.degree(v) + 1.0)));
      by_log_degree[bucket].add(static_cast<double>(run.decided_round[v]));
      samples[bucket].push_back(static_cast<double>(run.decided_round[v]));
    }
  }
  TextTable table({"log2(deg)", "nodes", "mean_decide_iter", "p95", "max"});
  for (auto& [bucket, acc] : by_log_degree) {
    table.row()
        .cell(bucket)
        .cell(acc.count())
        .cell(acc.mean(), 2)
        .cell(percentile(samples[bucket], 0.95), 1)
        .cell(acc.max(), 0);
  }
  table.print(std::cout);
  bench::write_table_json("e2a", table);
}

void survival_curves() {
  std::cout << "\n(b) survival: fraction undecided after t iterations "
               "(random-regular, 10 seeds)\n\n";
  TextTable table(
      {"Delta", "t=2", "t=4", "t=8", "t=16", "t=24", "t=32", "t=48"});
  const std::vector<std::uint32_t> checkpoints{2, 4, 8, 16, 24, 32, 48};
  for (const NodeId d : {4u, 16u, 64u}) {
    const NodeId n = 4096;
    const Graph g = random_regular(n, d, 7 + d);
    std::vector<double> undecided(checkpoints.size(), 0.0);
    const int kSeeds = 10;
    for (int seed = 0; seed < kSeeds; ++seed) {
      BeepingOptions opts;
      opts.randomness = RandomSource(2000 + seed);
      const MisRun run = beeping_mis(g, opts);
      for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        for (NodeId v = 0; v < n; ++v) {
          if (run.decided_round[v] >= checkpoints[c]) {
            undecided[c] += 1.0;
          }
        }
      }
    }
    auto& row = table.row();
    row.cell(static_cast<std::uint64_t>(d));
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      row.cell(undecided[c] / (kSeeds * static_cast<double>(n)), 5);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e2b", table);
  std::cout << "\nExpected: each column drop is ~geometric once t exceeds "
               "C log2(Delta);\nhigher Delta shifts the knee right by "
               "log2(Delta).\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::bench::print_banner(
      "E2 / Theorem 2.1",
      "Beeping MIS local complexity: node v decides within "
      "C(log deg v + log 1/eps)\niterations w.p. >= 1-eps, with an "
      "exponential tail.");
  dmis::degree_stratified();
  dmis::survival_curves();
  return 0;
}
