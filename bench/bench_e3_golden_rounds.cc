// E3 — Lemmas 2.2–2.5 (and 2.7–2.10 for the sparsified variant): the
// golden-round machinery behind both local-complexity theorems.
//
// Measured per run:
//   * wrong-move rate      — Lemmas 2.4/2.5/2.9/2.10 bound it by 0.02;
//   * golden fraction      — Lemmas 2.3/2.8 guarantee >= 0.05 of a node's
//                            live rounds are golden (we report the aggregate
//                            and the fraction of nodes meeting 0.05);
//   * gamma                — Lemmas 2.2/2.7: a constant removal probability
//                            within golden rounds.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/beeping.h"
#include "mis/instrumentation.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace dmis {
namespace {

struct Workload {
  const char* name;
  Graph graph;
};

void report_row(TextTable& table, const char* algorithm, const char* wname,
                const Graph& g, const GoldenRoundReport& r) {
  std::uint64_t nodes_meeting = 0;
  std::uint64_t nodes_counted = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (r.node_rounds_alive[v] == 0) continue;
    ++nodes_counted;
    if (static_cast<double>(r.node_golden[v]) >=
        0.05 * static_cast<double>(r.node_rounds_alive[v])) {
      ++nodes_meeting;
    }
  }
  table.row()
      .cell(algorithm)
      .cell(wname)
      .cell(r.observed_node_rounds)
      .cell(r.golden_fraction(), 3)
      .cell(nodes_counted == 0
                ? 0.0
                : static_cast<double>(nodes_meeting) /
                      static_cast<double>(nodes_counted),
            3)
      .cell(r.wrong_move_rate(), 4)
      .cell(r.gamma(), 3);
}

void run() {
  bench::print_banner(
      "E3 / Lemmas 2.2-2.5, 2.7-2.10",
      "Golden rounds and wrong moves. Paper bounds: wrong-move rate <= "
      "0.02;\n>= 0.05 T golden rounds per node (w.h.p.); constant gamma "
      "removal\nprobability per golden round.");

  std::vector<Workload> workloads;
  workloads.push_back({"gnp4096_d16", gnp(4096, 16.0 / 4095, 3)});
  workloads.push_back({"gnp2048_d64", gnp(2048, 64.0 / 2047, 4)});
  workloads.push_back({"regular2048_d32", random_regular(2048, 32, 5)});
  workloads.push_back({"ba2048", barabasi_albert(2048, 5, 3, 6)});
  workloads.push_back({"grid64x64", grid2d(64, 64)});

  TextTable table({"algorithm", "workload", "node_rounds", "golden_frac",
                   "nodes>=0.05T", "wrong_rate", "gamma"});
  for (const auto& w : workloads) {
    {
      GoldenRoundAuditor auditor(w.graph);
      BeepingOptions opts;
      opts.randomness = RandomSource(77);
      opts.observers.push_back(&auditor);
      beeping_mis(w.graph, opts);
      report_row(table, "beeping", w.name, w.graph, auditor.report());
    }
    {
      GoldenRoundAuditor auditor(w.graph);
      SparsifiedOptions opts;
      opts.params = SparsifiedParams::from_n(w.graph.node_count());
      opts.randomness = RandomSource(77);
      opts.observers.push_back(&auditor);
      sparsified_mis(w.graph, opts);
      report_row(table, "sparsified", w.name, w.graph, auditor.report());
    }
  }
  table.print(std::cout);
  bench::write_table_json("e3", table, {{"seed", "77"}});
  std::cout << "\nExpected: wrong_rate well below 0.02 (the lemmas' bound "
               "is loose);\ngolden_frac >= 0.05 and most nodes meeting the "
               "0.05T bar; gamma a\nhealthy constant (Lemma 2.2's removal "
               "probability within golden rounds).\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
