// E4 — Theorem 2.6: the *sparsified* algorithm (§2.3) keeps the Theorem 2.1
// local complexity: decided within C(log deg + log 1/eps) iterations with
// exponential tails — super-heavy stabilization does not slow nodes down.
//
// Side-by-side survival curves, beeping (§2.2) vs sparsified (§2.3), same
// graphs, same seeds.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/beeping.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace dmis {
namespace {

std::vector<double> survival(const Graph& g,
                             const std::vector<std::uint32_t>& checkpoints,
                             bool sparsified, std::uint64_t base_seed,
                             int seeds) {
  std::vector<double> undecided(checkpoints.size(), 0.0);
  for (int s = 0; s < seeds; ++s) {
    MisRun run;
    if (sparsified) {
      SparsifiedOptions opts;
      opts.params = SparsifiedParams::from_n(g.node_count());
      opts.randomness = RandomSource(base_seed + s);
      run = sparsified_mis(g, opts);
    } else {
      BeepingOptions opts;
      opts.randomness = RandomSource(base_seed + s);
      run = beeping_mis(g, opts);
    }
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (run.decided_round[v] >= checkpoints[c]) undecided[c] += 1.0;
      }
    }
  }
  for (double& u : undecided) {
    u /= seeds * static_cast<double>(g.node_count());
  }
  return undecided;
}

void run() {
  bench::print_banner(
      "E4 / Theorem 2.6",
      "Sparsified algorithm retains the beeping algorithm's local "
      "complexity:\nmatched survival curves (fraction undecided after t "
      "iterations).");
  const std::vector<std::uint32_t> checkpoints{2, 4, 8, 16, 24, 32, 48};
  TextTable table(
      {"workload", "algorithm", "t=2", "t=4", "t=8", "t=16", "t=24", "t=32",
       "t=48"});
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"regular4096_d16", random_regular(4096, 16, 11)});
  workloads.push_back({"gnp4096_d32", gnp(4096, 32.0 / 4095, 12)});
  workloads.push_back({"ba4096", barabasi_albert(4096, 5, 3, 13)});
  for (const auto& w : workloads) {
    for (const bool sparse : {false, true}) {
      const auto curve = survival(w.g, checkpoints, sparse, 900, 8);
      auto& row = table.row();
      row.cell(w.name).cell(sparse ? "sparsified" : "beeping");
      for (const double u : curve) row.cell(u, 5);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e4", table);
  std::cout << "\nExpected: per workload, the two curves nearly coincide — "
               "Theorem 2.6's\nclaim that sparsification preserves the "
               "local guarantee.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
