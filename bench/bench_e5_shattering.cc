// E5 — Lemma 2.11: after Θ(log Δ) iterations of the sparsified algorithm
// the residual graph has O(n) edges, w.h.p. (and is shattered into small
// components — the property the O(1)-round leader cleanup of §2.4 needs).
//
// Sweep n and Δ; run exactly ceil(C log2 Δ / R) phases; report residual
// edges / n (should stay bounded by a constant as n doubles) and the
// largest residual component.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E5 / Lemma 2.11",
      "Shattering: residual edges after Theta(log Delta) iterations is "
      "O(n).\nResidual edges/n must stay bounded as n grows; components "
      "stay tiny.");
  TextTable table({"n", "Delta", "C", "iters", "resid_nodes", "resid_edges",
                   "edges/n", "largest_comp"});
  for (const NodeId n : {1024u, 4096u, 16384u}) {
    for (const NodeId d : {8u, 32u, 128u}) {
      if (d * 4 >= n) continue;
      const Graph g = random_regular(n, d, 100 + n + d);
      for (const double c : {0.5, 1.0, 2.0, 4.0}) {
        SparsifiedOptions opts;
        opts.params = SparsifiedParams::from_n(n);
        opts.randomness = RandomSource(31337);
        const int R = opts.params.phase_length;
        opts.max_phases = static_cast<std::uint64_t>(std::ceil(
            std::max(1.0, c * std::log2(static_cast<double>(d)) / R)));
        const MisRun run = sparsified_mis(g, opts);
        const InducedSubgraph residual =
            induced_subgraph(g, run.undecided_mask());
        const auto comps = connected_component_sizes(residual.graph);
        table.row()
            .cell(static_cast<std::uint64_t>(n))
            .cell(static_cast<std::uint64_t>(d))
            .cell(c, 1)
            .cell(opts.max_phases * R)
            .cell(static_cast<std::uint64_t>(residual.graph.node_count()))
            .cell(residual.graph.edge_count())
            .cell(static_cast<double>(residual.graph.edge_count()) /
                      static_cast<double>(n),
                  4)
            .cell(comps.empty() ? std::uint64_t{0}
                                : static_cast<std::uint64_t>(comps[0]));
      }
    }
  }
  table.print(std::cout);
  bench::write_table_json("e5", table);
  std::cout << "\nExpected: edges/n decays rapidly in C and is bounded by "
               "a constant\nuniformly in n and Delta once C >= 2 (Lemma "
               "2.11's Theta(log Delta)\nwindow); the largest residual "
               "component stays polylogarithmic.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
