// E6 — Lemma 2.12: w.h.p. every node of the sampled set S has at most
// 2^{1 + sqrt(δ log n)/2} neighbors inside S.
//
// With our parameterization (boost = R, super-heavy threshold 2^{2R}) the
// analogous bound is 2^{1+5R}-flavored with an additive O(log n)
// concentration term at laptop n. The point of the experiment: S-degrees
// are *constant-ish* — orders of magnitude below Δ — which is what makes
// the G*[S] balls small enough to ship (Lemma 2.14's packet counting).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E6 / Lemma 2.12",
      "Max degree inside the sampled set S per phase, vs Delta and the "
      "lemma's bound.");
  TextTable table({"n", "Delta", "R", "max|S|deg", "bound 2^(1+5R)",
                   "Delta/maxSdeg", "max|S|", "phases"});
  for (const NodeId n : {1024u, 4096u, 16384u}) {
    for (const NodeId d : {32u, 128u}) {
      if (d * 4 >= n) continue;
      const Graph g = random_regular(n, d, 500 + n + d);
      SparsifiedOptions opts;
      opts.params = SparsifiedParams::from_n(n);
      opts.randomness = RandomSource(808);
      std::uint64_t max_sdeg = 0;
      std::uint64_t max_s = 0;
      std::uint64_t phases = 0;
      opts.trace = [&](const SparsifiedPhaseRecord& r) {
        max_sdeg = std::max(max_sdeg, r.max_sampled_degree);
        std::uint64_t s = 0;
        for (const char c : r.sampled) s += (c != 0) ? 1 : 0;
        max_s = std::max(max_s, s);
        ++phases;
      };
      sparsified_mis(g, opts);
      const int R = opts.params.phase_length;
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(d))
          .cell(R)
          .cell(max_sdeg)
          .cell(static_cast<std::uint64_t>(std::ldexp(1.0, 1 + 5 * R)))
          .cell(max_sdeg == 0 ? 0.0
                              : static_cast<double>(d) /
                                    static_cast<double>(max_sdeg),
                1)
          .cell(max_s)
          .cell(phases);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e6", table);
  std::cout << "\nExpected: max S-degree stays a small constant (far below "
               "Delta and below\nthe bound column), independent of Delta — "
               "the local sparsification works.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
