// E7 — Lemma 2.14: R-hop balls of a low-degree decorated graph are gathered
// in O(log R) doubling steps = O(log log n) congested-clique rounds, with
// per-node packet loads within Lenzen's routing capacity.
//
// Two tables:
//  (a) standalone gather on bounded-degree graphs: steps/rounds vs radius
//      (rounds = 2*ceil(log2(radius+1)) when every batch is feasible);
//  (b) loads observed inside the full clique-MIS run (balls in G*[S]).
#include <iostream>

#include "bench_common.h"
#include "clique/gather.h"
#include "graph/generators.h"
#include "mis/clique_mis.h"
#include "util/table.h"

namespace dmis {
namespace {

void standalone() {
  std::cout << "(a) standalone gather: rounds vs radius\n\n";
  TextTable table({"graph", "n", "radius", "steps", "rounds", "packets",
                   "max_src_load", "max_dst_load"});
  struct W {
    const char* name;
    Graph g;
    std::vector<int> radii;  // kept within the feasible ball-growth regime
  };
  std::vector<W> workloads;
  workloads.push_back({"cycle4096", cycle(4096), {1, 2, 4, 8}});
  workloads.push_back({"grid32x32", grid2d(32, 32), {1, 2, 4}});
  workloads.push_back({"regular2048_d4", random_regular(2048, 4, 9), {1, 2}});
  for (const auto& w : workloads) {
    for (const int radius : w.radii) {
      CliqueNetwork net(w.g.node_count(), RandomSource(5));
      AnnotationTable ann(w.g.node_count(), 1);
      for (NodeId v = 0; v < w.g.node_count(); ++v) ann.row(v)[0] = v;
      const GatherResult r = gather_balls(net, w.g, ann, radius);
      table.row()
          .cell(w.name)
          .cell(static_cast<std::uint64_t>(w.g.node_count()))
          .cell(radius)
          .cell(r.stats.steps)
          .cell(r.stats.rounds)
          .cell(r.stats.packets)
          .cell(r.stats.max_source_load)
          .cell(r.stats.max_dest_load);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e7a", table);
}

void inside_clique_mis() {
  std::cout << "\n(b) gather loads inside the full clique-MIS run "
               "(balls of G*[S])\n\n";
  TextTable table({"n", "avg_deg", "R", "max_ball", "max_src_load",
                   "max_dst_load", "n (capacity)", "gather_rounds"});
  for (const NodeId n : {2048u, 8192u}) {
    for (const double target_deg : {16.0, 96.0}) {
      const Graph g = gnp(n, target_deg / (n - 1), 600 + n);
      CliqueMisOptions opts;
      opts.params = SparsifiedParams::from_n(n);
      opts.randomness = RandomSource(61);
      const CliqueMisResult result = clique_mis(g, opts);
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(g.average_degree(), 1)
          .cell(opts.params.phase_length)
          .cell(result.stats.max_ball_members)
          .cell(result.stats.max_gather_source_load)
          .cell(result.stats.max_gather_dest_load)
          .cell(static_cast<std::uint64_t>(n))
          .cell(result.stats.gather_rounds);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e7b", table);
  std::cout << "\nExpected: (a) rounds = 2*steps = 2*ceil(log2(radius+1)), "
               "flat in n;\n(b) balls of G*[S] stay tiny relative to n "
               "(S-degrees are constant, E6)\nand loads exceed n only by a "
               "small factor — each doubling step costs a\nhandful of "
               "Lenzen batches (asymptotically n^{o(1)}/n -> O(1)).\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::bench::print_banner(
      "E7 / Lemma 2.14",
      "Ball gathering by graph exponentiation: O(log log n) rounds, "
      "Lenzen-feasible loads.");
  dmis::standalone();
  dmis::inside_clique_mis();
  return 0;
}
