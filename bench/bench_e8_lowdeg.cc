// E8 — Lemma 2.15: when Δ <= 2^{c sqrt(δ log n)}, MIS in O(log log Δ)
// congested-clique rounds: gather an O(log Δ)-radius ball once, replay the
// SODA'16 dynamic locally, clean up at the leader.
//
// Sweep bounded-growth families (the lemma's natural regime; see
// mis/lowdeg.h for why expanders are excluded at laptop n): total clique
// rounds should track 2*ceil(log2(2T+1)) + O(1), i.e. ~log log Δ, and stay
// flat as n grows.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/lowdeg.h"
#include "util/check.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E8 / Lemma 2.15",
      "Low-degree fast path: O(log log Delta) clique rounds via one "
      "O(log Delta)-radius gather.");
  TextTable table({"graph", "n", "Delta", "T", "gather_steps",
                   "total_rounds", "resid_nodes", "max_ball"});
  struct W {
    const char* name;
    Graph g;
    int iterations;  // 0 = derive; pinned where balls would outgrow memory
  };
  std::vector<W> workloads;
  workloads.push_back({"cycle2048_T4", cycle(2048), 4});
  workloads.push_back({"cycle8192_T4", cycle(8192), 4});
  workloads.push_back({"cycle8192_T8", cycle(8192), 8});
  workloads.push_back({"grid32x32", grid2d(32, 32), 2});
  workloads.push_back({"grid64x64", grid2d(64, 64), 2});
  workloads.push_back({"geo2048_r.02", random_geometric(2048, 0.02, 8), 2});
  workloads.push_back({"geo4096_r.015", random_geometric(4096, 0.015, 9), 2});
  for (const auto& w : workloads) {
    LowDegOptions opts;
    opts.randomness = RandomSource(71);
    opts.simulated_iterations = w.iterations;
    const LowDegResult result = lowdeg_mis(w.g, opts);
    DMIS_CHECK(is_maximal_independent_set(w.g, result.run.in_mis),
               "invalid MIS on " << w.name);
    table.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.g.node_count()))
        .cell(static_cast<std::uint64_t>(w.g.max_degree()))
        .cell(result.stats.iterations)
        .cell(result.stats.gather_steps)
        .cell(result.run.rounds)
        .cell(result.stats.residual_nodes)
        .cell(result.stats.max_ball_members);
  }
  table.print(std::cout);
  bench::write_table_json("e8", table);
  std::cout << "\nExpected: total_rounds ~ 2*gather_steps + O(1) cleanup; "
               "flat as n grows\nat fixed Delta (compare cycle2048 vs "
               "cycle8192, grid32 vs grid64);\ngather_steps = "
               "ceil(log2(2T+1)) ~ log log Delta.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
