// E9 — Ablation of the phase-commit semantics (DESIGN.md §3).
//
// The paper leaves the mid-phase removal of super-heavy nodes unspecified;
// we defined the simulable "phase-commit" semantics (a super-heavy node
// beeps its committed vector to the phase boundary). This ablation compares
// it with eager ("immediate") removal: identical local-complexity profile
// and round counts within noise — evidence the choice does not change the
// algorithm's behavior, only its simulability.
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/sparsified.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"

namespace dmis {
namespace {

void run() {
  bench::print_banner(
      "E9 / ablation",
      "Phase-commit vs immediate super-heavy removal: rounds, MIS size, "
      "decision times\n(8 seeds each; mean +- stddev).");
  TextTable table({"workload", "semantics", "sh_engagements",
                   "rounds(mean)", "rounds(sd)", "mis_size(mean)",
                   "decide_iter(mean)", "decide_p95"});
  // The semantics can only differ where super-heavy nodes exist at all:
  // with R = 4 the threshold is d0 >= 2^8, i.e. degrees >= ~512. Dense
  // workloads on purpose.
  struct W {
    const char* name;
    Graph g;
  };
  std::vector<W> workloads;
  workloads.push_back({"gnp2048_p.4", gnp(2048, 0.4, 21)});
  workloads.push_back({"gnp4096_p.2", gnp(4096, 0.2, 22)});
  workloads.push_back({"cliques3x700", disjoint_cliques(3, 700)});
  workloads.push_back({"bipartite1Kx1K", complete_bipartite(1024, 1024)});
  {
    // The adversarial shape where the semantics can actually diverge: a
    // super-heavy hub (600 leaves -> d0 = 300 >= 2^8) whose leaves join
    // early; under phase-commit the removed hub keeps beeping at its
    // remaining leaves, under immediate removal it falls silent. On natural
    // dense graphs SH nodes are never adjacent to early joiners (their
    // whole region is beep-saturated), so only this shape probes the
    // difference.
    const NodeId kStars = 8;
    const NodeId kLeaves = 600;
    GraphBuilder b(kStars * (kLeaves + 1));
    for (NodeId s = 0; s < kStars; ++s) {
      const NodeId hub = s * (kLeaves + 1);
      for (NodeId l = 1; l <= kLeaves; ++l) b.add_edge(hub, hub + l);
    }
    workloads.push_back({"sh_stars8x600", std::move(b).build()});
  }
  for (const auto& w : workloads) {
    for (const bool immediate : {false, true}) {
      Accumulator rounds;
      Accumulator mis_size;
      Accumulator decide;
      std::vector<double> decide_all;
      std::uint64_t sh_engagements = 0;
      for (int seed = 0; seed < 8; ++seed) {
        SparsifiedOptions opts;
        // Pin R = 4: with R = 1 (the from_n default at this n) deferral to
        // the phase boundary coincides with immediate removal and the
        // ablation is vacuous. Longer phases are where the semantics can
        // actually diverge.
        opts.params.phase_length = 4;
        opts.params.superheavy_log2_threshold = 8;
        opts.params.sample_boost = 4;
        opts.params.immediate_superheavy_removal = immediate;
        opts.randomness = RandomSource(3000 + seed);
        opts.trace = [&sh_engagements](const SparsifiedPhaseRecord& r) {
          for (const char c : r.superheavy) {
            sh_engagements += (c != 0) ? 1 : 0;
          }
        };
        const MisRun run = sparsified_mis(w.g, opts);
        DMIS_CHECK(is_maximal_independent_set(w.g, run.in_mis),
                   "invalid MIS");
        rounds.add(static_cast<double>(run.rounds));
        mis_size.add(static_cast<double>(run.mis_size()));
        for (NodeId v = 0; v < w.g.node_count(); ++v) {
          decide.add(static_cast<double>(run.decided_round[v]));
          decide_all.push_back(static_cast<double>(run.decided_round[v]));
        }
      }
      table.row()
          .cell(w.name)
          .cell(immediate ? "immediate" : "phase-commit")
          .cell(sh_engagements)
          .cell(rounds.mean(), 1)
          .cell(rounds.stddev(), 1)
          .cell(mis_size.mean(), 1)
          .cell(decide.mean(), 2)
          .cell(percentile(decide_all, 0.95), 1);
    }
  }
  table.print(std::cout);
  bench::write_table_json("e9", table);
  std::cout
      << "\nExpected: on every natural workload the two semantics produce "
         "*identical*\nexecutions — a super-heavy node's region is "
         "beep-saturated, so no neighbor\nof one ever joins mid-phase and "
         "the deferred removal never differs. Only the\nengineered hub+"
         "pendant stars make them diverge, and there only the decision\n"
         "*times* move (zombie hub beeps delay its surviving leaves "
         "slightly under\nphase-commit); rounds and MIS sizes agree within "
         "noise. The commit\nconvention is behaviorally invisible.\n";
}

}  // namespace
}  // namespace dmis

int main() {
  dmis::run();
  return 0;
}
