file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_model_costs.dir/bench_e10_model_costs.cc.o"
  "CMakeFiles/bench_e10_model_costs.dir/bench_e10_model_costs.cc.o.d"
  "bench_e10_model_costs"
  "bench_e10_model_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_model_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
