# Empty compiler generated dependencies file for bench_e10_model_costs.
# This may be replaced when dependencies are built.
