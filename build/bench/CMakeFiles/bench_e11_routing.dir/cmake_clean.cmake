file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_routing.dir/bench_e11_routing.cc.o"
  "CMakeFiles/bench_e11_routing.dir/bench_e11_routing.cc.o.d"
  "bench_e11_routing"
  "bench_e11_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
