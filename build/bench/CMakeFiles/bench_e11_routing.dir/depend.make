# Empty dependencies file for bench_e11_routing.
# This may be replaced when dependencies are built.
