file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_micro.dir/bench_e12_micro.cc.o"
  "CMakeFiles/bench_e12_micro.dir/bench_e12_micro.cc.o.d"
  "bench_e12_micro"
  "bench_e12_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
