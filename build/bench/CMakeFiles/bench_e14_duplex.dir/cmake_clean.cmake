file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_duplex.dir/bench_e14_duplex.cc.o"
  "CMakeFiles/bench_e14_duplex.dir/bench_e14_duplex.cc.o.d"
  "bench_e14_duplex"
  "bench_e14_duplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_duplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
