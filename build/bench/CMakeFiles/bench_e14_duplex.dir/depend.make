# Empty dependencies file for bench_e14_duplex.
# This may be replaced when dependencies are built.
