file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_local_oracle.dir/bench_e15_local_oracle.cc.o"
  "CMakeFiles/bench_e15_local_oracle.dir/bench_e15_local_oracle.cc.o.d"
  "bench_e15_local_oracle"
  "bench_e15_local_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_local_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
