# Empty dependencies file for bench_e15_local_oracle.
# This may be replaced when dependencies are built.
