file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_mst.dir/bench_e16_mst.cc.o"
  "CMakeFiles/bench_e16_mst.dir/bench_e16_mst.cc.o.d"
  "bench_e16_mst"
  "bench_e16_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
