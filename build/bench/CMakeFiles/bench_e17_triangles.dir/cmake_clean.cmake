file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_triangles.dir/bench_e17_triangles.cc.o"
  "CMakeFiles/bench_e17_triangles.dir/bench_e17_triangles.cc.o.d"
  "bench_e17_triangles"
  "bench_e17_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
