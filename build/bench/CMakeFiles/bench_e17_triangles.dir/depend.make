# Empty dependencies file for bench_e17_triangles.
# This may be replaced when dependencies are built.
