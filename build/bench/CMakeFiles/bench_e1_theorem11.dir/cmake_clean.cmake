file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_theorem11.dir/bench_e1_theorem11.cc.o"
  "CMakeFiles/bench_e1_theorem11.dir/bench_e1_theorem11.cc.o.d"
  "bench_e1_theorem11"
  "bench_e1_theorem11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_theorem11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
