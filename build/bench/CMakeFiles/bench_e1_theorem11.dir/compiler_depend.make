# Empty compiler generated dependencies file for bench_e1_theorem11.
# This may be replaced when dependencies are built.
