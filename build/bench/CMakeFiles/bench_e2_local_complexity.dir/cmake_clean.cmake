file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_local_complexity.dir/bench_e2_local_complexity.cc.o"
  "CMakeFiles/bench_e2_local_complexity.dir/bench_e2_local_complexity.cc.o.d"
  "bench_e2_local_complexity"
  "bench_e2_local_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_local_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
