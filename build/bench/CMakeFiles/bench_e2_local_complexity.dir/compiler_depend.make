# Empty compiler generated dependencies file for bench_e2_local_complexity.
# This may be replaced when dependencies are built.
