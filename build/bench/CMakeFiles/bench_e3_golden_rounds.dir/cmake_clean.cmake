file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_golden_rounds.dir/bench_e3_golden_rounds.cc.o"
  "CMakeFiles/bench_e3_golden_rounds.dir/bench_e3_golden_rounds.cc.o.d"
  "bench_e3_golden_rounds"
  "bench_e3_golden_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_golden_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
