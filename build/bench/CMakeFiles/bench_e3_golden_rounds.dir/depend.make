# Empty dependencies file for bench_e3_golden_rounds.
# This may be replaced when dependencies are built.
