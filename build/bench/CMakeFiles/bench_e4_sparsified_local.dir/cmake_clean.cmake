file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_sparsified_local.dir/bench_e4_sparsified_local.cc.o"
  "CMakeFiles/bench_e4_sparsified_local.dir/bench_e4_sparsified_local.cc.o.d"
  "bench_e4_sparsified_local"
  "bench_e4_sparsified_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sparsified_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
