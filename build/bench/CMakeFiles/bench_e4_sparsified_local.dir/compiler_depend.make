# Empty compiler generated dependencies file for bench_e4_sparsified_local.
# This may be replaced when dependencies are built.
