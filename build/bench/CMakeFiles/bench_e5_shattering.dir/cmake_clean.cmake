file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_shattering.dir/bench_e5_shattering.cc.o"
  "CMakeFiles/bench_e5_shattering.dir/bench_e5_shattering.cc.o.d"
  "bench_e5_shattering"
  "bench_e5_shattering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_shattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
