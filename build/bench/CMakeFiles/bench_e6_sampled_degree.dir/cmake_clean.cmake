file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_sampled_degree.dir/bench_e6_sampled_degree.cc.o"
  "CMakeFiles/bench_e6_sampled_degree.dir/bench_e6_sampled_degree.cc.o.d"
  "bench_e6_sampled_degree"
  "bench_e6_sampled_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_sampled_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
