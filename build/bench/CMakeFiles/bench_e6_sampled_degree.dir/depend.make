# Empty dependencies file for bench_e6_sampled_degree.
# This may be replaced when dependencies are built.
