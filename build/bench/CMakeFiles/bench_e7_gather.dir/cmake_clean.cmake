file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_gather.dir/bench_e7_gather.cc.o"
  "CMakeFiles/bench_e7_gather.dir/bench_e7_gather.cc.o.d"
  "bench_e7_gather"
  "bench_e7_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
