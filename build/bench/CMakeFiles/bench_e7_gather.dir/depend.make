# Empty dependencies file for bench_e7_gather.
# This may be replaced when dependencies are built.
