file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_lowdeg.dir/bench_e8_lowdeg.cc.o"
  "CMakeFiles/bench_e8_lowdeg.dir/bench_e8_lowdeg.cc.o.d"
  "bench_e8_lowdeg"
  "bench_e8_lowdeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_lowdeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
