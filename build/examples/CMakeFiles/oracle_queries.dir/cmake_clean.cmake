file(REMOVE_RECURSE
  "CMakeFiles/oracle_queries.dir/oracle_queries.cpp.o"
  "CMakeFiles/oracle_queries.dir/oracle_queries.cpp.o.d"
  "oracle_queries"
  "oracle_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
