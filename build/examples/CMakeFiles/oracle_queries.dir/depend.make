# Empty dependencies file for oracle_queries.
# This may be replaced when dependencies are built.
