file(REMOVE_RECURSE
  "CMakeFiles/shattering_explorer.dir/shattering_explorer.cpp.o"
  "CMakeFiles/shattering_explorer.dir/shattering_explorer.cpp.o.d"
  "shattering_explorer"
  "shattering_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shattering_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
