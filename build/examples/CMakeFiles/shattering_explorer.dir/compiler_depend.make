# Empty compiler generated dependencies file for shattering_explorer.
# This may be replaced when dependencies are built.
