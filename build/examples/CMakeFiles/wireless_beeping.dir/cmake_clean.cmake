file(REMOVE_RECURSE
  "CMakeFiles/wireless_beeping.dir/wireless_beeping.cpp.o"
  "CMakeFiles/wireless_beeping.dir/wireless_beeping.cpp.o.d"
  "wireless_beeping"
  "wireless_beeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_beeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
