# Empty compiler generated dependencies file for wireless_beeping.
# This may be replaced when dependencies are built.
