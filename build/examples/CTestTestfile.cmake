# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "256" "12" "1")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_model_comparison]=] "/root/repo/build/examples/model_comparison" "gnp" "256" "10" "2")
set_tests_properties([=[example_model_comparison]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_wireless]=] "/root/repo/build/examples/wireless_beeping" "300" "80" "3")
set_tests_properties([=[example_wireless]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_shattering]=] "/root/repo/build/examples/shattering_explorer" "512" "16" "4")
set_tests_properties([=[example_shattering]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_frequency]=] "/root/repo/build/examples/frequency_assignment" "200" "90" "5")
set_tests_properties([=[example_frequency]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_oracle]=] "/root/repo/build/examples/oracle_queries" "5000" "5" "6")
set_tests_properties([=[example_oracle]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
