
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clique/gather.cc" "src/clique/CMakeFiles/dmis_clique.dir/gather.cc.o" "gcc" "src/clique/CMakeFiles/dmis_clique.dir/gather.cc.o.d"
  "/root/repo/src/clique/lenzen_schedule.cc" "src/clique/CMakeFiles/dmis_clique.dir/lenzen_schedule.cc.o" "gcc" "src/clique/CMakeFiles/dmis_clique.dir/lenzen_schedule.cc.o.d"
  "/root/repo/src/clique/mst.cc" "src/clique/CMakeFiles/dmis_clique.dir/mst.cc.o" "gcc" "src/clique/CMakeFiles/dmis_clique.dir/mst.cc.o.d"
  "/root/repo/src/clique/network.cc" "src/clique/CMakeFiles/dmis_clique.dir/network.cc.o" "gcc" "src/clique/CMakeFiles/dmis_clique.dir/network.cc.o.d"
  "/root/repo/src/clique/triangles.cc" "src/clique/CMakeFiles/dmis_clique.dir/triangles.cc.o" "gcc" "src/clique/CMakeFiles/dmis_clique.dir/triangles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dmis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmis_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
