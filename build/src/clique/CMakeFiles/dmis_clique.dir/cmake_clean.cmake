file(REMOVE_RECURSE
  "CMakeFiles/dmis_clique.dir/gather.cc.o"
  "CMakeFiles/dmis_clique.dir/gather.cc.o.d"
  "CMakeFiles/dmis_clique.dir/lenzen_schedule.cc.o"
  "CMakeFiles/dmis_clique.dir/lenzen_schedule.cc.o.d"
  "CMakeFiles/dmis_clique.dir/mst.cc.o"
  "CMakeFiles/dmis_clique.dir/mst.cc.o.d"
  "CMakeFiles/dmis_clique.dir/network.cc.o"
  "CMakeFiles/dmis_clique.dir/network.cc.o.d"
  "CMakeFiles/dmis_clique.dir/triangles.cc.o"
  "CMakeFiles/dmis_clique.dir/triangles.cc.o.d"
  "libdmis_clique.a"
  "libdmis_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
