file(REMOVE_RECURSE
  "libdmis_clique.a"
)
