# Empty compiler generated dependencies file for dmis_clique.
# This may be replaced when dependencies are built.
