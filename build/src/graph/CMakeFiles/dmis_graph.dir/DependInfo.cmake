
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/dmis_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/dmis_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/dmis_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/mst_reference.cc" "src/graph/CMakeFiles/dmis_graph.dir/mst_reference.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/mst_reference.cc.o.d"
  "/root/repo/src/graph/ops.cc" "src/graph/CMakeFiles/dmis_graph.dir/ops.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/ops.cc.o.d"
  "/root/repo/src/graph/properties.cc" "src/graph/CMakeFiles/dmis_graph.dir/properties.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/properties.cc.o.d"
  "/root/repo/src/graph/transforms.cc" "src/graph/CMakeFiles/dmis_graph.dir/transforms.cc.o" "gcc" "src/graph/CMakeFiles/dmis_graph.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dmis_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
