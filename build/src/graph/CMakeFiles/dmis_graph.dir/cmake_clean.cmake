file(REMOVE_RECURSE
  "CMakeFiles/dmis_graph.dir/generators.cc.o"
  "CMakeFiles/dmis_graph.dir/generators.cc.o.d"
  "CMakeFiles/dmis_graph.dir/graph.cc.o"
  "CMakeFiles/dmis_graph.dir/graph.cc.o.d"
  "CMakeFiles/dmis_graph.dir/io.cc.o"
  "CMakeFiles/dmis_graph.dir/io.cc.o.d"
  "CMakeFiles/dmis_graph.dir/mst_reference.cc.o"
  "CMakeFiles/dmis_graph.dir/mst_reference.cc.o.d"
  "CMakeFiles/dmis_graph.dir/ops.cc.o"
  "CMakeFiles/dmis_graph.dir/ops.cc.o.d"
  "CMakeFiles/dmis_graph.dir/properties.cc.o"
  "CMakeFiles/dmis_graph.dir/properties.cc.o.d"
  "CMakeFiles/dmis_graph.dir/transforms.cc.o"
  "CMakeFiles/dmis_graph.dir/transforms.cc.o.d"
  "libdmis_graph.a"
  "libdmis_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
