file(REMOVE_RECURSE
  "libdmis_graph.a"
)
