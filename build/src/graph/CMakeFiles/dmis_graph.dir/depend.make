# Empty dependencies file for dmis_graph.
# This may be replaced when dependencies are built.
