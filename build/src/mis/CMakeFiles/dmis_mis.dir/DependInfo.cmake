
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mis/beeping.cc" "src/mis/CMakeFiles/dmis_mis.dir/beeping.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/beeping.cc.o.d"
  "/root/repo/src/mis/cleanup.cc" "src/mis/CMakeFiles/dmis_mis.dir/cleanup.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/cleanup.cc.o.d"
  "/root/repo/src/mis/clique_mis.cc" "src/mis/CMakeFiles/dmis_mis.dir/clique_mis.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/clique_mis.cc.o.d"
  "/root/repo/src/mis/ghaffari.cc" "src/mis/CMakeFiles/dmis_mis.dir/ghaffari.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/ghaffari.cc.o.d"
  "/root/repo/src/mis/greedy.cc" "src/mis/CMakeFiles/dmis_mis.dir/greedy.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/greedy.cc.o.d"
  "/root/repo/src/mis/halfduplex_beeping.cc" "src/mis/CMakeFiles/dmis_mis.dir/halfduplex_beeping.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/halfduplex_beeping.cc.o.d"
  "/root/repo/src/mis/instrumentation.cc" "src/mis/CMakeFiles/dmis_mis.dir/instrumentation.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/instrumentation.cc.o.d"
  "/root/repo/src/mis/local_oracle.cc" "src/mis/CMakeFiles/dmis_mis.dir/local_oracle.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/local_oracle.cc.o.d"
  "/root/repo/src/mis/lowdeg.cc" "src/mis/CMakeFiles/dmis_mis.dir/lowdeg.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/lowdeg.cc.o.d"
  "/root/repo/src/mis/luby.cc" "src/mis/CMakeFiles/dmis_mis.dir/luby.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/luby.cc.o.d"
  "/root/repo/src/mis/reductions.cc" "src/mis/CMakeFiles/dmis_mis.dir/reductions.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/reductions.cc.o.d"
  "/root/repo/src/mis/ruling_clique.cc" "src/mis/CMakeFiles/dmis_mis.dir/ruling_clique.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/ruling_clique.cc.o.d"
  "/root/repo/src/mis/sparsified.cc" "src/mis/CMakeFiles/dmis_mis.dir/sparsified.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/sparsified.cc.o.d"
  "/root/repo/src/mis/sparsified_congest.cc" "src/mis/CMakeFiles/dmis_mis.dir/sparsified_congest.cc.o" "gcc" "src/mis/CMakeFiles/dmis_mis.dir/sparsified_congest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dmis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmis_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/clique/CMakeFiles/dmis_clique.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
