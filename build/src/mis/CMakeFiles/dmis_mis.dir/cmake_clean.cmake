file(REMOVE_RECURSE
  "CMakeFiles/dmis_mis.dir/beeping.cc.o"
  "CMakeFiles/dmis_mis.dir/beeping.cc.o.d"
  "CMakeFiles/dmis_mis.dir/cleanup.cc.o"
  "CMakeFiles/dmis_mis.dir/cleanup.cc.o.d"
  "CMakeFiles/dmis_mis.dir/clique_mis.cc.o"
  "CMakeFiles/dmis_mis.dir/clique_mis.cc.o.d"
  "CMakeFiles/dmis_mis.dir/ghaffari.cc.o"
  "CMakeFiles/dmis_mis.dir/ghaffari.cc.o.d"
  "CMakeFiles/dmis_mis.dir/greedy.cc.o"
  "CMakeFiles/dmis_mis.dir/greedy.cc.o.d"
  "CMakeFiles/dmis_mis.dir/halfduplex_beeping.cc.o"
  "CMakeFiles/dmis_mis.dir/halfduplex_beeping.cc.o.d"
  "CMakeFiles/dmis_mis.dir/instrumentation.cc.o"
  "CMakeFiles/dmis_mis.dir/instrumentation.cc.o.d"
  "CMakeFiles/dmis_mis.dir/local_oracle.cc.o"
  "CMakeFiles/dmis_mis.dir/local_oracle.cc.o.d"
  "CMakeFiles/dmis_mis.dir/lowdeg.cc.o"
  "CMakeFiles/dmis_mis.dir/lowdeg.cc.o.d"
  "CMakeFiles/dmis_mis.dir/luby.cc.o"
  "CMakeFiles/dmis_mis.dir/luby.cc.o.d"
  "CMakeFiles/dmis_mis.dir/reductions.cc.o"
  "CMakeFiles/dmis_mis.dir/reductions.cc.o.d"
  "CMakeFiles/dmis_mis.dir/ruling_clique.cc.o"
  "CMakeFiles/dmis_mis.dir/ruling_clique.cc.o.d"
  "CMakeFiles/dmis_mis.dir/sparsified.cc.o"
  "CMakeFiles/dmis_mis.dir/sparsified.cc.o.d"
  "CMakeFiles/dmis_mis.dir/sparsified_congest.cc.o"
  "CMakeFiles/dmis_mis.dir/sparsified_congest.cc.o.d"
  "libdmis_mis.a"
  "libdmis_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
