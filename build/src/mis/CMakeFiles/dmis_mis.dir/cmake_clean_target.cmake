file(REMOVE_RECURSE
  "libdmis_mis.a"
)
