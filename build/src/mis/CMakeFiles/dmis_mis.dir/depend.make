# Empty dependencies file for dmis_mis.
# This may be replaced when dependencies are built.
