file(REMOVE_RECURSE
  "CMakeFiles/dmis_rng.dir/mix.cc.o"
  "CMakeFiles/dmis_rng.dir/mix.cc.o.d"
  "libdmis_rng.a"
  "libdmis_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
