file(REMOVE_RECURSE
  "libdmis_rng.a"
)
