# Empty dependencies file for dmis_rng.
# This may be replaced when dependencies are built.
