
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/beeping.cc" "src/runtime/CMakeFiles/dmis_runtime.dir/beeping.cc.o" "gcc" "src/runtime/CMakeFiles/dmis_runtime.dir/beeping.cc.o.d"
  "/root/repo/src/runtime/congest.cc" "src/runtime/CMakeFiles/dmis_runtime.dir/congest.cc.o" "gcc" "src/runtime/CMakeFiles/dmis_runtime.dir/congest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dmis_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
