file(REMOVE_RECURSE
  "CMakeFiles/dmis_runtime.dir/beeping.cc.o"
  "CMakeFiles/dmis_runtime.dir/beeping.cc.o.d"
  "CMakeFiles/dmis_runtime.dir/congest.cc.o"
  "CMakeFiles/dmis_runtime.dir/congest.cc.o.d"
  "libdmis_runtime.a"
  "libdmis_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
