file(REMOVE_RECURSE
  "libdmis_runtime.a"
)
