# Empty compiler generated dependencies file for dmis_runtime.
# This may be replaced when dependencies are built.
