file(REMOVE_RECURSE
  "CMakeFiles/dmis_util.dir/check.cc.o"
  "CMakeFiles/dmis_util.dir/check.cc.o.d"
  "CMakeFiles/dmis_util.dir/stats.cc.o"
  "CMakeFiles/dmis_util.dir/stats.cc.o.d"
  "CMakeFiles/dmis_util.dir/table.cc.o"
  "CMakeFiles/dmis_util.dir/table.cc.o.d"
  "libdmis_util.a"
  "libdmis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
