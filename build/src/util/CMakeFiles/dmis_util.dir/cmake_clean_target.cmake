file(REMOVE_RECURSE
  "libdmis_util.a"
)
