# Empty dependencies file for dmis_util.
# This may be replaced when dependencies are built.
