file(REMOVE_RECURSE
  "CMakeFiles/test_beeping.dir/test_beeping.cc.o"
  "CMakeFiles/test_beeping.dir/test_beeping.cc.o.d"
  "test_beeping"
  "test_beeping.pdb"
  "test_beeping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
