file(REMOVE_RECURSE
  "CMakeFiles/test_clique_mis.dir/test_clique_mis.cc.o"
  "CMakeFiles/test_clique_mis.dir/test_clique_mis.cc.o.d"
  "test_clique_mis"
  "test_clique_mis.pdb"
  "test_clique_mis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
