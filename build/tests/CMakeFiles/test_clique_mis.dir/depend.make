# Empty dependencies file for test_clique_mis.
# This may be replaced when dependencies are built.
