file(REMOVE_RECURSE
  "CMakeFiles/test_clique_network.dir/test_clique_network.cc.o"
  "CMakeFiles/test_clique_network.dir/test_clique_network.cc.o.d"
  "test_clique_network"
  "test_clique_network.pdb"
  "test_clique_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
