# Empty compiler generated dependencies file for test_clique_network.
# This may be replaced when dependencies are built.
