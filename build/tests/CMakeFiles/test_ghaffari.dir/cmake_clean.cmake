file(REMOVE_RECURSE
  "CMakeFiles/test_ghaffari.dir/test_ghaffari.cc.o"
  "CMakeFiles/test_ghaffari.dir/test_ghaffari.cc.o.d"
  "test_ghaffari"
  "test_ghaffari.pdb"
  "test_ghaffari[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghaffari.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
