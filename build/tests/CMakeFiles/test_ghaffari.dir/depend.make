# Empty dependencies file for test_ghaffari.
# This may be replaced when dependencies are built.
