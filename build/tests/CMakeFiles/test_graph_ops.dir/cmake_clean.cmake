file(REMOVE_RECURSE
  "CMakeFiles/test_graph_ops.dir/test_graph_ops.cc.o"
  "CMakeFiles/test_graph_ops.dir/test_graph_ops.cc.o.d"
  "test_graph_ops"
  "test_graph_ops.pdb"
  "test_graph_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
