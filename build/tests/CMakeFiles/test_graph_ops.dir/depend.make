# Empty dependencies file for test_graph_ops.
# This may be replaced when dependencies are built.
