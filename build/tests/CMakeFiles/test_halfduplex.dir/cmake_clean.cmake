file(REMOVE_RECURSE
  "CMakeFiles/test_halfduplex.dir/test_halfduplex.cc.o"
  "CMakeFiles/test_halfduplex.dir/test_halfduplex.cc.o.d"
  "test_halfduplex"
  "test_halfduplex.pdb"
  "test_halfduplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halfduplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
