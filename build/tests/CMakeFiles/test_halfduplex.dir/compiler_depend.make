# Empty compiler generated dependencies file for test_halfduplex.
# This may be replaced when dependencies are built.
