file(REMOVE_RECURSE
  "CMakeFiles/test_lenzen_schedule.dir/test_lenzen_schedule.cc.o"
  "CMakeFiles/test_lenzen_schedule.dir/test_lenzen_schedule.cc.o.d"
  "test_lenzen_schedule"
  "test_lenzen_schedule.pdb"
  "test_lenzen_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lenzen_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
