# Empty compiler generated dependencies file for test_lenzen_schedule.
# This may be replaced when dependencies are built.
