file(REMOVE_RECURSE
  "CMakeFiles/test_local_oracle.dir/test_local_oracle.cc.o"
  "CMakeFiles/test_local_oracle.dir/test_local_oracle.cc.o.d"
  "test_local_oracle"
  "test_local_oracle.pdb"
  "test_local_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
