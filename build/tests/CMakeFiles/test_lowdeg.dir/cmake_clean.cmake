file(REMOVE_RECURSE
  "CMakeFiles/test_lowdeg.dir/test_lowdeg.cc.o"
  "CMakeFiles/test_lowdeg.dir/test_lowdeg.cc.o.d"
  "test_lowdeg"
  "test_lowdeg.pdb"
  "test_lowdeg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowdeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
