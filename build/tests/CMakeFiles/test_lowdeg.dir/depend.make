# Empty dependencies file for test_lowdeg.
# This may be replaced when dependencies are built.
