file(REMOVE_RECURSE
  "CMakeFiles/test_luby.dir/test_luby.cc.o"
  "CMakeFiles/test_luby.dir/test_luby.cc.o.d"
  "test_luby"
  "test_luby.pdb"
  "test_luby[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_luby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
