# Empty compiler generated dependencies file for test_luby.
# This may be replaced when dependencies are built.
