
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mst.cc" "tests/CMakeFiles/test_mst.dir/test_mst.cc.o" "gcc" "tests/CMakeFiles/test_mst.dir/test_mst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mis/CMakeFiles/dmis_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/clique/CMakeFiles/dmis_clique.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dmis_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dmis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
