file(REMOVE_RECURSE
  "CMakeFiles/test_replay_unit.dir/test_replay_unit.cc.o"
  "CMakeFiles/test_replay_unit.dir/test_replay_unit.cc.o.d"
  "test_replay_unit"
  "test_replay_unit.pdb"
  "test_replay_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
