# Empty compiler generated dependencies file for test_replay_unit.
# This may be replaced when dependencies are built.
