file(REMOVE_RECURSE
  "CMakeFiles/test_route_modes.dir/test_route_modes.cc.o"
  "CMakeFiles/test_route_modes.dir/test_route_modes.cc.o.d"
  "test_route_modes"
  "test_route_modes.pdb"
  "test_route_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
