# Empty dependencies file for test_route_modes.
# This may be replaced when dependencies are built.
