file(REMOVE_RECURSE
  "CMakeFiles/test_ruling_clique.dir/test_ruling_clique.cc.o"
  "CMakeFiles/test_ruling_clique.dir/test_ruling_clique.cc.o.d"
  "test_ruling_clique"
  "test_ruling_clique.pdb"
  "test_ruling_clique[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ruling_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
