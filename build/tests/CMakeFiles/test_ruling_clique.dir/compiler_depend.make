# Empty compiler generated dependencies file for test_ruling_clique.
# This may be replaced when dependencies are built.
