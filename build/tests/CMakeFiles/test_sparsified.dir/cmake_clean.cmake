file(REMOVE_RECURSE
  "CMakeFiles/test_sparsified.dir/test_sparsified.cc.o"
  "CMakeFiles/test_sparsified.dir/test_sparsified.cc.o.d"
  "test_sparsified"
  "test_sparsified.pdb"
  "test_sparsified[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
