# Empty dependencies file for test_sparsified.
# This may be replaced when dependencies are built.
