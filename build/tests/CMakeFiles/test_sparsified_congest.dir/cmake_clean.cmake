file(REMOVE_RECURSE
  "CMakeFiles/test_sparsified_congest.dir/test_sparsified_congest.cc.o"
  "CMakeFiles/test_sparsified_congest.dir/test_sparsified_congest.cc.o.d"
  "test_sparsified_congest"
  "test_sparsified_congest.pdb"
  "test_sparsified_congest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsified_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
