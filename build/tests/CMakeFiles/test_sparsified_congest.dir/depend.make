# Empty dependencies file for test_sparsified_congest.
# This may be replaced when dependencies are built.
