file(REMOVE_RECURSE
  "CMakeFiles/test_triangles.dir/test_triangles.cc.o"
  "CMakeFiles/test_triangles.dir/test_triangles.cc.o.d"
  "test_triangles"
  "test_triangles.pdb"
  "test_triangles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
