# Empty compiler generated dependencies file for test_triangles.
# This may be replaced when dependencies are built.
