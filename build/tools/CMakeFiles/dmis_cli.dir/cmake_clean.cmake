file(REMOVE_RECURSE
  "CMakeFiles/dmis_cli.dir/dmis_cli.cc.o"
  "CMakeFiles/dmis_cli.dir/dmis_cli.cc.o.d"
  "dmis"
  "dmis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
