# Empty dependencies file for dmis_cli.
# This may be replaced when dependencies are built.
