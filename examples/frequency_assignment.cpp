// Frequency assignment: give every base station a channel such that no two
// interfering stations share one, using at most Δ+1 channels — the
// (Δ+1)-vertex-coloring that the paper's §1.1 says inherits the MIS round
// complexity through Linial's reduction [28].
//
//   ./frequency_assignment [stations] [interference_range_millis] [seed]
//
// Pipeline: random geometric interference graph → Linial product graph →
// congested-clique MIS (the paper's algorithm) → channel per station.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>

#include "graph/generators.h"
#include "mis/reductions.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const dmis::NodeId stations =
      argc > 1 ? static_cast<dmis::NodeId>(std::atoi(argv[1])) : 600;
  const double range = (argc > 2 ? std::atof(argv[2]) : 60.0) / 1000.0;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 5;

  const dmis::Graph interference =
      dmis::random_geometric(stations, range, seed);
  std::cout << "interference graph: " << stations << " stations, "
            << interference.edge_count() << " conflicts, max degree "
            << interference.max_degree() << "\n";

  // Channels via the clique-MIS-backed coloring reduction.
  const dmis::ColoringResult channels = dmis::vertex_coloring(
      interference, dmis::clique_solver(seed));
  const bool valid =
      dmis::is_proper_coloring(interference, channels.colors);

  // Channel usage histogram.
  std::map<std::uint32_t, std::uint64_t> usage;
  for (const std::uint32_t c : channels.colors) ++usage[c];
  dmis::TextTable table({"channel", "stations"});
  std::uint64_t shown = 0;
  for (const auto& [channel, count] : usage) {
    if (shown++ >= 12) break;  // first dozen channels
    table.row().cell(static_cast<std::uint64_t>(channel)).cell(count);
  }
  table.print(std::cout);

  std::cout << "\nchannels available (Delta+1): " << channels.palette
            << ", actually used: " << usage.size() << "\n"
            << "no interfering pair shares a channel: "
            << (valid ? "yes" : "NO (bug!)") << "\n"
            << "(the busiest channels form large independent sets — "
               "exactly the MIS\nlayers the reduction extracts)\n";
  return valid ? 0 : 1;
}
