// Model comparison: one workload, every MIS algorithm in the suite, side by
// side across the three distributed models of the paper's §1 —
// CONGEST, full-duplex beeping, and the congested clique.
//
//   ./model_comparison [family] [n] [param] [seed]
//
// family ∈ {gnp, regular, ba, geometric, grid, cycle}; param is the average
// degree (gnp), degree (regular), attachments (ba), radius*1000 (geometric),
// or ignored.
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/beeping.h"
#include "mis/clique_mis.h"
#include "mis/ghaffari.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/sparsified.h"
#include "util/table.h"

namespace {

dmis::Graph make_graph(const std::string& family, dmis::NodeId n,
                       double param, std::uint64_t seed) {
  if (family == "gnp") return dmis::gnp(n, param / (n - 1), seed);
  if (family == "regular") {
    return dmis::random_regular(n, static_cast<dmis::NodeId>(param), seed);
  }
  if (family == "ba") {
    const auto m = static_cast<dmis::NodeId>(param);
    return dmis::barabasi_albert(n, m + 1, m, seed);
  }
  if (family == "geometric") {
    return dmis::random_geometric(n, param / 1000.0, seed);
  }
  if (family == "grid") {
    const auto side = static_cast<dmis::NodeId>(std::sqrt(double(n)));
    return dmis::grid2d(side, side);
  }
  if (family == "cycle") return dmis::cycle(n);
  std::cerr << "unknown family '" << family
            << "' (use gnp|regular|ba|geometric|grid|cycle)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "gnp";
  const dmis::NodeId n =
      argc > 2 ? static_cast<dmis::NodeId>(std::atoi(argv[2])) : 2048;
  const double param = argc > 3 ? std::atof(argv[3]) : 24.0;
  const std::uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 7;

  const dmis::Graph g = make_graph(family, n, param, seed);
  std::cout << "workload: " << family << " n=" << g.node_count()
            << " m=" << g.edge_count() << " Delta=" << g.max_degree()
            << " seed=" << seed << "\n\n";

  dmis::TextTable table({"algorithm", "model", "rounds", "messages", "beeps",
                         "mis_size", "valid"});
  auto add = [&](const char* name, const char* model, const dmis::MisRun& r) {
    table.row()
        .cell(name)
        .cell(model)
        .cell(r.rounds)
        .cell(r.costs.messages)
        .cell(r.costs.beeps)
        .cell(r.mis_size())
        .cell(dmis::is_maximal_independent_set(g, r.in_mis) ? "yes" : "NO");
  };

  {
    dmis::MisRun r;
    r.in_mis = dmis::greedy_mis(g);
    r.decided_round.assign(g.node_count(), 0);
    add("greedy (sequential)", "-", r);
  }
  {
    dmis::LubyOptions o;
    o.randomness = dmis::RandomSource(seed);
    add("luby'86", "CONGEST", dmis::luby_mis(g, o));
  }
  {
    dmis::GhaffariOptions o;
    o.randomness = dmis::RandomSource(seed);
    add("ghaffari'16", "CONGEST", dmis::ghaffari_mis(g, o));
  }
  {
    dmis::BeepingOptions o;
    o.randomness = dmis::RandomSource(seed);
    add("beeping (paper 2.2)", "BEEP", dmis::beeping_mis(g, o));
  }
  {
    dmis::SparsifiedOptions o;
    o.params = dmis::SparsifiedParams::from_n(g.node_count());
    o.randomness = dmis::RandomSource(seed);
    add("sparsified (paper 2.3)", "CONGEST", dmis::sparsified_mis(g, o));
  }
  {
    dmis::CliqueMisOptions o;
    o.params = dmis::SparsifiedParams::from_n(g.node_count());
    o.randomness = dmis::RandomSource(seed);
    add("clique sim (paper 2.4)", "CLIQUE", dmis::clique_mis(g, o).run);
  }
  table.print(std::cout);
  return 0;
}
