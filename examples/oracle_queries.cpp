// Local MIS oracle: answer "is this node in the MIS?" on a large graph
// without ever computing the whole MIS — the local-computation-algorithm
// connection the paper's §1.2 closes with.
//
//   ./oracle_queries [n] [queries] [seed]
//
// Builds a big cycle-of-cycles-scale geometric graph, queries a handful of
// random nodes, and reports how little of the graph each answer touched.
// All answers are mutually consistent: together they form one fixed MIS.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "mis/local_oracle.h"
#include "rng/mix.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const dmis::NodeId n =
      argc > 1 ? static_cast<dmis::NodeId>(std::atoi(argv[1])) : 100000;
  const int queries = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 7;

  const dmis::Graph g = dmis::cycle(n);
  std::cout << "graph: cycle of " << n << " nodes ("
            << g.edge_count() << " edges)\n\n";

  dmis::LocalMisOracle::Options opts;
  opts.randomness = dmis::RandomSource(seed);
  dmis::LocalMisOracle oracle(g, opts);
  std::cout << "oracle window: " << oracle.simulated_iterations()
            << " iterations of the SODA'16 dynamic, replayed on radius-"
            << 2 * oracle.simulated_iterations() << " balls\n\n";

  dmis::TextTable table({"query node", "in MIS?", "balls simulated so far",
                         "largest ball"});
  for (int q = 0; q < queries; ++q) {
    const dmis::NodeId v = static_cast<dmis::NodeId>(
        dmis::mix64(static_cast<std::uint64_t>(q), seed) % n);
    const bool in = oracle.in_mis(v);
    table.row()
        .cell(static_cast<std::uint64_t>(v))
        .cell(in ? "yes" : "no")
        .cell(oracle.stats().balls_simulated)
        .cell(oracle.stats().max_ball_nodes);
  }
  table.print(std::cout);

  const double touched =
      100.0 * static_cast<double>(oracle.stats().balls_simulated *
                                  oracle.stats().max_ball_nodes) /
      static_cast<double>(n);
  std::cout << "\nanswered " << queries << " queries touching at most ~"
            << touched << "% of the graph —\nsublinear access, yet every "
               "answer is a fragment of the same global MIS\n(the "
               "consistency property tests/test_local_oracle.cc proves "
               "against the\nfull §2.5 algorithm).\n";
  return 0;
}
