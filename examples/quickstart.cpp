// Quickstart: compute an MIS with the congested-clique algorithm
// (Ghaffari, PODC'17) and verify it.
//
//   ./quickstart [n] [avg_degree] [seed]
//
// Demonstrates the three-line happy path: make a graph, call clique_mis,
// check the result — plus the cost counters a user will typically inspect.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/clique_mis.h"

int main(int argc, char** argv) {
  const dmis::NodeId n =
      argc > 1 ? static_cast<dmis::NodeId>(std::atoi(argv[1])) : 4096;
  const double avg_degree = argc > 2 ? std::atof(argv[2]) : 32.0;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  // 1. A graph. Any dmis::Graph works; generators.h has a dozen families.
  const dmis::Graph g = dmis::gnp(n, avg_degree / (n - 1), seed);
  std::cout << "graph: n=" << g.node_count() << " m=" << g.edge_count()
            << " Delta=" << g.max_degree() << "\n";

  // 2. Run the PODC'17 algorithm. Parameters derive from n; the randomness
  //    seed makes the run exactly reproducible.
  dmis::CliqueMisOptions options;
  options.params = dmis::SparsifiedParams::from_n(n);
  options.randomness = dmis::RandomSource(seed);
  const dmis::CliqueMisResult result = dmis::clique_mis(g, options);

  // 3. Verify and inspect.
  const bool valid =
      dmis::is_maximal_independent_set(g, result.run.in_mis);
  std::cout << "MIS size: " << result.run.mis_size() << "\n"
            << "valid maximal independent set: "
            << (valid ? "yes" : "NO (bug!)") << "\n"
            << "congested-clique rounds: " << result.run.rounds << "\n"
            << "  phases simulated: " << result.stats.phases
            << " (R=" << options.params.phase_length << " iterations each)\n"
            << "  gather rounds: " << result.stats.gather_rounds << "\n"
            << "  cleanup rounds: " << result.stats.cleanup_rounds
            << " (residual: " << result.stats.residual_nodes << " nodes, "
            << result.stats.residual_edges << " edges)\n"
            << "messages: " << result.run.costs.messages
            << ", payload bits: " << result.run.costs.bits << "\n";
  return valid ? 0 : 1;
}
