// Shattering explorer: watch the sparsified algorithm (paper §2.3) break a
// graph down, phase by phase — the effect Lemma 2.11 quantifies and the
// congested-clique algorithm's O(1)-round cleanup (§2.4 part 2) relies on.
//
//   ./shattering_explorer [n] [degree] [seed]
//
// After each phase: live nodes, live edges, largest residual component, and
// a crude bar chart of the survivor count.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/generators.h"
#include "graph/ops.h"
#include "mis/sparsified.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const dmis::NodeId n =
      argc > 1 ? static_cast<dmis::NodeId>(std::atoi(argv[1])) : 4096;
  const dmis::NodeId degree =
      argc > 2 ? static_cast<dmis::NodeId>(std::atoi(argv[2])) : 32;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 3;

  const dmis::Graph g = dmis::random_regular(n, degree, seed);
  std::cout << "graph: " << degree << "-regular, n=" << n
            << ", m=" << g.edge_count() << "\n\n";

  dmis::SparsifiedOptions options;
  options.params = dmis::SparsifiedParams::from_n(n);
  options.randomness = dmis::RandomSource(seed);
  std::cout << "phase length R=" << options.params.phase_length
            << ", super-heavy threshold d >= 2^"
            << options.params.superheavy_log2_threshold << "\n\n";

  dmis::TextTable table({"phase", "live_nodes", "live_edges",
                         "largest_comp", "superheavy", "|S|", "survivors"});
  options.trace = [&](const dmis::SparsifiedPhaseRecord& r) {
    // Residual graph *after* this phase = nodes alive at the next phase;
    // recompute from alive_start minus this phase's removals.
    std::vector<char> alive_after(g.node_count(), 0);
    std::uint64_t live = 0;
    std::uint64_t sh = 0;
    std::uint64_t s = 0;
    for (dmis::NodeId v = 0; v < g.node_count(); ++v) {
      sh += (r.superheavy[v] != 0) ? 1 : 0;
      s += (r.sampled[v] != 0) ? 1 : 0;
      if (r.alive_start[v] != 0 && r.join_iter[v] == dmis::kNeverDecided &&
          r.removed_iter[v] == dmis::kNeverDecided) {
        alive_after[v] = 1;
        ++live;
      }
    }
    const dmis::InducedSubgraph residual =
        dmis::induced_subgraph(g, alive_after);
    const auto comps = dmis::connected_component_sizes(residual.graph);
    const int bar_len =
        static_cast<int>(40.0 * static_cast<double>(live) / g.node_count());
    table.row()
        .cell(r.phase)
        .cell(live)
        .cell(residual.graph.edge_count())
        .cell(comps.empty() ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(comps[0]))
        .cell(sh)
        .cell(s)
        .cell(std::string(static_cast<std::size_t>(bar_len), '#'));
  };

  const dmis::MisRun run = dmis::sparsified_mis(g, options);
  table.print(std::cout);
  std::cout << "\nfinal MIS size: " << run.mis_size() << " after "
            << run.rounds << " CONGEST rounds\n"
            << "Lemma 2.11's shape: once ~log2(Delta)="
            << static_cast<int>(std::log2(double(degree)))
            << " iterations pass, the residual collapses to scattered "
               "fragments\n(O(n) edges) — exactly what the clique "
               "algorithm ships to the leader.\n";
  return 0;
}
