// Wireless scenario: cluster-head election in a sensor field with the
// Beeping MIS algorithm (paper §2.2).
//
// The beeping model is exactly the carrier-sensing primitive cheap radios
// have ("is anyone near me transmitting?" — paper §2.2 cites [1, 10, 14]).
// An MIS of the connectivity graph is a classic cluster-head set: heads are
// mutually out of range (no interference) and every sensor has a head in
// range (coverage).
//
//   ./wireless_beeping [sensors] [range_millis] [seed]
//
// Prints per-iteration election progress and the final coverage summary.
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "mis/beeping.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const dmis::NodeId sensors =
      argc > 1 ? static_cast<dmis::NodeId>(std::atoi(argv[1])) : 2000;
  const double range = (argc > 2 ? std::atof(argv[2]) : 40.0) / 1000.0;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 42;

  // Sensors scattered uniformly in the unit square; two sensors hear each
  // other within `range`.
  const dmis::Graph field = dmis::random_geometric(sensors, range, seed);
  const auto components = dmis::connected_component_sizes(field);
  std::cout << "sensor field: " << sensors << " sensors, radio range "
            << range << "\n"
            << "connectivity: " << field.edge_count() << " links, max "
            << field.max_degree() << " neighbors, "
            << components.size() << " components (largest "
            << (components.empty() ? 0 : components[0]) << ")\n\n";

  dmis::BeepingOptions options;
  options.randomness = dmis::RandomSource(seed);
  const dmis::MisRun run = dmis::beeping_mis(field, options);

  // Election timeline: how many sensors settled by iteration t.
  dmis::TextTable timeline({"iteration", "decided", "fraction"});
  std::uint32_t last = 0;
  for (const std::uint32_t r : run.decided_round) {
    last = std::max(last, r == dmis::kNeverDecided ? 0 : r);
  }
  for (std::uint32_t t = 0; t <= last; t += (last >= 16 ? last / 8 : 1)) {
    std::uint64_t decided = 0;
    for (const std::uint32_t r : run.decided_round) {
      if (r != dmis::kNeverDecided && r <= t) ++decided;
    }
    timeline.row()
        .cell(static_cast<std::uint64_t>(t))
        .cell(decided)
        .cell(static_cast<double>(decided) / sensors, 3);
  }
  timeline.print(std::cout);

  const bool valid = dmis::is_maximal_independent_set(field, run.in_mis);
  std::cout << "\ncluster heads elected: " << run.mis_size() << " ("
            << 100.0 * static_cast<double>(run.mis_size()) / sensors
            << "% of sensors)\n"
            << "beep rounds used: " << run.rounds << " ("
            << run.costs.beeps << " total beeps — the only channel "
            << "use)\n"
            << "every sensor has a head in range and no two heads "
               "interfere: "
            << (valid ? "yes" : "NO (bug!)") << "\n";
  return valid ? 0 : 1;
}
