#include "clique/gather.h"

#include <algorithm>
#include <unordered_set>

#include "util/bits.h"
#include "util/check.h"

namespace dmis {
namespace {

struct Knowledge {
  std::vector<NodeId> members;  // sorted unique
  std::unordered_set<std::uint64_t> edge_keys;
  std::vector<Edge> edges;
  std::unordered_map<NodeId, std::vector<std::uint64_t>> annotations;

  void add_member(NodeId v) {
    const auto it = std::lower_bound(members.begin(), members.end(), v);
    if (it == members.end() || *it != v) members.insert(it, v);
  }

  void add_edge(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (edge_keys.insert(key).second) {
      edges.emplace_back(u, v);
      add_member(u);
      add_member(v);
    }
  }

  void set_annotation_word(NodeId v, std::uint32_t idx, std::uint64_t word) {
    auto& words = annotations[v];
    if (words.size() <= idx) words.resize(idx + 1, 0);
    words[idx] = word;
    add_member(v);
  }
};

}  // namespace

int gather_steps_for_radius(int radius) {
  DMIS_CHECK(radius >= 1, "radius must be >= 1, got " << radius);
  int steps = 0;
  // Least k with 2^k - 1 >= radius.
  while ((1 << steps) - 1 < radius) ++steps;
  return steps;
}

GatherResult gather_balls(CliqueNetwork& net, const Graph& graph,
                          const AnnotationTable& annotations, int radius) {
  const NodeId n = graph.node_count();
  DMIS_CHECK(annotations.stride() == 0 || annotations.node_count() == n,
             "annotation count " << annotations.node_count() << " != n "
                                 << n);
  const WireContext& ctx = net.wire_context();

  GatherResult result;
  result.stats.steps = static_cast<std::uint64_t>(
      n == 0 ? 0 : gather_steps_for_radius(radius));

  // Initial knowledge: incident edges plus own annotation.
  std::vector<Knowledge> know(n);
  for (NodeId v = 0; v < n; ++v) {
    know[v].add_member(v);
    for (const NodeId u : graph.neighbors(v)) know[v].add_edge(v, u);
    if (annotations.stride() != 0) {
      const auto row = annotations.row(v);
      for (std::uint32_t i = 0; i < row.size(); ++i) {
        know[v].set_annotation_word(v, i, row[i]);
      }
    }
  }

  std::vector<Packet> packets;
  for (std::uint64_t step = 0; step < result.stats.steps; ++step) {
    packets.clear();
    for (NodeId v = 0; v < n; ++v) {
      const Knowledge& k = know[v];
      for (const NodeId dst : k.members) {
        if (dst == v) continue;
        for (const auto& [eu, ev] : k.edges) {
          packets.push_back(
              {v, dst, encode_payload(ctx, GatherEdgeMsg{eu, ev})});
        }
        for (const auto& [node, words] : k.annotations) {
          for (std::uint32_t i = 0; i < words.size(); ++i) {
            packets.push_back(
                {v, dst,
                 encode_payload(ctx, GatherAnnotationMsg{node, i, words[i]})});
          }
        }
      }
    }
    const RouteReport report = net.route(packets);
    result.stats.rounds += report.rounds;
    result.stats.packets += report.packets;
    result.stats.max_source_load =
        std::max(result.stats.max_source_load, report.max_source_load);
    result.stats.max_dest_load =
        std::max(result.stats.max_dest_load, report.max_dest_load);

    // Merge delivered knowledge. Packets were snapshotted pre-merge, so
    // merging in place is a plain monotone union. The gather often runs on
    // an induced subgraph smaller than the network, so the wire context
    // validates ids only against the network's n — re-validate against THIS
    // graph, or a corrupted id inside the network's range but outside the
    // subgraph silently poisons out-of-bounds knowledge.
    for (const Packet& p : packets) {
      DMIS_CHECK(p.dst < n, "corrupt gather delivery: destination " << p.dst
                                                                    << " >= n "
                                                                    << n);
      Knowledge& k = know[p.dst];
      if (p.payload.type == WireMessageType::kGatherEdge) {
        const auto msg = decode_payload<GatherEdgeMsg>(ctx, p.payload);
        DMIS_CHECK(msg.u < n && msg.v < n,
                   "corrupt gather edge (" << msg.u << ", " << msg.v
                                           << ") outside subgraph n = " << n);
        k.add_edge(msg.u, msg.v);
      } else {
        const auto msg = decode_payload<GatherAnnotationMsg>(ctx, p.payload);
        DMIS_CHECK(msg.node < n, "corrupt gather annotation for node "
                                     << msg.node << " >= n " << n);
        k.set_annotation_word(msg.node, msg.index, msg.data);
      }
    }
  }

  result.balls.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    GatheredBall& ball = result.balls[v];
    ball.center = v;
    ball.members = std::move(know[v].members);
    ball.edges = std::move(know[v].edges);
    std::sort(ball.edges.begin(), ball.edges.end());
    ball.annotations = std::move(know[v].annotations);
  }
  return result;
}

}  // namespace dmis
