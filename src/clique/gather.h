// Neighborhood gathering by graph exponentiation (paper Lemma 2.14).
//
// Every node starts knowing its incident edges in the gather graph plus an
// opaque per-node annotation (the paper's "decorated graph G*[S]": beep-vector
// ORs and per-round randomness, encoded by the caller as 64-bit words). In
// each step, every node ships its entire current knowledge to every node it
// knows of, as typed wire messages (GatherEdgeMsg / GatherAnnotationMsg)
// through CliqueNetwork::route — squaring the known radius. After k steps
// each node knows:
//   * members up to distance 2^k,
//   * all edges incident to nodes within distance 2^k - 1, and
//   * annotations of nodes within distance 2^k - 1,
// which suffices to replay `radius` rounds locally when 2^k - 1 >= radius
// (Lemma 2.13's cone-of-influence argument).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "clique/network.h"
#include "graph/graph.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

/// Fixed-stride per-node decoration words. Every node carries exactly
/// `stride` 64-bit words (a run-wide constant: 3 for phase decorations, 1
/// for personal seeds), so the table is one flat allocation and a row is a
/// span into it — no per-node vectors on the encode path.
class AnnotationTable {
 public:
  AnnotationTable() = default;
  AnnotationTable(NodeId nodes, std::uint32_t stride)
      : stride_(stride),
        words_(static_cast<std::size_t>(nodes) * stride, 0) {
    DMIS_CHECK(stride <= kMaxAnnotationWords,
               "annotation stride " << stride << " exceeds the wire index "
                                    << "range [0, " << kMaxAnnotationWords
                                    << ")");
  }

  std::uint32_t stride() const { return stride_; }
  NodeId node_count() const {
    return stride_ == 0
               ? 0
               : static_cast<NodeId>(words_.size() / stride_);
  }

  std::span<std::uint64_t> row(NodeId v) {
    return std::span<std::uint64_t>(words_).subspan(
        static_cast<std::size_t>(v) * stride_, stride_);
  }
  std::span<const std::uint64_t> row(NodeId v) const {
    return std::span<const std::uint64_t>(words_).subspan(
        static_cast<std::size_t>(v) * stride_, stride_);
  }

 private:
  std::uint32_t stride_ = 0;
  std::vector<std::uint64_t> words_;
};

/// One node's gathered knowledge after the exponentiation steps.
struct GatheredBall {
  NodeId center = kInvalidNode;
  std::vector<NodeId> members;  ///< sorted; includes the center
  std::vector<Edge> edges;      ///< unique, u < v
  std::unordered_map<NodeId, std::vector<std::uint64_t>> annotations;
};

struct GatherStats {
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;  ///< clique rounds charged by routing
  std::uint64_t packets = 0;
  std::uint64_t max_source_load = 0;
  std::uint64_t max_dest_load = 0;
};

struct GatherResult {
  std::vector<GatheredBall> balls;  ///< indexed by node id of `graph`
  GatherStats stats;
};

/// Number of doubling steps needed to replay `radius` rounds: the least k
/// with 2^k - 1 >= radius.
int gather_steps_for_radius(int radius);

/// Gathers every node's ball in `graph` (ids are graph-local; the caller maps
/// to/from original ids). `annotations.row(v)` is node v's opaque decoration
/// (an empty table means undecorated). Costs are charged to `net` (one
/// routed batch per step).
GatherResult gather_balls(CliqueNetwork& net, const Graph& graph,
                          const AnnotationTable& annotations, int radius);

}  // namespace dmis
