#include "clique/lenzen_schedule.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace dmis {
namespace {

/// Color slots of one side of the bipartite demand multigraph:
/// slot[node][color] = packet index currently colored `color` at `node`.
using SideSlots = std::vector<std::unordered_map<std::uint32_t, std::int64_t>>;

std::uint32_t first_free_color(
    const std::unordered_map<std::uint32_t, std::int64_t>& used,
    std::uint32_t palette) {
  for (std::uint32_t c = 0; c < palette; ++c) {
    if (!used.contains(c)) return c;
  }
  DMIS_ASSERT(false, "no free color within the palette — Kőnig violated");
}

}  // namespace

TwoRoundSchedule lenzen_schedule(std::span<const Packet> packets, NodeId n) {
  // Demand degrees = per-source / per-destination loads; the palette is the
  // multigraph's maximum degree (Kőnig: exactly enough).
  std::vector<std::uint32_t> out_deg(n, 0);
  std::vector<std::uint32_t> in_deg(n, 0);
  for (const Packet& p : packets) {
    DMIS_CHECK(p.src < n && p.dst < n, "packet endpoint out of range");
    ++out_deg[p.src];
    ++in_deg[p.dst];
  }
  std::uint32_t palette = 0;
  for (NodeId v = 0; v < n; ++v) {
    palette = std::max({palette, out_deg[v], in_deg[v]});
    DMIS_CHECK(out_deg[v] <= n && in_deg[v] <= n,
               "batch not Lenzen-feasible at node " << v);
  }

  TwoRoundSchedule schedule;
  schedule.intermediate.assign(packets.size(), kInvalidNode);
  if (packets.empty()) return schedule;
  schedule.colors_used = palette;

  SideSlots left(n);   // senders
  SideSlots right(n);  // destinations
  std::vector<std::uint32_t> color(packets.size(), 0);

  for (std::int64_t e = 0; e < static_cast<std::int64_t>(packets.size());
       ++e) {
    const NodeId u = packets[e].src;
    const NodeId v = packets[e].dst;
    const std::uint32_t a = first_free_color(left[u], palette);
    const std::uint32_t b = first_free_color(right[v], palette);
    std::uint32_t chosen = a;
    if (a != b) {
      // Kempe chain: the maximal alternating path from u starting with a
      // b-colored edge, colors alternating b, a, b, ... Kőnig's parity
      // argument guarantees it never reaches v, so flipping it frees b at u
      // while b stays free at v.
      std::vector<std::int64_t> path;
      bool at_left = true;
      NodeId current = u;
      std::uint32_t want = b;
      for (;;) {
        const auto& slots = at_left ? left[current] : right[current];
        const auto it = slots.find(want);
        if (it == slots.end()) break;
        const std::int64_t edge = it->second;
        path.push_back(edge);
        current = at_left ? packets[edge].dst : packets[edge].src;
        at_left = !at_left;
        want = (want == b) ? a : b;
      }
      // Two-pass flip: consecutive path edges share endpoints, so erasing
      // and reinserting one edge at a time would collide with the not-yet-
      // flipped neighbor's slot. Clear every path edge first, then reinsert
      // all under the flipped colors.
      for (const std::int64_t edge : path) {
        left[packets[edge].src].erase(color[edge]);
        right[packets[edge].dst].erase(color[edge]);
      }
      for (const std::int64_t edge : path) {
        const std::uint32_t new_color = (color[edge] == a) ? b : a;
        color[edge] = new_color;
        const bool left_ok =
            left[packets[edge].src].emplace(new_color, edge).second;
        const bool right_ok =
            right[packets[edge].dst].emplace(new_color, edge).second;
        DMIS_ASSERT(left_ok && right_ok, "Kempe flip slot collision");
      }
      DMIS_ASSERT(!left[u].contains(b) && !right[v].contains(b),
                  "Kempe flip failed to free the color");
      chosen = b;
    }
    color[e] = chosen;
    left[u].emplace(chosen, e);
    right[v].emplace(chosen, e);
  }

  // The color IS the intermediate node id (palette <= n).
  for (std::size_t e = 0; e < packets.size(); ++e) {
    schedule.intermediate[e] = static_cast<NodeId>(color[e]);
  }
  return schedule;
}

void validate_two_round_schedule(std::span<const Packet> packets,
                                 std::span<const NodeId> intermediate,
                                 NodeId n) {
  DMIS_CHECK(packets.size() == intermediate.size(), "size mismatch");
  std::unordered_map<std::uint64_t, std::uint32_t> hop1;
  std::unordered_map<std::uint64_t, std::uint32_t> hop2;
  hop1.reserve(packets.size() * 2);
  hop2.reserve(packets.size() * 2);
  for (std::size_t e = 0; e < packets.size(); ++e) {
    const NodeId mid = intermediate[e];
    DMIS_ASSERT(mid < n, "intermediate out of range");
    const std::uint64_t k1 =
        (static_cast<std::uint64_t>(packets[e].src) << 32) | mid;
    const std::uint64_t k2 =
        (static_cast<std::uint64_t>(mid) << 32) | packets[e].dst;
    DMIS_ASSERT(++hop1[k1] <= 1,
                "round-1 pair collision at src=" << packets[e].src
                                                 << " mid=" << mid);
    DMIS_ASSERT(++hop2[k2] <= 1,
                "round-2 pair collision at mid=" << mid << " dst="
                                                 << packets[e].dst);
  }
}

}  // namespace dmis
