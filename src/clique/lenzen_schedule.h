// Deterministic two-round delivery schedules for Lenzen-feasible batches —
// the combinatorial core of Lenzen's routing theorem [25], constructed
// explicitly instead of merely accounted for.
//
// Claim: if every node is the source of at most n packets and the
// destination of at most n packets, all packets can be delivered in 2
// all-to-all rounds (each ordered node pair carrying at most one packet per
// round):
//   round 1: packet (s → d) travels s → mid(s, d);
//   round 2: mid(s, d) → d.
// Feasibility of the round constraints says exactly that `mid` is a proper
// EDGE COLORING of the bipartite demand multigraph (senders × destinations,
// one edge per packet): "≤ 1 packet per (s, mid) pair" = color used at most
// once per sender; "≤ 1 per (mid, d) pair" = at most once per destination.
// By Kőnig's edge-coloring theorem a bipartite multigraph of maximum degree
// Δ is Δ-edge-colorable, and Δ ≤ n for a feasible batch — so n intermediates
// always suffice. We implement the classical constructive proof (Kempe
// alternating-chain recoloring), which uses exactly Δ colors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/network.h"

namespace dmis {

struct TwoRoundSchedule {
  /// Per packet (same order as the input): the intermediate node.
  std::vector<NodeId> intermediate;
  /// Number of distinct intermediates used (= demand multigraph max degree).
  std::uint32_t colors_used = 0;
};

/// Builds the schedule. Precondition: per-source and per-destination loads
/// are at most n (throws otherwise).
TwoRoundSchedule lenzen_schedule(std::span<const Packet> packets, NodeId n);

/// Verifies the two-round constraints: every ordered pair carries at most
/// one packet in round 1 (src → mid) and round 2 (mid → dst). Throws
/// InvariantError on violation.
void validate_two_round_schedule(std::span<const Packet> packets,
                                 std::span<const NodeId> intermediate,
                                 NodeId n);

}  // namespace dmis
