#include "clique/mst.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "graph/dsu.h"
#include "util/bits.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {
namespace {

struct Candidate {
  std::uint64_t w = 0;
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  bool better_than(const Candidate& o) const {
    if (o.u == kInvalidNode) return true;
    if (w != o.w) return w < o.w;
    if (u != o.u) return u < o.u;
    return v < o.v;
  }
};

}  // namespace

CliqueMstResult clique_mst(const Graph& g, const WeightFn& weight,
                           const CliqueMstOptions& options) {
  const NodeId n = g.node_count();
  CliqueMstResult result;
  if (n == 0) return result;

  CliqueNetwork net(n, options.randomness.fork(0x357cULL),
                    options.route_mode);
  const WireContext& ctx = net.wire_context();
  std::vector<NodeId> label(n);
  for (NodeId v = 0; v < n; ++v) label[v] = v;
  std::set<Edge> forest;

  std::uint64_t phase = 0;
  for (; phase < options.max_phases; ++phase) {
    // 1. Every node announces its label to its neighbors (one round).
    std::uint64_t directed = 0;
    for (NodeId v = 0; v < n; ++v) directed += g.degree(v);
    net.charge_neighborhood_round(WireMessageType::kMstLabel, directed,
                                  encoded_bits<MstLabelMsg>(ctx));

    // 2. Lightest outgoing edge per node; convergecast to component leader.
    //    Every node reports in (presence keeps leaders' member lists
    //    complete so relabeling reaches everyone).
    bool any_outgoing = false;
    std::vector<Packet> up;
    up.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      Candidate best;
      for (const NodeId u : g.neighbors(v)) {
        if (label[u] == label[v]) continue;
        const NodeId lo = std::min(u, v);
        const NodeId hi = std::max(u, v);
        const Candidate c{weight(lo, hi), lo, hi};
        if (c.better_than(best)) best = c;
      }
      if (best.u != kInvalidNode) {
        any_outgoing = true;
        up.push_back({v, label[v],
                      encode_payload(
                          ctx, MstReportMsg{true, best.w, best.u, best.v})});
      } else {
        up.push_back(
            {v, label[v], encode_payload(ctx, MstReportMsg{false, 0, 0, 0})});
      }
    }
    if (!any_outgoing) break;  // spanning forest complete
    net.route(up);

    // Leaders: pick the component's lightest outgoing edge; remember
    // members for the relabel broadcast.
    std::unordered_map<NodeId, Candidate> comp_best;
    std::unordered_map<NodeId, std::vector<NodeId>> members;
    for (const Packet& p : up) {
      members[p.dst].push_back(p.src);
      const auto report = decode_payload<MstReportMsg>(ctx, p.payload);
      if (!report.has_edge) continue;
      const Candidate c{report.weight, report.u, report.v};
      auto [it, inserted] = comp_best.emplace(p.dst, c);
      if (!inserted && c.better_than(it->second)) it->second = c;
    }

    // 3. Chosen edges to the coordinator (node 0).
    std::vector<Packet> chosen;
    chosen.reserve(comp_best.size());
    for (const auto& [leader, c] : comp_best) {
      chosen.push_back(
          {leader, 0, encode_payload(ctx, MstChosenMsg{c.w, c.u, c.v})});
    }
    net.route(chosen);

    // Coordinator: contract the component pseudoforest, assign new labels
    // (min old label per merged component = min member id overall).
    DisjointSets dsu(n);
    for (const Packet& p : chosen) {
      const auto msg = decode_payload<MstChosenMsg>(ctx, p.payload);
      if (dsu.unite(label[msg.u], label[msg.v])) {
        forest.insert({msg.u, msg.v});
        result.total_weight += msg.weight;
      }
    }
    std::unordered_map<NodeId, NodeId> new_label_of;  // old leader -> new
    for (const auto& [leader, c] : comp_best) {
      (void)c;
      // New label = the DSU root's minimal old label. Roots are old labels
      // themselves; the minimal old label in a merged set is found by
      // scanning chosen endpoints — instead, use: min over the set, tracked
      // via a second pass below.
      new_label_of.emplace(leader, leader);
    }
    // Min old label per DSU component.
    std::unordered_map<NodeId, NodeId> min_of_root;
    for (auto& [leader, nl] : new_label_of) {
      const NodeId root = dsu.find(leader);
      auto [it, inserted] = min_of_root.emplace(root, leader);
      if (!inserted) it->second = std::min(it->second, leader);
    }
    for (auto& [leader, nl] : new_label_of) {
      nl = min_of_root.at(dsu.find(leader));
    }

    // Coordinator -> leaders (new labels), leaders -> members.
    std::vector<Packet> down;
    down.reserve(new_label_of.size());
    for (const auto& [leader, nl] : new_label_of) {
      down.push_back({0, leader, encode_payload(ctx, MstLabelMsg{nl})});
    }
    net.route(down);
    std::vector<Packet> fanout;
    fanout.reserve(n);
    for (const auto& [leader, member_list] : members) {
      // Components with no outgoing edge this phase keep their label.
      const auto it = new_label_of.find(leader);
      const NodeId nl = it == new_label_of.end() ? leader : it->second;
      for (const NodeId m : member_list) {
        fanout.push_back({leader, m, encode_payload(ctx, MstLabelMsg{nl})});
      }
    }
    net.route(fanout);
    for (const Packet& p : fanout) {
      label[p.dst] = decode_payload<MstLabelMsg>(ctx, p.payload).label;
    }
  }
  DMIS_ASSERT(phase < options.max_phases,
              "Borůvka did not converge within " << options.max_phases
                                                 << " phases");

  result.boruvka_phases = phase;
  result.edges.assign(forest.begin(), forest.end());
  DisjointSets final_components(n);
  for (const auto& [u, v] : result.edges) final_components.unite(u, v);
  result.components = final_components.component_count();
  result.costs = net.costs();
  return result;
}

CliqueComponentsResult clique_connected_components(
    const Graph& g, const CliqueMstOptions& options) {
  // Unit weights: any spanning forest identifies the components. The forest
  // construction already propagates min-id labels; recover them from the
  // forest edges.
  const WeightFn unit = [](NodeId, NodeId) -> std::uint64_t { return 1; };
  const CliqueMstResult mst = clique_mst(g, unit, options);
  CliqueComponentsResult result;
  result.costs = mst.costs;
  result.component_count = mst.components;
  DisjointSets dsu(g.node_count());
  for (const auto& [u, v] : mst.edges) dsu.unite(u, v);
  // Min id per component.
  result.component.assign(g.node_count(), kInvalidNode);
  std::vector<NodeId> min_of(g.node_count(), kInvalidNode);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const NodeId root = dsu.find(v);
    if (min_of[root] == kInvalidNode) min_of[root] = v;  // ids ascend
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    result.component[v] = min_of[dsu.find(v)];
  }
  return result;
}

}  // namespace dmis
