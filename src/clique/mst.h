// Minimum spanning forest in the congested clique — Borůvka phases with
// O(1) clique rounds each.
//
// MST is where the congested-clique model began: Lotker et al. [29, 30]
// (the paper's §1 cites them as the model's origin) gave O(log log n)
// rounds. We implement the clean Borůvka baseline the literature measures
// against: O(log n) phases, each a constant number of all-to-all rounds —
// already exponentially below any CONGEST-model diameter bound, and a
// faithful exercise of the same substrate primitives the MIS algorithm uses
// (neighborhood rounds + Lenzen-routed convergecast to leaders).
//
// Phase structure (each O(1) rounds):
//   1. label round: every node tells its neighbors its component label
//      (the minimum node id of its component);
//   2. candidate convergecast: every node routes its lightest outgoing edge
//      to its component leader (= the label); the leader selects the
//      component's overall lightest outgoing edge;
//   3. merge resolution: component leaders route their chosen edges to the
//      global coordinator (node 0), which contracts the component graph
//      (the chosen edges form a pseudoforest) and routes every leader its
//      new label; leaders route members theirs.
// Ties are broken by (weight, min id, max id), making the MSF unique — the
// result must equal Kruskal's edge-for-edge (graph/mst_reference.h).
#pragma once

#include <cstdint>

#include "clique/network.h"
#include "graph/graph.h"
#include "graph/mst_reference.h"
#include "rng/random_source.h"
#include "runtime/cost.h"

namespace dmis {

struct CliqueMstOptions {
  RandomSource randomness{0};
  RouteMode route_mode = RouteMode::kAccountedLenzen;
  std::uint64_t max_phases = 64;
};

struct CliqueMstResult {
  std::vector<Edge> edges;  ///< the forest, sorted
  std::uint64_t total_weight = 0;
  NodeId components = 0;
  std::uint64_t boruvka_phases = 0;
  CostAccounting costs;  ///< congested-clique rounds/messages/bits
};

CliqueMstResult clique_mst(const Graph& g, const WeightFn& weight,
                           const CliqueMstOptions& options);

struct CliqueComponentsResult {
  /// Per node: the minimum node id of its connected component.
  std::vector<NodeId> component;
  NodeId component_count = 0;
  CostAccounting costs;
};

/// Connected components = Borůvka over unit weights (every outgoing edge is
/// minimal; ties broken by ids). O(log n) phases of O(1) clique rounds.
CliqueComponentsResult clique_connected_components(
    const Graph& g, const CliqueMstOptions& options);

}  // namespace dmis
