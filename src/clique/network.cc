#include "clique/network.h"

#include "clique/lenzen_schedule.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "rng/mix.h"
#include "util/bits.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

CliqueNetwork::CliqueNetwork(NodeId node_count, RandomSource randomness,
                             RouteMode mode)
    : node_count_(node_count),
      randomness_(randomness),
      mode_(mode),
      wire_ctx_(WireContext::for_nodes(node_count)) {
  DMIS_CHECK(node_count >= 1, "empty clique");
}

RouteReport CliqueNetwork::route(std::vector<Packet>& packets) {
  RouteReport report;
  ++route_invocations_;
  if (faults_ != nullptr) apply_faults(packets);
  report.packets = packets.size();
  if (packets.empty()) {
    report.batches = 0;
    report.rounds = 0;
    return report;
  }
  std::vector<std::uint64_t> src_load(node_count_, 0);
  std::vector<std::uint64_t> dst_load(node_count_, 0);
  std::array<WireTypeTally, kWireMessageTypeCount> delivered{};
  for (const Packet& p : packets) {
    DMIS_CHECK(p.src < node_count_ && p.dst < node_count_,
               "packet endpoint out of range: src=" << p.src
                                                    << " dst=" << p.dst);
    DMIS_CHECK(p.payload.bits <= kPacketBits,
               "payload of " << p.payload.bits << " bits exceeds B = "
                             << kPacketBits);
    ++src_load[p.src];
    ++dst_load[p.dst];
    auto& tally = delivered[static_cast<std::size_t>(p.payload.type)];
    ++tally.messages;
    tally.bits += p.payload.bits;
  }
  for (NodeId v = 0; v < node_count_; ++v) {
    report.max_source_load = std::max(report.max_source_load, src_load[v]);
    report.max_dest_load = std::max(report.max_dest_load, dst_load[v]);
  }
  const std::uint64_t n = node_count_;
  const std::uint64_t max_load =
      std::max(report.max_source_load, report.max_dest_load);
  report.batches = ceil_div(max_load, n);

  switch (mode_) {
    case RouteMode::kAccountedLenzen:
      // Splitting packets into `batches` groups round-robin per (src, dst)
      // load keeps every batch within Lenzen's precondition (each node the
      // source/destination of at most n packets); each batch is the proven
      // 2 rounds. Delivery content is mode-independent, so no physical
      // split is materialized.
      report.rounds = report.batches * kLenzenRoundsPerBatch;
      break;
    case RouteMode::kLenzenScheduled:
      report.rounds = scheduled_rounds(packets, &report.batches);
      break;
    case RouteMode::kValiant:
      report.rounds = valiant_rounds(packets);
      break;
  }

  emit_round_begin();
  costs_.rounds += report.rounds;
  std::uint64_t total_bits = 0;
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    if (delivered[t].messages == 0) continue;
    costs_.add_messages(static_cast<WireMessageType>(t),
                        delivered[t].messages, delivered[t].bits);
    total_bits += delivered[t].bits;
  }
  const std::uint64_t last_round = round_ + report.rounds - 1;
  round_ += report.rounds;
  emit_messages(packets.size(), total_bits);
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    emit_wire(static_cast<WireMessageType>(t), delivered[t].messages,
              delivered[t].bits);
  }
  emit_round_end(last_round);

  std::sort(packets.begin(), packets.end(),
            [](const Packet& x, const Packet& y) {
              if (x.dst != y.dst) return x.dst < y.dst;
              if (x.src != y.src) return x.src < y.src;
              if (x.payload.words != y.payload.words) {
                return x.payload.words < y.payload.words;
              }
              return x.payload.bits < y.payload.bits;
            });
  return report;
}

void CliqueNetwork::apply_faults(std::vector<Packet>& packets) {
  CheckScope scope("clique.route");
  CheckScope::set_round(round_);
  FaultStats delta;
  std::vector<Packet> out;
  out.reserve(packets.size() + pending_.size());
  // Matured delayed packets join this batch first, in hold-back order; they
  // already took their fault decision when first routed, so the plane is not
  // consulted again.
  std::size_t kept = 0;
  for (PendingPacket& p : pending_) {
    if (p.ready_round > round_) {
      pending_[kept++] = p;
      continue;
    }
    out.push_back(p.packet);
  }
  pending_.resize(kept);
  // Fresh packets: the decision coordinate is (round at batch start, src,
  // dst, position in the caller's vector) — all thread-independent, so the
  // realized fault pattern is a pure function of the schedule.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    Packet p = packets[i];
    CheckScope::set_node(p.src);
    if (faults_->node_down(p.src, round_) ||
        faults_->node_down(p.dst, round_)) {
      ++delta.dropped;
      continue;
    }
    const FaultDecision d = faults_->on_message(round_, p.src, p.dst, i);
    if (d.drop) {
      ++delta.dropped;
      continue;
    }
    if (d.corrupt && p.payload.bits >= 1) {
      FaultPlane::corrupt_payload(
          p.payload,
          faults_->corrupt_bit(round_, p.src, p.dst, i, p.payload.bits));
      ++delta.corrupted;
    }
    if (d.delay > 0) {
      ++delta.delayed;
      pending_.push_back({round_ + d.delay, p});
      continue;
    }
    out.push_back(p);
    if (d.duplicate) {
      ++delta.duplicated;
      out.push_back(p);
    }
  }
  faults_->record(delta);
  tally_node_downtime(round_, node_count_);
  packets.swap(out);
}

std::uint64_t CliqueNetwork::valiant_rounds(
    const std::vector<Packet>& packets) {
  // Two-hop random-intermediate routing. Each ordered node pair carries at
  // most one packet per round, so each hop's duration is the maximum number
  // of packets sharing an ordered (from, to) pair; hops execute sequentially.
  std::unordered_map<std::uint64_t, std::uint64_t> hop1;  // (src, mid)
  std::unordered_map<std::uint64_t, std::uint64_t> hop2;  // (mid, dst)
  hop1.reserve(packets.size() * 2);
  hop2.reserve(packets.size() * 2);
  auto key = [](NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::uint64_t rounds1 = 0;
  std::uint64_t rounds2 = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    const NodeId mid = static_cast<NodeId>(
        randomness_.word(RngStream::kRouting, route_invocations_, i) %
        node_count_);
    rounds1 = std::max(rounds1, ++hop1[key(p.src, mid)]);
    rounds2 = std::max(rounds2, ++hop2[key(mid, p.dst)]);
  }
  return rounds1 + rounds2;
}

std::uint64_t CliqueNetwork::scheduled_rounds(
    const std::vector<Packet>& packets, std::uint64_t* batches_out) {
  // First-fit partition into Lenzen-feasible batches (per-source and
  // per-destination loads <= n each).
  const NodeId n = node_count_;
  std::vector<std::vector<std::size_t>> batches;
  std::vector<std::vector<std::uint32_t>> src_load;
  std::vector<std::vector<std::uint32_t>> dst_load;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    bool placed = false;
    for (std::size_t b = 0; b < batches.size() && !placed; ++b) {
      if (src_load[b][p.src] < n && dst_load[b][p.dst] < n) {
        batches[b].push_back(i);
        ++src_load[b][p.src];
        ++dst_load[b][p.dst];
        placed = true;
      }
    }
    if (!placed) {
      batches.emplace_back(std::vector<std::size_t>{i});
      src_load.emplace_back(std::vector<std::uint32_t>(n, 0));
      dst_load.emplace_back(std::vector<std::uint32_t>(n, 0));
      ++src_load.back()[p.src];
      ++dst_load.back()[p.dst];
    }
  }
  // Build and verify the real schedule for every batch.
  for (const auto& batch : batches) {
    std::vector<Packet> group;
    group.reserve(batch.size());
    for (const std::size_t i : batch) group.push_back(packets[i]);
    const TwoRoundSchedule schedule = lenzen_schedule(group, n);
    validate_two_round_schedule(group, schedule.intermediate, n);
  }
  *batches_out = batches.size();
  return batches.size() * kLenzenRoundsPerBatch;
}

void CliqueNetwork::retire_nodes(std::span<const NodeId> nodes) {
  if (nodes.empty()) return;
  if (retired_.empty()) retired_.assign(node_count_, 0);
  for (const NodeId v : nodes) {
    DMIS_CHECK(v < node_count_, "retired node out of range: " << v);
    if (retired_[v] == 0) {
      retired_[v] = 1;
      ++retired_count_;
    }
  }
  if (pending_.empty()) return;
  // A delayed packet whose destination has left the computation matures
  // into nothing: drop it now instead of delivering it in a later batch.
  std::size_t kept = 0;
  std::uint64_t dropped = 0;
  for (PendingPacket& p : pending_) {
    if (retired_[p.packet.dst] != 0) {
      ++dropped;
      continue;
    }
    pending_[kept++] = p;
  }
  pending_.resize(kept);
  if (dropped > 0 && faults_ != nullptr) {
    FaultStats delta;
    delta.dropped = dropped;
    faults_->record(delta);
  }
}

bool CliqueNetwork::step() {
  emit_round_begin();
  costs_.rounds += 1;
  emit_messages(0, 0);
  ++round_;
  emit_round_end(round_ - 1);
  return true;
}

void CliqueNetwork::charge_broadcast_round(WireMessageType type,
                                           std::uint64_t broadcasting_nodes,
                                           int bits) {
  DMIS_CHECK(bits >= 0 && bits <= kPacketBits,
             "broadcast payload of " << bits << " bits exceeds B");
  emit_round_begin();
  const std::uint64_t messages = broadcasting_nodes * (node_count_ - 1);
  const std::uint64_t total = messages * static_cast<std::uint64_t>(bits);
  costs_.rounds += 1;
  costs_.add_messages(type, messages, total);
  emit_messages(messages, total);
  emit_wire(type, messages, total);
  ++round_;
  emit_round_end(round_ - 1);
}

void CliqueNetwork::charge_neighborhood_round(WireMessageType type,
                                              std::uint64_t messages,
                                              int bits) {
  DMIS_CHECK(bits >= 0 && bits <= kPacketBits,
             "payload of " << bits << " bits exceeds B");
  emit_round_begin();
  const std::uint64_t total = messages * static_cast<std::uint64_t>(bits);
  costs_.rounds += 1;
  costs_.add_messages(type, messages, total);
  emit_messages(messages, total);
  emit_wire(type, messages, total);
  ++round_;
  emit_round_end(round_ - 1);
}

NodeId CliqueNetwork::elect_leader() {
  // Everyone announces its id in one all-to-all round; the minimum wins.
  charge_broadcast_round(WireMessageType::kLeaderElect, node_count_,
                         encoded_bits<LeaderElectMsg>(wire_ctx_));
  return 0;
}

}  // namespace dmis
