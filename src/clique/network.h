// Congested-clique communication substrate (paper §1, model (3)).
//
// Per round, each node may send B = O(log n) bits to *each* other node. The
// primitive everything else is built on is many-to-many packet routing under
// Lenzen's precondition [25]: if every node is the source of at most n
// packets and the destination of at most n packets (each O(log n) bits),
// all packets can be delivered in 2 rounds.
//
// Two routing modes (DESIGN.md §5, substitution 2):
//  * kAccountedLenzen — validates the precondition, charges the proven
//    2 rounds per batch, delivers. Overloaded workloads are split into the
//    minimal number of Lenzen-feasible batches (each charged 2 rounds).
//  * kValiant — actually schedules every packet over a two-hop random
//    intermediate path, enforcing that each ordered node pair carries at
//    most one packet per round; returns the measured round count.
//
// A packet carries a typed wire payload (wire/codec.h) of at most
// kPacketBits = 128 bits — the model's O(log n) with constant 4 at 32-bit
// ids. Routing charges each packet its exact encoded size and tallies it
// under its message type (DESIGN.md §9), not a flat per-packet rate; the
// per-payload bandwidth cap B is enforced at the encode choke point
// (encode_payload's static_assert) and re-checked here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "rng/random_source.h"
#include "runtime/cost.h"
#include "runtime/engine.h"
#include "wire/codec.h"

namespace dmis {

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  WirePayload payload;

  friend bool operator==(const Packet&, const Packet&) = default;
};

inline constexpr int kPacketBits = kMaxPayloadBits;
/// Rounds Lenzen's deterministic routing needs per feasible batch [25].
inline constexpr int kLenzenRoundsPerBatch = 2;

enum class RouteMode {
  /// Validate feasibility, charge the proven 2 rounds per batch.
  kAccountedLenzen,
  /// Actually construct the deterministic two-round schedule (intermediate
  /// per packet via Kőnig edge coloring, clique/lenzen_schedule.h), verify
  /// both rounds' pair constraints, charge 2 rounds per batch.
  kLenzenScheduled,
  /// Random two-hop scheduling with measured (not constant) round cost.
  kValiant,
};

struct RouteReport {
  std::uint64_t packets = 0;
  std::uint64_t rounds = 0;         ///< rounds charged/measured for delivery
  std::uint64_t batches = 0;        ///< Lenzen-feasible batches used
  std::uint64_t max_source_load = 0;
  std::uint64_t max_dest_load = 0;
};

/// The clique substrate implements the unified SimulationEngine contract
/// (runtime/engine.h) so observers see the same event stream as on the other
/// engines. It is driven by route()/charge_* calls rather than autonomous
/// node stepping: step() executes one idle all-to-all round (charged, empty)
/// and all_halted() is never true — halting is a property of the algorithms
/// above the substrate, not of the network. Drivers report decided nodes via
/// retire_nodes(); live_count() is then the un-retired count (O(1)), and
/// fault-delayed packets parked for a retired destination are dropped
/// instead of being delivered to a node that already left the computation.
class CliqueNetwork final : public SimulationEngine {
 public:
  CliqueNetwork(NodeId node_count, RandomSource randomness,
                RouteMode mode = RouteMode::kAccountedLenzen);

  NodeId node_count() const { return node_count_; }
  RouteMode mode() const { return mode_; }
  /// Field widths of this clique's codecs (phase_len 0; algorithms with a
  /// phase structure derive their own context with for_nodes(n, R)).
  const WireContext& wire_context() const { return wire_ctx_; }

  /// One idle synchronous round (nothing sent). Always returns true.
  bool step() override;

  std::uint64_t live_count() const override {
    return node_count_ - retired_count_;
  }
  bool all_halted() const override { return false; }

  /// Marks nodes as decided/left (the driver's frontier departure event).
  /// Idempotent per node. Any fault-delayed packet whose destination is now
  /// retired is dropped (tallied in the fault plane's realized stats) — it
  /// could otherwise mature into a later batch and be delivered to a node
  /// that already left the computation.
  void retire_nodes(std::span<const NodeId> nodes);

  /// Packets currently parked by fault-plane delay decisions (tests).
  std::uint64_t pending_backlog() const { return pending_.size(); }

  /// Delivers `packets` (validated: src/dst < n, payload within B). On
  /// return the vector is sorted by (dst, src) — the per-destination
  /// inboxes. Each packet is charged its exact payload size under its
  /// message type, both to this network's accounting and to the observer
  /// stream's per-type wire events.
  RouteReport route(std::vector<Packet>& packets);

  /// One synchronous all-to-all round in which a subset of nodes broadcast
  /// `bits`-bit messages of the given type to everyone (e.g. "MIS joiners
  /// announce"): charges one round and the corresponding messages/bits.
  void charge_broadcast_round(WireMessageType type,
                              std::uint64_t broadcasting_nodes, int bits);

  /// One round in which each node sends up to `bits` to its graph neighbors
  /// only (a CONGEST-style round executed inside the clique, e.g. the
  /// p_t(v) exchange opening each phase of §2.3).
  void charge_neighborhood_round(WireMessageType type, std::uint64_t messages,
                                 int bits);

  /// Leader election: everyone announces its id; minimum wins. One round.
  NodeId elect_leader();

  /// Charges one phase re-execution to the accounting (the clique MIS
  /// driver's retry policy reports poisoned-phase re-runs through here).
  void note_phase_retry() { ++costs_.retries; }

 private:
  /// Applies the attached fault plane to a route() batch: delivers matured
  /// delayed packets, then drops/corrupts/duplicates/delays fresh ones.
  void apply_faults(std::vector<Packet>& packets);

  std::uint64_t valiant_rounds(const std::vector<Packet>& packets);
  /// Partitions into feasible batches, builds and verifies a real two-round
  /// schedule for each, returns total rounds (2 per batch).
  std::uint64_t scheduled_rounds(const std::vector<Packet>& packets,
                                 std::uint64_t* batches_out);

  /// A packet held back by a fault-plane delay decision; it joins the first
  /// route() invocation whose starting round is >= `ready_round`.
  struct PendingPacket {
    std::uint64_t ready_round = 0;
    Packet packet;
  };

  NodeId node_count_;
  RandomSource randomness_;
  RouteMode mode_;
  WireContext wire_ctx_;
  std::uint64_t route_invocations_ = 0;
  std::vector<PendingPacket> pending_;
  // Frontier bookkeeping: retired_ is allocated lazily on the first
  // retirement; retired_count_ keeps live_count() O(1).
  std::vector<std::uint8_t> retired_;
  std::uint64_t retired_count_ = 0;
};

}  // namespace dmis
