#include "clique/triangles.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "wire/messages.h"

namespace dmis {
namespace {

struct Triple {
  std::uint32_t i, j, l;  // i <= j <= l
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.i != b.i) return a.i < b.i;
    if (a.j != b.j) return a.j < b.j;
    return a.l < b.l;
  }
  friend bool operator==(const Triple& a, const Triple& b) {
    return a.i == b.i && a.j == b.j && a.l == b.l;
  }
};

Triple sorted_triple(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  std::uint32_t x[3] = {a, b, c};
  std::sort(x, x + 3);
  return {x[0], x[1], x[2]};
}

}  // namespace

CliqueTriangleResult clique_triangle_count(
    const Graph& g, const CliqueTriangleOptions& options) {
  const NodeId n = g.node_count();
  CliqueTriangleResult result;
  if (n < 3) return result;

  CliqueNetwork net(n, options.randomness.fork(0x7219ULL),
                    options.route_mode);
  const WireContext& ctx = net.wire_context();
  const auto k = static_cast<std::uint32_t>(
      std::ceil(std::cbrt(static_cast<double>(n))));
  result.groups = k;
  const NodeId group_size = static_cast<NodeId>((n + k - 1) / k);
  auto group_of = [group_size](NodeId v) {
    return static_cast<std::uint32_t>(v / group_size);
  };

  // Shared deterministic triple enumeration (every node derives the same
  // table from n and k — public knowledge).
  std::map<Triple, std::uint32_t> triple_index;
  std::vector<Triple> triple_of_index;
  {
    std::uint32_t idx = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = i; j < k; ++j) {
        for (std::uint32_t l = j; l < k; ++l) {
          triple_index.emplace(Triple{i, j, l}, idx++);
          triple_of_index.push_back({i, j, l});
        }
      }
    }
  }
  auto owner_of = [n](std::uint32_t idx) {
    return static_cast<NodeId>(idx % n);
  };

  // Route every edge to the owner of every triple containing both endpoint
  // groups (k copies: one per choice of third group).
  std::vector<Packet> packets;
  packets.reserve(g.edge_count() * k);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId w : g.neighbors(u)) {
      if (w <= u) continue;
      const std::uint32_t gu = group_of(u);
      const std::uint32_t gw = group_of(w);
      for (std::uint32_t c = 0; c < k; ++c) {
        const std::uint32_t idx = triple_index.at(sorted_triple(gu, gw, c));
        packets.push_back(
            {u, owner_of(idx),
             encode_payload(ctx, TriangleEdgeMsg{u, w, idx})});
      }
    }
  }
  result.edge_packets = packets.size();
  net.route(packets);

  // Owners: per owned triple, rebuild the tagged edge set and count the
  // triangles whose sorted group signature equals the triple.
  std::unordered_map<std::uint32_t, std::vector<Edge>> by_triple;
  for (const Packet& p : packets) {
    const auto msg = decode_payload<TriangleEdgeMsg>(ctx, p.payload);
    by_triple[msg.triple].push_back({msg.u, msg.v});
  }
  std::unordered_map<NodeId, std::uint64_t> owner_counts;
  for (auto& [idx, edges] : by_triple) {
    const Triple t = triple_of_index[idx];
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    for (const auto& [u, w] : edges) {
      adj[u].push_back(w);
      adj[w].push_back(u);
    }
    for (auto& [v, nbrs] : adj) std::sort(nbrs.begin(), nbrs.end());
    std::uint64_t count = 0;
    for (const auto& [u, w] : edges) {
      const NodeId a = std::min(u, w);
      const NodeId b = std::max(u, w);
      // Common neighbors greater than b.
      const auto& na = adj.at(a);
      const auto& nb = adj.at(b);
      auto ia = std::lower_bound(na.begin(), na.end(), b + 1);
      auto ib = std::lower_bound(nb.begin(), nb.end(), b + 1);
      while (ia != na.end() && ib != nb.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          const Triple sig =
              sorted_triple(group_of(a), group_of(b), group_of(*ia));
          if (sig == t) ++count;
          ++ia;
          ++ib;
        }
      }
    }
    if (count > 0) owner_counts[owner_of(idx)] += count;
  }

  // Convergecast the per-owner counts to a leader.
  const NodeId leader = net.elect_leader();
  std::vector<Packet> sums;
  sums.reserve(owner_counts.size());
  for (const auto& [owner, count] : owner_counts) {
    sums.push_back(
        {owner, leader, encode_payload(ctx, TriangleCountMsg{count})});
  }
  net.route(sums);
  for (const Packet& p : sums) {
    result.triangles += decode_payload<TriangleCountMsg>(ctx, p.payload).count;
  }

  result.costs = net.costs();
  return result;
}

}  // namespace dmis
