// Triangle counting in the congested clique — Dolev, Lenzen & Peled's
// "Tri, Tri Again" partition scheme [11], one of the model's early
// showcases (cited in the paper's §1 alongside MST and sorting).
//
// Nodes are split into k = ⌈n^{1/3}⌉ groups. Every unordered group triple
// (i ≤ j ≤ l) is owned by one node; each graph edge is routed to every
// owner whose triple contains both endpoint groups (k copies per edge).
// An owner counts exactly the triangles whose sorted group signature equals
// its triple — so every triangle is counted exactly once — and the counts
// are converged at a leader.
//
// Per-owner load is O((n/k)²) = O(n^{4/3}) packets, i.e. O(n^{1/3}) routed
// batches: the O(n^{1/3}) round complexity of [11] (they shave a log with
// deterministic balancing). Output is verified against the centralized
// counter (graph/properties.h) in the tests.
#pragma once

#include <cstdint>

#include "clique/network.h"
#include "graph/graph.h"
#include "rng/random_source.h"
#include "runtime/cost.h"

namespace dmis {

struct CliqueTriangleOptions {
  RandomSource randomness{0};
  RouteMode route_mode = RouteMode::kAccountedLenzen;
};

struct CliqueTriangleResult {
  std::uint64_t triangles = 0;
  std::uint32_t groups = 0;        ///< k
  std::uint64_t edge_packets = 0;  ///< m * k copies routed
  CostAccounting costs;
};

CliqueTriangleResult clique_triangle_count(
    const Graph& g, const CliqueTriangleOptions& options);

}  // namespace dmis
