// Umbrella header: the whole public API in one include.
//
//   #include "dmis.h"
//
// Fine-grained headers remain the canonical interface (and what this
// repository's own code uses); this is a convenience for downstream
// quick-starts. See docs/ALGORITHMS.md for the map from the paper's
// sections to these components.
#pragma once

// Substrates.
#include "graph/dsu.h"            // IWYU pragma: export
#include "graph/generators.h"     // IWYU pragma: export
#include "graph/graph.h"          // IWYU pragma: export
#include "graph/io.h"             // IWYU pragma: export
#include "graph/mst_reference.h"  // IWYU pragma: export
#include "graph/ops.h"            // IWYU pragma: export
#include "graph/properties.h"     // IWYU pragma: export
#include "graph/transforms.h"     // IWYU pragma: export
#include "rng/mix.h"              // IWYU pragma: export
#include "rng/pow2_prob.h"        // IWYU pragma: export
#include "rng/random_source.h"    // IWYU pragma: export

// Distributed runtimes.
#include "clique/gather.h"           // IWYU pragma: export
#include "clique/lenzen_schedule.h"  // IWYU pragma: export
#include "clique/mst.h"              // IWYU pragma: export
#include "clique/network.h"          // IWYU pragma: export
#include "clique/triangles.h"        // IWYU pragma: export
#include "runtime/beeping.h"         // IWYU pragma: export
#include "runtime/congest.h"         // IWYU pragma: export
#include "runtime/cost.h"            // IWYU pragma: export

// The paper's algorithms and their companions.
#include "mis/beeping.h"             // IWYU pragma: export
#include "mis/clique_mis.h"          // IWYU pragma: export
#include "mis/ghaffari.h"            // IWYU pragma: export
#include "mis/greedy.h"              // IWYU pragma: export
#include "mis/halfduplex_beeping.h"  // IWYU pragma: export
#include "mis/instrumentation.h"     // IWYU pragma: export
#include "mis/local_oracle.h"        // IWYU pragma: export
#include "mis/lowdeg.h"              // IWYU pragma: export
#include "mis/luby.h"                // IWYU pragma: export
#include "mis/reductions.h"          // IWYU pragma: export
#include "mis/ruling_clique.h"       // IWYU pragma: export
#include "mis/sparsified.h"          // IWYU pragma: export
#include "mis/sparsified_congest.h"  // IWYU pragma: export
