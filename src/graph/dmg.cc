#include "graph/dmg.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <memory>

#include "graph/io.h"
#include "graph/storage.h"
#include "util/check.h"

namespace dmis {
namespace {

struct DmgHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint64_t node_count;
  std::uint64_t edge_count;
  std::uint64_t max_degree;
  std::uint64_t content_digest;
};
static_assert(sizeof(DmgHeader) == kDmgHeaderBytes,
              ".dmg header must be exactly 48 bytes (fields are naturally "
              "aligned, arrays start 8-aligned)");

std::uint32_t byteswap32(std::uint32_t x) {
  return (x >> 24) | ((x >> 8) & 0xff00u) | ((x << 8) & 0xff0000u) |
         (x << 24);
}

/// Read-only mmap of a whole .dmg file; unmapped when the last Graph copy
/// sharing it goes away.
class MappedGraphStorage final : public GraphStorage {
 public:
  MappedGraphStorage(void* base, std::size_t length)
      : base_(base), length_(length) {}
  ~MappedGraphStorage() override { ::munmap(base_, length_); }

  const std::byte* bytes() const {
    return static_cast<const std::byte*>(base_);
  }

 private:
  void* base_;
  std::size_t length_;
};

/// The full-scan validation behind --verify-digest: structural checks first
/// (so a corrupt offsets table fails loudly instead of reading out of
/// bounds), then the digest recomputation against the header.
void verify_mapped_graph(const std::string& path, const Graph& g,
                         std::uint64_t header_digest) {
  const auto offsets = g.csr_offsets();
  const auto adj = g.csr_adjacency();
  const std::uint64_t total = adj.size();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    DMIS_CHECK(offsets[v] <= offsets[v + 1] && offsets[v + 1] <= total,
               path << ": corrupt offsets at node " << v << " ("
                    << offsets[v] << " .. " << offsets[v + 1]
                    << " outside 0 .. " << total << ")");
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      DMIS_CHECK(nb[i] < g.node_count(),
                 path << ": adjacency entry out of range at node " << v
                      << ": " << nb[i]);
      DMIS_CHECK(i == 0 || nb[i - 1] < nb[i],
                 path << ": adjacency of node " << v
                      << " not sorted/deduplicated at position " << i);
    }
  }
  // Scan-recompute: `g` carries no cached digest yet (the cache is pinned
  // only after verification), so this is a genuine rehash of the arrays.
  const std::uint64_t recomputed = g.content_digest(kGraphContentDigestSeed);
  DMIS_CHECK(recomputed == header_digest,
             path << ": content digest mismatch (header "
                  << header_digest << ", recomputed " << recomputed
                  << ") — file corrupt or not produced by dmis ingest");
}

}  // namespace

void write_dmg_file(const Graph& g, const std::string& path) {
  DmgHeader header{};
  std::memcpy(header.magic, kDmgMagic, sizeof(kDmgMagic));
  header.version = kDmgVersion;
  header.endian_tag = kDmgEndianTag;
  header.node_count = g.node_count();
  header.edge_count = g.edge_count();
  header.max_degree = g.max_degree();
  header.content_digest = g.content_digest(kGraphContentDigestSeed);

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DMIS_CHECK_ENV(os.is_open(), "cannot open for writing: " << path);
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  const auto offsets = g.csr_offsets();
  os.write(reinterpret_cast<const char*>(offsets.data()),
           static_cast<std::streamsize>(offsets.size_bytes()));
  const auto adj = g.csr_adjacency();
  os.write(reinterpret_cast<const char*>(adj.data()),
           static_cast<std::streamsize>(adj.size_bytes()));
  os.flush();
  DMIS_CHECK_ENV(os.good(), "write failed: " << path);
}

Graph load_dmg_file(const std::string& path, bool verify_digest) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  DMIS_CHECK_ENV(fd >= 0, "cannot open for reading: " << path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    DMIS_CHECK_ENV(false, "cannot stat: " << path);
  }
  const std::size_t file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kDmgHeaderBytes) {
    ::close(fd);
    DMIS_CHECK(false, path << ": truncated header (" << file_size
                           << " bytes, need " << kDmgHeaderBytes << ")");
  }
  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive; the fd is not needed
  DMIS_CHECK_ENV(base != MAP_FAILED, "mmap failed: " << path);
  auto storage = std::make_shared<MappedGraphStorage>(base, file_size);

  DmgHeader header{};
  std::memcpy(&header, storage->bytes(), sizeof(header));
  DMIS_CHECK(std::memcmp(header.magic, kDmgMagic, sizeof(kDmgMagic)) == 0,
             path << ": bad magic — not a .dmg graph container");
  DMIS_CHECK(header.endian_tag != byteswap32(kDmgEndianTag),
             path << ": endianness tag is byte-swapped — file was written "
                     "on an opposite-endianness host");
  DMIS_CHECK(header.endian_tag == kDmgEndianTag,
             path << ": bad endianness tag 0x" << std::hex
                  << header.endian_tag);
  DMIS_CHECK(header.version == kDmgVersion,
             path << ": unsupported .dmg version " << header.version
                  << " (this build reads version " << kDmgVersion << ")");
  DMIS_CHECK(header.node_count <= kInvalidNode,
             path << ": node count too large: " << header.node_count);
  DMIS_CHECK(header.max_degree <= header.node_count,
             path << ": max degree " << header.max_degree
                  << " exceeds node count " << header.node_count);

  const std::size_t n = static_cast<std::size_t>(header.node_count);
  const std::uint64_t half_edges = 2 * header.edge_count;
  const std::size_t expected_size =
      kDmgHeaderBytes + (n + 1) * sizeof(std::uint64_t) +
      static_cast<std::size_t>(half_edges) * sizeof(NodeId);
  DMIS_CHECK(file_size >= expected_size,
             path << ": truncated arrays (" << file_size << " bytes, header "
                  << "promises " << expected_size << ")");
  DMIS_CHECK(file_size == expected_size,
             path << ": trailing bytes (" << file_size << " bytes, header "
                  << "promises " << expected_size << ")");

  const auto* offsets = reinterpret_cast<const std::uint64_t*>(
      storage->bytes() + kDmgHeaderBytes);
  const auto* adj = reinterpret_cast<const NodeId*>(
      storage->bytes() + kDmgHeaderBytes + (n + 1) * sizeof(std::uint64_t));
  // O(1) structural probes — the only array reads before first use.
  DMIS_CHECK(offsets[0] == 0 && offsets[n] == half_edges,
             path << ": corrupt offsets (bounds " << offsets[0] << " .. "
                  << offsets[n] << ", expected 0 .. " << half_edges << ")");

  const std::uint64_t header_digest = header.content_digest;
  Graph g = Graph::adopt_storage(
      storage, static_cast<NodeId>(header.node_count),
      static_cast<NodeId>(header.max_degree), {offsets, n + 1},
      {adj, static_cast<std::size_t>(half_edges)});
  if (verify_digest) verify_mapped_graph(path, g, header_digest);
  return Graph::adopt_storage(
      std::move(storage), static_cast<NodeId>(header.node_count),
      static_cast<NodeId>(header.max_degree), {offsets, n + 1},
      {adj, static_cast<std::size_t>(half_edges)},
      Graph::CachedDigest{kGraphContentDigestSeed, header_digest});
}

bool is_dmg_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  char magic[sizeof(kDmgMagic)] = {};
  is.read(magic, sizeof(magic));
  return is.gcount() == sizeof(magic) &&
         std::memcmp(magic, kDmgMagic, sizeof(magic)) == 0;
}

Graph load_graph_file(const std::string& path, bool verify_digest) {
  if (is_dmg_file(path)) return load_dmg_file(path, verify_digest);
  return read_edge_list_file(path);
}

}  // namespace dmis
