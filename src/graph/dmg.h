// The .dmg on-disk CSR container and its O(1) mmap loader (DESIGN.md §14).
//
// Layout (fixed-width little-endian fields; the endianness tag makes a
// cross-endian load fail loudly instead of silently misreading):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  magic: the bytes "DMISGRPH"
//        8     4  version (kDmgVersion)
//       12     4  endianness tag (kDmgEndianTag, written native)
//       16     8  node_count n
//       24     8  edge_count m (undirected; the adjacency holds 2m entries)
//       32     8  max_degree
//       40     8  content_digest under kGraphContentDigestSeed
//       48  8(n+1)  offsets[n+1]  (uint64, CSR row starts, offsets[n]=2m)
//        +  4(2m)   adjacency     (uint32, sorted within each node range)
//
// Both array sections are naturally aligned (the header is 48 bytes). The
// loader maps the file read-only and wraps it as a Graph without touching
// the arrays: header checks plus two O(1) offset probes are all that runs
// before the first neighbors() call. The header digest becomes the graph's
// cached content digest, so service job keys fold without a rehash;
// `verify_digest` opts into the full recomputation scan.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace dmis {

inline constexpr char kDmgMagic[8] = {'D', 'M', 'I', 'S', 'G', 'R', 'P', 'H'};
inline constexpr std::uint32_t kDmgVersion = 1;
inline constexpr std::uint32_t kDmgEndianTag = 0x01020304;
inline constexpr std::size_t kDmgHeaderBytes = 48;

/// Serializes the graph's CSR arrays to `path`, digest precomputed under
/// kGraphContentDigestSeed.
void write_dmg_file(const Graph& g, const std::string& path);

/// Maps `path` read-only and adopts it as a Graph in O(1) — no array scan;
/// pages fault in lazily as neighbors() walks them. Bad magic, version,
/// endianness, or a size that disagrees with the header fail loudly with
/// the path in the message. With `verify_digest`, the offsets and adjacency
/// are additionally validated (monotone, in-range, sorted) and the content
/// digest recomputed and compared against the header — a full scan.
Graph load_dmg_file(const std::string& path, bool verify_digest = false);

/// True iff `path` exists and starts with the .dmg magic.
bool is_dmg_file(const std::string& path);

/// Loads a graph from either container: a .dmg (sniffed by magic, mmap) or
/// a plain-text edge list (graph/io.h). `verify_digest` applies to the .dmg
/// path only.
Graph load_graph_file(const std::string& path, bool verify_digest = false);

}  // namespace dmis
