// Disjoint-set union with union by size and path compression.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"

namespace dmis {

class DisjointSets {
 public:
  explicit DisjointSets(NodeId n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId v) {
    DMIS_CHECK(v < parent_.size(), "node out of range: " << v);
    NodeId root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {
      const NodeId next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  /// Returns true if the two were in different sets (and merges them).
  bool unite(NodeId a, NodeId b) {
    NodeId ra = find(a);
    NodeId rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  bool same(NodeId a, NodeId b) { return find(a) == find(b); }
  NodeId component_count() const { return components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
  NodeId components_;
};

}  // namespace dmis
