#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "rng/mix.h"
#include "util/check.h"

namespace dmis {
namespace {

/// Packs an unordered pair into a set key (u < v).
std::uint64_t pair_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  DMIS_CHECK(p >= 0.0 && p <= 1.0, "p out of [0,1]: " << p);
  GraphBuilder b(n);
  if (n < 2 || p == 0.0) return std::move(b).build();
  SplitMix64 rng(mix64(seed, 0x676e70ULL));  // "gnp"
  if (p == 1.0) return complete(n);
  // Enumerate candidate pairs (u,v), u < v, in lexicographic order, jumping
  // geometric(1-p) gaps between successive present edges.
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;  // linear index into the pair sequence
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Row cursor advancing monotonically with idx: row `u` covers linear
  // indices [row_base, row_base + n-1-u). Amortized O(1) per visited edge.
  NodeId u = 0;
  std::uint64_t row_base = 0;
  auto unrank = [&](std::uint64_t k) -> Edge {
    while (k - row_base >= static_cast<std::uint64_t>(n) - 1 - u) {
      row_base += static_cast<std::uint64_t>(n) - 1 - u;
      ++u;
    }
    return {u, static_cast<NodeId>(u + 1 + (k - row_base))};
  };
  while (true) {
    const double r = rng.next_double();
    const double gap = std::floor(std::log1p(-r) / log1mp);
    // gap is the number of skipped absent pairs before the next edge.
    if (gap >= static_cast<double>(total - idx)) break;
    idx += static_cast<std::uint64_t>(gap);
    if (idx >= total) break;
    const auto [eu, ev] = unrank(idx);
    b.add_edge(eu, ev);
    ++idx;
    if (idx >= total) break;
  }
  return std::move(b).build();
}

Graph gnm(NodeId n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t total =
      (n < 2) ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  DMIS_CHECK(m <= total, "m=" << m << " exceeds max edges " << total);
  GraphBuilder b(n);
  SplitMix64 rng(mix64(seed, 0x676e6dULL));  // "gnm"
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (chosen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph random_regular(NodeId n, NodeId d, std::uint64_t seed,
                     int max_restarts) {
  DMIS_CHECK(d < n, "degree " << d << " must be < n " << n);
  DMIS_CHECK((static_cast<std::uint64_t>(n) * d) % 2 == 0,
             "n*d must be even: n=" << n << " d=" << d);
  if (d == 0) return empty_graph(n);
  SplitMix64 rng(mix64(seed, 0x726567ULL));  // "reg"
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId i = 0; i < d; ++i) stubs[static_cast<std::size_t>(v) * d + i] = v;
  }
  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      const std::size_t j = rng.next_below(i + 1);
      std::swap(stubs[i], stubs[j]);
    }
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v || !seen.insert(pair_key(u, v)).second) {
        simple = false;
        break;
      }
    }
    if (simple || attempt == max_restarts) {
      // On the final attempt, drop conflicting pairs instead of restarting.
      GraphBuilder b(n);
      std::unordered_set<std::uint64_t> emitted;
      emitted.reserve(stubs.size());
      for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        const NodeId u = stubs[i];
        const NodeId v = stubs[i + 1];
        if (u == v || !emitted.insert(pair_key(u, v)).second) continue;
        b.add_edge(u, v);
      }
      return std::move(b).build();
    }
  }
  DMIS_ASSERT(false, "unreachable");
}

Graph barabasi_albert(NodeId n, NodeId initial, NodeId attach,
                      std::uint64_t seed) {
  DMIS_CHECK(attach >= 1 && attach <= initial,
             "need 1 <= attach <= initial, got attach=" << attach
                                                        << " initial="
                                                        << initial);
  DMIS_CHECK(initial < n, "initial " << initial << " must be < n " << n);
  SplitMix64 rng(mix64(seed, 0x6261ULL));  // "ba"
  GraphBuilder b(n);
  // Endpoint list: each edge contributes both endpoints, so sampling a
  // uniform element is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  for (NodeId u = 0; u < initial; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < initial; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  for (NodeId v = initial; v < n; ++v) {
    targets.clear();
    while (targets.size() < attach) {
      const NodeId t = endpoints[rng.next_below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const NodeId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return std::move(b).build();
}

Graph random_geometric(NodeId n, double radius, std::uint64_t seed) {
  DMIS_CHECK(radius >= 0.0, "negative radius");
  SplitMix64 rng(mix64(seed, 0x726767ULL));  // "rgg"
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (NodeId v = 0; v < n; ++v) {
    x[v] = rng.next_double();
    y[v] = rng.next_double();
  }
  GraphBuilder b(n);
  if (n == 0 || radius == 0.0) return std::move(b).build();
  // Grid bucketing with cell size = radius: neighbors live in the 3x3 block.
  const int cells = std::max(1, static_cast<int>(std::floor(1.0 / radius)));
  auto cell_of = [&](NodeId v) {
    const int cx = std::min(cells - 1, static_cast<int>(x[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[v] * cells));
    return cy * cells + cx;
  };
  std::vector<std::vector<NodeId>> grid(
      static_cast<std::size_t>(cells) * cells);
  for (NodeId v = 0; v < n; ++v) grid[cell_of(v)].push_back(v);
  const double r2 = radius * radius;
  for (NodeId v = 0; v < n; ++v) {
    const int cx = std::min(cells - 1, static_cast<int>(x[v] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[v] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (const NodeId u : grid[static_cast<std::size_t>(ny) * cells + nx]) {
          if (u <= v) continue;
          const double ddx = x[u] - x[v];
          const double ddy = y[u] - y[v];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(v, u);
        }
      }
    }
  }
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  GraphBuilder b(n);
  if (n >= 3) {
    for (NodeId v = 0; v < n; ++v) {
      b.add_edge(v, static_cast<NodeId>((v + 1) % n));
    }
  } else if (n == 2) {
    b.add_edge(0, 1);
  }
  return std::move(b).build();
}

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph complete_bipartite(NodeId a, NodeId b_size) {
  GraphBuilder b(static_cast<NodeId>(a + b_size));
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b_size; ++v) {
      b.add_edge(u, static_cast<NodeId>(a + v));
    }
  }
  return std::move(b).build();
}

Graph star(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph grid2d(NodeId rows, NodeId cols) {
  GraphBuilder b(static_cast<NodeId>(rows * cols));
  auto id = [cols](NodeId r, NodeId c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph empty_graph(NodeId n) {
  GraphBuilder b(n);
  return std::move(b).build();
}

Graph disjoint_cliques(NodeId count, NodeId size) {
  GraphBuilder b(static_cast<NodeId>(count * size));
  for (NodeId k = 0; k < count; ++k) {
    const NodeId base = static_cast<NodeId>(k * size);
    for (NodeId u = 0; u < size; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < size; ++v) {
        b.add_edge(static_cast<NodeId>(base + u),
                   static_cast<NodeId>(base + v));
      }
    }
  }
  return std::move(b).build();
}

Graph planted_independent_set(NodeId n, NodeId planted, double p,
                              std::uint64_t seed) {
  DMIS_CHECK(planted < n, "planted " << planted << " must be < n " << n);
  DMIS_CHECK(p >= 0.0 && p <= 1.0, "p out of [0,1]: " << p);
  SplitMix64 rng(mix64(seed, 0x706973ULL));  // "pis"
  GraphBuilder b(n);
  // Edges among the non-planted part and across, ER with probability p;
  // never among the planted prefix.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
      if (v < planted) continue;  // both in planted prefix
      if (rng.next_double() < p) b.add_edge(u, v);
    }
  }
  // Guarantee each planted node is attached to the rest.
  for (NodeId u = 0; u < planted; ++u) {
    const NodeId v =
        static_cast<NodeId>(planted + rng.next_below(n - planted));
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph hypercube(int dimensions) {
  DMIS_CHECK(dimensions >= 0 && dimensions <= 24,
             "hypercube dimension out of [0,24]: " << dimensions);
  const NodeId n = static_cast<NodeId>(1u << dimensions);
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int bit = 0; bit < dimensions; ++bit) {
      const NodeId u = v ^ (1u << bit);
      if (u > v) b.add_edge(v, u);
    }
  }
  return std::move(b).build();
}

Graph binary_tree(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, (v - 1) / 2);
  }
  return std::move(b).build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(spine) * (1 + legs);
  DMIS_CHECK(total <= kInvalidNode, "caterpillar too large");
  GraphBuilder b(static_cast<NodeId>(total));
  for (NodeId s = 0; s < spine; ++s) {
    if (s + 1 < spine) b.add_edge(s, s + 1);
    for (NodeId l = 0; l < legs; ++l) {
      b.add_edge(s, static_cast<NodeId>(spine + s * legs + l));
    }
  }
  return std::move(b).build();
}

Graph watts_strogatz(NodeId n, NodeId k, double beta, std::uint64_t seed) {
  DMIS_CHECK(k >= 1, "k must be >= 1");
  DMIS_CHECK(2 * k < n - 1, "need 2k < n-1: n=" << n << " k=" << k);
  DMIS_CHECK(beta >= 0.0 && beta <= 1.0, "beta out of [0,1]: " << beta);
  SplitMix64 rng(mix64(seed, 0x7773ULL));  // "ws"
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= k; ++j) {
      NodeId target = static_cast<NodeId>((v + j) % n);
      if (rng.next_double() < beta) {
        // Rewire to a uniform non-self target (duplicates collapse later —
        // standard small-world construction).
        do {
          target = static_cast<NodeId>(rng.next_below(n));
        } while (target == v);
      }
      b.add_edge(v, target);
    }
  }
  return std::move(b).build();
}

Graph margulis_expander(NodeId m) {
  DMIS_CHECK(m >= 2, "expander side must be >= 2");
  const std::uint64_t total = static_cast<std::uint64_t>(m) * m;
  DMIS_CHECK(total <= kInvalidNode, "expander too large");
  GraphBuilder b(static_cast<NodeId>(total));
  auto id = [m](NodeId x, NodeId y) {
    return static_cast<NodeId>(y * m + x);
  };
  for (NodeId y = 0; y < m; ++y) {
    for (NodeId x = 0; x < m; ++x) {
      const NodeId v = id(x, y);
      // Margulis maps: (x±2y, y), (x, y±2x) — with the ±1 shifts folded in
      // via the classic variant (x+2y, y), (x+2y+1, y), (x, y+2x),
      // (x, y+2x+1) and their inverses (added implicitly as undirected
      // edges).
      const NodeId t1 = id(static_cast<NodeId>((x + 2 * y) % m), y);
      const NodeId t2 = id(static_cast<NodeId>((x + 2 * y + 1) % m), y);
      const NodeId t3 = id(x, static_cast<NodeId>((y + 2 * x) % m));
      const NodeId t4 = id(x, static_cast<NodeId>((y + 2 * x + 1) % m));
      for (const NodeId t : {t1, t2, t3, t4}) {
        if (t != v) b.add_edge(v, t);
      }
    }
  }
  return std::move(b).build();
}

Graph barbell(NodeId clique_size, NodeId bridge) {
  DMIS_CHECK(clique_size >= 1, "clique size must be >= 1");
  const std::uint64_t total =
      2ULL * clique_size + static_cast<std::uint64_t>(bridge);
  DMIS_CHECK(total <= kInvalidNode, "barbell too large");
  GraphBuilder b(static_cast<NodeId>(total));
  auto add_clique = [&b](NodeId base, NodeId size) {
    for (NodeId u = 0; u < size; ++u) {
      for (NodeId v = static_cast<NodeId>(u + 1); v < size; ++v) {
        b.add_edge(static_cast<NodeId>(base + u),
                   static_cast<NodeId>(base + v));
      }
    }
  };
  add_clique(0, clique_size);
  add_clique(static_cast<NodeId>(clique_size + bridge), clique_size);
  // Bridge path between node clique_size-1 (left) and clique_size+bridge
  // (right end's first node).
  NodeId prev = static_cast<NodeId>(clique_size - 1);
  for (NodeId i = 0; i < bridge; ++i) {
    const NodeId cur = static_cast<NodeId>(clique_size + i);
    b.add_edge(prev, cur);
    prev = cur;
  }
  b.add_edge(prev, static_cast<NodeId>(clique_size + bridge));
  return std::move(b).build();
}

Graph lollipop(NodeId clique_size, NodeId tail) {
  DMIS_CHECK(clique_size >= 1, "clique size must be >= 1");
  const std::uint64_t total =
      static_cast<std::uint64_t>(clique_size) + tail;
  DMIS_CHECK(total <= kInvalidNode, "lollipop too large");
  GraphBuilder b(static_cast<NodeId>(total));
  for (NodeId u = 0; u < clique_size; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < clique_size; ++v) {
      b.add_edge(u, v);
    }
  }
  NodeId prev = static_cast<NodeId>(clique_size - 1);
  for (NodeId i = 0; i < tail; ++i) {
    const NodeId cur = static_cast<NodeId>(clique_size + i);
    b.add_edge(prev, cur);
    prev = cur;
  }
  return std::move(b).build();
}

}  // namespace dmis
