// Workload generators for the experiment suite.
//
// The paper's bounds are parameterized by n and the maximum degree Δ; the
// generator suite exists to sweep both independently:
//   * gnp / gnm            — classic Erdős–Rényi, Δ ≈ np concentration;
//   * random_regular       — pins Δ exactly (every degree = d);
//   * barabasi_albert      — heavy-tailed degrees (stress for per-degree
//                            local-complexity claims, E2/E4);
//   * random_geometric     — the wireless topology motivating the beeping
//                            model (§2.2 references [1, 10, 14]);
//   * structured families  — cycles, paths, grids, stars, cliques, complete
//                            bipartite, disjoint cliques: adversarial shapes
//                            with known MIS structure for unit tests;
//   * planted_independent_set — a known maximum independent set to sanity-
//                            check output quality.
//
// All generators are deterministic functions of their seed.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dmis {

/// Erdős–Rényi G(n, p) via geometric edge skipping: O(n + m) expected time.
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Erdős–Rényi G(n, m): exactly m distinct edges (m <= n(n-1)/2).
Graph gnm(NodeId n, std::uint64_t m, std::uint64_t seed);

/// Random d-regular graph via the configuration model with restarts; falls
/// back to dropping the (rare) leftover conflicting pairs after
/// `max_restarts`, so degrees are then in {d-1, d}. n*d must be even.
Graph random_regular(NodeId n, NodeId d, std::uint64_t seed,
                     int max_restarts = 32);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `initial` nodes, each new node attaches to `attach` distinct existing
/// nodes sampled proportionally to degree. attach <= initial < n.
Graph barabasi_albert(NodeId n, NodeId initial, NodeId attach,
                      std::uint64_t seed);

/// Random geometric graph on the unit square with connection radius r,
/// built with grid bucketing in O(n + m) expected time.
Graph random_geometric(NodeId n, double radius, std::uint64_t seed);

Graph cycle(NodeId n);
Graph path(NodeId n);
Graph complete(NodeId n);
Graph complete_bipartite(NodeId a, NodeId b);
/// Star: node 0 is the hub of n-1 leaves.
Graph star(NodeId n);
Graph grid2d(NodeId rows, NodeId cols);
Graph empty_graph(NodeId n);
/// `count` disjoint cliques of `size` nodes each.
Graph disjoint_cliques(NodeId count, NodeId size);

/// The first `planted` nodes form an independent set; every other pair is an
/// edge independently with probability p, and each planted node gets at
/// least one edge to the rest (so the planted set is also maximal whenever
/// the rest is covered). Requires planted < n.
Graph planted_independent_set(NodeId n, NodeId planted, double p,
                              std::uint64_t seed);

/// The d-dimensional hypercube Q_d: 2^d nodes, edges between ids differing
/// in one bit. Δ = d; a classic symmetric benchmark topology. d <= 24.
Graph hypercube(int dimensions);

/// Complete binary tree with n nodes (children of i at 2i+1, 2i+2).
Graph binary_tree(NodeId n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves — bounded-degree, linear ball growth (good low-degree workload).
Graph caterpillar(NodeId spine, NodeId legs);

/// Watts–Strogatz small world: ring lattice (each node to its k nearest on
/// each side), each right-edge rewired with probability beta. k >= 1,
/// 2k < n-1.
Graph watts_strogatz(NodeId n, NodeId k, double beta, std::uint64_t seed);

/// Margulis-style 8-regular expander on m x m = n vertices (Z_m x Z_m with
/// the classic affine neighbor maps; parallel edges collapse, so degrees
/// are <= 8). Ball growth is exponential — the adversarial regime for the
/// §2.5 fast path.
Graph margulis_expander(NodeId m);

/// Barbell: two k-cliques joined by a path of `bridge` nodes — dense blobs
/// with a long sparse corridor (stress for shattering and ruling sets).
Graph barbell(NodeId clique_size, NodeId bridge);

/// Lollipop: a k-clique with a path tail of `tail` nodes.
Graph lollipop(NodeId clique_size, NodeId tail);

}  // namespace dmis
