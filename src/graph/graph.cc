#include "graph/graph.h"

#include <algorithm>

#include "graph/storage.h"
#include "rng/mix.h"
#include "util/check.h"

namespace dmis {
namespace {

// Edge-log chunk sizing: start small so the thousands of tiny graphs the
// test suite builds don't each commit megabytes, grow geometrically so huge
// builds stay at O(log m) chunks, cap so freed-chunk granularity during the
// scatter pass stays fine-grained (16 MiB a chunk).
constexpr std::size_t kMinChunkEdges = std::size_t{1} << 12;
constexpr std::size_t kMaxChunkEdges = std::size_t{1} << 21;

}  // namespace

NodeId Graph::degree(NodeId v) const {
  DMIS_CHECK(v < node_count_, "node out of range: " << v);
  return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  DMIS_CHECK(v < node_count_, "node out of range: " << v);
  return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DMIS_CHECK(u < node_count_ && v < node_count_,
             "edge endpoint out of range: {" << u << "," << v << "}");
  if (u == v) return false;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for_each_edge([&out](NodeId u, NodeId v) { out.emplace_back(u, v); });
  return out;
}

std::uint64_t Graph::content_digest(std::uint64_t seed) const {
  if (cached_digest_.has_value() && cached_digest_->seed == seed) {
    return cached_digest_->value;
  }
  // Commutative combine (sum and xor of strong per-edge hashes) makes the
  // digest independent of enumeration order by construction; folding both
  // aggregates through mix64 restores avalanche over the combined word.
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  for_each_edge([&](NodeId u, NodeId v) {
    const std::uint64_t h = mix64(seed, u, v);
    sum += h;
    xr ^= h;
  });
  return mix64(seed, node_count_, sum, xr);
}

double Graph::average_degree() const {
  if (node_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(node_count_);
}

Graph Graph::adopt_storage(std::shared_ptr<const GraphStorage> storage,
                           NodeId node_count, NodeId max_degree,
                           std::span<const std::uint64_t> offsets,
                           std::span<const NodeId> adj,
                           std::optional<CachedDigest> digest) {
  Graph g;
  g.node_count_ = node_count;
  g.max_degree_ = max_degree;
  g.offsets_ = offsets;
  g.adj_ = adj;
  g.storage_ = std::move(storage);
  g.cached_digest_ = digest;
  return g;
}

GraphBuilder::GraphBuilder(NodeId node_count)
    : node_count_(node_count),
      degree_(new std::uint64_t[static_cast<std::size_t>(node_count) + 1]()) {
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DMIS_CHECK(u < node_count_ && v < node_count_,
             "edge endpoint out of range: {" << u << "," << v << "} with n="
                                             << node_count_);
  DMIS_CHECK(u != v, "self-loop at node " << u);
  if (chunks_.empty() || chunks_.back().size == chunks_.back().capacity) {
    const std::size_t capacity =
        std::clamp(static_cast<std::size_t>(edge_count_), kMinChunkEdges,
                   kMaxChunkEdges);
    chunks_.push_back(
        {std::unique_ptr<Edge[]>(new Edge[capacity]), 0, capacity});
  }
  Chunk& chunk = chunks_.back();
  chunk.edges[chunk.size++] = {u, v};
  ++degree_[u];
  ++degree_[v];
  ++edge_count_;
}

Graph GraphBuilder::build() && {
  const std::size_t n = node_count_;
  auto storage = std::make_shared<OwnedGraphStorage>();
  storage->offsets = std::move(degree_);
  std::uint64_t* const offsets = storage->offsets.get();

  // Pass 1 happened in add_edge: offsets[v] holds deg(v). Exclusive prefix
  // sum turns it into scatter cursors.
  std::uint64_t run = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t d = offsets[v];
    offsets[v] = run;
    run += d;
  }
  offsets[n] = run;  // == 2 * edge_count_

  // Pass 2: scatter both directions of each logged edge, radix by source.
  // The adjacency array is deliberately uninitialized (its pages commit as
  // they are written) and each log chunk is freed the moment it drains, so
  // the half-edge log and the CSR never coexist in full.
  storage->adj = std::unique_ptr<NodeId[]>(new NodeId[run]);
  NodeId* const adj = storage->adj.get();
  for (Chunk& chunk : chunks_) {
    for (std::size_t i = 0; i < chunk.size; ++i) {
      const auto [u, v] = chunk.edges[i];
      adj[offsets[u]++] = v;
      adj[offsets[v]++] = u;
    }
    chunk.edges.reset();
  }
  chunks_.clear();
  chunks_.shrink_to_fit();

  // After the scatter, offsets[v] is the *end* of v's range. Sort and
  // deduplicate each range in place, compacting left and rewriting
  // offsets[v] to the compacted start as we go.
  NodeId max_degree = 0;
  std::uint64_t write = 0;
  std::uint64_t range_begin = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t range_end = offsets[v];
    std::sort(adj + range_begin, adj + range_end);
    NodeId* const unique_end =
        std::unique(adj + range_begin, adj + range_end);
    const std::uint64_t deg =
        static_cast<std::uint64_t>(unique_end - (adj + range_begin));
    std::move(adj + range_begin, unique_end, adj + write);
    offsets[v] = write;
    write += deg;
    range_begin = range_end;
    max_degree = std::max<NodeId>(max_degree, static_cast<NodeId>(deg));
  }
  offsets[n] = write;

  const std::span<const std::uint64_t> offsets_view{offsets, n + 1};
  const std::span<const NodeId> adj_view{adj, write};
  return Graph::adopt_storage(std::move(storage), node_count_, max_degree,
                              offsets_view, adj_view);
}

Graph graph_from_edges(NodeId node_count, std::span<const Edge> edges) {
  GraphBuilder b(node_count);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace dmis
