#include "graph/graph.h"

#include <algorithm>

#include "rng/mix.h"
#include "util/check.h"

namespace dmis {

NodeId Graph::degree(NodeId v) const {
  DMIS_CHECK(v < node_count_, "node out of range: " << v);
  return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  DMIS_CHECK(v < node_count_, "node out of range: " << v);
  return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DMIS_CHECK(u < node_count_ && v < node_count_,
             "edge endpoint out of range: {" << u << "," << v << "}");
  if (u == v) return false;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < node_count_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::uint64_t Graph::content_digest(std::uint64_t seed) const {
  // Commutative combine (sum and xor of strong per-edge hashes) makes the
  // digest independent of enumeration order by construction; folding both
  // aggregates through mix64 restores avalanche over the combined word.
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  for (NodeId u = 0; u < node_count_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u >= v) continue;
      const std::uint64_t h = mix64(seed, u, v);
      sum += h;
      xr ^= h;
    }
  }
  return mix64(seed, node_count_, sum, xr);
}

double Graph::average_degree() const {
  if (node_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(node_count_);
}

GraphBuilder::GraphBuilder(NodeId node_count) : node_count_(node_count) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DMIS_CHECK(u < node_count_ && v < node_count_,
             "edge endpoint out of range: {" << u << "," << v << "} with n="
                                             << node_count_);
  DMIS_CHECK(u != v, "self-loop at node " << u);
  half_edges_.emplace_back(u, v);
  half_edges_.emplace_back(v, u);
}

Graph GraphBuilder::build() && {
  // Counting sort by source, then sort+dedup each adjacency range.
  Graph g;
  g.node_count_ = node_count_;
  g.offsets_.assign(static_cast<std::size_t>(node_count_) + 1, 0);
  for (const auto& [src, dst] : half_edges_) {
    (void)dst;
    ++g.offsets_[src + 1];
  }
  for (NodeId v = 0; v < node_count_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.adj_.resize(half_edges_.size());
  {
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const auto& [src, dst] : half_edges_) {
      g.adj_[cursor[src]++] = dst;
    }
  }
  half_edges_.clear();

  // Sort and deduplicate each range in place, compacting the arrays.
  std::uint64_t write = 0;
  std::uint64_t range_begin = 0;
  for (NodeId v = 0; v < node_count_; ++v) {
    const std::uint64_t range_end = g.offsets_[v + 1];
    const auto first = g.adj_.begin() + static_cast<std::ptrdiff_t>(range_begin);
    const auto last = g.adj_.begin() + static_cast<std::ptrdiff_t>(range_end);
    std::sort(first, last);
    const auto unique_end = std::unique(first, last);
    const std::uint64_t deg =
        static_cast<std::uint64_t>(unique_end - first);
    std::move(first, unique_end,
              g.adj_.begin() + static_cast<std::ptrdiff_t>(write));
    g.offsets_[v] = write;
    write += deg;
    range_begin = range_end;
    g.max_degree_ = std::max<NodeId>(g.max_degree_, static_cast<NodeId>(deg));
  }
  g.offsets_[node_count_] = write;
  g.adj_.resize(write);
  g.adj_.shrink_to_fit();
  return g;
}

Graph graph_from_edges(NodeId node_count, std::span<const Edge> edges) {
  GraphBuilder b(node_count);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace dmis
