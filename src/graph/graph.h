// Immutable undirected simple graph in CSR form, plus its builder.
//
// All algorithms in this repository treat the graph as read-only shared
// topology ("initially each node knows only its neighbors", paper §1);
// node removal during an execution is handled by per-algorithm alive masks,
// or by materializing induced subgraphs (ops.h) when a residual graph is
// handed off (e.g. the leader cleanup of paper §2.4).
//
// The CSR arrays live behind a storage backend (graph/storage.h): either
// heap arrays owned by the graph (GraphBuilder and every in-process
// construction path) or a read-only mmap of an on-disk .dmg container
// (graph/dmg.h) that loads in O(1). Copies of a Graph share the backing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace dmis {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge as an (u, v) pair; orientation is not meaningful.
using Edge = std::pair<NodeId, NodeId>;

/// Digest seed shared by the service job keys (svc/job.cc) and the .dmg
/// container header (graph/dmg.h). A .dmg file precomputes the digest under
/// exactly this seed, so file-backed job specs fold their cache key without
/// rehashing the arrays.
inline constexpr std::uint64_t kGraphContentDigestSeed =
    0x6772646967657374ULL;  // "grdigest"

class GraphStorage;

class Graph {
 public:
  /// Empty graph with zero nodes.
  Graph() = default;

  NodeId node_count() const { return node_count_; }
  /// Number of undirected edges.
  std::uint64_t edge_count() const { return adj_.size() / 2; }

  NodeId degree(NodeId v) const;
  NodeId max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const;

  /// O(log deg) adjacency test.
  bool has_edge(NodeId u, NodeId v) const;

  /// Visits every undirected edge as visit(u, v) with u < v, in
  /// lexicographic order, without materializing a list. Prefer this over
  /// edges() wherever the caller only scans.
  template <typename Visitor>
  void for_each_edge(Visitor&& visit) const {
    for (NodeId u = 0; u < node_count_; ++u) {
      for (const NodeId v : neighbors(u)) {
        if (u < v) visit(u, v);
      }
    }
  }

  /// All undirected edges with u < v, in lexicographic order. Materializes
  /// a full vector — reach for for_each_edge() unless a random-access edge
  /// list is semantically required (e.g. line-graph vertex numbering).
  std::vector<Edge> edges() const;

  /// Average degree (0 for the empty graph).
  double average_degree() const;

  /// Canonical seeded digest of the graph's content: a pure function of
  /// (seed, node_count, edge set) that is independent of edge insertion
  /// order (the per-edge hashes are combined commutatively). Two graphs get
  /// the same digest iff they have the same node count and the same labeled
  /// edge set — a node relabeling changes the digest, which is what a cache
  /// key wants (the algorithms are label-sensitive). Collisions are 2^-64
  /// territory; callers needing wider keys can combine digests under
  /// different seeds. A .dmg-backed graph answers its header's precomputed
  /// seed from cache (O(1)); any other seed is a full scan.
  std::uint64_t content_digest(std::uint64_t seed = 0) const;

  /// Raw CSR views in storage layout (DESIGN.md §14): csr_offsets() has
  /// node_count()+1 entries, csr_adjacency() is sorted within each node's
  /// range. This is what the .dmg writer serializes.
  std::span<const std::uint64_t> csr_offsets() const { return offsets_; }
  std::span<const NodeId> csr_adjacency() const { return adj_; }

  /// A digest value pinned for one seed (the .dmg header's precomputed
  /// digest); content_digest(seed) returns it without scanning.
  struct CachedDigest {
    std::uint64_t seed = 0;
    std::uint64_t value = 0;
  };

  /// The pinned digest, if this graph carries one (.dmg-backed graphs do).
  const std::optional<CachedDigest>& cached_digest() const {
    return cached_digest_;
  }

  /// Internal (GraphBuilder, graph/dmg.cc): adopts a prebuilt CSR backing.
  /// `offsets` and `adj` must point into memory kept alive by `storage`,
  /// already sorted per node range with `max_degree` consistent; no
  /// validation happens here (the O(1)-load contract of the mmap path).
  static Graph adopt_storage(std::shared_ptr<const GraphStorage> storage,
                             NodeId node_count, NodeId max_degree,
                             std::span<const std::uint64_t> offsets,
                             std::span<const NodeId> adj,
                             std::optional<CachedDigest> digest = {});

 private:
  NodeId node_count_ = 0;
  NodeId max_degree_ = 0;
  std::span<const std::uint64_t> offsets_;  // size node_count_ + 1
  std::span<const NodeId> adj_;             // sorted within each node's range
  std::shared_ptr<const GraphStorage> storage_;
  std::optional<CachedDigest> cached_digest_;
};

/// Accumulates edges, then builds a Graph. Self-loops are rejected; parallel
/// edges are deduplicated (generators may propose duplicates).
///
/// Construction is streaming and two-pass (DESIGN.md §14): add_edge counts
/// both endpoint degrees and appends the edge once to a chunked log; build()
/// turns the counts into CSR offsets, scatters the log into an
/// *uninitialized* adjacency array (radix by source), freeing each log chunk
/// as it drains, then sorts and dedups each range in place. The edge log and
/// the CSR are never resident in full at the same time, which is what keeps
/// peak build memory near the final CSR size.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count);

  /// Adds the undirected edge {u, v}. u != v; both < node_count.
  void add_edge(NodeId u, NodeId v);

  std::uint64_t pending_edge_count() const { return edge_count_; }

  /// Builds the graph. The builder is spent afterwards (&&-qualified: the
  /// degree table moves into the graph's offsets array).
  Graph build() &&;

 private:
  struct Chunk {
    std::unique_ptr<Edge[]> edges;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  NodeId node_count_;
  std::uint64_t edge_count_ = 0;
  // Degree counts during accumulation (size node_count_+1); build() prefix-
  // sums it in place and moves it into the graph as the offsets array.
  std::unique_ptr<std::uint64_t[]> degree_;
  std::vector<Chunk> chunks_;  // the edge log, each edge stored once
};

/// Convenience: build from an explicit edge list.
Graph graph_from_edges(NodeId node_count, std::span<const Edge> edges);

}  // namespace dmis
