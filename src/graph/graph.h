// Immutable undirected simple graph in CSR form, plus its builder.
//
// All algorithms in this repository treat the graph as read-only shared
// topology ("initially each node knows only its neighbors", paper §1);
// node removal during an execution is handled by per-algorithm alive masks,
// or by materializing induced subgraphs (ops.h) when a residual graph is
// handed off (e.g. the leader cleanup of paper §2.4).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dmis {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge as an (u, v) pair; orientation is not meaningful.
using Edge = std::pair<NodeId, NodeId>;

class Graph {
 public:
  /// Empty graph with zero nodes.
  Graph() = default;

  NodeId node_count() const { return node_count_; }
  /// Number of undirected edges.
  std::uint64_t edge_count() const { return adj_.size() / 2; }

  NodeId degree(NodeId v) const;
  NodeId max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const;

  /// O(log deg) adjacency test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All undirected edges with u < v, in lexicographic order.
  std::vector<Edge> edges() const;

  /// Average degree (0 for the empty graph).
  double average_degree() const;

  /// Canonical seeded digest of the graph's content: a pure function of
  /// (seed, node_count, edge set) that is independent of edge insertion
  /// order (the per-edge hashes are combined commutatively). Two graphs get
  /// the same digest iff they have the same node count and the same labeled
  /// edge set — a node relabeling changes the digest, which is what a cache
  /// key wants (the algorithms are label-sensitive). Collisions are 2^-64
  /// territory; callers needing wider keys can combine digests under
  /// different seeds.
  std::uint64_t content_digest(std::uint64_t seed = 0) const;

 private:
  friend class GraphBuilder;

  NodeId node_count_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // size node_count_ + 1
  std::vector<NodeId> adj_;             // sorted within each node's range
};

/// Accumulates edges, then builds a Graph. Self-loops are rejected; parallel
/// edges are deduplicated (generators may propose duplicates).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId node_count);

  /// Adds the undirected edge {u, v}. u != v; both < node_count.
  void add_edge(NodeId u, NodeId v);

  std::uint64_t pending_edge_count() const { return half_edges_.size() / 2; }

  /// Builds and resets the builder. Duplicate edges are merged.
  Graph build() &&;

 private:
  NodeId node_count_;
  // Flat list of (src, dst) half-edges; both directions are stored.
  std::vector<std::pair<NodeId, NodeId>> half_edges_;
};

/// Convenience: build from an explicit edge list.
Graph graph_from_edges(NodeId node_count, std::span<const Edge> edges);

}  // namespace dmis
