#include "graph/io.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <vector>

#include "util/check.h"

namespace dmis {
namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// One parsed "u v" line, or nothing for blank/comment lines. Errors carry
/// the source name and 1-based line number.
struct SnapLine {
  bool has_edge = false;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

SnapLine parse_snap_line(const std::string& line, const std::string& source,
                         std::uint64_t line_no) {
  const char* p = line.c_str();
  while (is_space(*p)) ++p;
  if (*p == '\0' || *p == '#' || *p == '%') return {};  // blank or comment
  SnapLine out;
  std::uint64_t* const fields[2] = {&out.u, &out.v};
  for (int i = 0; i < 2; ++i) {
    while (is_space(*p)) ++p;
    DMIS_CHECK(*p != '-', source << " line " << line_no
                                 << ": negative node id in '" << line << "'");
    DMIS_CHECK(std::isdigit(static_cast<unsigned char>(*p)) != 0,
               source << " line " << line_no << ": expected two node ids, got '"
                      << line << "'");
    char* end = nullptr;
    errno = 0;
    *fields[i] = std::strtoull(p, &end, 10);
    DMIS_CHECK(errno != ERANGE, source << " line " << line_no
                                       << ": node id overflows in '" << line
                                       << "'");
    p = end;
  }
  while (is_space(*p)) ++p;
  DMIS_CHECK(*p == '\0', source << " line " << line_no
                                << ": trailing tokens after the edge in '"
                                << line << "'");
  out.has_edge = true;
  return out;
}

void check_snap_id(std::uint64_t id, std::uint64_t node_count,
                   const std::string& source, std::uint64_t line_no) {
  if (node_count != 0) {
    DMIS_CHECK(id < node_count, source << " line " << line_no << ": node id "
                                       << id << " out of range (node count "
                                       << node_count << ")");
  } else {
    DMIS_CHECK(id < kInvalidNode, source << " line " << line_no << ": node id "
                                         << id << " exceeds the 32-bit node "
                                         << "id space");
  }
}

}  // namespace

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  g.for_each_edge(
      [&os](NodeId u, NodeId v) { os << u << ' ' << v << '\n'; });
  DMIS_CHECK(os.good(), "write failed");
}

Graph read_edge_list(std::istream& is) {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  DMIS_CHECK(static_cast<bool>(is >> n >> m), "malformed header");
  DMIS_CHECK(n <= kInvalidNode, "node count too large: " << n);
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    DMIS_CHECK(static_cast<bool>(is >> u >> v),
               "malformed edge line " << i << " of " << m);
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(b).build();
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  DMIS_CHECK_ENV(os.is_open(), "cannot open for writing: " << path);
  write_edge_list(g, os);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  DMIS_CHECK_ENV(is.is_open(), "cannot open for reading: " << path);
  return read_edge_list(is);
}

Graph read_snap_edge_list(std::istream& is, std::uint64_t node_count,
                          const std::string& source) {
  // With a pinned node count the edges stream straight into the builder;
  // with an inferred one they are staged once (max id is unknown until EOF).
  std::optional<GraphBuilder> builder;
  if (node_count != 0) {
    DMIS_CHECK(node_count <= kInvalidNode,
               source << ": node count too large: " << node_count);
    builder.emplace(static_cast<NodeId>(node_count));
  }
  std::vector<Edge> staged;
  std::uint64_t max_id = 0;
  bool any_edge = false;

  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    const SnapLine parsed = parse_snap_line(line, source, line_no);
    if (!parsed.has_edge) continue;
    DMIS_CHECK(parsed.u != parsed.v, source << " line " << line_no
                                            << ": self-loop at node "
                                            << parsed.u);
    check_snap_id(parsed.u, node_count, source, line_no);
    check_snap_id(parsed.v, node_count, source, line_no);
    if (builder.has_value()) {
      builder->add_edge(static_cast<NodeId>(parsed.u),
                        static_cast<NodeId>(parsed.v));
    } else {
      staged.emplace_back(static_cast<NodeId>(parsed.u),
                          static_cast<NodeId>(parsed.v));
      max_id = std::max({max_id, parsed.u, parsed.v});
      any_edge = true;
    }
  }
  DMIS_CHECK(is.eof(), source << ": read failed at line " << line_no);
  if (!builder.has_value()) {
    builder.emplace(static_cast<NodeId>(any_edge ? max_id + 1 : 0));
    for (const auto& [u, v] : staged) builder->add_edge(u, v);
  }
  return std::move(*builder).build();
}

Graph read_snap_edge_list_file(const std::string& path,
                               std::uint64_t node_count) {
  std::ifstream is(path);
  DMIS_CHECK_ENV(is.is_open(), "cannot open for reading: " << path);
  return read_snap_edge_list(is, node_count, path);
}

}  // namespace dmis
