#include "graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace dmis {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) os << u << ' ' << v << '\n';
    }
  }
  DMIS_CHECK(os.good(), "write failed");
}

Graph read_edge_list(std::istream& is) {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  DMIS_CHECK(static_cast<bool>(is >> n >> m), "malformed header");
  DMIS_CHECK(n <= kInvalidNode, "node count too large: " << n);
  GraphBuilder b(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    DMIS_CHECK(static_cast<bool>(is >> u >> v),
               "malformed edge line " << i << " of " << m);
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(b).build();
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  DMIS_CHECK(os.is_open(), "cannot open for writing: " << path);
  write_edge_list(g, os);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream is(path);
  DMIS_CHECK(is.is_open(), "cannot open for reading: " << path);
  return read_edge_list(is);
}

}  // namespace dmis
