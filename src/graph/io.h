// Plain-text edge-list serialization:
//   line 1: "<node_count> <edge_count>"
//   then one "u v" pair per line (u < v).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dmis {

void write_edge_list(const Graph& g, std::ostream& os);
Graph read_edge_list(std::istream& is);

void write_edge_list_file(const Graph& g, const std::string& path);
Graph read_edge_list_file(const std::string& path);

}  // namespace dmis
