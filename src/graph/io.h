// Plain-text graph serialization.
//
// Two text formats are read:
//   * the repo's own edge list — line 1 "<node_count> <edge_count>", then
//     one "u v" pair per line (u < v);
//   * SNAP-style edge lists (real-world datasets) — no header, one
//     whitespace-separated "u v" pair per line, '#'/'%' comment lines and
//     blank lines ignored; node count is inferred as max id + 1 unless
//     given. Self-loops, negative/overflowing ids, and malformed lines are
//     rejected with line-numbered errors.
// The binary mmap-able container lives in graph/dmg.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dmis {

void write_edge_list(const Graph& g, std::ostream& os);
Graph read_edge_list(std::istream& is);

void write_edge_list_file(const Graph& g, const std::string& path);
Graph read_edge_list_file(const std::string& path);

/// Parses a SNAP-style edge list (see file comment). `node_count` == 0
/// infers max id + 1; a nonzero value pins it and makes ids >= node_count
/// line-numbered errors. `source` names the stream in error messages.
Graph read_snap_edge_list(std::istream& is, std::uint64_t node_count = 0,
                          const std::string& source = "<stream>");
Graph read_snap_edge_list_file(const std::string& path,
                               std::uint64_t node_count = 0);

}  // namespace dmis
