#include "graph/mst_reference.h"

#include <algorithm>

#include "graph/dsu.h"
#include "rng/mix.h"
#include "util/check.h"

namespace dmis {

WeightFn hashed_weights(std::uint64_t seed, std::uint32_t max_weight) {
  DMIS_CHECK(max_weight >= 1, "max_weight must be >= 1");
  return [seed, max_weight](NodeId u, NodeId v) -> std::uint64_t {
    if (u > v) std::swap(u, v);
    return mix64(seed, u, v) % max_weight;
  };
}

MstResult kruskal_msf(const Graph& g, const WeightFn& weight) {
  struct Entry {
    std::uint64_t w;
    NodeId u;
    NodeId v;
  };
  std::vector<Entry> entries;
  entries.reserve(g.edge_count());
  g.for_each_edge([&](NodeId u, NodeId v) {
    entries.push_back({weight(u, v), u, v});
  });
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  MstResult result;
  DisjointSets dsu(g.node_count());
  for (const Entry& e : entries) {
    if (dsu.unite(e.u, e.v)) {
      result.edges.push_back({e.u, e.v});
      result.total_weight += e.w;
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  result.components = dsu.component_count();
  return result;
}

}  // namespace dmis
