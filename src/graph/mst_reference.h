// Centralized minimum-spanning-forest reference (Kruskal), ground truth for
// the congested-clique MST (clique/mst.h).
//
// Edge weights are an arbitrary function of the endpoints; ties are broken
// by the edge's (min id, max id), which makes the MSF *unique* — so the
// distributed and centralized algorithms must agree edge-for-edge, not just
// in total weight.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace dmis {

using WeightFn = std::function<std::uint64_t(NodeId, NodeId)>;

/// Deterministic pseudo-random weights derived from the endpoints — handy
/// default for experiments. Symmetric in (u, v).
WeightFn hashed_weights(std::uint64_t seed, std::uint32_t max_weight = 1u << 20);

struct MstResult {
  std::vector<Edge> edges;  ///< sorted (u < v per edge, lexicographic)
  std::uint64_t total_weight = 0;
  NodeId components = 0;  ///< of the input graph (forest trees)
};

MstResult kruskal_msf(const Graph& g, const WeightFn& weight);

}  // namespace dmis
