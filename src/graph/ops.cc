#include "graph/ops.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace dmis {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const NodeId> nodes) {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  DMIS_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "duplicate node in induced_subgraph selection");
  std::vector<NodeId> old_to_new(g.node_count(), kInvalidNode);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    DMIS_CHECK(sorted[i] < g.node_count(),
               "node out of range: " << sorted[i]);
    old_to_new[sorted[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder b(static_cast<NodeId>(sorted.size()));
  for (const NodeId u : sorted) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v && old_to_new[v] != kInvalidNode) {
        b.add_edge(old_to_new[u], old_to_new[v]);
      }
    }
  }
  return InducedSubgraph{std::move(b).build(), std::move(sorted)};
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<char>& keep) {
  DMIS_CHECK(keep.size() == g.node_count(),
             "mask size " << keep.size() << " != n " << g.node_count());
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (keep[v] != 0) nodes.push_back(v);
  }
  return induced_subgraph(g, nodes);
}

std::vector<NodeId> bfs_ball(const Graph& g, NodeId v, int radius) {
  DMIS_CHECK(v < g.node_count(), "node out of range: " << v);
  DMIS_CHECK(radius >= 0, "negative radius: " << radius);
  // Callers (is_ruling_set, the lowdeg gather, the local oracle) invoke this
  // once per node, so the distance scratch is reused across calls — entries
  // touched by a BFS are restored to kUnreachable before returning, keeping
  // each call O(ball), not O(n). thread_local keeps parallel gathers safe.
  thread_local std::vector<std::uint32_t> dist;
  if (dist.size() < g.node_count()) {
    dist.resize(g.node_count(), kUnreachable);
  }
  std::vector<NodeId> out;
  std::deque<NodeId> queue;
  dist[v] = 0;
  queue.push_back(v);
  out.push_back(v);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[u] == static_cast<std::uint32_t>(radius)) continue;
    for (const NodeId w : g.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
        out.push_back(w);
      }
    }
  }
  for (const NodeId u : out) dist[u] = kUnreachable;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId v) {
  DMIS_CHECK(v < g.node_count(), "node out of range: " << v);
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[v] = 0;
  queue.push_back(v);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId w : g.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

Graph graph_power(const Graph& g, int k) {
  DMIS_CHECK(k >= 1, "graph power needs k >= 1, got " << k);
  GraphBuilder b(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const NodeId u : bfs_ball(g, v, k)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  return std::move(b).build();
}

std::vector<std::uint32_t> connected_component_sizes(const Graph& g) {
  std::vector<char> seen(g.node_count(), 0);
  std::vector<std::uint32_t> sizes;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (seen[s] != 0) continue;
    std::uint32_t size = 0;
    seen[s] = 1;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      ++size;
      for (const NodeId w : g.neighbors(u)) {
        if (seen[w] == 0) {
          seen[w] = 1;
          queue.push_back(w);
        }
      }
    }
    sizes.push_back(size);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace dmis
