// Structural graph operations: induced subgraphs, BFS balls, graph powers.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dmis {

/// An induced subgraph together with the node-id mapping back to the parent.
struct InducedSubgraph {
  Graph graph;
  /// new id -> old id; sorted ascending.
  std::vector<NodeId> to_parent;
};

/// Subgraph induced by `nodes` (need not be sorted; duplicates rejected).
InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

/// Subgraph induced by { v : keep[v] != 0 }. keep.size() == g.node_count().
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<char>& keep);

/// All nodes within distance <= radius of v (including v), sorted ascending.
std::vector<NodeId> bfs_ball(const Graph& g, NodeId v, int radius);

/// Distance from v to every node (kUnreachable where disconnected).
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId v);

/// The graph power G^k: an edge {u,v} iff 1 <= dist_G(u,v) <= k.
/// Intended for moderate sizes (used by tests validating the congested-clique
/// exponentiation against ground truth).
Graph graph_power(const Graph& g, int k);

/// Sizes of connected components, sorted descending.
std::vector<std::uint32_t> connected_component_sizes(const Graph& g);

}  // namespace dmis
