#include "graph/properties.h"

#include <algorithm>

#include "util/check.h"

namespace dmis {

bool is_independent_set(const Graph& g, const std::vector<char>& in_set) {
  DMIS_CHECK(in_set.size() == g.node_count(), "mask size mismatch");
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (in_set[u] == 0) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (v > u && in_set[v] != 0) return false;
    }
  }
  return true;
}

std::vector<NodeId> uncovered_nodes(const Graph& g,
                                    const std::vector<char>& in_set) {
  DMIS_CHECK(in_set.size() == g.node_count(), "mask size mismatch");
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (in_set[u] != 0) continue;
    bool covered = false;
    for (const NodeId v : g.neighbors(u)) {
      if (in_set[v] != 0) {
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(u);
  }
  return out;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<char>& in_set) {
  return is_independent_set(g, in_set) && uncovered_nodes(g, in_set).empty();
}

std::uint32_t degeneracy(const Graph& g) {
  const NodeId n = g.node_count();
  if (n == 0) return 0;
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue over current degrees.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<char> removed(n, 0);
  std::uint32_t result = 0;
  std::uint32_t cursor = 0;
  NodeId processed = 0;
  while (processed < n) {
    // Find the lowest bucket holding a current entry. A removal decrements
    // neighbor degrees by exactly one and the removed node had the minimum
    // degree, so valid entries never appear below cursor - 1: rewinding by
    // one per step is sufficient. Entries whose recorded bucket no longer
    // matches the node's degree are stale and skipped.
    cursor = (cursor == 0) ? 0 : cursor - 1;
    NodeId v = kInvalidNode;
    while (v == kInvalidNode) {
      while (buckets[cursor].empty()) ++cursor;
      const NodeId cand = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[cand] == 0 && deg[cand] == cursor) v = cand;
    }
    removed[v] = 1;
    ++processed;
    result = std::max(result, cursor);
    for (const NodeId u : g.neighbors(v)) {
      if (removed[u] == 0) {
        --deg[u];
        buckets[deg[u]].push_back(u);
      }
    }
  }
  return result;
}

std::uint64_t triangle_count(const Graph& g) {
  // Count ordered triples u < v < w with all three edges, using sorted
  // adjacency intersections on the two smaller endpoints.
  std::uint64_t count = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto nu = g.neighbors(u);
    for (const NodeId v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // Intersect neighbors greater than v.
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++count;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return count;
}

}  // namespace dmis
