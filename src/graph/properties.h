// Verification predicates and structural measures.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dmis {

/// True iff no two set members are adjacent. `in_set.size() == n`.
bool is_independent_set(const Graph& g, const std::vector<char>& in_set);

/// True iff `in_set` is independent AND every non-member has a member
/// neighbor — the correctness predicate for every MIS algorithm here.
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<char>& in_set);

/// Nodes with no neighbor in the set and not in it themselves (the
/// "uncovered" nodes; empty iff the independent set is maximal).
std::vector<NodeId> uncovered_nodes(const Graph& g,
                                    const std::vector<char>& in_set);

/// Graph degeneracy (max over the degeneracy ordering of the min degree),
/// computed by the standard peeling algorithm in O(n + m).
std::uint32_t degeneracy(const Graph& g);

/// Number of triangles (for generator sanity tests).
std::uint64_t triangle_count(const Graph& g);

}  // namespace dmis
