// Backing stores for Graph's CSR arrays (DESIGN.md §14).
//
// A Graph is a pair of read-only views (offsets, adjacency) plus a shared
// handle to whatever owns the bytes behind them. Two backends exist:
//   * OwnedGraphStorage  — heap arrays, produced by GraphBuilder (and by
//     every in-process construction path: generators, ops, transforms);
//   * MappedGraphStorage — a read-only mmap of a .dmg container
//     (graph/dmg.h), private to dmg.cc so <sys/mman.h> stays out of
//     headers.
// Copies of a Graph share the backing; the last copy standing unmaps or
// frees it. All algorithm-facing code sees only the read-only Graph API and
// cannot tell the backends apart.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.h"

namespace dmis {

/// Owner of one immutable CSR topology's bytes. The base class carries no
/// accessors on purpose: Graph holds spans resolved once at adoption time,
/// so the per-call read path has no virtual dispatch.
class GraphStorage {
 public:
  GraphStorage() = default;
  GraphStorage(const GraphStorage&) = delete;
  GraphStorage& operator=(const GraphStorage&) = delete;
  virtual ~GraphStorage() = default;
};

/// Heap-owned arrays (the GraphBuilder path). Raw arrays rather than
/// vectors: the builder allocates `adj` uninitialized so pages are only
/// committed as the scatter pass writes them, and dedup slack at the tail
/// is kept rather than paying a reallocation copy spike at peak memory.
class OwnedGraphStorage final : public GraphStorage {
 public:
  std::unique_ptr<std::uint64_t[]> offsets;
  std::unique_ptr<NodeId[]> adj;
};

}  // namespace dmis
