#include "graph/transforms.h"

#include "util/check.h"

namespace dmis {

LineGraph line_graph(const Graph& g) {
  LineGraph out;
  out.vertex_to_edge = g.edges();
  const auto m = static_cast<std::uint64_t>(out.vertex_to_edge.size());
  DMIS_CHECK(m <= kInvalidNode, "too many edges for a line graph: " << m);

  // Index edges by endpoint, then connect all pairs sharing an endpoint.
  std::vector<std::vector<NodeId>> incident(g.node_count());
  for (NodeId e = 0; e < m; ++e) {
    incident[out.vertex_to_edge[e].first].push_back(e);
    incident[out.vertex_to_edge[e].second].push_back(e);
  }
  GraphBuilder b(static_cast<NodeId>(m));
  for (const auto& edges_at : incident) {
    for (std::size_t i = 0; i < edges_at.size(); ++i) {
      for (std::size_t j = i + 1; j < edges_at.size(); ++j) {
        b.add_edge(edges_at[i], edges_at[j]);
      }
    }
  }
  out.graph = std::move(b).build();
  return out;
}

Graph color_product(const Graph& g, std::uint32_t k) {
  DMIS_CHECK(k >= 1, "color product needs k >= 1");
  const std::uint64_t total = static_cast<std::uint64_t>(g.node_count()) * k;
  DMIS_CHECK(total <= kInvalidNode,
             "color product too large: " << total << " vertices");
  GraphBuilder b(static_cast<NodeId>(total));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    // The palette clique at v.
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = i + 1; j < k; ++j) {
        b.add_edge(color_product_vertex(v, i, k),
                   color_product_vertex(v, j, k));
      }
    }
    // Same-color conflicts across each edge.
    for (const NodeId u : g.neighbors(v)) {
      if (u <= v) continue;
      for (std::uint32_t i = 0; i < k; ++i) {
        b.add_edge(color_product_vertex(v, i, k),
                   color_product_vertex(u, i, k));
      }
    }
  }
  return std::move(b).build();
}

}  // namespace dmis
