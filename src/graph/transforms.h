// Graph transformations backing the classic reductions of Linial [28] that
// the paper's §1.1 invokes: "By standard reductions (with minor
// modifications), this round complexity also extends to [maximal matching,
// (Δ+1)-vertex-coloring, (2Δ−1)-edge-coloring]".
//
//  * line_graph(G): vertices are G's edges; two are adjacent iff the edges
//    share an endpoint. MIS(L(G)) = maximal matching of G.
//  * color_product(G, k): Linial's G × K_k — vertices (v, i) for i < k;
//    (v,i)~(v,j) for i≠j and (u,i)~(v,i) for u~v. When k = Δ+1, any MIS
//    picks exactly one (v, i) per v, which is a proper (Δ+1)-coloring.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dmis {

/// Line graph plus the mapping from its vertices back to G's edges.
struct LineGraph {
  Graph graph;
  /// Line-graph vertex i corresponds to this edge of the base graph.
  std::vector<Edge> vertex_to_edge;
};

LineGraph line_graph(const Graph& g);

/// Linial's coloring-product graph G × K_k (k >= 1). Vertex (v, i) has the
/// id v*k + i; helpers below decode.
Graph color_product(const Graph& g, std::uint32_t k);

inline NodeId color_product_vertex(NodeId v, std::uint32_t color,
                                   std::uint32_t k) {
  return static_cast<NodeId>(static_cast<std::uint64_t>(v) * k + color);
}
inline NodeId color_product_base(NodeId product_vertex, std::uint32_t k) {
  return product_vertex / k;
}
inline std::uint32_t color_product_color(NodeId product_vertex,
                                         std::uint32_t k) {
  return product_vertex % k;
}

}  // namespace dmis
