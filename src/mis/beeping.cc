#include "mis/beeping.h"

#include <memory>
#include <optional>

#include "rng/pow2_prob.h"
#include "runtime/beeping.h"
#include "mis/registry.h"
#include "util/check.h"

namespace dmis {
namespace {

class BeepingMisProgram final : public BeepProgram {
 public:
  BeepingMisProgram(NodeId self, const RandomSource& rs)
      : self_(self), rs_(rs) {}

  BeepAction act(std::uint64_t round) override {
    if (round % 2 == 0) {
      // R1: beep with probability p_t.
      const std::uint64_t t = round / 2;
      beeped_ = p_.sample(rs_.word(RngStream::kBeep, self_, t));
      return beeped_ ? BeepAction::kBeep : BeepAction::kListen;
    }
    // R2: MIS members beep.
    return joined_ ? BeepAction::kBeep : BeepAction::kListen;
  }

  bool feedback(std::uint64_t round, bool heard_beep) override {
    if (round % 2 == 0) {
      joined_ = beeped_ && !heard_beep;
      p_ = heard_beep ? p_.halved() : p_.doubled_capped();
    } else {
      if (joined_) {
        halted_ = true;
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      } else if (heard_beep) {
        halted_ = true;
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      }
    }
    return halted_;
  }

  bool halted() const override { return halted_; }
  bool joined() const { return joined_ && halted_; }
  std::uint32_t decided_round() const { return decided_round_; }
  int p_exp() const { return p_.neg_exp(); }

 private:
  NodeId self_;
  RandomSource rs_;
  Pow2Prob p_ = Pow2Prob::half();
  bool beeped_ = false;
  bool joined_ = false;
  bool halted_ = false;
  std::uint32_t decided_round_ = kNeverDecided;
};

}  // namespace

MisRun beeping_mis(const Graph& g, const BeepingOptions& options) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<BeepProgram>> programs;
  programs.reserve(n);
  std::vector<const BeepingMisProgram*> views;
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = std::make_unique<BeepingMisProgram>(v, options.randomness);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BeepEngine engine(g, std::move(programs), DuplexMode::kFullDuplex,
                    options.threads);
  engine.set_fault_plane(options.faults);

  // Analysis channel: one iteration = rounds {2t, 2t+1}; snapshots read the
  // programs' own state. Observers (auditor, trace) consume the events; the
  // algorithm itself is just the engine loop below.
  std::vector<char> alive;
  std::vector<int> p_exp;
  std::vector<char> in_mis;
  std::vector<char> decided;
  if (!options.observers.empty()) {
    for (RoundObserver* o : options.observers) engine.observers().attach(o);
    alive.assign(n, 1);
    p_exp.assign(n, 1);
    in_mis.assign(n, 0);
    decided.assign(n, 0);
    SimulationEngine::AnalysisProbe probe;
    probe.iteration_begin =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 0) return round / 2;
      return std::nullopt;
    };
    probe.iteration_end =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 1) return round / 2;
      return std::nullopt;
    };
    probe.snapshot = [&views, &alive, &p_exp, &in_mis, &decided,
                      n](PhaseMarkerKind) {
      for (NodeId v = 0; v < n; ++v) {
        alive[v] = views[v]->halted() ? 0 : 1;
        p_exp[v] = views[v]->p_exp();
        in_mis[v] = views[v]->joined() ? 1 : 0;
        decided[v] = views[v]->halted() ? 1 : 0;
      }
      return MisAnalysisView{alive, p_exp, {}, in_mis, decided};
    };
    engine.set_analysis_probe(std::move(probe));
  }

  engine.run(options.max_iterations * 2);

  MisRun run;
  run.in_mis.resize(n, 0);
  run.decided_round.resize(n, kNeverDecided);
  for (NodeId v = 0; v < n; ++v) {
    run.in_mis[v] = views[v]->joined() ? 1 : 0;
    run.decided_round[v] = views[v]->decided_round();
  }
  run.costs = engine.costs();
  run.rounds = run.costs.rounds;
  return run;
}


namespace {

AlgoResult run_beeping_descriptor(const Graph& g, const AlgoOptions&,
                                  const AlgoRunRequest& request) {
  BeepingOptions o;
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_iterations = request.max_rounds;
  o.observers = request.observers;
  o.faults = request.faults;
  o.threads = request.threads;
  AlgoResult out;
  out.run = beeping_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& beeping_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "beeping",
      .summary = "the beeping MIS dynamic on the full-duplex beep engine "
                 "(Theorem 2.1 local complexity)",
      .paper_ref = "§2.2",
      .model = AlgoModel::kBeeping,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .options = {},
      .run = run_beeping_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
