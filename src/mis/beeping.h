// The Beeping MIS Algorithm (paper §2.2) on the full-duplex beeping engine.
//
// Iterations of two beep rounds:
//   R1) node v beeps with probability p_t(v) (initially 1/2). If v beeps and
//       hears no neighbor, v joins the MIS. Then
//         p_{t+1}(v) = p_t(v)/2           if some neighbor beeped,
//                      min{2 p_t(v), 1/2} otherwise.
//   R2) MIS nodes beep; a non-MIS node hearing a beep has an MIS neighbor.
//       MIS nodes and their neighbors leave the problem.
//
// Theorem 2.1: each node v is decided within C(log deg(v) + log 1/ε) rounds
// with probability >= 1 - ε — validated by experiments E2/E3.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

struct BeepingOptions {
  RandomSource randomness{0};
  /// Cap on iterations (each = 2 beep rounds). The run stops early once all
  /// nodes are decided. Partial (shattering) runs just set this low.
  std::uint64_t max_iterations = 8192;
  /// Analysis-side observers (e.g. GoldenRoundAuditor, TraceRecorder) —
  /// attached to the engine, never part of the algorithm.
  std::vector<RoundObserver*> observers;
  /// Optional fault plane (runtime/faults.h), attached to the engine's
  /// wire-delivery choke point. Null or inactive: bit-identical to fault-free.
  FaultPlane* faults = nullptr;
  /// Worker threads for node stepping; results are thread-count invariant.
  int threads = 1;
};

MisRun beeping_mis(const Graph& g, const BeepingOptions& options);

}  // namespace dmis
