#include "mis/cleanup.h"

#include <unordered_map>

#include "mis/greedy.h"
#include "util/check.h"

namespace dmis {

CleanupStats clique_leader_cleanup(CliqueNetwork& net, const Graph& g,
                                   const std::vector<char>& alive,
                                   std::vector<char>& in_mis,
                                   std::vector<std::uint32_t>& decided_round,
                                   std::uint32_t final_round) {
  DMIS_CHECK(alive.size() == g.node_count() &&
                 in_mis.size() == g.node_count() &&
                 decided_round.size() == g.node_count(),
             "mask size mismatch");
  CleanupStats stats;
  std::vector<NodeId> residual;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (alive[v] != 0) residual.push_back(v);
  }
  stats.residual_nodes = residual.size();
  if (residual.empty()) return stats;

  const std::uint64_t rounds_before = net.costs().rounds;
  const NodeId leader = net.elect_leader();

  // Record kinds in the top two bits of `a`: 1 = presence, 2 = edge.
  std::vector<Packet> packets;
  for (const NodeId v : residual) {
    packets.push_back({v, leader, (1ULL << 62) | v, 0});
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && alive[u] != 0) {
        packets.push_back({v, leader, (2ULL << 62) | v, u});
        ++stats.residual_edges;
      }
    }
  }
  net.route(packets);

  // Leader side: rebuild G[B] and solve it greedily.
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    to_local.emplace(residual[i], static_cast<NodeId>(i));
  }
  GraphBuilder builder(static_cast<NodeId>(residual.size()));
  for (const Packet& p : packets) {
    if ((p.a >> 62) == 2) {
      builder.add_edge(to_local.at(static_cast<NodeId>(p.a & 0xffffffffULL)),
                       to_local.at(static_cast<NodeId>(p.b)));
    }
  }
  const Graph residual_graph = std::move(builder).build();
  const std::vector<char> residual_mis = greedy_mis(residual_graph);

  // Route the decisions back.
  std::vector<Packet> decisions;
  decisions.reserve(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    decisions.push_back(
        {leader, residual[i], residual_mis[i] != 0 ? 1ULL : 0ULL, 0});
  }
  net.route(decisions);
  for (const Packet& p : decisions) {
    if (p.a != 0) in_mis[p.dst] = 1;
    decided_round[p.dst] = final_round;
  }
  stats.rounds = net.costs().rounds - rounds_before;
  return stats;
}

}  // namespace dmis
