#include "mis/cleanup.h"

#include <unordered_map>

#include "mis/greedy.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

CleanupStats clique_leader_cleanup(CliqueNetwork& net, const Graph& g,
                                   const std::vector<char>& alive,
                                   std::vector<char>& in_mis,
                                   std::vector<std::uint32_t>& decided_round,
                                   std::uint32_t final_round) {
  DMIS_CHECK(alive.size() == g.node_count() &&
                 in_mis.size() == g.node_count() &&
                 decided_round.size() == g.node_count(),
             "mask size mismatch");
  CleanupStats stats;
  std::vector<NodeId> residual;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (alive[v] != 0) residual.push_back(v);
  }
  stats.residual_nodes = residual.size();
  if (residual.empty()) return stats;

  const std::uint64_t rounds_before = net.costs().rounds;
  const NodeId leader = net.elect_leader();
  const WireContext& ctx = net.wire_context();

  std::vector<Packet> packets;
  for (const NodeId v : residual) {
    packets.push_back(
        {v, leader, encode_payload(ctx, ResidualPresenceMsg{v})});
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && alive[u] != 0) {
        packets.push_back(
            {v, leader, encode_payload(ctx, ResidualEdgeMsg{v, u})});
        ++stats.residual_edges;
      }
    }
  }
  net.route(packets);

  // Leader side: rebuild G[B] and solve it greedily.
  std::unordered_map<NodeId, NodeId> to_local;
  to_local.reserve(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    to_local.emplace(residual[i], static_cast<NodeId>(i));
  }
  GraphBuilder builder(static_cast<NodeId>(residual.size()));
  for (const Packet& p : packets) {
    if (p.payload.type == WireMessageType::kResidualEdge) {
      const auto msg = decode_payload<ResidualEdgeMsg>(ctx, p.payload);
      builder.add_edge(to_local.at(msg.u), to_local.at(msg.v));
    }
  }
  const Graph residual_graph = std::move(builder).build();
  const std::vector<char> residual_mis = greedy_mis(residual_graph);

  // Route the decisions back.
  std::vector<Packet> decisions;
  decisions.reserve(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    decisions.push_back(
        {leader, residual[i],
         encode_payload(ctx, MisDecisionMsg{residual_mis[i] != 0})});
  }
  net.route(decisions);
  for (const Packet& p : decisions) {
    if (decode_payload<MisDecisionMsg>(ctx, p.payload).in_mis) {
      in_mis[p.dst] = 1;
    }
    decided_round[p.dst] = final_round;
  }
  stats.rounds = net.costs().rounds - rounds_before;
  return stats;
}

}  // namespace dmis
