// Part 2 of the congested-clique algorithms (paper §2.4, §2.5): the residual
// graph — O(n) edges after shattering, Lemma 2.11 — is shipped to an elected
// leader with Lenzen routing, solved greedily there, and the decisions are
// routed back. O(1) clique rounds per Lenzen-feasible batch.
#pragma once

#include <cstdint>
#include <vector>

#include "clique/network.h"
#include "graph/graph.h"

namespace dmis {

struct CleanupStats {
  std::uint64_t residual_nodes = 0;
  std::uint64_t residual_edges = 0;
  std::uint64_t rounds = 0;
};

/// Completes `in_mis` to a maximal independent set of `g` restricted to the
/// still-`alive` nodes. Every decided node gets `final_round` stamped into
/// `decided_round`. No-op (zero rounds) when nothing is alive.
CleanupStats clique_leader_cleanup(CliqueNetwork& net, const Graph& g,
                                   const std::vector<char>& alive,
                                   std::vector<char>& in_mis,
                                   std::vector<std::uint32_t>& decided_round,
                                   std::uint32_t final_round);

}  // namespace dmis
