#include "mis/clique_mis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/ops.h"
#include "mis/cleanup.h"
#include "mis/phase_wire.h"
#include "mis/registry_support.h"
#include "rng/pow2_prob.h"
#include "util/bits.h"
#include "util/check.h"

namespace dmis {

PhaseReplayOutcome replay_phase_center(const GatheredBall& ball,
                                       const SparsifiedParams& prm) {
  const int R = prm.phase_length;
  // The simulatable set: annotated ball members (all are S nodes, hence not
  // super-heavy). Members beyond the annotation radius are outside the
  // exactness cone for the center and are ignored.
  std::vector<NodeId> nodes;
  nodes.reserve(ball.annotations.size());
  for (const auto& [node, words] : ball.annotations) {
    (void)words;
    nodes.push_back(node);
  }
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<NodeId, int> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index.emplace(nodes[i], static_cast<int>(i));
  }
  DMIS_CHECK(index.contains(ball.center),
             "ball center " << ball.center << " has no annotation");

  const int k = static_cast<int>(nodes.size());
  std::vector<PhaseDecoration> deco(k);
  for (int i = 0; i < k; ++i) {
    deco[i] = decode_decoration(ball.annotations.at(nodes[i]));
  }
  std::vector<std::vector<int>> adj(k);
  for (const auto& [u, v] : ball.edges) {
    const auto iu = index.find(u);
    const auto iv = index.find(v);
    if (iu != index.end() && iv != index.end()) {
      adj[iu->second].push_back(iv->second);
      adj[iv->second].push_back(iu->second);
    }
  }

  std::vector<int> p_exp(k);
  for (int i = 0; i < k; ++i) p_exp[i] = deco[i].p0_exp;
  std::vector<char> removed(k, 0);
  std::vector<char> joined(k, 0);
  std::vector<char> beeps(k, 0);
  std::vector<char> heard(k, 0);
  std::vector<std::uint32_t> join_iter(k, kNeverDecided);
  std::vector<std::uint32_t> removed_iter(k, kNeverDecided);
  std::vector<std::uint64_t> realized(k, 0);

  for (int it = 0; it < R; ++it) {
    // Mirrors sparsified_mis exactly: beeps -> heard -> joins -> removals ->
    // probability updates (skipping nodes removed this iteration).
    for (int i = 0; i < k; ++i) {
      beeps[i] = 0;
      if (removed[i] != 0) continue;
      if (Pow2Prob(p_exp[i]).sample(
              sparsified_beep_word(deco[i].phase_seed, it))) {
        beeps[i] = 1;
        realized[i] |= (1ULL << it);
      }
    }
    for (int i = 0; i < k; ++i) {
      heard[i] = 0;
      if (removed[i] != 0) continue;
      if (((deco[i].superheavy_or_mask >> it) & 1) != 0) {
        heard[i] = 1;
        continue;
      }
      for (const int j : adj[i]) {
        if (beeps[j] != 0) {
          heard[i] = 1;
          break;
        }
      }
    }
    std::vector<int> joiners;
    for (int i = 0; i < k; ++i) {
      if (removed[i] != 0) continue;
      if (beeps[i] != 0 && heard[i] == 0) {
        joined[i] = 1;
        join_iter[i] = static_cast<std::uint32_t>(it);
        joiners.push_back(i);
      }
    }
    for (const int i : joiners) {
      removed[i] = 1;
      removed_iter[i] = static_cast<std::uint32_t>(it);
      for (const int j : adj[i]) {
        if (removed[j] == 0) {
          removed[j] = 1;
          removed_iter[j] = static_cast<std::uint32_t>(it);
        }
      }
    }
    for (int i = 0; i < k; ++i) {
      if (removed[i] != 0) continue;
      const Pow2Prob p(p_exp[i]);
      p_exp[i] = (heard[i] != 0 ? p.halved() : p.doubled_capped()).neg_exp();
    }
  }

  const int c = index.at(ball.center);
  PhaseReplayOutcome out;
  out.joined = joined[c] != 0;
  out.join_iter = join_iter[c];
  out.removed = removed[c] != 0;
  out.removed_iter = removed_iter[c];
  out.realized_beeps = realized[c];
  out.p_exp_end = p_exp[c];
  return out;
}

CliqueMisResult clique_mis(const Graph& g, const CliqueMisOptions& options) {
  const NodeId n = g.node_count();
  const SparsifiedParams& prm = options.params;
  DMIS_CHECK(!prm.immediate_superheavy_removal,
             "clique simulation requires phase-commit semantics");
  DMIS_CHECK(prm.phase_length >= 1 && prm.phase_length <= 63,
             "phase_length out of [1,63]: " << prm.phase_length);
  const int R = prm.phase_length;
  const double superheavy_threshold =
      std::ldexp(1.0, prm.superheavy_log2_threshold);

  CliqueMisResult result;
  MisRun& run = result.run;
  run.in_mis.assign(n, 0);
  run.decided_round.assign(n, kNeverDecided);
  if (n == 0) return result;

  CliqueNetwork net(n, options.randomness.fork(0xc11c), options.route_mode);
  net.set_fault_plane(options.faults);
  for (RoundObserver* o : options.observers) net.observers().attach(o);
  // Field widths for this run's phase messages: beep vectors are R bits.
  const WireContext ctx = WireContext::for_nodes(n, R);

  // Retry policy (robustness under an active fault plane): a phase whose
  // simulation is poisoned — a corrupted payload trips a typed decoder, a
  // dropped gather packet loses the center's annotation, the replay/
  // reconstruction cross-check fires — throws before any persistent state
  // (alive, p_exp, run) is touched, so the phase can simply be re-executed.
  // Retries draw a fresh per-phase seed stream (attempt 0 uses the original
  // source, keeping fault-free runs bit-identical) and stay charged.
  const bool retryable =
      options.faults != nullptr && options.faults->active();
  const auto on_phase_failure = [&](std::uint64_t attempt) {
    if (!retryable || attempt >= options.max_phase_retries) throw;
    net.note_phase_retry();
    ++result.stats.phase_retries;
  };

  std::uint64_t max_phases = options.max_phases;
  if (max_phases == 0) {
    const double logd = std::log2(static_cast<double>(g.max_degree()) + 2.0);
    max_phases = static_cast<std::uint64_t>(
        std::ceil(options.budget_constant * logd / static_cast<double>(R)));
    max_phases = std::max<std::uint64_t>(max_phases, 1);
  }

  std::vector<char> alive(n, 1);
  std::vector<int> p_exp(n, 1);
  std::uint64_t live = n;
  // Live-node frontier: the compact sorted list the per-phase loops iterate
  // (cost scales with undecided nodes, not n), compacted once per phase at
  // the apply step. `alive` stays authoritative for neighbor checks and the
  // leader cleanup. Nodes that died last phase keep their per-phase state
  // until the next phase's reset (the trace records it), then are scrubbed
  // once via `newly_dead` — dead nodes' sampled/superheavy/realized slots
  // are read through neighbor loops and must not go stale.
  std::vector<NodeId> live_nodes(n);
  for (NodeId v = 0; v < n; ++v) live_nodes[v] = v;
  std::vector<NodeId> newly_dead;

  std::vector<char> superheavy(n, 0);
  std::vector<char> sampled(n, 0);
  std::vector<std::uint64_t> seeds(n, 0);
  std::vector<std::uint64_t> committed(n, 0);   // super-heavy beep vectors
  std::vector<std::uint64_t> sh_or(n, 0);       // OR of SH neighbors' vectors
  std::vector<std::uint64_t> realized(n, 0);    // per-phase realized beeps
  std::vector<std::uint32_t> join_iter(n, kNeverDecided);
  std::vector<std::uint32_t> removed_iter(n, kNeverDecided);
  std::vector<int> p_exp_end(n, 1);

  std::uint64_t phase = 0;
  for (; phase < max_phases && live > 0; ++phase) {
    const std::uint64_t t0 = phase * static_cast<std::uint64_t>(R);

    SparsifiedPhaseRecord record;
    const bool tracing = static_cast<bool>(options.trace);
    if (tracing) {
      record.phase = phase;
      record.live_at_start = live;
      record.alive_start.assign(alive.begin(), alive.end());
      record.p_exp_start.assign(p_exp.begin(), p_exp.end());
      record.max_sampled_degree = 0;
    }

    const auto run_phase = [&](const RandomSource& phase_rng) {
      // --- Step 1: one clique round exchanging p_{t0}(v) over graph
      // edges. ---
      std::uint64_t directed_live_pairs = 0;
      for (const NodeId v : live_nodes) {
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) ++directed_live_pairs;
        }
      }
      net.charge_neighborhood_round(WireMessageType::kSparsifiedOpener,
                                    directed_live_pairs,
                                    encoded_bits<SparsifiedOpenerMsg>(ctx));

      // Scrub nodes that died last phase (their slots read as silent from
      // now on, exactly as the old whole-array reset left them), then reset
      // only the frontier. Idempotent across phase retries.
      for (const NodeId v : newly_dead) {
        superheavy[v] = 0;
        sampled[v] = 0;
        committed[v] = 0;
        sh_or[v] = 0;
        realized[v] = 0;
        join_iter[v] = kNeverDecided;
        removed_iter[v] = kNeverDecided;
      }
      newly_dead.clear();
      for (const NodeId v : live_nodes) {
        superheavy[v] = 0;
        sampled[v] = 0;
        committed[v] = 0;
        sh_or[v] = 0;
        realized[v] = 0;
        join_iter[v] = kNeverDecided;
        removed_iter[v] = kNeverDecided;
        double d0 = 0.0;
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) d0 += Pow2Prob(p_exp[u]).value();
        }
        superheavy[v] = (d0 >= superheavy_threshold) ? 1 : 0;
        seeds[v] = sparsified_phase_seed(phase_rng, v, phase);
      }

      // --- Step 2: super-heavy nodes commit and send their beep
      // vectors. ---
      std::uint64_t sh_messages = 0;
      for (const NodeId v : live_nodes) {
        if (superheavy[v] == 0) continue;
        int exp = p_exp[v];
        for (int i = 0; i < R; ++i) {
          if (Pow2Prob(exp).sample(sparsified_beep_word(seeds[v], i))) {
            committed[v] |= (1ULL << i);
          }
          exp = Pow2Prob(exp).halved().neg_exp();
        }
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) ++sh_messages;
        }
      }
      net.charge_neighborhood_round(WireMessageType::kPhaseBeepVector,
                                    sh_messages,
                                    encoded_bits<PhaseBeepVectorMsg>(ctx));
      for (const NodeId v : live_nodes) {
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0 && superheavy[u] != 0) sh_or[v] |= committed[u];
        }
      }

      // --- Step 3: the sampled set S (locally decidable). ---
      // live_nodes is sorted, so s_nodes stays sorted (the reconstruction
      // below binary-searches it).
      std::vector<NodeId> s_nodes;
      for (const NodeId v : live_nodes) {
        if (superheavy[v] != 0) continue;
        const Pow2Prob p0(p_exp[v]);
        for (int i = 0; i < R; ++i) {
          if (p0.sample_boosted(sparsified_beep_word(seeds[v], i),
                                prm.sample_boost)) {
            sampled[v] = 1;
            s_nodes.push_back(v);
            break;
          }
        }
      }
      result.stats.max_sampled_size = std::max<std::uint64_t>(
          result.stats.max_sampled_size, s_nodes.size());

      // --- Step 4: gather balls in the decorated graph G*[S]. ---
      std::vector<PhaseReplayOutcome> outcomes(s_nodes.size());
      if (!s_nodes.empty()) {
        const InducedSubgraph sub = induced_subgraph(g, s_nodes);
        AnnotationTable annotations(static_cast<NodeId>(s_nodes.size()),
                                    kDecorationWords);
        for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
          const NodeId orig = sub.to_parent[i];
          const DecorationWords words = encode_decoration(
              {p_exp[orig], sh_or[orig], seeds[orig]});
          std::copy(words.begin(), words.end(),
                    annotations.row(static_cast<NodeId>(i)).begin());
        }
        const GatherResult gathered =
            gather_balls(net, sub.graph, annotations, 2 * R);
        result.stats.gather_rounds += gathered.stats.rounds;
        result.stats.gather_packets += gathered.stats.packets;
        result.stats.max_gather_source_load =
            std::max(result.stats.max_gather_source_load,
                     gathered.stats.max_source_load);
        result.stats.max_gather_dest_load = std::max(
            result.stats.max_gather_dest_load, gathered.stats.max_dest_load);

        for (std::size_t i = 0; i < s_nodes.size(); ++i) {
          const GatheredBall& ball = gathered.balls[i];
          result.stats.max_ball_members = std::max<std::uint64_t>(
              result.stats.max_ball_members, ball.members.size());
          std::uint64_t deg_s = 0;
          for (const NodeId u : g.neighbors(s_nodes[i])) {
            if (sampled[u] != 0) ++deg_s;
          }
          result.stats.max_sampled_degree =
              std::max(result.stats.max_sampled_degree, deg_s);
          if (tracing) {
            record.max_sampled_degree =
                std::max(record.max_sampled_degree, deg_s);
          }
          // --- Step 5: local replay (Lemma 2.13). ---
          outcomes[i] = replay_phase_center(ball, prm);
        }
      }

      // --- Step 6: S nodes broadcast realized beep vector + join
      // iteration. ---
      std::uint64_t s_messages = 0;
      for (std::size_t i = 0; i < s_nodes.size(); ++i) {
        const NodeId v = s_nodes[i];
        realized[v] = outcomes[i].realized_beeps;
        join_iter[v] = outcomes[i].join_iter;
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) ++s_messages;
        }
      }
      net.charge_neighborhood_round(WireMessageType::kPhaseOutcome,
                                    s_messages,
                                    encoded_bits<PhaseOutcomeMsg>(ctx));
      // Super-heavy nodes realize exactly their committed vector
      // (phase-commit semantics); recording it keeps the trace comparable
      // with the direct run. It adds nothing to heard masks (already in
      // sh_or).
      for (const NodeId v : live_nodes) {
        if (superheavy[v] != 0) realized[v] = committed[v];
      }

      // --- Local reconstruction: every node derives its own end-of-phase
      // state from the received vectors. ---
      for (const NodeId v : live_nodes) {
        // When does a neighbor join? (Joiners are S nodes.)
        std::uint32_t first_neighbor_join = kNeverDecided;
        std::uint64_t heard_mask = sh_or[v];
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] == 0) continue;
          heard_mask |= realized[u];
          first_neighbor_join = std::min(first_neighbor_join, join_iter[u]);
        }
        if (superheavy[v] != 0) {
          // Forced halving all phase; removal (if any) at the phase
          // boundary.
          int exp = p_exp[v];
          for (int i = 0; i < R; ++i) exp = Pow2Prob(exp).halved().neg_exp();
          p_exp_end[v] = exp;
          removed_iter[v] = first_neighbor_join;  // kNeverDecided if none
          continue;
        }
        // Non-super-heavy: replay the p rule against the heard mask. The
        // node freezes at the iteration it is removed (own join or neighbor
        // join).
        const std::uint32_t own_join = sampled[v] != 0 ? join_iter[v]
                                                       : kNeverDecided;
        const std::uint32_t frozen_at =
            std::min(own_join, first_neighbor_join);
        int exp = p_exp[v];
        for (int i = 0; i < R; ++i) {
          if (static_cast<std::uint32_t>(i) >= frozen_at) break;
          const Pow2Prob p(exp);
          const bool h = ((heard_mask >> i) & 1) != 0;
          exp = (h ? p.halved() : p.doubled_capped()).neg_exp();
        }
        p_exp_end[v] = exp;
        removed_iter[v] = frozen_at;
        if (sampled[v] != 0) {
          // Cross-check the reconstruction against the ball replay.
          const auto it =
              std::lower_bound(s_nodes.begin(), s_nodes.end(), v);
          const std::size_t i = static_cast<std::size_t>(it - s_nodes.begin());
          DMIS_ASSERT(outcomes[i].removed_iter == frozen_at ||
                          (!outcomes[i].removed && frozen_at == kNeverDecided),
                      "replay/reconstruction removal mismatch at node " << v);
          DMIS_ASSERT(frozen_at != kNeverDecided ||
                          outcomes[i].p_exp_end == exp,
                      "replay/reconstruction p mismatch at node " << v);
        }
      }

      // --- Apply the phase outcome. ---
      for (const NodeId v : live_nodes) {
        // Dying nodes freeze their p at the removal point too, matching the
        // direct run's persistent array (trace comparability across phases).
        p_exp[v] = p_exp_end[v];
        if (sampled[v] != 0 && join_iter[v] != kNeverDecided) {
          run.in_mis[v] = 1;
          run.decided_round[v] =
              static_cast<std::uint32_t>(t0 + join_iter[v]);
          alive[v] = 0;
          newly_dead.push_back(v);
        } else if (removed_iter[v] != kNeverDecided) {
          run.decided_round[v] =
              static_cast<std::uint32_t>(t0 + removed_iter[v]);
          alive[v] = 0;
          newly_dead.push_back(v);
        }
      }
      if (!newly_dead.empty()) {
        live_nodes.erase(
            std::remove_if(live_nodes.begin(), live_nodes.end(),
                           [&](NodeId v) { return alive[v] == 0; }),
            live_nodes.end());
        live -= newly_dead.size();
        // Departure event to the substrate: live_count() tracks the
        // frontier, and fault-delayed packets parked for dead nodes drop.
        net.retire_nodes(newly_dead);
      }

      if (tracing) {
        record.superheavy.assign(superheavy.begin(), superheavy.end());
        record.sampled.assign(sampled.begin(), sampled.end());
        record.realized_beeps.assign(realized.begin(), realized.end());
        record.join_iter.assign(join_iter.begin(), join_iter.end());
        record.removed_iter.assign(removed_iter.begin(), removed_iter.end());
        record.p_exp_end.assign(p_exp_end.begin(), p_exp_end.end());
        options.trace(record);
      }
    };

    for (std::uint64_t attempt = 0;; ++attempt) {
      const RandomSource phase_rng =
          attempt == 0 ? options.randomness
                       : options.randomness.fork(mix64(0x9e7f, phase, attempt));
      try {
        run_phase(phase_rng);
        break;
      } catch (const PreconditionError&) {
        on_phase_failure(attempt);
      } catch (const InvariantError&) {
        on_phase_failure(attempt);
      }
    }
  }
  result.stats.phases = phase;

  // --- Part 2: solve the residual graph at an elected leader (Lemma 2.11
  // guarantees it is small). ---
  const auto final_round =
      static_cast<std::uint32_t>(phase * static_cast<std::uint64_t>(R));
  for (std::uint64_t attempt = 0;; ++attempt) {
    // The cleanup mutates the result in place; snapshot so a poisoned
    // cleanup (corrupted residual-edge decode) can be retried from the
    // pre-cleanup state.
    const std::vector<char> alive_before = alive;
    const std::vector<char> in_mis_before = run.in_mis;
    const std::vector<std::uint32_t> decided_before = run.decided_round;
    try {
      const CleanupStats cleanup = clique_leader_cleanup(
          net, g, alive, run.in_mis, run.decided_round, final_round);
      result.stats.residual_nodes = cleanup.residual_nodes;
      result.stats.residual_edges = cleanup.residual_edges;
      result.stats.cleanup_rounds = cleanup.rounds;
      break;
    } catch (const PreconditionError&) {
      alive = alive_before;
      run.in_mis = in_mis_before;
      run.decided_round = decided_before;
      on_phase_failure(attempt);
    } catch (const InvariantError&) {
      alive = alive_before;
      run.in_mis = in_mis_before;
      run.decided_round = decided_before;
      on_phase_failure(attempt);
    }
  }

  run.costs = net.costs();
  run.rounds = run.costs.rounds;
  return result;
}


namespace {

constexpr OptionField kCliqueOptionFields[] = {
    DMIS_SPARSIFIED_PARAM_OPTION_FIELDS,
    {"budget_constant", OptionType::kDouble, {.d = 6.0},
     "phase budget when max_rounds=0: ceil(c * log2(D+2) / R)"},
    {"max_phase_retries", OptionType::kU64, {.u = 3},
     "re-executions of a fault-poisoned phase before the failure propagates"},
};

AlgoResult run_clique_descriptor(const Graph& g, const AlgoOptions& options,
                                 const AlgoRunRequest& request) {
  CliqueMisOptions o;
  o.params = sparsified_params_from_options(options, g.node_count());
  o.randomness = RandomSource(request.seed);
  o.max_phases = request.max_rounds;  // 0 = derive from the graph
  o.budget_constant = options.get_double("budget_constant");
  o.max_phase_retries = options.get_u64("max_phase_retries");
  o.observers = request.observers;
  o.faults = request.faults;
  CliqueMisResult r = clique_mis(g, o);
  AlgoResult out;
  out.run = std::move(r.run);
  out.retries = r.stats.phase_retries;
  return out;
}

}  // namespace

const AlgorithmDescriptor& clique_mis_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "clique",
      .summary = "the headline congested-clique MIS: phase-wise simulation "
                 "of the sparsified dynamic + leader cleanup (Theorem 1.1)",
      .paper_ref = "§2.4",
      .model = AlgoModel::kClique,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = false},
      .max_nodes = kMaxWireNodes,
      .options = kCliqueOptionFields,
      .run = run_clique_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
