// MIS in Õ(sqrt(log Δ)) rounds of the congested clique — paper §2.4, the
// headline algorithm (Theorem 1.1).
//
// Part 1 simulates O(log Δ) iterations of the sparsified algorithm (§2.3) a
// phase at a time. Each phase of R iterations costs O(log log n) clique
// rounds:
//   1. one round: live nodes exchange p_{t0}(v); super-heavy status decided;
//   2. one round: super-heavy nodes send their committed beep vector (their
//      p halves deterministically, so the whole phase's beeps are
//      predictable) to neighbors;
//   3. every node locally determines membership in the sampled set S
//      (∃ iteration i: r_i(v) <= 2^boost · p_{t0}(v)) — a superset of every
//      node that could beep this phase;
//   4. ball gathering on the decorated graph G*[S] by graph exponentiation
//      (clique/gather.h, Lemma 2.14), O(1) routed batches per doubling;
//   5. every S node *locally replays* the phase from its gathered ball
//      (Lemma 2.13) — replay_phase_center below;
//   6. one round: S nodes send their realized beep vector and MIS-join
//      iteration to neighbors; every node then reconstructs its own p
//      trajectory and removal locally.
// Part 2: the residual graph (O(n) edges after Θ(log Δ) iterations, Lemma
// 2.11) is routed to an elected leader, which solves it greedily and
// announces — O(1) rounds.
//
// Exactness: the gathered radius is 2R, not the paper's R. A join at
// iteration i silences the joiner's whole neighborhood from iteration i+1,
// so influence travels 2 hops per iteration; radius 2R makes the center's
// replay provably exact, and the equivalence test demands bit-identical
// agreement with the direct run of sparsified_mis under the same seed.
#pragma once

#include <cstdint>

#include "clique/gather.h"
#include "clique/network.h"
#include "graph/graph.h"
#include "mis/common.h"
#include "mis/sparsified.h"

namespace dmis {

struct CliqueMisOptions {
  /// Must use phase-commit semantics (immediate_superheavy_removal = false).
  SparsifiedParams params;
  RandomSource randomness{0};
  RouteMode route_mode = RouteMode::kAccountedLenzen;
  /// Phases simulated before the cleanup. 0 = derive from the graph:
  /// ceil(budget_constant * log2(Δ+2) / R).
  std::uint64_t max_phases = 0;
  double budget_constant = 6.0;
  /// Optional per-phase trace (same record type as the direct run, so the
  /// equivalence test can compare field by field).
  SparsifiedTraceSink trace;
  /// Analysis-side observers, attached to the clique network.
  std::vector<RoundObserver*> observers;
  /// Optional fault plane attached to the clique's routing choke point
  /// (runtime/faults.h). Null or inactive: bit-identical to fault-free.
  FaultPlane* faults = nullptr;
  /// Retry budget per phase (and for the cleanup) under an active fault
  /// plane: a phase whose gather/replay is poisoned — a corrupted payload
  /// trips a decoder, a dropped packet loses a ball's center annotation —
  /// is re-executed with a fresh per-phase RNG stream, up to this many
  /// times, before the failure propagates. Retried rounds stay charged
  /// (re-execution is real communication); retries surface in
  /// CostAccounting::retries and CliqueMisStats::phase_retries.
  std::uint64_t max_phase_retries = 3;
};

struct CliqueMisStats {
  std::uint64_t phases = 0;
  std::uint64_t phase_retries = 0;
  std::uint64_t gather_rounds = 0;
  std::uint64_t gather_packets = 0;
  std::uint64_t max_gather_source_load = 0;
  std::uint64_t max_gather_dest_load = 0;
  std::uint64_t max_sampled_degree = 0;  ///< over all phases (Lemma 2.12)
  std::uint64_t max_ball_members = 0;
  std::uint64_t max_sampled_size = 0;
  std::uint64_t residual_nodes = 0;  ///< |B| entering part 2
  std::uint64_t residual_edges = 0;  ///< |E(G[B])| (Lemma 2.11)
  std::uint64_t cleanup_rounds = 0;
};

struct CliqueMisResult {
  MisRun run;  ///< costs are congested-clique rounds/messages/bits
  CliqueMisStats stats;
};

CliqueMisResult clique_mis(const Graph& g, const CliqueMisOptions& options);

/// Outcome of one node's local phase replay (exposed for unit tests).
struct PhaseReplayOutcome {
  bool joined = false;
  std::uint32_t join_iter = kNeverDecided;
  bool removed = false;
  std::uint32_t removed_iter = kNeverDecided;
  std::uint64_t realized_beeps = 0;
  int p_exp_end = 1;
};

/// Replays one phase from a gathered ball and returns the center's exact
/// behaviour (Lemma 2.13). Ball members without annotations are outside the
/// exactness cone and ignored.
PhaseReplayOutcome replay_phase_center(const GatheredBall& ball,
                                       const SparsifiedParams& params);

}  // namespace dmis
