// Shared result types for every MIS algorithm in the suite.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "runtime/cost.h"

namespace dmis {

inline constexpr std::uint32_t kNeverDecided = static_cast<std::uint32_t>(-1);

/// Outcome of one algorithm execution.
struct MisRun {
  /// Final membership mask (size n). For partial runs (fixed round budgets)
  /// this is the independent set computed so far.
  std::vector<char> in_mis;
  /// Per node: the algorithm round in which it became decided — joined the
  /// MIS or got an MIS neighbor. kNeverDecided for still-live nodes.
  std::vector<std::uint32_t> decided_round;
  /// Rounds of the algorithm's own model (CONGEST rounds for CONGEST
  /// algorithms, beep rounds for beeping, clique rounds for clique).
  std::uint64_t rounds = 0;
  CostAccounting costs;

  std::uint64_t mis_size() const {
    std::uint64_t s = 0;
    for (const char c : in_mis) s += (c != 0) ? 1 : 0;
    return s;
  }

  std::uint64_t undecided_count() const {
    std::uint64_t s = 0;
    for (const std::uint32_t r : decided_round) {
      s += (r == kNeverDecided) ? 1 : 0;
    }
    return s;
  }

  /// Mask of nodes still undecided (the residual set B of paper §2.4).
  std::vector<char> undecided_mask() const {
    std::vector<char> mask(decided_round.size(), 0);
    for (std::size_t v = 0; v < decided_round.size(); ++v) {
      mask[v] = (decided_round[v] == kNeverDecided) ? 1 : 0;
    }
    return mask;
  }
};

}  // namespace dmis
