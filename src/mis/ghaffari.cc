#include "mis/ghaffari.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "rng/mix.h"
#include "rng/pow2_prob.h"
#include "runtime/congest.h"
#include "mis/registry.h"
#include "util/check.h"

namespace dmis {

std::uint64_t ghaffari_personal_seed(const RandomSource& rs, NodeId v) {
  return rs.word(RngStream::kGhaffariMark, v, 0);
}

std::uint64_t ghaffari_mark_word(std::uint64_t personal_seed,
                                 std::uint64_t t) {
  return mix64(personal_seed, t);
}

namespace {

class GhaffariProgram final : public CongestProgram {
 public:
  GhaffariProgram(NodeId self, const RandomSource& rs)
      : self_(self), seed_(ghaffari_personal_seed(rs, self)) {}

  void send(std::uint64_t round, CongestOutbox& out) override {
    if (round % 2 == 0) {
      const std::uint64_t t = round / 2;
      marked_ = p_.sample(ghaffari_mark_word(seed_, t));
      out.broadcast(GhaffariProbeMsg{marked_, p_.neg_exp()});
    } else if (joined_) {
      out.broadcast(JoinAnnounceMsg{});
    }
  }

  bool receive(std::uint64_t round,
               std::span<const CongestMessage> inbox) override {
    if (round % 2 == 0) {
      double d = 0.0;
      bool marked_neighbor = false;
      for (const CongestMessage& m : inbox) {
        const auto msg = decode_message<GhaffariProbeMsg>(kProbeCtx, m);
        d += Pow2Prob(msg.p_exp).value();
        marked_neighbor = marked_neighbor || msg.marked;
      }
      joined_ = marked_ && !marked_neighbor;
      p_ = (d >= 2.0) ? p_.halved() : p_.doubled_capped();
    } else {
      if (joined_) {
        halted_ = true;
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      } else if (!inbox.empty()) {
        halted_ = true;
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      }
    }
    return halted_;
  }

  bool halted() const override { return halted_; }
  bool joined() const { return joined_ && halted_; }
  std::uint32_t decided_round() const { return decided_round_; }
  int p_exp() const { return p_.neg_exp(); }

 private:
  // The probe's fields are context-free (flag + 7-bit exponent), so any
  // context measures it identically; pin one.
  static constexpr WireContext kProbeCtx = WireContext::for_nodes(2);

  NodeId self_;
  std::uint64_t seed_;
  Pow2Prob p_ = Pow2Prob::half();
  bool marked_ = false;
  bool joined_ = false;
  bool halted_ = false;
  std::uint32_t decided_round_ = kNeverDecided;
};

}  // namespace

GhaffariBallOutcome ghaffari_simulate_ball(const Graph& g,
                                           std::span<const NodeId> members,
                                           NodeId center, int iterations,
                                           const RandomSource& randomness) {
  DMIS_CHECK(std::is_sorted(members.begin(), members.end()),
             "members must be sorted");
  const int k = static_cast<int>(members.size());
  auto local_index = [&](NodeId u) -> int {
    const auto it = std::lower_bound(members.begin(), members.end(), u);
    return (it != members.end() && *it == u)
               ? static_cast<int>(it - members.begin())
               : -1;
  };
  const int c = local_index(center);
  DMIS_CHECK(c >= 0, "center " << center << " not among members");

  std::vector<std::uint64_t> seed(k);
  std::vector<std::vector<int>> adj(k);
  for (int i = 0; i < k; ++i) {
    seed[i] = ghaffari_personal_seed(randomness, members[i]);
    for (const NodeId u : g.neighbors(members[i])) {
      const int j = local_index(u);
      if (j >= 0) adj[i].push_back(j);
    }
  }

  std::vector<int> p_exp(k, 1);
  std::vector<char> live(k, 1);
  std::vector<char> marked(k, 0);
  GhaffariBallOutcome out;
  for (int t = 0; t < iterations; ++t) {
    for (int i = 0; i < k; ++i) {
      marked[i] = (live[i] != 0 &&
                   Pow2Prob(p_exp[i]).sample(ghaffari_mark_word(seed[i], t)))
                      ? 1
                      : 0;
    }
    std::vector<char> joins(k, 0);
    std::vector<int> new_p(p_exp);
    for (int i = 0; i < k; ++i) {
      if (live[i] == 0) continue;
      double d = 0.0;
      bool marked_neighbor = false;
      for (const int j : adj[i]) {
        if (live[j] == 0) continue;
        d += Pow2Prob(p_exp[j]).value();
        marked_neighbor = marked_neighbor || (marked[j] != 0);
      }
      joins[i] = (marked[i] != 0 && !marked_neighbor) ? 1 : 0;
      const Pow2Prob p(p_exp[i]);
      new_p[i] = (d >= 2.0 ? p.halved() : p.doubled_capped()).neg_exp();
    }
    p_exp = std::move(new_p);
    for (int i = 0; i < k; ++i) {
      if (joins[i] == 0) continue;
      if (live[i] != 0 && i == c && !out.decided) {
        out.decided = true;
        out.joined = true;
        out.decided_iter = static_cast<std::uint32_t>(t);
      }
      live[i] = 0;
      for (const int j : adj[i]) {
        if (live[j] != 0) {
          live[j] = 0;
          if (j == c && !out.decided) {
            out.decided = true;
            out.decided_iter = static_cast<std::uint32_t>(t);
          }
        }
      }
    }
    if (live[c] == 0) break;
  }
  return out;
}

MisRun ghaffari_mis(const Graph& g, const GhaffariOptions& options) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.reserve(n);
  std::vector<const GhaffariProgram*> views;
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = std::make_unique<GhaffariProgram>(v, options.randomness);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  CongestEngine engine(g, std::move(programs), congest_bandwidth_bits(n),
                       options.threads);
  engine.set_fault_plane(options.faults);
  std::vector<char> alive;
  std::vector<int> p_exp;
  std::vector<char> in_mis;
  std::vector<char> decided;
  if (!options.observers.empty()) {
    for (RoundObserver* o : options.observers) engine.observers().attach(o);
    alive.assign(n, 1);
    p_exp.assign(n, 1);
    in_mis.assign(n, 0);
    decided.assign(n, 0);
    SimulationEngine::AnalysisProbe probe;
    probe.iteration_begin =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 0) return round / 2;
      return std::nullopt;
    };
    probe.iteration_end =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 1) return round / 2;
      return std::nullopt;
    };
    probe.snapshot = [&views, &alive, &p_exp, &in_mis, &decided,
                      n](PhaseMarkerKind) {
      for (NodeId v = 0; v < n; ++v) {
        alive[v] = views[v]->halted() ? 0 : 1;
        p_exp[v] = views[v]->p_exp();
        in_mis[v] = views[v]->joined() ? 1 : 0;
        decided[v] = views[v]->halted() ? 1 : 0;
      }
      return MisAnalysisView{alive, p_exp, {}, in_mis, decided};
    };
    engine.set_analysis_probe(std::move(probe));
  }
  engine.run(options.max_iterations * 2);
  MisRun run;
  run.in_mis.resize(n, 0);
  run.decided_round.resize(n, kNeverDecided);
  for (NodeId v = 0; v < n; ++v) {
    run.in_mis[v] = views[v]->joined() ? 1 : 0;
    run.decided_round[v] = views[v]->decided_round();
  }
  run.costs = engine.costs();
  run.rounds = run.costs.rounds;
  return run;
}


namespace {

AlgoResult run_ghaffari_descriptor(const Graph& g, const AlgoOptions&,
                                   const AlgoRunRequest& request) {
  GhaffariOptions o;
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_iterations = request.max_rounds;
  o.observers = request.observers;
  o.faults = request.faults;
  o.threads = request.threads;
  AlgoResult out;
  out.run = ghaffari_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& ghaffari_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "ghaffari",
      .summary = "Ghaffari SODA'16 dynamic on the CONGEST engine, O(log D) "
                 "rounds (the baseline Theorem 1.1 improves)",
      .paper_ref = "§2.1",
      .model = AlgoModel::kCongest,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .max_nodes = kMaxWireNodes,
      .options = {},
      .run = run_ghaffari_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
