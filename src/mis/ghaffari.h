// The O(log Δ)-round CONGEST MIS dynamic of [Ghaffari, SODA'16] as recapped
// in paper §2.1 — the starting point the sparsified algorithm refines, the
// baseline the headline result improves on (E1), and the algorithm the
// low-degree fast path (§2.5) replays locally.
//
// Per iteration (two CONGEST rounds):
//   A) every live node v marks itself with probability p_t(v) and broadcasts
//      (p_t(v), marked). If v is marked and no neighbor is marked, v joins
//      the MIS. Then p_{t+1}(v) = p_t(v)/2 if d_t(v) = Σ_{u∈N(v)} p_t(u) >= 2,
//      else min{2 p_t(v), 1/2}.
//   B) joiners announce; joiners and their neighbors halt.
//
// Marking randomness is r_t(v) = mix64(seed_v, t) with a per-node personal
// seed — the same derivation the §2.5 local replay uses, so the two can be
// compared bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

struct GhaffariOptions {
  RandomSource randomness{0};
  /// Cap on iterations (each = 2 CONGEST rounds). The run stops early once
  /// all nodes decide. Set to C*log2(Δ) to study partial (shattering) runs.
  std::uint64_t max_iterations = 4096;
  /// Analysis-side observers, attached to the engine.
  std::vector<RoundObserver*> observers;
  /// Optional fault plane attached to the CONGEST engine (runtime/faults.h).
  FaultPlane* faults = nullptr;
  /// Worker threads for the engine's node fan-outs (results are identical
  /// at any thread count).
  int threads = 1;
};

/// Personal marking seed of node v (shared with the §2.5 local replay).
std::uint64_t ghaffari_personal_seed(const RandomSource& rs, NodeId v);

/// Marking word of node v at iteration t.
std::uint64_t ghaffari_mark_word(std::uint64_t personal_seed, std::uint64_t t);

MisRun ghaffari_mis(const Graph& g, const GhaffariOptions& options);

/// Centralized ball replay of the dynamic: simulates `iterations` over the
/// subgraph induced by `members` (sorted node ids) and returns the exact
/// outcome of `center`, provided members ⊇ the radius-2·iterations ball of
/// center (influence travels 2 hops per iteration). Mirrors ghaffari_mis
/// bit for bit; used by the local-computation oracle (mis/local_oracle.h).
struct GhaffariBallOutcome {
  bool decided = false;
  bool joined = false;
  std::uint32_t decided_iter = kNeverDecided;
};
GhaffariBallOutcome ghaffari_simulate_ball(const Graph& g,
                                           std::span<const NodeId> members,
                                           NodeId center, int iterations,
                                           const RandomSource& randomness);

}  // namespace dmis
