#include "mis/greedy.h"

#include <numeric>

#include "mis/registry.h"
#include "util/check.h"

namespace dmis {

std::vector<char> greedy_mis(const Graph& g) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), NodeId{0});
  return greedy_mis(g, order);
}

std::vector<char> greedy_mis(const Graph& g, std::span<const NodeId> order) {
  DMIS_CHECK(order.size() == g.node_count(),
             "order size " << order.size() << " != n " << g.node_count());
  std::vector<char> in_mis(g.node_count(), 0);
  std::vector<char> blocked(g.node_count(), 0);
  std::vector<char> seen(g.node_count(), 0);
  for (const NodeId v : order) {
    DMIS_CHECK(v < g.node_count(), "order entry out of range: " << v);
    DMIS_CHECK(seen[v] == 0, "order is not a permutation (repeat " << v << ")");
    seen[v] = 1;
    if (blocked[v] != 0) continue;
    in_mis[v] = 1;
    blocked[v] = 1;
    for (const NodeId u : g.neighbors(v)) blocked[u] = 1;
  }
  return in_mis;
}

namespace {

AlgoResult run_greedy_descriptor(const Graph& g, const AlgoOptions&,
                                 const AlgoRunRequest&) {
  AlgoResult out;
  out.run.in_mis = greedy_mis(g);
  out.run.decided_round.assign(g.node_count(), 0);
  return out;
}

}  // namespace

const AlgorithmDescriptor& greedy_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "greedy",
      .summary = "sequential id-order greedy MIS (baseline; the residual "
                 "cleanup subroutine)",
      .paper_ref = "§2.4 part 2",
      .model = AlgoModel::kCentralized,
      .output = AlgoOutputKind::kMis,
      .caps = {},
      .options = {},
      .run = run_greedy_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
