// Sequential greedy MIS — the classic baseline, and the subroutine the
// congested-clique leader runs on the residual graph (paper §2.4, part 2).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dmis {

/// Greedy MIS scanning nodes in id order.
std::vector<char> greedy_mis(const Graph& g);

/// Greedy MIS scanning nodes in the given order (a permutation of 0..n-1).
std::vector<char> greedy_mis(const Graph& g, std::span<const NodeId> order);

}  // namespace dmis
