#include "mis/halfduplex_beeping.h"

#include <memory>
#include <optional>

#include "rng/pow2_prob.h"
#include "runtime/beeping.h"
#include "mis/registry.h"
#include "util/bits.h"
#include "util/check.h"

namespace dmis {
namespace {

class HalfDuplexProgram final : public BeepProgram {
 public:
  HalfDuplexProgram(NodeId self, NodeId n, const RandomSource& rs)
      : self_(self), id_bits_(bits_for_range(n < 2 ? 2 : n)), rs_(rs) {}

  BeepAction act(std::uint64_t round) override {
    const std::uint64_t len = iteration_length();
    const std::uint64_t pos = round % len;
    if (pos == 0) {
      const std::uint64_t iter = round / len;
      candidate_ =
          p_.sample(rs_.word(RngStream::kBeep, self_, iter));
      aborted_ = false;
      heard_candidacy_ = false;
      return candidate_ ? BeepAction::kBeep : BeepAction::kListen;
    }
    if (pos <= static_cast<std::uint64_t>(id_bits_)) {
      // Verification: surviving candidates play their id, MSB first.
      if (candidate_ && !aborted_) {
        const int bit_index = id_bits_ - static_cast<int>(pos);
        const bool bit = ((self_ >> bit_index) & 1u) != 0;
        verifying_bit_ = bit;
        return bit ? BeepAction::kBeep : BeepAction::kListen;
      }
      verifying_bit_ = false;
      return BeepAction::kListen;
    }
    // Announce round.
    if (candidate_ && !aborted_) {
      joined_ = true;
      return BeepAction::kBeep;
    }
    return BeepAction::kListen;
  }

  bool feedback(std::uint64_t round, bool heard) override {
    const std::uint64_t len = iteration_length();
    const std::uint64_t pos = round % len;
    if (pos == 0) {
      // Only listeners get real feedback in half duplex; the engine hands
      // beeping nodes `false` already.
      heard_candidacy_ = heard;
      return false;
    }
    if (pos <= static_cast<std::uint64_t>(id_bits_)) {
      if (candidate_ && !aborted_ && !verifying_bit_ && heard) {
        aborted_ = true;
      }
      return false;
    }
    // Announce feedback: decide, halt, or update p for the next iteration.
    const auto iter = static_cast<std::uint32_t>(round / len);
    if (joined_) {
      halted_ = true;
      decided_round_ = iter;
      return true;
    }
    if (heard) {
      halted_ = true;  // an MIS neighbor announced
      decided_round_ = iter;
      return true;
    }
    if (candidate_) {
      // Lost verification: contention witnessed — halve.
      p_ = p_.halved();
    } else {
      p_ = heard_candidacy_ ? p_.halved() : p_.doubled_capped();
    }
    return false;
  }

  bool halted() const override { return halted_; }
  bool joined() const { return joined_; }
  std::uint32_t decided_round() const { return decided_round_; }
  std::uint64_t iteration_length() const {
    return 2 + static_cast<std::uint64_t>(id_bits_);
  }

 private:
  NodeId self_;
  int id_bits_;
  RandomSource rs_;
  Pow2Prob p_ = Pow2Prob::half();
  bool candidate_ = false;
  bool aborted_ = false;
  bool verifying_bit_ = false;
  bool heard_candidacy_ = false;
  bool joined_ = false;
  bool halted_ = false;
  std::uint32_t decided_round_ = kNeverDecided;
};

}  // namespace

MisRun halfduplex_beeping_mis(const Graph& g,
                              const HalfDuplexBeepingOptions& options) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<BeepProgram>> programs;
  programs.reserve(n);
  std::vector<const HalfDuplexProgram*> views;
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = std::make_unique<HalfDuplexProgram>(v, n, options.randomness);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BeepEngine engine(g, std::move(programs), DuplexMode::kHalfDuplex,
                    options.threads);
  engine.set_fault_plane(options.faults);
  const std::uint64_t len =
      2 + static_cast<std::uint64_t>(bits_for_range(n < 2 ? 2 : n));
  std::vector<char> alive;
  std::vector<char> in_mis;
  std::vector<char> decided;
  if (!options.observers.empty()) {
    for (RoundObserver* o : options.observers) engine.observers().attach(o);
    alive.assign(n, 1);
    in_mis.assign(n, 0);
    decided.assign(n, 0);
    SimulationEngine::AnalysisProbe probe;
    probe.iteration_begin =
        [len](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % len == 0) return round / len;
      return std::nullopt;
    };
    probe.iteration_end =
        [len](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % len == len - 1) return round / len;
      return std::nullopt;
    };
    probe.snapshot = [&views, &alive, &in_mis, &decided, n](PhaseMarkerKind) {
      for (NodeId v = 0; v < n; ++v) {
        alive[v] = views[v]->halted() ? 0 : 1;
        in_mis[v] = (views[v]->joined() && views[v]->halted()) ? 1 : 0;
        decided[v] = views[v]->halted() ? 1 : 0;
      }
      return MisAnalysisView{alive, {}, {}, in_mis, decided};
    };
    engine.set_analysis_probe(std::move(probe));
  }
  engine.run(options.max_iterations * len);
  MisRun run;
  run.in_mis.resize(n, 0);
  run.decided_round.resize(n, kNeverDecided);
  for (NodeId v = 0; v < n; ++v) {
    run.in_mis[v] = views[v]->joined() ? 1 : 0;
    run.decided_round[v] = views[v]->decided_round();
  }
  run.costs = engine.costs();
  run.rounds = run.costs.rounds;
  return run;
}


namespace {

AlgoResult run_halfduplex_descriptor(const Graph& g, const AlgoOptions&,
                                     const AlgoRunRequest& request) {
  HalfDuplexBeepingOptions o;
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_iterations = request.max_rounds;
  o.observers = request.observers;
  o.faults = request.faults;
  o.threads = request.threads;
  AlgoResult out;
  out.run = halfduplex_beeping_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& halfduplex_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "halfduplex",
      .summary = "MIS in the half-duplex beeping model (footnote 2): "
                 "id-verification collision resolution, Theta(log n)/iter",
      .paper_ref = "footnote 2",
      .model = AlgoModel::kBeeping,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .options = {},
      .run = run_halfduplex_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
