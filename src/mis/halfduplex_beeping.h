// MIS in the HALF-duplex beeping model — the strictly weaker model the
// paper's footnote 2 discusses (Holzer–Lynch [20, 21]): a beeping node
// cannot carrier-sense, so the §2.2 rule "join if you beeped and heard
// nothing" is unsound (two adjacent beepers hear nothing and would both
// join).
//
// The fix is the classic collision-resolution pattern of the beeping
// literature (cf. Afek et al. [1]): an iteration has three stages —
//   1. *Candidacy* (1 round): each live node beeps with probability p_t(v).
//      Listeners update p exactly as in §2.2 (heard → halve, else double-
//      capped); a candidate that loses verification also halves (it just
//      witnessed contention).
//   2. *Verification* (ceil(log2 n) rounds): every candidate plays its own
//      id, MSB first — beep on a 1 bit, listen on a 0 bit. A candidate that
//      hears a beep while listening aborts (and goes silent). For any two
//      adjacent candidates, at the first differing bit exactly one beeps
//      and the other, still listening, aborts: NO two adjacent candidates
//      survive — deterministically, unlike a random-bits variant.
//   3. *Announce* (1 round): survivors join the MIS and beep; every
//      listener that hears learns it has an MIS neighbor. Joiners and their
//      neighbors leave.
//
// Cost: Θ(log n) rounds per iteration instead of 2 — the qualitative price
// of losing full duplex that footnote 2's comparison is about (experiment
// E14 measures it side by side).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

struct HalfDuplexBeepingOptions {
  RandomSource randomness{0};
  /// Cap on iterations (each = 2 + ceil(log2 n) beep rounds).
  std::uint64_t max_iterations = 8192;
  /// Analysis-side observers, attached to the engine.
  std::vector<RoundObserver*> observers;
  /// Optional fault plane attached to the beep engine (runtime/faults.h).
  FaultPlane* faults = nullptr;
  /// Worker threads for node stepping; results are thread-count invariant.
  int threads = 1;
};

MisRun halfduplex_beeping_mis(const Graph& g,
                              const HalfDuplexBeepingOptions& options);

}  // namespace dmis
