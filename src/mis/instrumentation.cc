#include "mis/instrumentation.h"

#include <cmath>

#include "rng/pow2_prob.h"
#include "util/check.h"

namespace dmis {
namespace {

// Thresholds exactly as defined in paper §2.2/§2.3.
constexpr double kLightD = 0.02;       // golden-1 / wrong-move-1 threshold
constexpr double kGolden2D = 0.01;     // d_t(v) > 0.01
constexpr double kGolden2Ratio = 0.01; // d' >= 0.01 d
constexpr double kHeavyD = 10.0;       // heavy node: d_t(u) > 10
constexpr double kShrink = 0.6;        // wrong-move-2: d_{t+1} > 0.6 d_t

}  // namespace

GoldenRoundAuditor::GoldenRoundAuditor(const Graph& graph) : graph_(graph) {
  const NodeId n = graph_.node_count();
  report_.node_golden.assign(n, 0);
  report_.node_rounds_alive.assign(n, 0);
  prev_d_.assign(n, 0.0);
  prev_dprime_.assign(n, 0.0);
  prev_p_exp_.assign(n, 0);
  prev_alive_.assign(n, 0);
  prev_superheavy_.assign(n, 0);
  golden_this_iter_.assign(n, 0);
  alive_this_iter_.assign(n, 0);
}

void GoldenRoundAuditor::begin_iteration(std::span<const char> alive,
                                         std::span<const int> p_exp,
                                         std::span<const char> superheavy) {
  const NodeId n = graph_.node_count();
  DMIS_CHECK(alive.size() == n && p_exp.size() == n, "snapshot size mismatch");
  DMIS_CHECK(superheavy.empty() || superheavy.size() == n,
             "superheavy mask size mismatch");
  auto is_sh = [&](NodeId v) {
    return !superheavy.empty() && superheavy[v] != 0;
  };

  // d_t over live nodes, then the heavy classification, then d'_t.
  std::vector<double> d(n, 0.0);
  std::vector<double> dprime(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] == 0) continue;
    double sum = 0.0;
    for (const NodeId u : graph_.neighbors(v)) {
      if (alive[u] != 0) sum += Pow2Prob(p_exp[u]).value();
    }
    d[v] = sum;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] == 0) continue;
    double sum = 0.0;
    for (const NodeId u : graph_.neighbors(v)) {
      if (alive[u] == 0) continue;
      const bool heavy = is_sh(u) || d[u] > kHeavyD;
      if (!heavy) sum += Pow2Prob(p_exp[u]).value();
    }
    dprime[v] = sum;
  }

  // Classify golden rounds and, against the previous snapshot, wrong moves.
  for (NodeId v = 0; v < n; ++v) {
    golden_this_iter_[v] = 0;
    alive_this_iter_[v] = alive[v];
    if (alive[v] == 0) continue;
    ++report_.observed_node_rounds;
    ++report_.node_rounds_alive[v];
    const bool golden1 =
        p_exp[v] == 1 && !is_sh(v) && d[v] <= kLightD;
    const bool golden2 =
        d[v] > kGolden2D && dprime[v] >= kGolden2Ratio * d[v];
    if (golden1) ++report_.golden1;
    if (golden2) ++report_.golden2;
    if (golden1 || golden2) {
      golden_this_iter_[v] = 1;
      ++report_.node_golden[v];
      ++report_.golden_rounds_total;
    }
    if (have_prev_ && prev_alive_[v] != 0) {
      // Wrong move (1): light and not super-heavy, yet p halved.
      if (prev_d_[v] <= kLightD && prev_superheavy_[v] == 0 &&
          p_exp[v] == prev_p_exp_[v] + 1) {
        ++report_.wrong_moves;
      }
      // Wrong move (2): heavy-dominated neighborhood failed to shrink.
      else if (prev_d_[v] > kGolden2D &&
               prev_dprime_[v] < kGolden2Ratio * prev_d_[v] &&
               d[v] > kShrink * prev_d_[v]) {
        ++report_.wrong_moves;
      }
    }
  }

  prev_d_ = std::move(d);
  prev_dprime_ = std::move(dprime);
  prev_p_exp_.assign(p_exp.begin(), p_exp.end());
  prev_alive_.assign(alive.begin(), alive.end());
  if (superheavy.empty()) {
    prev_superheavy_.assign(n, 0);
  } else {
    prev_superheavy_.assign(superheavy.begin(), superheavy.end());
  }
  have_prev_ = true;
}

void GoldenRoundAuditor::end_iteration(std::span<const char> alive_after) {
  const NodeId n = graph_.node_count();
  DMIS_CHECK(alive_after.size() == n, "snapshot size mismatch");
  for (NodeId v = 0; v < n; ++v) {
    if (golden_this_iter_[v] != 0 && alive_this_iter_[v] != 0 &&
        alive_after[v] == 0) {
      ++report_.golden_rounds_with_removal;
    }
  }
}

}  // namespace dmis
