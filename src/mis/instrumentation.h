// Analysis-side instrumentation for the paper's key lemmas (E3).
//
// The golden-round machinery (paper §2.2 and §2.3) is *analysis*, not
// algorithm: d_t(v) and d'_t(v) are quantities an omniscient observer
// computes, never communicated. The auditor watches a beeping or sparsified
// execution from outside and tallies, per node:
//   * golden type-1 rounds:  p_t(v) = 1/2, v not super-heavy, d_t(v) <= 0.02
//   * golden type-2 rounds:  d_t(v) > 0.01 and d'_t(v) >= 0.01 d_t(v)
//   * wrong moves:   (1) d_t(v) <= 0.02, v not super-heavy, yet p halves
//                    (2) d_t(v) > 0.01, d'_t(v) < 0.01 d_t(v), yet
//                        d_{t+1}(v) > 0.6 d_t(v)
//   * removals that happen in golden rounds (the empirical γ of Lemma 2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "runtime/observer.h"

namespace dmis {

struct GoldenRoundReport {
  std::uint64_t observed_node_rounds = 0;  ///< Σ over (live node, round)
  std::uint64_t golden1 = 0;
  std::uint64_t golden2 = 0;
  std::uint64_t wrong_moves = 0;
  /// Rounds in which a wrong move was *possible* (denominator for the
  /// <= 0.02 probability claim of Lemmas 2.4/2.5): every observed live
  /// node-round is an opportunity.
  std::uint64_t golden_rounds_with_removal = 0;
  std::uint64_t golden_rounds_total = 0;

  // Per-node tallies, for the "every node has >= 0.05 T golden rounds" form
  // of Lemmas 2.3/2.8.
  std::vector<std::uint32_t> node_golden;
  std::vector<std::uint32_t> node_rounds_alive;

  double golden_fraction() const {
    return observed_node_rounds == 0
               ? 0.0
               : static_cast<double>(golden1 + golden2) /
                     static_cast<double>(observed_node_rounds);
  }
  double wrong_move_rate() const {
    return observed_node_rounds == 0
               ? 0.0
               : static_cast<double>(wrong_moves) /
                     static_cast<double>(observed_node_rounds);
  }
  /// Empirical removal probability within golden rounds (Lemmas 2.2/2.7's γ).
  double gamma() const {
    return golden_rounds_total == 0
               ? 0.0
               : static_cast<double>(golden_rounds_with_removal) /
                     static_cast<double>(golden_rounds_total);
  }
};

/// The auditor is a RoundObserver: attach it via an algorithm's
/// `options.observers` and it follows the execution through the runtime's
/// iteration markers (kIterationBegin/kIterationEnd events whose RoundContext
/// carries a MisAnalysisView). The begin/end_iteration methods remain public
/// for hand-driven use in unit tests.
class GoldenRoundAuditor : public RoundObserver {
 public:
  explicit GoldenRoundAuditor(const Graph& graph);

  /// Called before each iteration's R1 with the pre-round state. `superheavy`
  /// may be empty (plain beeping algorithm: nobody is super-heavy).
  void begin_iteration(std::span<const char> alive, std::span<const int> p_exp,
                       std::span<const char> superheavy);

  /// Called after the iteration's R2 with post-removal liveness.
  void end_iteration(std::span<const char> alive_after);

  void on_phase_marker(const PhaseMarker& marker,
                       const RoundContext& ctx) override {
    if (ctx.analysis == nullptr) return;
    if (marker.kind == PhaseMarkerKind::kIterationBegin) {
      begin_iteration(ctx.analysis->alive, ctx.analysis->p_exp,
                      ctx.analysis->superheavy);
    } else if (marker.kind == PhaseMarkerKind::kIterationEnd) {
      end_iteration(ctx.analysis->alive);
    }
  }

  const GoldenRoundReport& report() const { return report_; }

 private:
  const Graph& graph_;
  GoldenRoundReport report_;
  // State carried across iterations for the wrong-move-(2) and p-halving
  // detection.
  bool have_prev_ = false;
  std::vector<double> prev_d_;
  std::vector<double> prev_dprime_;
  std::vector<int> prev_p_exp_;
  std::vector<char> prev_alive_;
  std::vector<char> prev_superheavy_;
  std::vector<char> golden_this_iter_;
  std::vector<char> alive_this_iter_;
};

}  // namespace dmis
