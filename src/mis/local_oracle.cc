#include "mis/local_oracle.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "graph/ops.h"
#include "mis/ghaffari.h"
#include "mis/greedy.h"
#include "util/check.h"

namespace dmis {

LocalMisOracle::LocalMisOracle(const Graph& g, const Options& options)
    : graph_(g), options_(options) {
  iterations_ = options.simulated_iterations;
  if (iterations_ == 0) {
    iterations_ = static_cast<int>(std::ceil(
        2.0 * std::log2(static_cast<double>(g.max_degree()) + 2.0)));
  }
  DMIS_CHECK(iterations_ >= 1, "iterations must be >= 1");
}

LocalMisOracle::Phase1 LocalMisOracle::phase1_outcome(NodeId v) {
  const auto it = phase1_cache_.find(v);
  if (it != phase1_cache_.end()) return it->second;
  const auto ball = bfs_ball(graph_, v, 2 * iterations_);
  ++stats_.balls_simulated;
  stats_.max_ball_nodes =
      std::max<std::uint64_t>(stats_.max_ball_nodes, ball.size());
  const GhaffariBallOutcome out = ghaffari_simulate_ball(
      graph_, ball, v, iterations_, options_.randomness);
  const Phase1 result = !out.decided  ? Phase1::kResidual
                        : out.joined ? Phase1::kJoined
                                     : Phase1::kRemoved;
  phase1_cache_.emplace(v, result);
  return result;
}

void LocalMisOracle::resolve_component(NodeId v) {
  // Explore v's residual connected component, deciding each touched node
  // exactly via its own ball replay.
  std::vector<NodeId> component{v};
  std::deque<NodeId> frontier{v};
  std::unordered_map<NodeId, char> seen{{v, 1}};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId w : graph_.neighbors(u)) {
      if (seen.contains(w)) continue;
      seen.emplace(w, 1);
      if (phase1_outcome(w) != Phase1::kResidual) continue;
      component.push_back(w);
      frontier.push_back(w);
      DMIS_CHECK(component.size() <= options_.max_component,
                 "residual component around node "
                     << v << " exceeds " << options_.max_component
                     << " nodes — raise simulated_iterations");
    }
  }
  stats_.max_component_nodes =
      std::max<std::uint64_t>(stats_.max_component_nodes, component.size());
  std::sort(component.begin(), component.end());
  // Greedy by (global) node id within the component — the same rule the
  // §2.5 leader applies to the whole residual at once, so per-component
  // resolution composes to the identical global set.
  const InducedSubgraph sub = induced_subgraph(graph_, component);
  const std::vector<char> mis = greedy_mis(sub.graph);
  for (std::size_t i = 0; i < component.size(); ++i) {
    answer_cache_[sub.to_parent[i]] = (mis[i] != 0);
  }
}

bool LocalMisOracle::in_mis(NodeId v) {
  DMIS_CHECK(v < graph_.node_count(), "node out of range: " << v);
  ++stats_.queries;
  const auto cached = answer_cache_.find(v);
  if (cached != answer_cache_.end()) return cached->second;
  switch (phase1_outcome(v)) {
    case Phase1::kJoined:
      answer_cache_[v] = true;
      return true;
    case Phase1::kRemoved:
      answer_cache_[v] = false;
      return false;
    case Phase1::kResidual:
      break;
  }
  ++stats_.residual_queries;
  resolve_component(v);
  return answer_cache_.at(v);
}

}  // namespace dmis
