// A local computation algorithm (LCA) for MIS, in the sense of Rubinfeld et
// al. [38] / Alon et al. [4], built from the paper's machinery.
//
// The paper's §1.2 closes with exactly this connection: Linial's locality
// argument turns an r-round distributed algorithm into a centralized oracle
// that answers "is v in the MIS?" by inspecting only v's r-hop ball, and
// conjectures local sparsification may advance LCAs for high-degree graphs.
//
// This oracle answers queries consistently — all answers together form one
// fixed maximal independent set of the whole graph — while reading only a
// ball around the queried node:
//   1. replay T = O(log Δ) iterations of the SODA'16 dynamic (§2.1) on the
//      radius-2T ball (influence travels 2 hops/iteration; the center's
//      outcome is exact — same cone argument as Lemma 2.13);
//   2. if the node is still undecided, the shattering guarantee (Lemma
//      2.11's machinery) makes its residual component small w.h.p.; the
//      oracle explores that component (deciding each member exactly via its
//      own ball replay) and resolves it greedily by node id — a rule that is
//      query-order independent.
//
// Consistency is testable: querying every node yields exactly the MIS that
// lowdeg_mis (§2.5) computes with the same window and seed, because the
// leader's greedy-by-id over the residual equals per-component greedy-by-id.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "rng/random_source.h"

namespace dmis {

class LocalMisOracle {
 public:
  struct Options {
    RandomSource randomness{0};
    /// Simulated iterations T; 0 = ceil(2 log2(Δ+2)) (as in lowdeg_mis).
    int simulated_iterations = 0;
    /// Guard: a residual component larger than this aborts the query (the
    /// w.h.p. shattering failed / T was too small for the graph).
    std::uint64_t max_component = 100000;
  };

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t balls_simulated = 0;
    std::uint64_t residual_queries = 0;  ///< needed component resolution
    std::uint64_t max_ball_nodes = 0;
    std::uint64_t max_component_nodes = 0;
  };

  LocalMisOracle(const Graph& g, const Options& options);

  /// Is v in the (one, fixed) maximal independent set this oracle defines?
  bool in_mis(NodeId v);

  int simulated_iterations() const { return iterations_; }
  const Stats& stats() const { return stats_; }

 private:
  enum class Phase1 : std::uint8_t { kJoined, kRemoved, kResidual };

  /// Exact phase-1 outcome of v (memoized ball replay).
  Phase1 phase1_outcome(NodeId v);
  /// Resolves v's residual component greedily by id (memoizes all members).
  void resolve_component(NodeId v);

  const Graph& graph_;
  Options options_;
  int iterations_;
  Stats stats_;
  std::unordered_map<NodeId, Phase1> phase1_cache_;
  std::unordered_map<NodeId, bool> answer_cache_;
};

}  // namespace dmis
