#include "mis/lowdeg.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "clique/gather.h"
#include "graph/ops.h"
#include "mis/cleanup.h"
#include "mis/ghaffari.h"
#include "mis/registry.h"
#include "rng/pow2_prob.h"
#include "util/check.h"

namespace dmis {
namespace {

/// Replays T iterations of the §2.1 dynamic from a gathered ball and returns
/// the center's (joined, decided_iteration). Mirrors GhaffariProgram exactly:
/// per iteration — marks, d from live neighbors' p, joins, p updates (also
/// for nodes halting this iteration), then removals.
struct GhaffariReplayOutcome {
  bool joined = false;
  std::uint32_t decided_iter = kNeverDecided;
};

GhaffariReplayOutcome ghaffari_replay_center(const GatheredBall& ball,
                                             int iterations) {
  std::vector<NodeId> nodes;
  nodes.reserve(ball.annotations.size());
  for (const auto& [node, words] : ball.annotations) {
    (void)words;
    nodes.push_back(node);
  }
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<NodeId, int> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index.emplace(nodes[i], static_cast<int>(i));
  }
  DMIS_CHECK(index.contains(ball.center), "ball center lacks annotation");

  const int k = static_cast<int>(nodes.size());
  std::vector<std::uint64_t> seed(k);
  for (int i = 0; i < k; ++i) {
    const auto& words = ball.annotations.at(nodes[i]);
    DMIS_CHECK(words.size() == 1, "lowdeg annotation must be one word");
    seed[i] = words[0];
  }
  std::vector<std::vector<int>> adj(k);
  for (const auto& [u, v] : ball.edges) {
    const auto iu = index.find(u);
    const auto iv = index.find(v);
    if (iu != index.end() && iv != index.end()) {
      adj[iu->second].push_back(iv->second);
      adj[iv->second].push_back(iu->second);
    }
  }

  std::vector<int> p_exp(k, 1);
  std::vector<char> live(k, 1);
  std::vector<char> marked(k, 0);
  std::vector<char> joined(k, 0);
  const int c = index.at(ball.center);
  GhaffariReplayOutcome out;

  for (int t = 0; t < iterations; ++t) {
    for (int i = 0; i < k; ++i) {
      marked[i] = (live[i] != 0 &&
                   Pow2Prob(p_exp[i]).sample(ghaffari_mark_word(seed[i], t)))
                      ? 1
                      : 0;
    }
    std::vector<char> joins(k, 0);
    std::vector<int> new_p(p_exp);
    for (int i = 0; i < k; ++i) {
      if (live[i] == 0) continue;
      double d = 0.0;
      bool marked_neighbor = false;
      for (const int j : adj[i]) {
        if (live[j] == 0) continue;
        d += Pow2Prob(p_exp[j]).value();
        marked_neighbor = marked_neighbor || (marked[j] != 0);
      }
      joins[i] = (marked[i] != 0 && !marked_neighbor) ? 1 : 0;
      const Pow2Prob p(p_exp[i]);
      new_p[i] = (d >= 2.0 ? p.halved() : p.doubled_capped()).neg_exp();
    }
    p_exp = std::move(new_p);
    for (int i = 0; i < k; ++i) {
      if (joins[i] == 0) continue;
      joined[i] = 1;
      if (live[i] != 0 && i == c && out.decided_iter == kNeverDecided) {
        out.joined = true;
        out.decided_iter = static_cast<std::uint32_t>(t);
      }
      live[i] = 0;
      for (const int j : adj[i]) {
        if (live[j] != 0) {
          live[j] = 0;
          if (j == c && out.decided_iter == kNeverDecided) {
            out.decided_iter = static_cast<std::uint32_t>(t);
          }
        }
      }
    }
    if (live[c] == 0) break;
  }
  (void)joined;
  return out;
}

}  // namespace

LowDegResult lowdeg_mis(const Graph& g, const LowDegOptions& options) {
  const NodeId n = g.node_count();
  LowDegResult result;
  result.run.in_mis.assign(n, 0);
  result.run.decided_round.assign(n, kNeverDecided);
  if (n == 0) return result;

  int iterations = options.simulated_iterations;
  if (iterations == 0) {
    iterations = static_cast<int>(std::ceil(
        2.0 * std::log2(static_cast<double>(g.max_degree()) + 2.0)));
  }
  DMIS_CHECK(iterations >= 1, "iterations must be >= 1");
  const int radius = 2 * iterations;
  result.stats.iterations = iterations;
  result.stats.gather_radius = radius;

  // Precondition (the lemma's Δ <= 2^{c sqrt(δ log n)} smallness): replay
  // balls must stay "n^δ"-sized, and the gather traffic — each node ships
  // ~|ball| records to each of ~|ball| members — must stay materializable.
  // Checked exactly, up front.
  std::uint64_t packet_estimate = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto ball = bfs_ball(g, v, radius);
    result.stats.max_ball_members =
        std::max<std::uint64_t>(result.stats.max_ball_members, ball.size());
    const std::uint64_t b = ball.size();
    packet_estimate += b * b * 3;
  }
  DMIS_CHECK(result.stats.max_ball_members <= options.max_ball_members,
             "graph too dense for the low-degree fast path: radius-"
                 << radius << " ball of " << result.stats.max_ball_members
                 << " nodes exceeds " << options.max_ball_members);
  DMIS_CHECK(packet_estimate <= options.max_packet_estimate,
             "graph too dense for the low-degree fast path: gather would "
             "move ~"
                 << packet_estimate << " packets (limit "
                 << options.max_packet_estimate
                 << "); shrink simulated_iterations or use clique_mis");

  CliqueNetwork net(n, options.randomness.fork(0x10deULL),
                    options.route_mode);

  AnnotationTable annotations(n, 1);
  for (NodeId v = 0; v < n; ++v) {
    annotations.row(v)[0] = ghaffari_personal_seed(options.randomness, v);
  }
  const GatherResult gathered = gather_balls(net, g, annotations, radius);
  result.stats.gather_steps = gathered.stats.steps;
  result.stats.gather_rounds = gathered.stats.rounds;
  result.stats.gather_packets = gathered.stats.packets;
  result.stats.max_gather_source_load = gathered.stats.max_source_load;
  result.stats.max_gather_dest_load = gathered.stats.max_dest_load;

  std::vector<char> alive(n, 1);
  for (NodeId v = 0; v < n; ++v) {
    const GhaffariReplayOutcome out =
        ghaffari_replay_center(gathered.balls[v], iterations);
    if (out.decided_iter != kNeverDecided) {
      alive[v] = 0;
      result.run.in_mis[v] = out.joined ? 1 : 0;
      result.run.decided_round[v] = out.decided_iter;
    }
  }

  const CleanupStats cleanup = clique_leader_cleanup(
      net, g, alive, result.run.in_mis, result.run.decided_round,
      static_cast<std::uint32_t>(iterations));
  result.stats.residual_nodes = cleanup.residual_nodes;
  result.stats.residual_edges = cleanup.residual_edges;
  result.stats.cleanup_rounds = cleanup.rounds;

  result.run.costs = net.costs();
  result.run.rounds = result.run.costs.rounds;
  return result;
}


namespace {

constexpr OptionField kLowDegOptionFields[] = {
    {"max_ball_members", OptionType::kU64, {.u = 100000},
     "precondition guard: largest radius-2T ball allowed (the paper's n^d)"},
    {"max_packet_estimate", OptionType::kU64, {.u = 80000000},
     "precondition guard: gather traffic estimate cap before materializing"},
};

AlgoResult run_lowdeg_descriptor(const Graph& g, const AlgoOptions& options,
                                 const AlgoRunRequest& request) {
  LowDegOptions o;
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) {
    o.simulated_iterations = static_cast<int>(request.max_rounds);
  }
  o.max_ball_members = options.get_u64("max_ball_members");
  o.max_packet_estimate = options.get_u64("max_packet_estimate");
  LowDegResult r = lowdeg_mis(g, o);
  AlgoResult out;
  out.run = std::move(r.run);
  return out;
}

}  // namespace

const AlgorithmDescriptor& lowdeg_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "lowdeg",
      .summary = "low-degree fast path (Lemma 2.15): gather 2T-balls, "
                 "locally replay the SODA'16 dynamic; throws when too dense",
      .paper_ref = "§2.5",
      .model = AlgoModel::kClique,
      .output = AlgoOutputKind::kMis,
      .caps = {},
      .max_nodes = kMaxWireNodes,
      .options = kLowDegOptionFields,
      .run = run_lowdeg_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
