// Faster MIS in low-degree graphs — paper §2.5 (Lemma 2.15).
//
// When Δ <= 2^{c sqrt(δ log n)}, each node can afford to learn its whole
// O(log Δ)-hop neighborhood of G directly (graph exponentiation, Lemma 2.14,
// O(log log Δ) clique rounds), locally replay T = O(log Δ) iterations of the
// Ghaffari SODA'16 dynamic (§2.1), and hand the leftover O(n)-edge graph to
// the leader — O(log log Δ) congested-clique rounds in total.
//
// Applicability is a real precondition, not a formality: the replay needs
// radius-2T balls of at most ~n^δ nodes (influence travels 2 hops per
// iteration — see clique_mis.h). The implementation verifies the ball bound
// up front and throws PreconditionError when the graph is too dense for the
// fast path, which is exactly the regime where the general algorithm (§2.4)
// must be used instead. Bounded-growth families (cycles, grids, geometric
// graphs) are the natural inputs; expanders of degree >= 3 violate the
// premise at any laptop-scale n.
#pragma once

#include <cstdint>

#include "clique/network.h"
#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"

namespace dmis {

struct LowDegOptions {
  RandomSource randomness{0};
  RouteMode route_mode = RouteMode::kAccountedLenzen;
  /// Iterations of the §2.1 dynamic to replay; 0 = ceil(2 log2(Δ+2)).
  int simulated_iterations = 0;
  /// Precondition guard: the largest radius-2T ball allowed ("n^δ").
  std::uint64_t max_ball_members = 100000;
  /// Second guard: the gather's traffic is ~ Σ_v |ball_v|² records; the
  /// estimate must stay below this before we materialize any packets.
  std::uint64_t max_packet_estimate = 80000000;
};

struct LowDegStats {
  int iterations = 0;        ///< T
  int gather_radius = 0;     ///< 2T
  std::uint64_t gather_steps = 0;
  std::uint64_t gather_rounds = 0;
  std::uint64_t gather_packets = 0;
  std::uint64_t max_gather_source_load = 0;
  std::uint64_t max_gather_dest_load = 0;
  std::uint64_t max_ball_members = 0;
  std::uint64_t residual_nodes = 0;
  std::uint64_t residual_edges = 0;
  std::uint64_t cleanup_rounds = 0;
};

struct LowDegResult {
  MisRun run;  ///< costs in congested-clique rounds
  LowDegStats stats;
};

/// Throws PreconditionError if some radius-2T ball exceeds
/// options.max_ball_members (graph too dense for the fast path).
LowDegResult lowdeg_mis(const Graph& g, const LowDegOptions& options);

}  // namespace dmis
