#include "mis/luby.h"

#include <memory>
#include <optional>

#include "runtime/congest.h"
#include "mis/registry.h"
#include "util/bits.h"
#include "util/check.h"

namespace dmis {
namespace {

class LubyProgram final : public CongestProgram {
 public:
  LubyProgram(NodeId self, NodeId n, const RandomSource& rs)
      : self_(self),
        ctx_(WireContext::for_nodes(n)),
        rand_bits_(encoded_bits<LubyPriorityMsg>(ctx_)),
        rs_(rs) {}

  void send(std::uint64_t round, CongestOutbox& out) override {
    if (round % 2 == 0) {
      // Round A: broadcast this iteration's priority (3·ceil(log2 n) random
      // bits; the id is the tiebreak, so local minima are unique w.h.p.).
      // The full 3·id_bits width is drawn and charged — it rides inside
      // B = 4·id_bits — one RngStream word per 64-bit chunk: the low chunk
      // from kLubyPriority (bit-identical to the pre-wide draw whenever the
      // priority fits one word), the high chunk from kLubyPriorityHi.
      const std::uint64_t iter = round / 2;
      priority_ = WideUint{};
      for (int i = 0; 64 * i < rand_bits_; ++i) {
        const int chunk = rand_bits_ - 64 * i < 64 ? rand_bits_ - 64 * i : 64;
        const RngStream stream = i == 0 ? RngStream::kLubyPriority
                                        : RngStream::kLubyPriorityHi;
        priority_.w[static_cast<std::size_t>(i)] =
            rs_.word(stream, self_, iter) >> (64 - chunk);
      }
      out.broadcast(LubyPriorityMsg{priority_});
    } else if (joined_) {
      // Round B: announce membership.
      out.broadcast(JoinAnnounceMsg{});
    }
  }

  bool receive(std::uint64_t round,
               std::span<const CongestMessage> inbox) override {
    if (round % 2 == 0) {
      bool local_min = true;
      for (const CongestMessage& m : inbox) {
        const auto msg = decode_message<LubyPriorityMsg>(ctx_, m);
        // Strict comparison on (priority, id): lower wins.
        if (msg.priority < priority_ ||
            (msg.priority == priority_ && m.src < self_)) {
          local_min = false;
          break;
        }
      }
      joined_ = local_min;
    } else {
      if (joined_) {
        halted_ = true;
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      } else if (!inbox.empty()) {
        halted_ = true;  // an MIS neighbor announced
        decided_round_ = static_cast<std::uint32_t>(round / 2);
      }
    }
    return halted_;
  }

  bool halted() const override { return halted_; }
  bool joined() const { return joined_ && halted_; }
  std::uint32_t decided_round() const { return decided_round_; }

 private:
  NodeId self_;
  WireContext ctx_;
  int rand_bits_;
  RandomSource rs_;
  WideUint priority_{};
  bool joined_ = false;
  bool halted_ = false;
  std::uint32_t decided_round_ = kNeverDecided;
};

}  // namespace

MisRun luby_mis(const Graph& g, const LubyOptions& options) {
  const NodeId n = g.node_count();
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.reserve(n);
  std::vector<const LubyProgram*> views;
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p = std::make_unique<LubyProgram>(v, n, options.randomness);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  CongestEngine engine(g, std::move(programs), congest_bandwidth_bits(n),
                       options.threads);
  engine.set_fault_plane(options.faults);
  std::vector<char> alive;
  std::vector<char> in_mis;
  std::vector<char> decided;
  if (!options.observers.empty()) {
    for (RoundObserver* o : options.observers) engine.observers().attach(o);
    alive.assign(n, 1);
    in_mis.assign(n, 0);
    decided.assign(n, 0);
    SimulationEngine::AnalysisProbe probe;
    probe.iteration_begin =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 0) return round / 2;
      return std::nullopt;
    };
    probe.iteration_end =
        [](std::uint64_t round) -> std::optional<std::uint64_t> {
      if (round % 2 == 1) return round / 2;
      return std::nullopt;
    };
    probe.snapshot = [&views, &alive, &in_mis, &decided, n](PhaseMarkerKind) {
      for (NodeId v = 0; v < n; ++v) {
        alive[v] = views[v]->halted() ? 0 : 1;
        in_mis[v] = views[v]->joined() ? 1 : 0;
        decided[v] = views[v]->halted() ? 1 : 0;
      }
      return MisAnalysisView{alive, {}, {}, in_mis, decided};
    };
    engine.set_analysis_probe(std::move(probe));
  }
  engine.run(options.max_iterations * 2);
  DMIS_ASSERT(engine.fault_plane() != nullptr || engine.all_halted(),
              "Luby did not terminate within " << options.max_iterations
                                               << " iterations");
  MisRun run;
  run.in_mis.resize(n, 0);
  run.decided_round.resize(n, kNeverDecided);
  for (NodeId v = 0; v < n; ++v) {
    run.in_mis[v] = views[v]->joined() ? 1 : 0;
    run.decided_round[v] = views[v]->decided_round();
  }
  run.costs = engine.costs();
  run.rounds = run.costs.rounds;
  return run;
}


namespace {

AlgoResult run_luby_descriptor(const Graph& g, const AlgoOptions&,
                               const AlgoRunRequest& request) {
  LubyOptions o;
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_iterations = request.max_rounds;
  o.observers = request.observers;
  o.faults = request.faults;
  o.threads = request.threads;
  AlgoResult out;
  out.run = luby_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& luby_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "luby",
      .summary = "Luby priority MIS on the CONGEST engine, O(log n) rounds "
                 "w.h.p. (baseline)",
      .paper_ref = "§1.1",
      .model = AlgoModel::kCongest,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .max_nodes = kMaxWireNodes,
      .options = {},
      .run = run_luby_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
