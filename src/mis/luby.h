// Luby's randomized MIS (Luby STOC'85 / Alon-Babai-Itai'86), priority
// variant, implemented on the CONGEST engine. O(log n) rounds w.h.p.; also
// the natural "works as-is in the congested clique" baseline of paper §1.1.
//
// Each iteration costs two CONGEST rounds:
//   A) every live node broadcasts a fresh random priority; a node whose
//      priority is a strict local minimum (ties broken by id — and counted
//      toward the priority payload) joins the MIS;
//   B) joiners broadcast "joined"; joiners and their neighbors halt.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

struct LubyOptions {
  RandomSource randomness{0};
  /// Cap on iterations (each = 2 CONGEST rounds); default covers w.h.p.
  /// termination for any n in scope.
  std::uint64_t max_iterations = 4096;
  /// Analysis-side observers, attached to the engine.
  std::vector<RoundObserver*> observers;
  /// Optional fault plane attached to the CONGEST engine (runtime/faults.h).
  /// With an active plane the termination assertion is waived — crashed
  /// nodes legitimately never decide.
  FaultPlane* faults = nullptr;
  /// Worker threads for the engine's node fan-outs (results are identical
  /// at any thread count).
  int threads = 1;
};

MisRun luby_mis(const Graph& g, const LubyOptions& options);

}  // namespace dmis
