// Wire encoding of the per-node decoration attached to the sampled graph
// G*[S] (paper §2.4), built on the typed codec layer (wire/messages.h,
// PhaseDecorationMsg):
//   * p_{t0}(v) exponent — 7 bits, range-validated against Pow2Prob's
//     domain [1, 120]: a corrupt exponent fails loudly at decode instead of
//     being silently truncated into a plausible one;
//   * bitwise OR of the beep vectors received from super-heavy neighbors
//     (bit i = some super-heavy neighbor beeps in iter i) — 63 bits;
//   * the node's private phase seed, from which every r_i(v) of the phase
//     is derived (mix64(seed, i)) — 64 bits; the O(log n)-bit compression
//     of the paper's per-round randomness list.
// Decorations travel as gather-annotation rows of exactly kDecorationWords
// words; encoding is allocation-free (a fixed-size array, not a vector).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

struct PhaseDecoration {
  int p0_exp = 1;
  std::uint64_t superheavy_or_mask = 0;
  std::uint64_t phase_seed = 0;
};

/// Words per decoration row: ceil(134 bits / 64). The decoration's field
/// widths are context-free (no id or phase-length fields), so this is a
/// compile-time constant for every run.
inline constexpr std::uint32_t kDecorationWords = static_cast<std::uint32_t>(
    (max_encoded_bits<PhaseDecorationMsg>() + 63) / 64);

using DecorationWords = std::array<std::uint64_t, kDecorationWords>;

namespace phase_wire_detail {
// Any context measures PhaseDecorationMsg identically; pin one.
inline constexpr WireContext kCtx = WireContext::for_nodes(2);
inline constexpr int kBits = encoded_bits<PhaseDecorationMsg>(kCtx);
}  // namespace phase_wire_detail

inline DecorationWords encode_decoration(const PhaseDecoration& d) {
  PhaseDecorationMsg msg;
  msg.p0_exp = d.p0_exp;
  msg.superheavy_or_mask = d.superheavy_or_mask;
  msg.phase_seed = d.phase_seed;
  DecorationWords words{};
  encode_words(phase_wire_detail::kCtx, msg, words);
  return words;
}

/// Decodes a gathered decoration row. Throws PreconditionError on any
/// corruption: wrong word count, an exponent outside Pow2Prob's [1, 120],
/// or non-zero padding past the declared bits.
inline PhaseDecoration decode_decoration(
    std::span<const std::uint64_t> words) {
  DMIS_CHECK(words.size() == kDecorationWords,
             "decoration must be " << kDecorationWords << " words, got "
                                   << words.size());
  const auto msg = decode_words<PhaseDecorationMsg>(
      phase_wire_detail::kCtx, words, phase_wire_detail::kBits);
  PhaseDecoration d;
  d.p0_exp = msg.p0_exp;
  d.superheavy_or_mask = msg.superheavy_or_mask;
  d.phase_seed = msg.phase_seed;
  return d;
}

}  // namespace dmis
