// Wire encoding of the per-node decoration attached to the sampled graph
// G*[S] (paper §2.4). Three 64-bit words per node:
//   word 0 — p_{t0}(v) exponent (p is exactly 2^-k, see rng/pow2_prob.h);
//   word 1 — bitwise OR of the beep vectors received from super-heavy
//            neighbors (bit i = some super-heavy neighbor beeps in iter i);
//   word 2 — the node's private phase seed, from which every r_i(v) of the
//            phase is derived (mix64(seed, i)); this is the O(log n)-bit
//            compression of the paper's per-round randomness list.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace dmis {

struct PhaseDecoration {
  int p0_exp = 1;
  std::uint64_t superheavy_or_mask = 0;
  std::uint64_t phase_seed = 0;
};

inline std::vector<std::uint64_t> encode_decoration(const PhaseDecoration& d) {
  return {static_cast<std::uint64_t>(d.p0_exp), d.superheavy_or_mask,
          d.phase_seed};
}

inline PhaseDecoration decode_decoration(std::span<const std::uint64_t> words) {
  DMIS_CHECK(words.size() == 3, "decoration must be 3 words, got "
                                    << words.size());
  PhaseDecoration d;
  d.p0_exp = static_cast<int>(words[0]);
  d.superheavy_or_mask = words[1];
  d.phase_seed = words[2];
  return d;
}

}  // namespace dmis
