#include "mis/reductions.h"

#include <algorithm>

#include "graph/ops.h"
#include "graph/properties.h"
#include "graph/transforms.h"
#include "mis/clique_mis.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/sparsified.h"
#include "util/check.h"

namespace dmis {

MisSolver greedy_solver() {
  return [](const Graph& g) { return greedy_mis(g); };
}

MisSolver luby_solver(std::uint64_t seed) {
  return [seed](const Graph& g) {
    LubyOptions opts;
    opts.randomness = RandomSource(seed);
    return luby_mis(g, opts).in_mis;
  };
}

MisSolver sparsified_solver(std::uint64_t seed) {
  return [seed](const Graph& g) {
    SparsifiedOptions opts;
    opts.params = SparsifiedParams::from_n(g.node_count());
    opts.randomness = RandomSource(seed);
    return sparsified_mis(g, opts).in_mis;
  };
}

MisSolver clique_solver(std::uint64_t seed) {
  return [seed](const Graph& g) {
    CliqueMisOptions opts;
    opts.params = SparsifiedParams::from_n(g.node_count());
    opts.randomness = RandomSource(seed);
    return clique_mis(g, opts).run.in_mis;
  };
}

// ---------------------------------------------------------------- matching

MatchingResult maximal_matching(const Graph& g, const MisSolver& solver) {
  const LineGraph lg = line_graph(g);
  const std::vector<char> mis = solver(lg.graph);
  DMIS_ASSERT(is_maximal_independent_set(lg.graph, mis),
              "solver returned an invalid MIS on the line graph");
  MatchingResult out;
  for (NodeId e = 0; e < lg.graph.node_count(); ++e) {
    if (mis[e] != 0) out.matching.push_back(lg.vertex_to_edge[e]);
  }
  return out;
}

bool is_maximal_matching(const Graph& g, std::span<const Edge> matching) {
  std::vector<char> matched(g.node_count(), 0);
  for (const auto& [u, v] : matching) {
    if (u >= g.node_count() || v >= g.node_count()) return false;
    if (!g.has_edge(u, v)) return false;
    if (matched[u] != 0 || matched[v] != 0) return false;  // not disjoint
    matched[u] = 1;
    matched[v] = 1;
  }
  // Maximal: no edge with both endpoints unmatched.
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (matched[u] != 0) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (matched[v] == 0) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------- coloring

ColoringResult vertex_coloring(const Graph& g, const MisSolver& solver,
                               std::uint32_t palette) {
  if (palette == 0) palette = g.max_degree() + 1;
  DMIS_CHECK(palette >= g.max_degree() + 1,
             "palette " << palette << " below Delta+1 = "
                        << g.max_degree() + 1);
  ColoringResult out;
  out.palette = palette;
  out.colors.assign(g.node_count(), kUncolored);
  if (g.node_count() == 0) return out;
  const Graph product = color_product(g, palette);
  const std::vector<char> mis = solver(product);
  DMIS_ASSERT(is_maximal_independent_set(product, mis),
              "solver returned an invalid MIS on the product graph");
  for (NodeId pv = 0; pv < product.node_count(); ++pv) {
    if (mis[pv] == 0) continue;
    const NodeId v = color_product_base(pv, palette);
    DMIS_ASSERT(out.colors[v] == kUncolored,
                "two colors chosen for node " << v);
    out.colors[v] = color_product_color(pv, palette);
  }
  // Linial's argument: with palette >= Delta+1 every palette clique has a
  // chosen member (otherwise some copy would be unblocked).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    DMIS_ASSERT(out.colors[v] != kUncolored, "node " << v << " uncolored");
  }
  return out;
}

bool is_proper_coloring(const Graph& g,
                        std::span<const std::uint32_t> colors) {
  if (colors.size() != g.node_count()) return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (colors[v] == kUncolored) return false;
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

EdgeColoringResult edge_coloring(const Graph& g, const MisSolver& solver) {
  EdgeColoringResult out;
  const LineGraph lg = line_graph(g);
  out.edges = lg.vertex_to_edge;
  out.palette = g.max_degree() == 0 ? 1 : 2 * g.max_degree() - 1;
  if (out.edges.empty()) return out;
  // Delta(L(g)) <= 2 Delta(g) - 2, so the 2Delta-1 palette is Delta_L + 1.
  const ColoringResult vc = vertex_coloring(lg.graph, solver, out.palette);
  out.colors = vc.colors;
  return out;
}

bool is_proper_edge_coloring(const Graph& g, std::span<const Edge> edges,
                             std::span<const std::uint32_t> colors) {
  if (edges.size() != colors.size()) return false;
  if (edges.size() != g.edge_count()) return false;
  // Adjacent edges (sharing an endpoint) must differ in color.
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> at(
      g.node_count());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& [u, v] = edges[i];
    if (!g.has_edge(u, v)) return false;
    if (colors[i] == kUncolored) return false;
    at[u].push_back({static_cast<NodeId>(i), colors[i]});
    at[v].push_back({static_cast<NodeId>(i), colors[i]});
  }
  for (const auto& list : at) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].second == list[j].second) return false;
      }
    }
  }
  return true;
}

// -------------------------------------------------------------- ruling set

RulingSetResult ruling_set(const Graph& g, int k, const MisSolver& solver) {
  DMIS_CHECK(k >= 1, "ruling parameter must be >= 1, got " << k);
  RulingSetResult out;
  out.k = k;
  const Graph power = (k == 1) ? Graph() : graph_power(g, k);
  const Graph& target = (k == 1) ? g : power;
  out.in_set = solver(target);
  DMIS_ASSERT(is_maximal_independent_set(target, out.in_set),
              "solver returned an invalid MIS on G^" << k);
  return out;
}

bool is_ruling_set(const Graph& g, const std::vector<char>& in_set, int k) {
  if (in_set.size() != g.node_count()) return false;
  if (!is_independent_set(g, in_set)) return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_set[v] != 0) continue;
    bool covered = false;
    for (const NodeId u : bfs_ball(g, v, k)) {
      if (in_set[u] != 0) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace dmis
