// The classic problems the paper's round complexity extends to (§1.1):
// maximal matching, (Δ+1)-vertex-coloring, (2Δ−1)-edge-coloring — via
// Linial's reductions [28] to MIS on derived graphs — plus k-ruling sets
// (the relaxation studied by the congested-clique related work [7, 18]),
// which are exactly MIS on the graph power G^k.
//
// Every reduction is parameterized by an arbitrary MIS solver, so any
// algorithm in this library (Luby, beeping, sparsified, the clique
// simulation) lifts to all four problems. The cost of running the solver on
// the derived graph is the reduction's cost; the derived graphs keep the
// paper's guarantees because their maximum degrees are O(Δ) ("with minor
// modifications" in the paper's phrasing).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"

namespace dmis {

/// Any maximal-independent-set oracle. Must return a valid MIS mask.
using MisSolver = std::function<std::vector<char>(const Graph&)>;

/// Solvers wrapping the algorithms of this library with a fixed seed.
MisSolver greedy_solver();
MisSolver luby_solver(std::uint64_t seed);
MisSolver sparsified_solver(std::uint64_t seed);
MisSolver clique_solver(std::uint64_t seed);

// ---------------------------------------------------------------- matching

struct MatchingResult {
  std::vector<Edge> matching;
};

/// Maximal matching of g = MIS of the line graph L(g).
MatchingResult maximal_matching(const Graph& g, const MisSolver& solver);

/// True iff `matching` is a matching of g (disjoint real edges) that cannot
/// be extended.
bool is_maximal_matching(const Graph& g, std::span<const Edge> matching);

// ---------------------------------------------------------------- coloring

inline constexpr std::uint32_t kUncolored = static_cast<std::uint32_t>(-1);

struct ColoringResult {
  /// Color of each node, in [0, palette).
  std::vector<std::uint32_t> colors;
  std::uint32_t palette = 0;
};

/// Proper vertex coloring with `palette` colors (0 = use Δ+1) via MIS on
/// Linial's product graph G × K_palette. Requires palette >= Δ+1.
ColoringResult vertex_coloring(const Graph& g, const MisSolver& solver,
                               std::uint32_t palette = 0);

bool is_proper_coloring(const Graph& g,
                        std::span<const std::uint32_t> colors);

struct EdgeColoringResult {
  /// g.edges() in order; colors[i] colors edges[i].
  std::vector<Edge> edges;
  std::vector<std::uint32_t> colors;
  std::uint32_t palette = 0;
};

/// Proper edge coloring with 2Δ−1 colors: vertex coloring of L(g), whose
/// maximum degree is at most 2Δ−2.
EdgeColoringResult edge_coloring(const Graph& g, const MisSolver& solver);

bool is_proper_edge_coloring(const Graph& g,
                             std::span<const Edge> edges,
                             std::span<const std::uint32_t> colors);

// -------------------------------------------------------------- ruling set

struct RulingSetResult {
  std::vector<char> in_set;
  int k = 0;
};

/// k-ruling set (k >= 1): an independent set S such that every node is
/// within distance k of S. Computed as MIS(G^k): independence in G^k means
/// pairwise distance > k... in particular members are independent in G, and
/// maximality in G^k gives the distance-k domination. k = 1 is plain MIS.
RulingSetResult ruling_set(const Graph& g, int k, const MisSolver& solver);

bool is_ruling_set(const Graph& g, const std::vector<char>& in_set, int k);

}  // namespace dmis
