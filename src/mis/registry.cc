#include "mis/registry.h"

#include <charconv>

#include "graph/properties.h"
#include "mis/reductions.h"
#include "util/check.h"
#include "wire/types.h"

namespace dmis {
namespace {

bool wants_faults(const AlgorithmDescriptor& d) {
  return d.caps.fault_injectable;
}

}  // namespace

const char* algo_model_name(AlgoModel model) {
  switch (model) {
    case AlgoModel::kCentralized: return "centralized";
    case AlgoModel::kCongest: return "CONGEST";
    case AlgoModel::kBeeping: return "beeping";
    case AlgoModel::kClique: return "clique";
  }
  return "?";
}

const char* algo_output_kind_name(AlgoOutputKind kind) {
  switch (kind) {
    case AlgoOutputKind::kMis: return "mis";
    case AlgoOutputKind::kRulingSet: return "ruling2";
  }
  return "?";
}

const char* option_type_name(OptionType type) {
  switch (type) {
    case OptionType::kU64: return "u64";
    case OptionType::kI64: return "i64";
    case OptionType::kDouble: return "double";
    case OptionType::kBool: return "bool";
  }
  return "?";
}

// ------------------------------------------------------------- AlgoOptions

AlgoOptions::AlgoOptions(const AlgorithmDescriptor& descriptor)
    : descriptor_(&descriptor) {
  values_.reserve(descriptor.options.size());
  for (const OptionField& field : descriptor.options) {
    values_.push_back(field.def);
  }
}

std::size_t AlgoOptions::index_of(std::string_view name,
                                  OptionType type) const {
  for (std::size_t i = 0; i < descriptor_->options.size(); ++i) {
    const OptionField& field = descriptor_->options[i];
    if (name == field.name) {
      DMIS_CHECK(field.type == type,
                 "algorithm '" << descriptor_->name << "' option '" << name
                               << "' has type " << option_type_name(field.type)
                               << ", accessed as " << option_type_name(type));
      return i;
    }
  }
  DMIS_CHECK(false, "algorithm '" << descriptor_->name
                                  << "' has no option '" << name << "'");
  return 0;
}

std::uint64_t AlgoOptions::get_u64(std::string_view name) const {
  return values_[index_of(name, OptionType::kU64)].u;
}
std::int64_t AlgoOptions::get_i64(std::string_view name) const {
  return values_[index_of(name, OptionType::kI64)].i;
}
double AlgoOptions::get_double(std::string_view name) const {
  return values_[index_of(name, OptionType::kDouble)].d;
}
bool AlgoOptions::get_bool(std::string_view name) const {
  return values_[index_of(name, OptionType::kBool)].b;
}

void AlgoOptions::set_u64(std::string_view name, std::uint64_t v) {
  values_[index_of(name, OptionType::kU64)].u = v;
}
void AlgoOptions::set_i64(std::string_view name, std::int64_t v) {
  values_[index_of(name, OptionType::kI64)].i = v;
}
void AlgoOptions::set_double(std::string_view name, double v) {
  values_[index_of(name, OptionType::kDouble)].d = v;
}
void AlgoOptions::set_bool(std::string_view name, bool v) {
  values_[index_of(name, OptionType::kBool)].b = v;
}

void AlgoOptions::set_from_text(std::string_view name,
                                const std::string& text) {
  // Route through the JSON scalar parsers: exact 64-bit integers, loud
  // failures, and the same accepted grammar as the service request path.
  for (const OptionField& field : descriptor_->options) {
    if (name != field.name) continue;
    if (field.type == OptionType::kBool) {
      if (text == "true" || text == "1") {
        set_bool(name, true);
      } else if (text == "false" || text == "0") {
        set_bool(name, false);
      } else {
        DMIS_CHECK(false, "algorithm '" << descriptor_->name << "' option '"
                                        << name << "': bad bool '" << text
                                        << "' (true|false|1|0)");
      }
      return;
    }
    json::Value parsed;
    try {
      parsed = json::parse(text);
    } catch (const PreconditionError&) {
      DMIS_CHECK(false, "algorithm '" << descriptor_->name << "' option '"
                                      << name << "': bad "
                                      << option_type_name(field.type) << " '"
                                      << text << "'");
    }
    switch (field.type) {
      case OptionType::kU64: set_u64(name, parsed.as_u64()); break;
      case OptionType::kI64: set_i64(name, parsed.as_i64()); break;
      case OptionType::kDouble: set_double(name, parsed.as_double()); break;
      case OptionType::kBool: break;  // handled above
    }
    return;
  }
  DMIS_CHECK(false, "algorithm '" << descriptor_->name << "' has no option '"
                                  << name << "'");
}

json::Value AlgoOptions::to_json() const {
  json::Value object = json::Value::object();
  for (std::size_t i = 0; i < descriptor_->options.size(); ++i) {
    const OptionField& field = descriptor_->options[i];
    const OptionValue& value = values_[i];
    switch (field.type) {
      case OptionType::kU64:
        object.set(field.name, json::Value::number(value.u));
        break;
      case OptionType::kI64:
        object.set(field.name, json::Value::number(value.i));
        break;
      case OptionType::kDouble:
        object.set(field.name, json::Value::number(value.d));
        break;
      case OptionType::kBool:
        object.set(field.name, json::Value::boolean(value.b));
        break;
    }
  }
  return object;
}

std::string AlgoOptions::canonical_json() const { return to_json().dump(); }

AlgoOptions AlgoOptions::from_json(const AlgorithmDescriptor& descriptor,
                                   const json::Value& object) {
  DMIS_CHECK(object.is_object(), "algorithm '" << descriptor.name
                                               << "' options must be a JSON "
                                                  "object");
  AlgoOptions out(descriptor);
  for (const auto& [key, value] : object.as_object()) {
    bool known = false;
    for (const OptionField& field : descriptor.options) {
      if (key != field.name) continue;
      known = true;
      switch (field.type) {
        case OptionType::kU64: out.set_u64(key, value.as_u64()); break;
        case OptionType::kI64: out.set_i64(key, value.as_i64()); break;
        case OptionType::kDouble: out.set_double(key, value.as_double()); break;
        case OptionType::kBool: out.set_bool(key, value.as_bool()); break;
      }
      break;
    }
    DMIS_CHECK(known, "algorithm '" << descriptor.name
                                    << "' has no option '" << key
                                    << "' (see `dmis solve " << descriptor.name
                                    << " --help`)");
  }
  return out;
}

AlgoOptions AlgoOptions::parse(const AlgorithmDescriptor& descriptor,
                               const std::string& text) {
  if (text.empty()) return AlgoOptions(descriptor);
  return from_json(descriptor, json::parse(text));
}

bool operator==(const AlgoOptions& a, const AlgoOptions& b) {
  if (a.descriptor_ != b.descriptor_) return false;
  for (std::size_t i = 0; i < a.values_.size(); ++i) {
    const OptionField& field = a.descriptor_->options[i];
    const OptionValue& x = a.values_[i];
    const OptionValue& y = b.values_[i];
    switch (field.type) {
      case OptionType::kU64:
        if (x.u != y.u) return false;
        break;
      case OptionType::kI64:
        if (x.i != y.i) return false;
        break;
      case OptionType::kDouble:
        if (x.d != y.d) return false;
        break;
      case OptionType::kBool:
        if (x.b != y.b) return false;
        break;
    }
  }
  return true;
}

// ------------------------------------------------------- AlgorithmRegistry

AlgorithmRegistry::AlgorithmRegistry()
    : descriptors_{
          &greedy_descriptor(),
          &luby_descriptor(),
          &ghaffari_descriptor(),
          &beeping_descriptor(),
          &halfduplex_descriptor(),
          &sparsified_descriptor(),
          &sparsified_congest_descriptor(),
          &clique_mis_descriptor(),
          &lowdeg_descriptor(),
          &ruling2_descriptor(),
      } {}

const AlgorithmRegistry& AlgorithmRegistry::instance() {
  static const AlgorithmRegistry registry;
  return registry;
}

const AlgorithmDescriptor* AlgorithmRegistry::find(
    std::string_view name) const {
  for (const AlgorithmDescriptor* d : descriptors_) {
    if (name == d->name) return d;
  }
  return nullptr;
}

const AlgorithmDescriptor& AlgorithmRegistry::require(
    std::string_view name) const {
  const AlgorithmDescriptor* d = find(name);
  DMIS_CHECK(d != nullptr, "unknown algorithm '"
                               << name << "' (registered: " << joined_names()
                               << ")");
  return *d;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  return names_where(nullptr);
}

std::vector<std::string> AlgorithmRegistry::names_where(
    bool (*predicate)(const AlgorithmDescriptor&)) const {
  std::vector<std::string> out;
  for (const AlgorithmDescriptor* d : descriptors_) {
    if (predicate == nullptr || predicate(*d)) out.push_back(d->name);
  }
  return out;
}

std::string AlgorithmRegistry::joined_names(
    bool (*predicate)(const AlgorithmDescriptor&)) const {
  std::string out;
  for (const AlgorithmDescriptor* d : descriptors_) {
    if (predicate != nullptr && !predicate(*d)) continue;
    if (!out.empty()) out += ' ';
    out += d->name;
  }
  return out;
}

// --------------------------------------------------------------- execution

void check_run_capabilities(const AlgorithmDescriptor& descriptor,
                            const AlgoRunRequest& request) {
  const bool faults_active =
      request.faults != nullptr && request.faults->active();
  DMIS_CHECK(!faults_active || descriptor.caps.fault_injectable,
             "algorithm '" << descriptor.name
                           << "' lacks capability fault-injection "
                              "(fault-capable: "
                           << AlgorithmRegistry::instance().joined_names(
                                  wants_faults)
                           << ")");
  DMIS_CHECK(request.observers.empty() || descriptor.caps.observer_attachable,
             "algorithm '" << descriptor.name
                           << "' lacks capability observer-attachment "
                              "(observer-capable: "
                           << AlgorithmRegistry::instance().joined_names(
                                  [](const AlgorithmDescriptor& d) {
                                    return d.caps.observer_attachable;
                                  })
                           << ")");
}

void check_node_admission(const AlgorithmDescriptor& descriptor,
                          std::uint64_t node_count) {
  if (descriptor.max_nodes == 0 || node_count <= descriptor.max_nodes) return;
  // Render powers of two as such: the common bound is the codec id-width
  // ceiling 2^kMaxIdBits, and "2^30" is what an operator can act on.
  int log2 = -1;
  if ((descriptor.max_nodes & (descriptor.max_nodes - 1)) == 0) {
    log2 = 0;
    for (std::uint64_t v = descriptor.max_nodes; v > 1; v >>= 1) ++log2;
  }
  std::ostringstream bound;
  bound << descriptor.max_nodes;
  if (log2 >= 0) bound << " = 2^" << log2;
  DMIS_CHECK(false, "graph with n = "
                        << node_count << " nodes exceeds algorithm '"
                        << descriptor.name << "' node ceiling " << bound.str()
                        << " (id-carrying wire codecs are specified against "
                           "kMaxIdBits = "
                        << kMaxIdBits
                        << "; unbounded algorithms: "
                        << AlgorithmRegistry::instance().joined_names(
                               [](const AlgorithmDescriptor& d) {
                                 return d.max_nodes == 0;
                               })
                        << ")");
}

AlgoResult run_registered_algorithm(const AlgorithmDescriptor& descriptor,
                                    const Graph& g, const AlgoOptions& options,
                                    const AlgoRunRequest& request) {
  DMIS_CHECK(&options.descriptor() == &descriptor,
             "options bound to algorithm '" << options.descriptor().name
                                            << "', run requested for '"
                                            << descriptor.name << "'");
  check_run_capabilities(descriptor, request);
  check_node_admission(descriptor, g.node_count());
  AlgoRunRequest effective = request;
  if (!descriptor.caps.fault_injectable) effective.faults = nullptr;
  if (!descriptor.caps.deterministic_parallel) effective.threads = 1;
  return descriptor.run(g, options, effective);
}

bool algo_output_valid(const AlgorithmDescriptor& descriptor, const Graph& g,
                       const std::vector<char>& in_set) {
  switch (descriptor.output) {
    case AlgoOutputKind::kMis:
      return is_maximal_independent_set(g, in_set);
    case AlgoOutputKind::kRulingSet:
      return is_ruling_set(g, in_set, 2);
  }
  return false;
}

}  // namespace dmis
