// Unified algorithm registry: one typed descriptor per algorithm, every
// layer dispatches through it (DESIGN.md §12).
//
// The paper's contribution is a *stack* of algorithms — the §2.1 baseline,
// the beeping dynamic (§2.2), its sparsified refinement (§2.3), the clique
// headline (§2.4–2.5) — plus the baselines they are measured against. Before
// the registry, every layer that had to name an algorithm (the CLI, the
// batch execution service, the fault/replay driver, the sweeping benches)
// kept its own string-compare ladder, and the ladders drifted: `dmis serve`
// rejected half the suite the CLI accepted.
//
// An AlgorithmDescriptor is the single source of truth for one algorithm:
//   * its registry name and one-line summary (`dmis list`);
//   * the communication model it runs in (AlgoModel);
//   * capability flags — can a FaultPlane be attached, can RoundObservers be
//     attached, is multi-threaded stepping supported (with the bit-identity
//     contract of runtime/parallel.h);
//   * a declarative option schema (OptionField list): every knob beyond the
//     universal (seed, max_rounds, threads, faults) triple is a named, typed
//     field with a default and a help line. AlgoOptions round-trips those
//     values through util/json.h with a *canonical* encoding (every field,
//     declaration order), which is what JobSpec hashing, repro bundles and
//     the generated CLI flags all share;
//   * a uniform `run` adapter normalizing the native result type (MisRun,
//     CliqueMisResult, LowDegResult, CliqueRulingResult) into AlgoResult —
//     one result model with the standard cost/retry ledger.
//
// Dispatch contract: name→descriptor lookup happens *here and only here*.
// Consumers hold descriptors, never compare algorithm name strings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "runtime/faults.h"
#include "runtime/observer.h"
#include "util/json.h"

namespace dmis {

/// Communication model an algorithm is stated in (paper §1).
enum class AlgoModel : std::uint8_t {
  kCentralized,  ///< sequential baseline, no communication model
  kCongest,      ///< B-bit-per-edge-per-round message passing
  kBeeping,      ///< 1-bit carrier sense
  kClique,       ///< congested clique (all-to-all, Lenzen routing)
};
const char* algo_model_name(AlgoModel model);

/// What the algorithm outputs (how `valid` is defined for it).
enum class AlgoOutputKind : std::uint8_t {
  kMis,        ///< maximal independent set of the input graph
  kRulingSet,  ///< independent 2-ruling set (every node within distance 2)
};
const char* algo_output_kind_name(AlgoOutputKind kind);

/// Capability flags, checked by every consumer before it asks for the
/// corresponding feature. Violations are *sited, capability-named* errors
/// ("algorithm 'x' lacks capability fault-injection"), never silent.
struct AlgoCapabilities {
  /// A FaultPlane may be attached to the engine's delivery choke point.
  bool fault_injectable = false;
  /// RoundObservers (auditors, cancellation watchdogs) may be attached.
  bool observer_attachable = false;
  /// threads > 1 is supported, with bit-identical results at any count.
  bool deterministic_parallel = false;
};

enum class OptionType : std::uint8_t { kU64, kI64, kDouble, kBool };
const char* option_type_name(OptionType type);

/// Default (and runtime) value of one option field; the slot matching the
/// field's type is the live one.
struct OptionValue {
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
};

/// One declared algorithm option: name, type, default, help line. The
/// declaration *is* the wire format: canonical JSON emits every field in
/// declaration order, the CLI generates a `--<name> <value>` flag per field,
/// and JobKey hashing folds the canonical encoding.
struct OptionField {
  const char* name;
  OptionType type;
  OptionValue def;
  const char* help;
};

struct AlgorithmDescriptor;

/// Typed option values for one algorithm, bound to its descriptor. Values
/// live in declaration order; accessors are by field name and throw
/// PreconditionError on unknown names or type mismatches.
class AlgoOptions {
 public:
  /// Defaults of every declared field.
  explicit AlgoOptions(const AlgorithmDescriptor& descriptor);

  const AlgorithmDescriptor& descriptor() const { return *descriptor_; }

  std::uint64_t get_u64(std::string_view name) const;
  std::int64_t get_i64(std::string_view name) const;
  double get_double(std::string_view name) const;
  bool get_bool(std::string_view name) const;

  void set_u64(std::string_view name, std::uint64_t v);
  void set_i64(std::string_view name, std::int64_t v);
  void set_double(std::string_view name, double v);
  void set_bool(std::string_view name, bool v);

  /// Sets a field from flag text ("3", "0.5", "true"); throws on unknown
  /// field names and unparsable values (the generated CLI flag path).
  void set_from_text(std::string_view name, const std::string& text);

  /// Canonical JSON object: every declared field, declaration order,
  /// defaults included. Bit-exact round-trip: parse(dump) == dump.
  json::Value to_json() const;
  std::string canonical_json() const;

  /// Parses a JSON object; unknown keys and type mismatches throw
  /// PreconditionError naming the algorithm and the field.
  static AlgoOptions from_json(const AlgorithmDescriptor& descriptor,
                               const json::Value& object);
  /// from_json over text; empty text means "all defaults".
  static AlgoOptions parse(const AlgorithmDescriptor& descriptor,
                           const std::string& text);

  friend bool operator==(const AlgoOptions&, const AlgoOptions&);

 private:
  std::size_t index_of(std::string_view name, OptionType type) const;

  const AlgorithmDescriptor* descriptor_;
  std::vector<OptionValue> values_;  // parallel to descriptor options
};

/// Universal run parameters — the knobs every algorithm shares. Everything
/// algorithm-specific rides in AlgoOptions instead.
struct AlgoRunRequest {
  std::uint64_t seed = 1;
  /// Cap on the algorithm's own iteration/phase budget; 0 keeps its default.
  std::uint64_t max_rounds = 0;
  /// Worker threads; only honored when caps.deterministic_parallel (results
  /// are bit-identical at any count either way).
  int threads = 1;
  /// Fault plane, or nullptr. Only legal when caps.fault_injectable; a null
  /// or inactive plane is bit-identical to no plane.
  FaultPlane* faults = nullptr;
  /// Observers, attached to the engine. Only legal (when non-empty) for
  /// caps.observer_attachable algorithms.
  std::vector<RoundObserver*> observers;
};

/// The one result model every native result type normalizes into.
struct AlgoResult {
  MisRun run;
  /// Phase re-executions under an active fault plane (clique driver);
  /// 0 elsewhere. Mirrors run.costs.retries.
  std::uint64_t retries = 0;
};

/// Static descriptor of one registered algorithm. Instances have static
/// storage duration; consumers may hold the pointer for the process
/// lifetime.
struct AlgorithmDescriptor {
  const char* name;
  const char* summary;       ///< one line, shown by `dmis list`
  const char* paper_ref;     ///< paper section / citation, e.g. "§2.2"
  AlgoModel model = AlgoModel::kCongest;
  AlgoOutputKind output = AlgoOutputKind::kMis;
  AlgoCapabilities caps;
  /// Largest node count the algorithm admits; 0 = unbounded. Every engine
  /// that opens an id-carrying WireContext (the CONGEST engine and the
  /// congested clique) is bounded by kMaxWireNodes = 2^kMaxIdBits
  /// (wire/types.h); id-free engines (beeping, centralized) leave this 0.
  /// Admission layers reject larger graphs with a bound-naming error via
  /// check_node_admission — never the engine's generic for_nodes throw.
  std::uint64_t max_nodes = 0;
  std::span<const OptionField> options;
  /// Uniform entry point. Implementations assume the capability checks of
  /// run_registered_algorithm already happened (a FaultPlane only arrives if
  /// fault_injectable, observers only if observer_attachable).
  AlgoResult (*run)(const Graph& g, const AlgoOptions& options,
                    const AlgoRunRequest& request);
};

/// Per-algorithm descriptor accessors, defined next to each algorithm's
/// implementation (the algorithm "registers" itself by exposing one).
const AlgorithmDescriptor& greedy_descriptor();
const AlgorithmDescriptor& luby_descriptor();
const AlgorithmDescriptor& ghaffari_descriptor();
const AlgorithmDescriptor& beeping_descriptor();
const AlgorithmDescriptor& halfduplex_descriptor();
const AlgorithmDescriptor& sparsified_descriptor();
const AlgorithmDescriptor& sparsified_congest_descriptor();
const AlgorithmDescriptor& clique_mis_descriptor();
const AlgorithmDescriptor& lowdeg_descriptor();
const AlgorithmDescriptor& ruling2_descriptor();

/// The process-wide registry (immutable after construction).
class AlgorithmRegistry {
 public:
  static const AlgorithmRegistry& instance();

  /// nullptr for unknown names.
  const AlgorithmDescriptor* find(std::string_view name) const;
  /// Throws PreconditionError naming the registered set for unknown names.
  const AlgorithmDescriptor& require(std::string_view name) const;

  std::span<const AlgorithmDescriptor* const> all() const {
    return descriptors_;
  }
  /// Registration-order names, optionally filtered by a capability
  /// predicate.
  std::vector<std::string> names() const;
  std::vector<std::string> names_where(
      bool (*predicate)(const AlgorithmDescriptor&)) const;
  /// Space-joined names — error-message helper ("fault-capable: a b c").
  std::string joined_names(
      bool (*predicate)(const AlgorithmDescriptor&) = nullptr) const;

 private:
  AlgorithmRegistry();
  std::vector<const AlgorithmDescriptor*> descriptors_;
};

/// The capability validation of run_registered_algorithm, separately
/// callable: throws a capability-named PreconditionError if the request
/// wants active faults or observers the descriptor does not support.
/// Admission layers (the batch service, the fault driver) call this *before*
/// entering a failure-capturing run, so a capability mismatch is a rejection
/// rather than a recorded algorithm failure.
void check_run_capabilities(const AlgorithmDescriptor& descriptor,
                            const AlgoRunRequest& request);

/// Node-ceiling admission: throws a PreconditionError naming the
/// algorithm's actual bound (descriptor.max_nodes, derived from kMaxIdBits
/// for wire-bound engines) when the graph is too large. No-op for
/// unbounded algorithms. Called by run_registered_algorithm and, earlier,
/// by the service's admission ladder so oversized jobs are *rejected*
/// rather than recorded as algorithm failures.
void check_node_admission(const AlgorithmDescriptor& descriptor,
                          std::uint64_t node_count);

/// Capability-checked uniform execution: looks up nothing (callers resolved
/// the descriptor already), validates the request against the descriptor's
/// capabilities with capability-named PreconditionErrors, then invokes the
/// adapter. `options` must be bound to `descriptor`.
AlgoResult run_registered_algorithm(const AlgorithmDescriptor& descriptor,
                                    const Graph& g, const AlgoOptions& options,
                                    const AlgoRunRequest& request);

/// Output validity under the descriptor's output kind: maximal independence
/// for kMis, independent 2-ruling for kRulingSet.
bool algo_output_valid(const AlgorithmDescriptor& descriptor, const Graph& g,
                       const std::vector<char>& in_set);

}  // namespace dmis
