// Shared option-schema fragments for algorithm descriptors (mis/registry.h).
//
// The sparsified family — the direct §2.3 runner, its CONGEST translation,
// and the §2.4 clique simulation — share the three SparsifiedParams knobs.
// Each descriptor's option array must be one contiguous static array, so the
// shared fields are a macro fragment spliced into each; the resolution rule
// (-1 = derive the field from SparsifiedParams::from_n, i.e. the paper's
// parameterization at the input's n) lives here once.
#pragma once

#include "mis/registry.h"
#include "mis/sparsified.h"

/// Splice into an OptionField array: the three SparsifiedParams fields, each
/// defaulting to "auto" (-1 → SparsifiedParams::from_n at run time).
#define DMIS_SPARSIFIED_PARAM_OPTION_FIELDS                                  \
  {"phase_length", dmis::OptionType::kI64, {.i = -1},                        \
   "iterations per phase R; -1 = paper parameterization from n"},            \
  {"superheavy_log2_threshold", dmis::OptionType::kI64, {.i = -1},           \
   "super-heavy iff d_t0(v) >= 2^this; -1 = 2R from n"},                     \
  {"sample_boost", dmis::OptionType::kI64, {.i = -1},                        \
   "S-membership boost: r <= 2^this * p_t0; -1 = R from n"}

namespace dmis {

/// Params from the shared option fields: start from the paper's
/// parameterization (from_n) and override any field set >= 0.
inline SparsifiedParams sparsified_params_from_options(
    const AlgoOptions& options, NodeId n) {
  SparsifiedParams params = SparsifiedParams::from_n(n);
  const std::int64_t r = options.get_i64("phase_length");
  if (r >= 0) params.phase_length = static_cast<int>(r);
  const std::int64_t threshold = options.get_i64("superheavy_log2_threshold");
  if (threshold >= 0) {
    params.superheavy_log2_threshold = static_cast<int>(threshold);
  }
  const std::int64_t boost = options.get_i64("sample_boost");
  if (boost >= 0) params.sample_boost = static_cast<int>(boost);
  return params;
}

}  // namespace dmis
