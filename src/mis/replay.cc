#include "mis/replay.h"

#include <utility>

#include "mis/registry.h"
#include "util/check.h"

namespace dmis {
namespace {

RecordedFailure failure_from_site(const char* kind, const char* what,
                                  const FailureSite& site) {
  RecordedFailure f;
  f.kind = kind;
  f.round = site.round >= 0 ? static_cast<std::uint64_t>(site.round) : 0;
  f.node = site.node;
  f.witness = -1;
  std::string detail;
  if (site.engine != nullptr) detail += site.engine;
  if (site.message_type != nullptr) {
    detail += detail.empty() ? "" : "/";
    detail += site.message_type;
  }
  if (!detail.empty()) detail += ": ";
  detail += what;
  f.detail = std::move(detail);
  return f;
}

RecordedFailure failure_from_violation(const InvariantViolation& v) {
  RecordedFailure f;
  f.kind = std::string("invariant:") + invariant_kind_name(v.kind);
  f.round = v.round;
  f.node = v.node == kInvalidNode ? -1 : static_cast<std::int64_t>(v.node);
  f.witness =
      v.witness == kInvalidNode ? -1 : static_cast<std::int64_t>(v.witness);
  f.detail = v.detail;
  return f;
}

}  // namespace

const std::vector<std::string>& fault_algorithm_names() {
  static const std::vector<std::string> names =
      AlgorithmRegistry::instance().names_where(
          [](const AlgorithmDescriptor& d) {
            return d.caps.fault_injectable;
          });
  return names;
}

bool is_fault_algorithm(const std::string& name) {
  const AlgorithmDescriptor* d = AlgorithmRegistry::instance().find(name);
  return d != nullptr && d->caps.fault_injectable;
}

FaultRunResult run_algorithm_with_faults(
    const Graph& g, const std::string& algorithm, std::uint64_t seed,
    int threads, const FaultSchedule& schedule, std::uint64_t max_rounds,
    const std::vector<RoundObserver*>& extra_observers,
    const std::string& options_json) {
  const AlgorithmDescriptor& descriptor =
      AlgorithmRegistry::instance().require(algorithm);
  const AlgoOptions options = AlgoOptions::parse(descriptor, options_json);
  FaultPlane plane(schedule);
  InvariantAuditor auditor(g);

  AlgoRunRequest request;
  request.seed = seed;
  request.max_rounds = max_rounds;
  request.threads = threads;
  request.faults = &plane;
  if (descriptor.caps.observer_attachable) {
    request.observers.push_back(&auditor);
  }
  request.observers.insert(request.observers.end(), extra_observers.begin(),
                           extra_observers.end());
  // Admission: capability mismatches are rejections, thrown before the
  // failure-capturing run below starts.
  check_run_capabilities(descriptor, request);

  FaultRunResult out;
  bool finished = false;
  try {
    AlgoResult r = run_registered_algorithm(descriptor, g, options, request);
    out.run = std::move(r.run);
    out.retries = r.retries;
    finished = true;
  } catch (const PreconditionError& e) {
    out.failure = failure_from_site("precondition", e.what(), e.site());
  } catch (const InvariantError& e) {
    out.failure = failure_from_site("assert", e.what(), e.site());
  }

  out.violations = auditor.violations();
  out.total_violations = auditor.total_violations();
  if (finished && descriptor.output == AlgoOutputKind::kMis &&
      !out.run.in_mis.empty()) {
    // Final end-state audit: catches violations the per-iteration markers
    // missed (e.g. the clique driver, which has no iteration markers).
    std::vector<char> decided(out.run.decided_round.size(), 0);
    for (std::size_t v = 0; v < decided.size(); ++v) {
      decided[v] = out.run.decided_round[v] != kNeverDecided ? 1 : 0;
    }
    std::vector<InvariantViolation> final_violations = check_mis_invariants(
        g, out.run.in_mis, decided, out.run.rounds);
    out.total_violations += final_violations.size();
    for (InvariantViolation& v : final_violations) {
      out.violations.push_back(std::move(v));
    }
  }
  if (out.failure.kind == "none" && !out.violations.empty()) {
    out.failure = failure_from_violation(out.violations.front());
  }
  out.fault_stats = plane.stats();
  return out;
}

ReproBundle make_repro_bundle(const Graph& g, const std::string& algorithm,
                              std::uint64_t seed, int threads,
                              std::uint64_t max_rounds,
                              const FaultSchedule& schedule,
                              const FaultRunResult& result,
                              const std::string& options_json) {
  const AlgorithmDescriptor& descriptor =
      AlgorithmRegistry::instance().require(algorithm);
  const AlgoOptions options = AlgoOptions::parse(descriptor, options_json);
  ReproBundle bundle;
  bundle.algorithm = algorithm;
  bundle.seed = seed;
  bundle.threads = threads;
  bundle.max_rounds = max_rounds;
  if (!(options == AlgoOptions(descriptor))) {
    bundle.options_json = options.canonical_json();
  }
  bundle.schedule = schedule;
  bundle.graph = g;
  bundle.failure = result.failure;
  return bundle;
}

bool failures_match(const RecordedFailure& a, const RecordedFailure& b) {
  return a.kind == b.kind && a.round == b.round && a.node == b.node &&
         a.witness == b.witness;
}

ReplayOutcome replay_bundle(const ReproBundle& bundle) {
  ReplayOutcome outcome;
  outcome.expected = bundle.failure;
  outcome.result =
      run_algorithm_with_faults(bundle.graph, bundle.algorithm, bundle.seed,
                                bundle.threads, bundle.schedule,
                                bundle.max_rounds, {}, bundle.options_json);
  outcome.observed = outcome.result.failure;
  outcome.reproduced = failures_match(outcome.expected, outcome.observed);
  return outcome;
}

}  // namespace dmis
