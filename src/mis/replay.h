// Fault-run driver and crash-bundle replay.
//
// One entry point runs any MIS algorithm of the suite under a FaultPlane
// with an InvariantAuditor attached, turns whatever goes wrong — an auditor
// violation, a PreconditionError from a poisoned decode, an InvariantError
// from a broken internal cross-check — into the structured RecordedFailure
// of runtime/repro.h, and packages the inputs as a ReproBundle. The inverse
// direction, replay_bundle, re-runs a bundle and checks the recorded failure
// reproduces; the determinism contract of runtime/faults.h makes this exact,
// so `dmis_cli replay --bundle` and the CI regression gate are one function
// call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "runtime/faults.h"
#include "runtime/invariant_auditor.h"
#include "runtime/repro.h"

namespace dmis {

/// Algorithm registry names accepted by run_algorithm_with_faults (also the
/// `algorithm:` values of a bundle): "beeping", "halfduplex", "luby",
/// "ghaffari", "congest" (the sparsified CONGEST translation), "clique".
const std::vector<std::string>& fault_algorithm_names();
bool is_fault_algorithm(const std::string& name);

struct FaultRunResult {
  MisRun run;
  /// Realized fault counts (thread-count invariant, like everything else).
  FaultStats fault_stats;
  /// Auditor violations observed during the run plus, when the run finished,
  /// a final one-shot check of the end state.
  std::vector<InvariantViolation> violations;
  std::uint64_t total_violations = 0;
  /// Clique phase retries (0 for the other algorithms).
  std::uint64_t retries = 0;
  /// The first failure, or kind "none" for a clean run.
  RecordedFailure failure;

  bool failed() const { return failure.kind != "none"; }
};

/// Runs `algorithm` on `g` under `schedule`. `max_rounds` caps the
/// algorithm's own iteration/phase budget; 0 keeps its default. Throws
/// PreconditionError for an unknown algorithm name; algorithm failures are
/// *captured* in the result, never propagated. `extra_observers` are
/// attached after the built-in invariant auditor (the batch execution
/// service injects per-job deadline/cancellation observers here); whatever
/// such an observer throws propagates out of this function uncaught — only
/// the library's own PreconditionError/InvariantError become recorded
/// failures.
FaultRunResult run_algorithm_with_faults(
    const Graph& g, const std::string& algorithm, std::uint64_t seed,
    int threads, const FaultSchedule& schedule, std::uint64_t max_rounds = 0,
    const std::vector<RoundObserver*>& extra_observers = {});

/// Packages a finished fault run as a replayable bundle.
ReproBundle make_repro_bundle(const Graph& g, const std::string& algorithm,
                              std::uint64_t seed, int threads,
                              std::uint64_t max_rounds,
                              const FaultSchedule& schedule,
                              const FaultRunResult& result);

/// Field-wise failure equivalence: kind, round, node and witness must agree;
/// `detail` is informational only (it may embed build-dependent text).
bool failures_match(const RecordedFailure& a, const RecordedFailure& b);

struct ReplayOutcome {
  bool reproduced = false;
  RecordedFailure expected;
  RecordedFailure observed;
  FaultRunResult result;
};

/// Re-runs a bundle and compares the observed failure against the recorded
/// one (failures_match). A bundle recording "none" reproduces iff the rerun
/// is also clean.
ReplayOutcome replay_bundle(const ReproBundle& bundle);

}  // namespace dmis
