// Fault-run driver and crash-bundle replay.
//
// One entry point runs any MIS algorithm of the suite under a FaultPlane
// with an InvariantAuditor attached, turns whatever goes wrong — an auditor
// violation, a PreconditionError from a poisoned decode, an InvariantError
// from a broken internal cross-check — into the structured RecordedFailure
// of runtime/repro.h, and packages the inputs as a ReproBundle. The inverse
// direction, replay_bundle, re-runs a bundle and checks the recorded failure
// reproduces; the determinism contract of runtime/faults.h makes this exact,
// so `dmis_cli replay --bundle` and the CI regression gate are one function
// call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "runtime/faults.h"
#include "runtime/invariant_auditor.h"
#include "runtime/repro.h"

namespace dmis {

/// Registry names with the fault-injection capability (mis/registry.h) —
/// the algorithms whose bundles can carry an *active* fault schedule. Any
/// registered algorithm may run through run_algorithm_with_faults; only
/// these accept a non-trivial schedule.
const std::vector<std::string>& fault_algorithm_names();
bool is_fault_algorithm(const std::string& name);

struct FaultRunResult {
  MisRun run;
  /// Realized fault counts (thread-count invariant, like everything else).
  FaultStats fault_stats;
  /// Auditor violations observed during the run plus, when the run finished,
  /// a final one-shot check of the end state.
  std::vector<InvariantViolation> violations;
  std::uint64_t total_violations = 0;
  /// Clique phase retries (0 for the other algorithms).
  std::uint64_t retries = 0;
  /// The first failure, or kind "none" for a clean run.
  RecordedFailure failure;

  bool failed() const { return failure.kind != "none"; }
};

/// Runs any registered algorithm on `g` under `schedule`, dispatching
/// through the AlgorithmRegistry. `max_rounds` caps the algorithm's own
/// iteration/phase budget; 0 keeps its default. `options_json` is the
/// algorithm's typed options (mis/registry.h); empty means defaults.
///
/// Admission errors — unknown algorithm name, bad options, an *active*
/// schedule for a non-fault-capable algorithm, extra observers for a
/// non-observable one — throw PreconditionError before the run starts.
/// Algorithm failures during the run are *captured* in the result, never
/// propagated. The built-in invariant auditor is attached only when the
/// algorithm is observer-attachable; the final end-state audit runs for
/// MIS-output algorithms regardless. `extra_observers` are attached after
/// the auditor (the batch execution service injects per-job
/// deadline/cancellation observers here); whatever such an observer throws
/// propagates out of this function uncaught — only the library's own
/// PreconditionError/InvariantError become recorded failures.
FaultRunResult run_algorithm_with_faults(
    const Graph& g, const std::string& algorithm, std::uint64_t seed,
    int threads, const FaultSchedule& schedule, std::uint64_t max_rounds = 0,
    const std::vector<RoundObserver*>& extra_observers = {},
    const std::string& options_json = "");

/// Packages a finished fault run as a replayable bundle. Non-default
/// options are stored in canonical form; defaults (or empty `options_json`)
/// keep the bundle's v1 byte format.
ReproBundle make_repro_bundle(const Graph& g, const std::string& algorithm,
                              std::uint64_t seed, int threads,
                              std::uint64_t max_rounds,
                              const FaultSchedule& schedule,
                              const FaultRunResult& result,
                              const std::string& options_json = "");

/// Field-wise failure equivalence: kind, round, node and witness must agree;
/// `detail` is informational only (it may embed build-dependent text).
bool failures_match(const RecordedFailure& a, const RecordedFailure& b);

struct ReplayOutcome {
  bool reproduced = false;
  RecordedFailure expected;
  RecordedFailure observed;
  FaultRunResult result;
};

/// Re-runs a bundle and compares the observed failure against the recorded
/// one (failures_match). A bundle recording "none" reproduces iff the rerun
/// is also clean.
ReplayOutcome replay_bundle(const ReproBundle& bundle);

}  // namespace dmis
