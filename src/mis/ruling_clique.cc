#include "mis/ruling_clique.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "mis/greedy.h"
#include "mis/registry.h"
#include "util/bits.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

CliqueRulingResult clique_two_ruling_set(const Graph& g,
                                         const CliqueRulingOptions& options) {
  const NodeId n = g.node_count();
  CliqueRulingResult result;
  result.in_set.assign(n, 0);
  if (n == 0) return result;

  CliqueNetwork net(n, options.randomness.fork(0x2517ULL),
                    options.route_mode);
  const WireContext& ctx = net.wire_context();
  const double log_n = std::log(static_cast<double>(std::max<NodeId>(n, 2)));

  std::vector<char> live(n, 1);
  std::uint64_t live_count = n;
  std::vector<char> sampled(n, 0);

  std::uint64_t iteration = 0;
  for (; iteration < options.max_iterations && live_count > 0; ++iteration) {
    // 1. One all-to-all round: live degrees; everyone learns the maximum.
    std::uint64_t d = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (live[v] == 0) continue;
      std::uint64_t deg = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (live[u] != 0) ++deg;
      }
      d = std::max(d, deg);
    }
    net.charge_broadcast_round(WireMessageType::kDegreeAnnounce, live_count,
                               encoded_bits<DegreeAnnounceMsg>(ctx));

    // 2. Private sampling; sampled nodes tell their neighbors (one round).
    const double p =
        d == 0 ? 1.0
               : std::min(1.0, options.sampling_constant * log_n /
                                   static_cast<double>(d));
    std::vector<NodeId> sample;
    std::uint64_t sample_messages = 0;
    for (NodeId v = 0; v < n; ++v) {
      sampled[v] = 0;
      if (live[v] == 0) continue;
      if (options.randomness.bernoulli(RngStream::kAux, v, iteration, p)) {
        sampled[v] = 1;
        sample.push_back(v);
        for (const NodeId u : g.neighbors(v)) {
          if (live[u] != 0) ++sample_messages;
        }
      }
    }
    net.charge_neighborhood_round(WireMessageType::kJoinAnnounce,
                                  sample_messages,
                                  encoded_bits<JoinAnnounceMsg>(ctx));

    // 3. Ship the sampled subgraph to a leader; it solves greedily and
    //    routes the decisions back.
    std::vector<char> chosen_mask(n, 0);
    if (!sample.empty()) {
      const NodeId leader = 0;
      std::vector<Packet> packets;
      std::uint64_t sample_edges = 0;
      for (const NodeId v : sample) {
        packets.push_back(
            {v, leader, encode_payload(ctx, ResidualPresenceMsg{v})});
        for (const NodeId u : g.neighbors(v)) {
          if (u > v && sampled[u] != 0) {
            packets.push_back(
                {v, leader, encode_payload(ctx, ResidualEdgeMsg{v, u})});
            ++sample_edges;
          }
        }
      }
      result.stats.max_sample_size =
          std::max<std::uint64_t>(result.stats.max_sample_size,
                                  sample.size());
      result.stats.max_sample_edges =
          std::max(result.stats.max_sample_edges, sample_edges);
      net.route(packets);

      std::unordered_map<NodeId, NodeId> to_local;
      to_local.reserve(sample.size());
      for (std::size_t i = 0; i < sample.size(); ++i) {
        to_local.emplace(sample[i], static_cast<NodeId>(i));
      }
      GraphBuilder builder(static_cast<NodeId>(sample.size()));
      for (const Packet& pkt : packets) {
        if (pkt.payload.type == WireMessageType::kResidualEdge) {
          const auto msg = decode_payload<ResidualEdgeMsg>(ctx, pkt.payload);
          builder.add_edge(to_local.at(msg.u), to_local.at(msg.v));
        }
      }
      const Graph sample_graph = std::move(builder).build();
      const std::vector<char> mis = greedy_mis(sample_graph);
      std::vector<Packet> decisions;
      for (std::size_t i = 0; i < sample.size(); ++i) {
        decisions.push_back(
            {leader, sample[i],
             encode_payload(ctx, MisDecisionMsg{mis[i] != 0})});
      }
      net.route(decisions);
      for (const Packet& pkt : decisions) {
        if (decode_payload<MisDecisionMsg>(ctx, pkt.payload).in_mis) {
          chosen_mask[pkt.dst] = 1;
          result.in_set[pkt.dst] = 1;
        }
      }
    }

    // 4. Everyone with a sampled closed-neighbor is within distance 2 of a
    //    chosen node — ruled, leaves the problem. `sampled` is only ever set
    //    on nodes live at the start of this iteration, so it must be read
    //    directly: consulting `live[u]` here would miss sampled neighbors
    //    already cleared earlier in this very sweep.
    for (NodeId v = 0; v < n; ++v) {
      if (live[v] == 0) continue;
      bool ruled = sampled[v] != 0;
      for (const NodeId u : g.neighbors(v)) {
        if (ruled) break;
        ruled = sampled[u] != 0;
      }
      if (ruled) {
        live[v] = 0;
        --live_count;
      }
    }
  }
  DMIS_ASSERT(live_count == 0,
              "ruling set did not converge within "
                  << options.max_iterations << " iterations");
  result.stats.iterations = iteration;
  result.costs = net.costs();
  return result;
}


namespace {

constexpr OptionField kRulingOptionFields[] = {
    {"sampling_constant", OptionType::kDouble, {.d = 4.0},
     "sampling aggressiveness: p = min(1, c * ln(n) / d)"},
};

AlgoResult run_ruling2_descriptor(const Graph& g, const AlgoOptions& options,
                                  const AlgoRunRequest& request) {
  CliqueRulingOptions o;
  o.randomness = RandomSource(request.seed);
  o.sampling_constant = options.get_double("sampling_constant");
  if (request.max_rounds != 0) o.max_iterations = request.max_rounds;
  CliqueRulingResult r = clique_two_ruling_set(g, o);
  AlgoResult out;
  out.run.in_mis = std::move(r.in_set);
  out.run.decided_round.assign(g.node_count(), 0);
  out.run.rounds = r.costs.rounds;
  out.run.costs = r.costs;
  return out;
}

}  // namespace

const AlgorithmDescriptor& ruling2_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "ruling2",
      .summary = "direct congested-clique 2-ruling set (sample-to-leader, "
                 "degree halving) - the related-work contrast",
      .paper_ref = "[7,18]",
      .model = AlgoModel::kClique,
      .output = AlgoOutputKind::kRulingSet,
      .caps = {},
      .max_nodes = kMaxWireNodes,
      .options = kRulingOptionFields,
      .run = run_ruling2_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
