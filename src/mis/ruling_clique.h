// A direct congested-clique 2-ruling-set algorithm, in the spirit of the
// related work the paper contrasts itself against (Berns–Hegeman–Pemmaraju
// [7] and Hegeman–Pemmaraju–Sardeshmukh [18]): those works get ruling sets
// in O(log log n)-expected rounds precisely because ruling sets — unlike
// MIS — admit aggressive sample-and-ship-to-the-leader strategies.
//
// The algorithm (simplified to degree-halving; see the header note below):
// repeat until every node is ruled —
//   1. one round: live nodes announce their live degree; d = maximum;
//   2. every live node samples itself with probability min(1, c·ln n / d);
//      the expected number of edges inside the sample is O(n·ln²n / d), so
//      the sampled subgraph ships to a leader within O(1) Lenzen batches;
//   3. the leader computes a greedy MIS of the sample and announces it
//      (members join the ruling set);
//   4. every node with a sampled closed-neighbor is now within distance 2
//      of a chosen node (its sampled neighbor is chosen or has a chosen
//      sample-neighbor) — it leaves. W.h.p. this removes every node of
//      live degree >= d/4, so the maximum degree at least quarters per
//      iteration: O(log Δ) iterations of O(1) rounds each.
//
// [7, 18] sharpen the iteration count to O(log log n) expected with a more
// intricate degree-collapsing scheme; we implement the simple variant and
// measure it against the MIS(G²) reduction (bench E13 / tests). The output
// is a genuine 2-ruling set: an independent set with every node within
// distance 2.
#pragma once

#include <cstdint>

#include "clique/network.h"
#include "graph/graph.h"
#include "mis/common.h"
#include "rng/random_source.h"

namespace dmis {

struct CliqueRulingOptions {
  RandomSource randomness{0};
  RouteMode route_mode = RouteMode::kAccountedLenzen;
  /// Sampling aggressiveness: p = min(1, constant * ln(n) / d).
  double sampling_constant = 4.0;
  std::uint64_t max_iterations = 256;
};

struct CliqueRulingStats {
  std::uint64_t iterations = 0;
  std::uint64_t max_sample_size = 0;
  std::uint64_t max_sample_edges = 0;
};

struct CliqueRulingResult {
  std::vector<char> in_set;
  CostAccounting costs;  ///< congested-clique rounds/messages/bits
  CliqueRulingStats stats;
};

CliqueRulingResult clique_two_ruling_set(const Graph& g,
                                         const CliqueRulingOptions& options);

}  // namespace dmis
