#include "mis/sparsified.h"

#include <algorithm>
#include <cmath>

#include "rng/pow2_prob.h"
#include "runtime/parallel.h"
#include "mis/registry_support.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {

SparsifiedParams SparsifiedParams::from_n(NodeId n, double delta) {
  DMIS_CHECK(delta > 0.0, "delta must be positive");
  const double logn = std::log2(static_cast<double>(std::max<NodeId>(n, 2)));
  const int r = std::max(1, static_cast<int>(std::sqrt(delta * logn) / 2.0));
  SparsifiedParams p;
  p.phase_length = std::min(r, 63);  // beep vectors live in one 64-bit word
  p.superheavy_log2_threshold = 2 * p.phase_length;
  p.sample_boost = p.phase_length;
  return p;
}

MisRun sparsified_mis(const Graph& g, const SparsifiedOptions& options) {
  const NodeId n = g.node_count();
  const SparsifiedParams& prm = options.params;
  DMIS_CHECK(prm.phase_length >= 1 && prm.phase_length <= 63,
             "phase_length out of [1,63]: " << prm.phase_length);
  DMIS_CHECK(prm.sample_boost >= 0, "negative sample_boost");
  const int R = prm.phase_length;
  const double superheavy_threshold =
      std::ldexp(1.0, prm.superheavy_log2_threshold);

  MisRun run;
  run.in_mis.assign(n, 0);
  run.decided_round.assign(n, kNeverDecided);

  std::vector<char> alive(n, 1);
  std::vector<int> p_exp(n, 1);  // p = 2^-p_exp, initially 1/2
  std::uint64_t live = n;

  // Phase-scoped scratch.
  std::vector<char> superheavy(n, 0);
  std::vector<char> sampled(n, 0);
  std::vector<char> removed_mid(n, 0);   // removed within the current phase
  std::vector<char> beeps(n, 0);
  std::vector<char> heard(n, 0);
  std::vector<char> joined_now(n, 0);
  std::vector<std::uint64_t> seeds(n, 0);
  std::vector<std::uint32_t> deferred_iter(n, kNeverDecided);

  // The runner is lock-step (one loop plays all nodes), so it emits runtime
  // events itself: iteration markers carry the omniscient analysis view the
  // golden-round auditor consumes; round events give TraceRecorder
  // per-iteration cost deltas. All of it is skipped when unobserved.
  DMIS_CHECK(options.faults == nullptr || !options.faults->active(),
             "the direct sparsified runner has no wire to fault; use the "
             "congest translation (sparsified_congest_mis)");

  ObserverRegistry obs;
  for (RoundObserver* o : options.observers) obs.attach(o);
  std::vector<char> alive_now;
  std::vector<char> decided_now;
  if (!obs.empty()) {
    alive_now.assign(n, 0);
    decided_now.assign(n, 0);
  }
  const auto context = [&](std::uint64_t live_now) {
    RoundContext ctx;
    ctx.round = run.costs.rounds;
    ctx.live = live_now;
    ctx.costs = &run.costs;
    return ctx;
  };
  const auto emit_iteration_marker = [&](PhaseMarkerKind kind,
                                         std::uint64_t iter,
                                         bool exclude_deferred) {
    std::uint64_t live_now = 0;
    for (NodeId v = 0; v < n; ++v) {
      alive_now[v] = (alive[v] != 0 && removed_mid[v] == 0 &&
                      (!exclude_deferred || deferred_iter[v] == kNeverDecided))
                         ? 1
                         : 0;
      live_now += alive_now[v];
      decided_now[v] = (alive[v] == 0 || removed_mid[v] != 0 ||
                        deferred_iter[v] != kNeverDecided)
                           ? 1
                           : 0;
    }
    const MisAnalysisView view{alive_now, p_exp, superheavy, run.in_mis,
                               decided_now};
    RoundContext ctx = context(live_now);
    ctx.analysis = &view;
    obs.phase_marker({kind, iter}, ctx);
  };

  WorkerPool pool(options.threads);
  std::vector<std::uint64_t> lane_counts(
      static_cast<std::size_t>(pool.thread_count()), 0);
  const auto reduce_lanes = [&lane_counts]() {
    std::uint64_t sum = 0;
    for (std::uint64_t& c : lane_counts) {
      sum += c;
      c = 0;
    }
    return sum;
  };

  for (std::uint64_t phase = 0; phase < options.max_phases && live > 0;
       ++phase) {
    const std::uint64_t t0 = phase * static_cast<std::uint64_t>(R);

    SparsifiedPhaseRecord record;
    const bool tracing = static_cast<bool>(options.trace);
    if (tracing) {
      record.phase = phase;
      record.live_at_start = live;
      record.alive_start.assign(alive.begin(), alive.end());
      record.p_exp_start.assign(p_exp.begin(), p_exp.end());
      record.realized_beeps.assign(n, 0);
      record.join_iter.assign(n, kNeverDecided);
      record.removed_iter.assign(n, kNeverDecided);
    }
    if (!obs.empty()) obs.phase_marker({PhaseMarkerKind::kPhaseBegin, phase},
                                       context(live));

    // --- Phase-opening CONGEST round: exchange p_{t0}(v). ---
    if (!obs.empty()) obs.round_begin(context(live));
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
      std::uint64_t pairs = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = static_cast<NodeId>(i);
        if (alive[v] == 0) continue;
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) ++pairs;
        }
      }
      lane_counts[static_cast<std::size_t>(lane)] = pairs;
    });
    const std::uint64_t directed_live_pairs = reduce_lanes();
    // Same codec (and hence the same charge) as the node-program
    // translation's opener broadcast.
    constexpr std::uint64_t kOpenerBits = max_encoded_bits<SparsifiedOpenerMsg>();
    run.costs.rounds += 1;
    run.costs.add_messages(WireMessageType::kSparsifiedOpener,
                           directed_live_pairs,
                           directed_live_pairs * kOpenerBits);
    if (!obs.empty()) {
      obs.messages_delivered(context(live), directed_live_pairs,
                             directed_live_pairs * kOpenerBits);
      obs.wire_delivered(context(live), WireMessageType::kSparsifiedOpener,
                         directed_live_pairs,
                         directed_live_pairs * kOpenerBits);
      obs.round_end(context(live));
    }

    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = static_cast<NodeId>(i);
        superheavy[v] = 0;
        sampled[v] = 0;
        removed_mid[v] = 0;
        deferred_iter[v] = kNeverDecided;
        if (alive[v] == 0) continue;
        double d0 = 0.0;
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] != 0) d0 += Pow2Prob(p_exp[u]).value();
        }
        superheavy[v] = (d0 >= superheavy_threshold) ? 1 : 0;
        seeds[v] = sparsified_phase_seed(options.randomness, v, phase);
        if (superheavy[v] == 0) {
          const Pow2Prob p0(p_exp[v]);
          for (int i2 = 0; i2 < R; ++i2) {
            if (p0.sample_boosted(sparsified_beep_word(seeds[v], i2),
                                  prm.sample_boost)) {
              sampled[v] = 1;
              break;
            }
          }
        }
      }
    });

    if (tracing) {
      record.superheavy.assign(superheavy.begin(), superheavy.end());
      record.sampled.assign(sampled.begin(), sampled.end());
      for (NodeId v = 0; v < n; ++v) {
        if (sampled[v] == 0) continue;
        std::uint64_t deg_s = 0;
        for (const NodeId u : g.neighbors(v)) {
          if (sampled[u] != 0) ++deg_s;
        }
        record.max_sampled_degree = std::max(record.max_sampled_degree, deg_s);
      }
    }

    // --- R iterations of the beeping dynamic. ---
    for (int i = 0; i < R; ++i) {
      const std::uint64_t global_iter = t0 + static_cast<std::uint64_t>(i);
      if (!obs.empty()) {
        // Liveness for analysis: alive and not yet removed mid-phase (a
        // deferred super-heavy node keeps beeping, so it counts as live).
        emit_iteration_marker(PhaseMarkerKind::kIterationBegin, global_iter,
                              /*exclude_deferred=*/false);
        obs.round_begin(context(live));
      }

      // R1 beeps. Super-heavy nodes beep their committed trajectory through
      // the phase end (phase-commit semantics) unless the ablation removes
      // them eagerly.
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
        std::uint64_t local_beeps = 0;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const NodeId v = static_cast<NodeId>(idx);
          beeps[v] = 0;
          // Note: a deferred-removed super-heavy node (commit semantics) has
          // removed_mid == 0 and keeps beeping through the phase end.
          if (alive[v] == 0 || removed_mid[v] != 0) continue;
          const bool b =
              Pow2Prob(p_exp[v]).sample(sparsified_beep_word(seeds[v], i));
          beeps[v] = b ? 1 : 0;
          if (b) {
            ++local_beeps;
            DMIS_ASSERT(superheavy[v] != 0 || sampled[v] != 0,
                        "beeping node " << v << " missing from sampled set S");
            if (tracing) record.realized_beeps[v] |= (1ULL << i);
          }
        }
        lane_counts[static_cast<std::size_t>(lane)] = local_beeps;
      });
      const std::uint64_t iter_beeps = reduce_lanes();
      run.costs.add_beeps(iter_beeps);
      if (!obs.empty()) {
        obs.messages_delivered(context(live), iter_beeps, iter_beeps);
        obs.wire_delivered(context(live), WireMessageType::kBeep, iter_beeps,
                           iter_beeps);
      }
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const NodeId v = static_cast<NodeId>(idx);
          heard[v] = 0;
          if (alive[v] == 0 || removed_mid[v] != 0) continue;
          for (const NodeId u : g.neighbors(v)) {
            if (beeps[u] != 0) {
              heard[v] = 1;
              break;
            }
          }
        }
      });
      // Joins: not super-heavy, beeped, all neighbors silent.
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const NodeId v = static_cast<NodeId>(idx);
          joined_now[v] = 0;
          if (alive[v] == 0 || removed_mid[v] != 0 || superheavy[v] != 0) {
            continue;
          }
          if (beeps[v] != 0 && heard[v] == 0) {
            joined_now[v] = 1;
            run.in_mis[v] = 1;
            run.decided_round[v] = static_cast<std::uint32_t>(t0 + i);
            if (tracing) record.join_iter[v] = static_cast<std::uint32_t>(i);
          }
        }
      });
      // R2 removals: joiners and their neighbors. Super-heavy neighbors are
      // deferred to the phase boundary under commit semantics. Sequential:
      // joiners write their neighbors' slots.
      for (NodeId v = 0; v < n; ++v) {
        if (joined_now[v] == 0) continue;
        removed_mid[v] = 1;
        if (tracing) record.removed_iter[v] = static_cast<std::uint32_t>(i);
        for (const NodeId u : g.neighbors(v)) {
          if (alive[u] == 0 || removed_mid[u] != 0) continue;
          if (superheavy[u] != 0 && !prm.immediate_superheavy_removal) {
            if (deferred_iter[u] == kNeverDecided) {
              deferred_iter[u] = static_cast<std::uint32_t>(t0 + i);
              if (tracing) {
                record.removed_iter[u] = static_cast<std::uint32_t>(i);
              }
            }
          } else {
            removed_mid[u] = 1;
            run.decided_round[u] = static_cast<std::uint32_t>(t0 + i);
            if (tracing) {
              record.removed_iter[u] = static_cast<std::uint32_t>(i);
            }
          }
        }
      }
      // Probability updates for nodes still in the game.
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const NodeId v = static_cast<NodeId>(idx);
          if (alive[v] == 0 || removed_mid[v] != 0) continue;
          const Pow2Prob p(p_exp[v]);
          const bool halve = (superheavy[v] != 0) || (heard[v] != 0);
          p_exp[v] = (halve ? p.halved() : p.doubled_capped()).neg_exp();
        }
      });
      run.costs.rounds += 2;

      if (!obs.empty()) {
        obs.round_end(context(live));
        emit_iteration_marker(PhaseMarkerKind::kIterationEnd, global_iter,
                              /*exclude_deferred=*/true);
      }
    }

    // --- Phase boundary: apply removals. ---
    for (NodeId v = 0; v < n; ++v) {
      if (alive[v] == 0) continue;
      if (removed_mid[v] != 0) {
        alive[v] = 0;
        --live;
      } else if (deferred_iter[v] != kNeverDecided) {
        alive[v] = 0;
        run.decided_round[v] = deferred_iter[v];
        --live;
      }
    }
    if (tracing) {
      record.p_exp_end.assign(p_exp.begin(), p_exp.end());
      options.trace(record);
    }
    if (!obs.empty()) {
      obs.phase_marker({PhaseMarkerKind::kPhaseEnd, phase}, context(live));
    }
  }

  run.rounds = run.costs.rounds;
  return run;
}


namespace {

constexpr OptionField kSparsifiedOptionFields[] = {
    DMIS_SPARSIFIED_PARAM_OPTION_FIELDS,
    {"immediate_superheavy_removal", OptionType::kBool, {.b = false},
     "E9 ablation: remove super-heavy nodes eagerly instead of phase-commit"},
};

AlgoResult run_sparsified_descriptor(const Graph& g,
                                     const AlgoOptions& options,
                                     const AlgoRunRequest& request) {
  SparsifiedOptions o;
  o.params = sparsified_params_from_options(options, g.node_count());
  o.params.immediate_superheavy_removal =
      options.get_bool("immediate_superheavy_removal");
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_phases = request.max_rounds;
  o.observers = request.observers;
  o.threads = request.threads;
  AlgoResult out;
  out.run = sparsified_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& sparsified_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "sparsified",
      .summary = "sparsified beeping MIS, global lock-step runner (phase "
                 "traces; the run the clique simulation must match)",
      .paper_ref = "§2.3",
      .model = AlgoModel::kBeeping,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = false,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .options = kSparsifiedOptionFields,
      .run = run_sparsified_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
