// The Sparsified (Beeping) MIS Algorithm — paper §2.3.
//
// Phases of R iterations. A phase opens with one CONGEST round in which
// every live node sends p_t(v) to its neighbors; v computes
// d_{t0}(v) = Σ_{u∈N(v)} p_{t0}(u) and declares itself *super-heavy* for the
// phase when d_{t0}(v) >= 2^{superheavy_log2_threshold} (paper: 2^{2R}).
// Iterations then run the beeping dynamic, except:
//   * a super-heavy node cannot join the MIS and halves p every iteration
//     regardless of what it hears (its beeps are therefore predictable — the
//     "beep vector" the clique simulation pre-commits);
//   * everything else behaves exactly as in §2.2.
//
// Per-phase randomness: node v draws one private 64-bit phase seed; its beep
// word for iteration i is mix64(seed, i). The seed is what the clique
// simulation ships inside decorations (an O(log n)-bit compression of the
// paper's per-round r_t(v) list — see DESIGN.md §3).
//
// The *sampled set* S of paper §2.4 is also computed here per phase (a live,
// non-super-heavy v is in S iff some iteration i has
// r_i(v) <= 2^{sample_boost} · p_{t0}(v)), because Lemma 2.12's degree bound
// on G[S] (experiment E6) is a property of this algorithm, and because the
// congested-clique simulation must match this run bit-for-bit.
//
// Super-heavy removal semantics ("phase-commit", DESIGN.md §3): a super-heavy
// node whose neighbor joins the MIS keeps beeping its committed vector until
// the phase ends and is removed at the phase boundary. The
// `immediate_superheavy_removal` flag switches to eager removal for the E9
// ablation (not simulable by the clique algorithm, direct runs only).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "mis/common.h"
#include "rng/mix.h"
#include "rng/random_source.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

struct SparsifiedParams {
  /// R: iterations per phase (paper: sqrt(δ log n)/10).
  int phase_length = 2;
  /// Super-heavy iff d_{t0}(v) >= 2^this (paper: 2R, i.e. L = 2^{sqrt(δ log n)/5}).
  int superheavy_log2_threshold = 4;
  /// S-membership boost: r <= 2^this · p_{t0} (paper: R).
  int sample_boost = 2;
  /// E9 ablation; false = phase-commit semantics (the simulable default).
  bool immediate_superheavy_removal = false;

  /// The paper's parameterization: R = max(1, floor(sqrt(δ log2 n) / 2)),
  /// threshold exponent 2R, boost R. (The paper's literal /10 constant makes
  /// R = 0 for any feasible n; /2 preserves the Θ(sqrt(log n)) scaling while
  /// giving non-degenerate phases at laptop scale — see DESIGN.md.)
  static SparsifiedParams from_n(NodeId n, double delta = 1.0);
};

/// Per-phase execution record (equivalence tests, E5/E6 experiments).
struct SparsifiedPhaseRecord {
  std::uint64_t phase = 0;
  std::uint64_t live_at_start = 0;
  std::vector<char> alive_start;
  std::vector<char> superheavy;
  std::vector<char> sampled;  ///< the set S
  std::vector<int> p_exp_start;
  std::vector<int> p_exp_end;
  std::vector<std::uint64_t> realized_beeps;  ///< bit i = beeped in iter i (R1)
  std::vector<std::uint32_t> join_iter;       ///< in-phase iter or kNeverDecided
  std::vector<std::uint32_t> removed_iter;    ///< in-phase iter or kNeverDecided
  /// max |N(v) ∩ S| over v in S (Lemma 2.12 / E6).
  std::uint64_t max_sampled_degree = 0;
};

using SparsifiedTraceSink = std::function<void(const SparsifiedPhaseRecord&)>;

struct SparsifiedOptions {
  SparsifiedParams params;
  RandomSource randomness{0};
  /// Cap on phases; the run stops early once all nodes decide.
  std::uint64_t max_phases = 8192;
  /// Analysis-side observers (e.g. GoldenRoundAuditor, TraceRecorder). The
  /// runner emits runtime events (iteration/phase markers with analysis
  /// snapshots, per-iteration cost deltas); observers decide what to tally.
  std::vector<RoundObserver*> observers;
  SparsifiedTraceSink trace;  ///< invoked after every phase if set
  /// Optional fault plane (runtime/faults.h). Only the congest translation
  /// (sparsified_congest_mis) has a wire to fault; the direct lock-step
  /// runner rejects an active plane.
  FaultPlane* faults = nullptr;
  /// Worker threads for the per-node fan-outs (direct runner) or the engine
  /// (congest translation); results are thread-count invariant.
  int threads = 1;
};

/// Private phase seed of node v (shipped in clique decorations).
inline std::uint64_t sparsified_phase_seed(const RandomSource& rs, NodeId v,
                                           std::uint64_t phase) {
  return rs.word(RngStream::kBeep, v, phase);
}

/// Beep word of iteration i within a phase.
inline std::uint64_t sparsified_beep_word(std::uint64_t phase_seed, int iter) {
  return mix64(phase_seed, static_cast<std::uint64_t>(iter));
}

/// Direct (global lock-step) execution. Costs are accounted in CONGEST
/// terms: 1 round per phase start + 2 rounds per iteration.
MisRun sparsified_mis(const Graph& g, const SparsifiedOptions& options);

}  // namespace dmis
