#include "mis/sparsified_congest.h"

#include <cmath>
#include <memory>
#include <optional>

#include "rng/pow2_prob.h"
#include "runtime/congest.h"
#include "mis/registry_support.h"
#include "util/check.h"

namespace dmis {
namespace {

class SparsifiedProgram final : public CongestProgram {
 public:
  SparsifiedProgram(NodeId self, const SparsifiedParams& params,
                    const RandomSource& rs)
      : self_(self),
        params_(params),
        rs_(rs),
        phase_rounds_(1 + 2 * params.phase_length),
        superheavy_threshold_(
            std::ldexp(1.0, params.superheavy_log2_threshold)) {}

  void send(std::uint64_t round, CongestOutbox& out) override {
    const std::uint64_t phase = round / phase_rounds_;
    const std::uint64_t pos = round % phase_rounds_;
    if (pos == 0) {
      // Phase opener: publish p_{t0}. Also (re)derive the private seed.
      seed_ = sparsified_phase_seed(rs_, self_, phase);
      out.broadcast(SparsifiedOpenerMsg{p_.neg_exp()});
      return;
    }
    const int iter = static_cast<int>((pos - 1) / 2);
    if (pos % 2 == 1) {
      // R1: beep with probability p (unless removed mid-phase).
      beeped_ = !removed_mid_ &&
                p_.sample(sparsified_beep_word(seed_, iter));
      if (beeped_) out.broadcast(BeepMsg{});
    } else if (joined_ && !announced_) {
      // R2: announce the join.
      announced_ = true;
      out.broadcast(JoinAnnounceMsg{});
    }
  }

  bool receive(std::uint64_t round,
               std::span<const CongestMessage> inbox) override {
    const std::uint64_t pos = round % phase_rounds_;
    if (pos == 0) {
      double d0 = 0.0;
      for (const CongestMessage& m : inbox) {
        d0 += Pow2Prob(decode_message<SparsifiedOpenerMsg>(kOpenerCtx, m)
                           .p_exp)
                  .value();
      }
      superheavy_ = d0 >= superheavy_threshold_;
      removed_mid_ = false;
      deferred_ = false;
      return false;
    }
    const int iter = static_cast<int>((pos - 1) / 2);
    const std::uint64_t phase = round / phase_rounds_;
    const std::uint32_t global_iter = static_cast<std::uint32_t>(
        phase * static_cast<std::uint64_t>(params_.phase_length) +
        static_cast<std::uint64_t>(iter));
    if (pos % 2 == 1) {
      // R1 feedback: any beeping neighbor? Own join is decidable here; the
      // p update waits for R2 (the global runner skips the update in the
      // iteration a node is removed, and neighbor joins only become known
      // at the announce round).
      heard_ = !inbox.empty();
      if (!removed_mid_ && !superheavy_ && beeped_ && !heard_) {
        joined_ = true;
        removed_mid_ = true;
        decided_round_ = global_iter;
      }
      return false;
    }
    // R2 feedback: removals from neighbor joins, then the deferred p update.
    if (!inbox.empty() && !removed_mid_) {
      if (superheavy_ && !params_.immediate_superheavy_removal) {
        if (!deferred_) {
          deferred_ = true;
          decided_round_ = global_iter;
        }
      } else {
        removed_mid_ = true;
        decided_round_ = global_iter;
      }
    }
    if (!removed_mid_) {
      p_ = (superheavy_ || heard_) ? p_.halved() : p_.doubled_capped();
    }
    // Halting at the right moment: joiners and eagerly-removed nodes leave
    // after this R2; committed super-heavy nodes leave at the phase end.
    const bool phase_over = pos == phase_rounds_ - 1;
    if (joined_ && announced_) halted_ = true;
    if (removed_mid_ && !joined_) halted_ = true;
    if (deferred_ && phase_over) halted_ = true;
    return halted_;
  }

  bool halted() const override { return halted_; }
  bool joined() const { return joined_; }
  std::uint32_t decided_round() const { return decided_round_; }
  // Analysis accessors (probe-only; never communicated).
  int p_exp() const { return p_.neg_exp(); }
  bool is_superheavy() const { return superheavy_; }
  bool is_removed_mid() const { return removed_mid_; }
  bool is_deferred() const { return deferred_; }

 private:
  // Context-free fields (one 7-bit exponent); any context measures the
  // opener identically.
  static constexpr WireContext kOpenerCtx = WireContext::for_nodes(2);

  NodeId self_;
  SparsifiedParams params_;
  RandomSource rs_;
  std::uint64_t phase_rounds_;
  double superheavy_threshold_;
  std::uint64_t seed_ = 0;
  Pow2Prob p_ = Pow2Prob::half();
  bool superheavy_ = false;
  bool beeped_ = false;
  bool heard_ = false;
  bool joined_ = false;
  bool announced_ = false;
  bool removed_mid_ = false;
  bool deferred_ = false;
  bool halted_ = false;
  std::uint32_t decided_round_ = kNeverDecided;
};

}  // namespace

MisRun sparsified_congest_mis(const Graph& g,
                              const SparsifiedOptions& options) {
  DMIS_CHECK(!options.trace,
             "the phase-record trace is an omniscient-observer feature of "
             "sparsified_mis, not of the node-program translation");
  const NodeId n = g.node_count();
  const SparsifiedParams& prm = options.params;
  DMIS_CHECK(prm.phase_length >= 1 && prm.phase_length <= 63,
             "phase_length out of [1,63]: " << prm.phase_length);
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.reserve(n);
  std::vector<const SparsifiedProgram*> views;
  views.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto p =
        std::make_unique<SparsifiedProgram>(v, prm, options.randomness);
    views.push_back(p.get());
    programs.push_back(std::move(p));
  }
  CongestEngine engine(g, std::move(programs), congest_bandwidth_bits(n),
                       options.threads);
  engine.set_fault_plane(options.faults);
  const std::uint64_t phase_rounds = 1 + 2 * prm.phase_length;

  // Analysis channel: round `pos` within a phase is the opener (pos = 0),
  // an R1 (pos odd) or an R2 (pos even > 0); iterations open at R1 rounds
  // and close at R2 rounds. Snapshots mirror exactly the liveness masks the
  // lock-step runner shows its observers, so an attached auditor tallies the
  // same report on either execution (asserted by tests).
  std::vector<char> alive;
  std::vector<int> p_exp;
  std::vector<char> superheavy;
  std::vector<char> in_mis;
  std::vector<char> decided;
  if (!options.observers.empty()) {
    for (RoundObserver* o : options.observers) engine.observers().attach(o);
    alive.assign(n, 0);
    p_exp.assign(n, 1);
    superheavy.assign(n, 0);
    in_mis.assign(n, 0);
    decided.assign(n, 0);
    SimulationEngine::AnalysisProbe probe;
    const int R = prm.phase_length;
    probe.iteration_begin =
        [phase_rounds, R](std::uint64_t round) -> std::optional<std::uint64_t> {
      const std::uint64_t pos = round % phase_rounds;
      if (pos % 2 == 1) {
        return (round / phase_rounds) * static_cast<std::uint64_t>(R) +
               (pos - 1) / 2;
      }
      return std::nullopt;
    };
    probe.iteration_end =
        [phase_rounds, R](std::uint64_t round) -> std::optional<std::uint64_t> {
      const std::uint64_t pos = round % phase_rounds;
      if (pos != 0 && pos % 2 == 0) {
        return (round / phase_rounds) * static_cast<std::uint64_t>(R) +
               (pos - 2) / 2;
      }
      return std::nullopt;
    };
    probe.snapshot = [&views, &alive, &p_exp, &superheavy, &in_mis, &decided,
                      n](PhaseMarkerKind kind) {
      // Phase-commit semantics: a deferred super-heavy node keeps beeping
      // until the phase boundary, so it is live at iteration begin but no
      // longer live in the post-removal view at iteration end — exactly the
      // masks the lock-step runner shows.
      const bool exclude_deferred = kind == PhaseMarkerKind::kIterationEnd;
      for (NodeId v = 0; v < n; ++v) {
        const SparsifiedProgram& prog = *views[v];
        alive[v] = (!prog.halted() && !prog.is_removed_mid() &&
                    !(exclude_deferred && prog.is_deferred()))
                       ? 1
                       : 0;
        p_exp[v] = prog.p_exp();
        superheavy[v] = prog.is_superheavy() ? 1 : 0;
        in_mis[v] = prog.joined() ? 1 : 0;
        decided[v] = (prog.halted() || prog.is_removed_mid() ||
                      prog.is_deferred())
                         ? 1
                         : 0;
      }
      return MisAnalysisView{alive, p_exp, superheavy, in_mis, decided};
    };
    engine.set_analysis_probe(std::move(probe));
  }

  engine.run(options.max_phases * phase_rounds);
  MisRun run;
  run.in_mis.resize(n, 0);
  run.decided_round.resize(n, kNeverDecided);
  for (NodeId v = 0; v < n; ++v) {
    run.in_mis[v] = views[v]->joined() ? 1 : 0;
    run.decided_round[v] = views[v]->decided_round();
  }
  run.costs = engine.costs();
  run.rounds = run.costs.rounds;
  return run;
}


namespace {

constexpr OptionField kCongestOptionFields[] = {
    DMIS_SPARSIFIED_PARAM_OPTION_FIELDS,
    {"immediate_superheavy_removal", OptionType::kBool, {.b = false},
     "E9 ablation: remove super-heavy nodes eagerly instead of phase-commit"},
};

AlgoResult run_congest_descriptor(const Graph& g, const AlgoOptions& options,
                                  const AlgoRunRequest& request) {
  SparsifiedOptions o;
  o.params = sparsified_params_from_options(options, g.node_count());
  o.params.immediate_superheavy_removal =
      options.get_bool("immediate_superheavy_removal");
  o.randomness = RandomSource(request.seed);
  if (request.max_rounds != 0) o.max_phases = request.max_rounds;
  o.observers = request.observers;
  o.faults = request.faults;
  o.threads = request.threads;
  AlgoResult out;
  out.run = sparsified_congest_mis(g, o);
  return out;
}

}  // namespace

const AlgorithmDescriptor& sparsified_congest_descriptor() {
  static const AlgorithmDescriptor descriptor = {
      .name = "congest",
      .summary = "sparsified MIS as real node programs on the enforcing "
                 "CONGEST engine (bit-identical to the lock-step runner)",
      .paper_ref = "§2.3",
      .model = AlgoModel::kCongest,
      .output = AlgoOutputKind::kMis,
      .caps = {.fault_injectable = true,
               .observer_attachable = true,
               .deterministic_parallel = true},
      .max_nodes = kMaxWireNodes,
      .options = kCongestOptionFields,
      .run = run_congest_descriptor,
  };
  return descriptor;
}

}  // namespace dmis
