// The sparsified MIS algorithm (§2.3) as *real node programs* on the
// enforcing CONGEST engine — each node sees only its own state and its
// inbox, and every message is checked against the B-bit budget.
//
// sparsified_mis (sparsified.h) executes the same algorithm as a global
// lock-step loop, which the equivalence tests and the congested-clique
// simulation build on; this translation exists to *prove* the algorithm is
// a genuine CONGEST algorithm: same seed ⇒ identical MIS and identical
// per-node decision rounds (tests/test_sparsified_congest.cc).
//
// Wire format per phase of R iterations (1 + 2R CONGEST rounds):
//   round 0:        broadcast own p exponent (8 bits); receivers compute
//                   d_{t0} and their super-heavy status;
//   rounds 1,3,...: R1 beep rounds — broadcast 1 bit when beeping;
//   rounds 2,4,...: R2 announce rounds — joiners broadcast 1 bit.
#pragma once

#include "graph/graph.h"
#include "mis/common.h"
#include "mis/sparsified.h"

namespace dmis {

/// Runs the node-program translation. options.observers attach to the
/// CONGEST engine (a GoldenRoundAuditor tallies the same report as on the
/// lock-step runner — asserted by tests); options.trace is not supported
/// here (the phase record is an omniscient-observer feature of the global
/// runner). Both removal semantics are supported.
MisRun sparsified_congest_mis(const Graph& g,
                              const SparsifiedOptions& options);

}  // namespace dmis
