#include "rng/mix.h"

#include "util/check.h"

namespace dmis {

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  DMIS_CHECK(bound > 0, "next_below(0)");
  // Lemire-style rejection: accept unless we land in the biased tail.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace dmis
