// Stateless 64-bit mixing primitives.
//
// All randomness in the simulator is *counter-based*: a random word is a pure
// function of (seed, coordinates). This gives three properties the
// reproduction depends on:
//   1. determinism — same seed, same run, regardless of iteration order;
//   2. random access — the congested-clique simulation (paper §2.4) requires
//      each node to pre-draw r_t(v) for all rounds of a phase, and other
//      nodes to re-derive those exact draws during local replay;
//   3. independence across nodes/rounds — coordinates are mixed through a
//      strong finalizer, so distinct coordinates give independent-looking
//      words.
#pragma once

#include <cstdint>

namespace dmis {

/// Fast strong 64-bit finalizer (splitmix64 / Stafford mix13).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of a coordinate tuple into one 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  return mix64(mix64(a) ^ (b + 0x9e3779b97f4a7c15ULL));
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) {
  return mix64(mix64(a, b) ^ (c + 0xd1b54a32d192ed03ULL));
}

constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, std::uint64_t d) {
  return mix64(mix64(a, b, c) ^ (d + 0x8cb92ba72f3d8dd7ULL));
}

/// Classic sequential splitmix64 — used where a cheap stream is fine
/// (e.g. shuffles inside graph generators).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) by rejection (unbiased). bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dmis
