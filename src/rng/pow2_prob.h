// Exact power-of-two probabilities.
//
// Every marking/beeping probability in the paper starts at 1/2 and is only
// ever halved or doubled-with-cap-1/2 (algorithms of §2.1, §2.2, §2.3). It is
// therefore *exactly* 2^-k for an integer k >= 1. Representing the exponent —
// not a float — gives:
//   * zero drift: the congested-clique local replay reproduces the direct
//     run bit-for-bit;
//   * O(log Δ)-bit wire format: the exponent fits in 7 bits, so exchanging
//     p_t(v) at a phase start (paper §2.3) is trivially within CONGEST's B;
//   * exact beep sampling against a 64-bit uniform word.
#pragma once

#include <compare>
#include <cstdint>

#include "util/check.h"

namespace dmis {

class Pow2Prob {
 public:
  /// Exponents saturate here; 2^-120 is far below any beepable probability
  /// (a 64-bit uniform word cannot land below 2^-64 anyway).
  static constexpr int kMaxNegExp = 120;

  /// The paper's initial probability p_1(v) = 1/2 (also the cap).
  static constexpr Pow2Prob half() { return Pow2Prob(1); }

  /// p = 2^-neg_exp, neg_exp in [1, kMaxNegExp].
  constexpr explicit Pow2Prob(int neg_exp) : neg_exp_(neg_exp) {
    DMIS_CHECK_CX(neg_exp >= 1 && neg_exp <= kMaxNegExp,
                  "probability exponent out of range");
  }

  constexpr int neg_exp() const { return neg_exp_; }

  /// p/2, saturating at 2^-kMaxNegExp.
  constexpr Pow2Prob halved() const {
    return Pow2Prob(neg_exp_ >= kMaxNegExp ? kMaxNegExp : neg_exp_ + 1);
  }

  /// min{2p, 1/2} — the paper's raise rule.
  constexpr Pow2Prob doubled_capped() const {
    return Pow2Prob(neg_exp_ <= 1 ? 1 : neg_exp_ - 1);
  }

  /// Exact double value (0.0 only on underflow past double's range, which
  /// cannot happen with kMaxNegExp = 120).
  constexpr double value() const {
    double v = 1.0;
    for (int i = 0; i < neg_exp_; ++i) v *= 0.5;
    return v;
  }

  /// Bernoulli(p) decision from a uniform 64-bit word: true iff r < 2^(64-k).
  /// For k > 64 the event has probability < 2^-64 and is treated as never.
  constexpr bool sample(std::uint64_t r) const {
    if (neg_exp_ > 64) return false;
    if (neg_exp_ == 64) return r == 0;
    return (r >> (64 - neg_exp_)) == 0;
  }

  /// Bernoulli(min{1, p * 2^boost}) — the sampled-set rule of §2.4:
  /// include v in S iff r_t(v) <= 2^R * p_{t0}(v). boost >= 0.
  constexpr bool sample_boosted(std::uint64_t r, int boost) const {
    DMIS_CHECK_CX(boost >= 0, "negative boost");
    const int k = neg_exp_ - boost;
    if (k <= 0) return true;  // boosted probability >= 1
    if (k > 64) return false;
    if (k == 64) return r == 0;
    return (r >> (64 - k)) == 0;
  }

  friend constexpr bool operator==(Pow2Prob a, Pow2Prob b) {
    return a.neg_exp_ == b.neg_exp_;
  }
  /// Orders by probability value (larger p compares greater).
  friend constexpr std::strong_ordering operator<=>(Pow2Prob a, Pow2Prob b) {
    return b.neg_exp_ <=> a.neg_exp_;
  }

 private:
  int neg_exp_;
};

static_assert(Pow2Prob::half().value() == 0.5);
static_assert(Pow2Prob::half().halved().value() == 0.25);
static_assert(Pow2Prob::half().doubled_capped() == Pow2Prob::half());
static_assert(Pow2Prob(3).doubled_capped() == Pow2Prob(2));
static_assert(Pow2Prob(2) < Pow2Prob::half());

}  // namespace dmis
