// Per-(node, round, stream) random words for the distributed algorithms.
//
// The paper (§2.4, "we disentangle the randomness from the simulation")
// models each node v as holding a uniform value r_t(v) per round t, with
// Θ(log Δ) bits of precision, drawn independently of the execution. We use
// 64-bit words addressed by (node, round, stream): any participant that knows
// the public seed and the coordinates can re-derive a draw, which is exactly
// what local replay in the congested-clique simulation needs.
#pragma once

#include <cstdint>

#include "rng/mix.h"

namespace dmis {

/// Logical randomness streams. Keeping streams disjoint guarantees that e.g.
/// Luby's per-round priorities never alias the beeping algorithms' r_t(v).
enum class RngStream : std::uint64_t {
  kBeep = 1,          // r_t(v) beep decisions (beeping / sparsified / clique)
  kLubyPriority = 2,  // Luby's random priorities
  kGhaffariMark = 3,  // SODA'16 dynamic marking
  kGenerator = 4,     // graph generators
  kRouting = 5,       // Valiant intermediate choices
  kAux = 6,           // miscellaneous (tests, examples)
  kFaults = 7,        // fault-plane drop/corrupt/delay decisions
  kLubyPriorityHi = 8,  // high word of Luby priorities wider than 64 bits
                        // (id_bits > 21; the low word stays on
                        // kLubyPriority so narrow runs are unchanged)
};

class RandomSource {
 public:
  explicit constexpr RandomSource(std::uint64_t seed) : seed_(mix64(seed)) {}

  constexpr std::uint64_t seed() const { return seed_; }

  /// The canonical draw: uniform 64-bit word for (node, round) in a stream.
  constexpr std::uint64_t word(RngStream stream, std::uint64_t node,
                               std::uint64_t round) const {
    return mix64(seed_, static_cast<std::uint64_t>(stream), node, round);
  }

  /// Uniform double in [0,1) from a (node, round) coordinate.
  constexpr double uniform(RngStream stream, std::uint64_t node,
                           std::uint64_t round) const {
    return static_cast<double>(word(stream, node, round) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) from a (node, round) coordinate.
  constexpr bool bernoulli(RngStream stream, std::uint64_t node,
                           std::uint64_t round, double p) const {
    return uniform(stream, node, round) < p;
  }

  /// A derived source, for nesting independent sub-experiments.
  constexpr RandomSource fork(std::uint64_t salt) const {
    return RandomSource(mix64(seed_, salt));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace dmis
