// Per-round delivery arena for the node-stepping engines.
//
// One flat buffer per worker lane plus a per-node slice index replaces the
// old vector-of-vectors outbox/inbox storage: a round appends every node's
// messages contiguously into its lane's buffer, and a new round resets the
// buffers without freeing them. After warm-up the steady state does zero
// per-message heap allocation (the instrumented test pins this), and a
// lane's traffic is one contiguous block instead of n scattered vectors.
//
// Concurrency contract (matches WorkerPool's static partition): each node
// belongs to exactly one lane; open/append for a node run only on that
// lane's thread, and reads (`of`) happen after the phase barrier. Slices are
// strictly sequential within a lane — a node's slot must be the lane's tail
// while it is being appended to.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace dmis {

template <class T>
class DeliveryArena {
 public:
  DeliveryArena(std::size_t nodes, int lanes)
      : slices_(nodes), buffers_(static_cast<std::size_t>(lanes)) {
    DMIS_CHECK(lanes >= 1, "arena needs at least one lane");
  }

  /// Starts a new round: every lane buffer is emptied, capacity kept, and
  /// slices from earlier rounds are invalidated (epoch bump, no O(n) sweep).
  void begin_round() {
    for (auto& buf : buffers_) buf.clear();
    ++epoch_;
  }

  /// Opens node's (empty) slot at the tail of `lane`. With frontier
  /// iteration only live nodes are opened each round; reading a node that
  /// was not opened this round yields an empty span (stale epoch), never a
  /// dangling view into a reused buffer.
  void open(int lane, std::size_t node) {
    Slice& s = slices_[node];
    s.lane = static_cast<std::uint32_t>(lane);
    s.offset = buffers_[static_cast<std::size_t>(lane)].size();
    s.length = 0;
    s.epoch = epoch_;
  }

  /// Appends to node's slot, which must still be its lane's tail.
  void append(std::size_t node, const T& item) {
    Slice& s = slices_[node];
    auto& buf = buffers_[s.lane];
    DMIS_ASSERT(s.offset + s.length == buf.size(),
                "arena slot appended out of sequence");
    buf.push_back(item);
    ++s.length;
  }

  std::span<const T> of(std::size_t node) const {
    const Slice& s = slices_[node];
    if (s.epoch != epoch_) return {};
    return std::span<const T>(buffers_[s.lane]).subspan(s.offset, s.length);
  }

 private:
  struct Slice {
    std::uint32_t lane = 0;
    std::size_t offset = 0;
    std::size_t length = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<Slice> slices_;
  std::vector<std::vector<T>> buffers_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dmis
