#include "runtime/beeping.h"

#include <algorithm>

#include "util/check.h"

namespace dmis {

BeepEngine::BeepEngine(const Graph& graph,
                       std::vector<std::unique_ptr<BeepProgram>> programs,
                       DuplexMode mode, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      mode_(mode),
      pool_(threads),
      beeped_(graph.node_count(), 0),
      lane_beeps_(static_cast<std::size_t>(pool_.thread_count()), 0),
      lane_faults_(static_cast<std::size_t>(pool_.thread_count())),
      lane_halts_(static_cast<std::size_t>(pool_.thread_count()), 0) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
  // Seed the frontier: the one place halted() is polled. From here on a
  // node leaves the frontier exactly once, via feedback()'s return value.
  decided_.resize(programs_.size(), 0);
  live_.reserve(programs_.size());
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (programs_[v]->halted()) {
      decided_[v] = 1;
    } else {
      live_.push_back(v);
    }
  }
}

bool BeepEngine::step() {
  if (live_.empty()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();
  const FaultPlane* faults = faults_;

  // Act phase, over the frontier only: each live node decides beep/listen
  // into its own slot. A downed node (crashed/stalled by the fault plane)
  // neither acts nor beeps. Retired nodes are never visited — their beep
  // slots were zeroed when they left the frontier, so the mask neighbors
  // read below is still correct for them.
  pool_.parallel_for_indices(
      live_, [&](const std::uint32_t* first, const std::uint32_t* last,
                 int lane) {
        CheckScope scope("beep.act");
        CheckScope::set_round(round_);
        std::uint64_t local_beeps = 0;
        for (const std::uint32_t* p = first; p != last; ++p) {
          const NodeId v = *p;
          if (faults != nullptr && faults->node_down(v, round_)) {
            beeped_[v] = 0;
            continue;
          }
          CheckScope::set_node(v);
          const BeepAction a = programs_[v]->act(round_);
          beeped_[v] = (a == BeepAction::kBeep) ? 1 : 0;
          if (beeped_[v] != 0) ++local_beeps;
        }
        lane_beeps_[static_cast<std::size_t>(lane)] = local_beeps;
      });
  std::uint64_t beeps = 0;
  for (std::uint64_t& local : lane_beeps_) {
    beeps += local;
    local = 0;
  }
  costs_.add_beeps(beeps);
  emit_messages(beeps, beeps);  // a beep is a 1-bit broadcast
  emit_wire(WireMessageType::kBeep, beeps, beeps);

  // Feedback barrier, over the frontier: the beep mask is frozen; each live
  // node scans its neighborhood independently. The fault plane acts per
  // (beeper, listener) edge: a drop decision silences that one edge, and a
  // corrupt decision on the listener's self-coordinate flips its carrier
  // sense (a phantom beep or a masked one) — both pure functions of
  // (round, src, dst), so the outcome is identical at any thread count.
  // feedback()'s return value is the decide notification: it marks the
  // bitmap and bumps the lane's halt count for the compaction below.
  std::fill(lane_halts_.begin(), lane_halts_.end(), 0);
  pool_.parallel_for_indices(
      live_, [&](const std::uint32_t* first, const std::uint32_t* last,
                 int lane) {
        CheckScope scope("beep.feedback");
        CheckScope::set_round(round_);
        FaultStats& local_faults =
            lane_faults_[static_cast<std::size_t>(lane)];
        std::uint64_t halts = 0;
        for (const std::uint32_t* p = first; p != last; ++p) {
          const NodeId v = *p;
          if (faults != nullptr && faults->node_down(v, round_)) continue;
          CheckScope::set_node(v);
          bool heard = false;
          // Half duplex: a beeping node cannot carrier-sense its neighbors.
          if (mode_ == DuplexMode::kFullDuplex || beeped_[v] == 0) {
            for (const NodeId u : graph_.neighbors(v)) {
              if (beeped_[u] == 0) continue;
              if (faults != nullptr &&
                  faults->on_message(round_, u, v, 0).drop) {
                ++local_faults.dropped;
                continue;
              }
              heard = true;
              break;
            }
          }
          if (faults != nullptr &&
              faults->on_message(round_, v, v, 0).corrupt) {
            heard = !heard;
            ++local_faults.corrupted;
          }
          if (programs_[v]->feedback(round_, heard)) {
            decided_[v] = 1;
            ++halts;
          }
        }
        lane_halts_[static_cast<std::size_t>(lane)] = halts;
      });
  if (faults_ != nullptr) {
    FaultStats realized;
    for (FaultStats& local : lane_faults_) {
      realized += local;
      local = FaultStats{};
    }
    faults_->record(realized);
    tally_node_downtime(round_, n);
  }

  // Frontier compaction: a pure function of this round's decide events,
  // before emit_round_end so observers see the post-round live count.
  // Departing nodes fall silent permanently — zero their beep slot once
  // here instead of every round in the act phase.
  std::uint64_t newly_halted = 0;
  for (const std::uint64_t h : lane_halts_) newly_halted += h;
  if (newly_halted > 0) {
    std::size_t kept = 0;
    for (const NodeId v : live_) {
      if (decided_[v] == 0) {
        live_[kept++] = v;
      } else {
        beeped_[v] = 0;
      }
    }
    live_.resize(kept);
  }

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !live_.empty();
}

}  // namespace dmis
