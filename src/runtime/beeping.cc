#include "runtime/beeping.h"

#include "util/check.h"

namespace dmis {

BeepEngine::BeepEngine(const Graph& graph,
                       std::vector<std::unique_ptr<BeepProgram>> programs,
                       DuplexMode mode, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      mode_(mode),
      pool_(threads),
      beeped_(graph.node_count(), 0),
      lane_beeps_(static_cast<std::size_t>(pool_.thread_count()), 0),
      lane_faults_(static_cast<std::size_t>(pool_.thread_count())) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool BeepEngine::step() {
  if (all_halted()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();
  const FaultPlane* faults = faults_;

  // Act phase: each node decides beep/listen into its own slot. A downed
  // node (crashed/stalled by the fault plane) neither acts nor beeps.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    CheckScope scope("beep.act");
    CheckScope::set_round(round_);
    std::uint64_t local_beeps = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      BeepProgram& prog = *programs_[v];
      if (prog.halted() ||
          (faults != nullptr && faults->node_down(v, round_))) {
        beeped_[v] = 0;
        continue;
      }
      CheckScope::set_node(v);
      const BeepAction a = prog.act(round_);
      beeped_[v] = (a == BeepAction::kBeep) ? 1 : 0;
      if (beeped_[v] != 0) ++local_beeps;
    }
    lane_beeps_[static_cast<std::size_t>(lane)] = local_beeps;
  });
  std::uint64_t beeps = 0;
  for (std::uint64_t& local : lane_beeps_) {
    beeps += local;
    local = 0;
  }
  costs_.add_beeps(beeps);
  emit_messages(beeps, beeps);  // a beep is a 1-bit broadcast
  emit_wire(WireMessageType::kBeep, beeps, beeps);

  // Feedback barrier: the beep mask is frozen; each node scans its
  // neighborhood independently. The fault plane acts per (beeper, listener)
  // edge: a drop decision silences that one edge, and a corrupt decision on
  // the listener's self-coordinate flips its carrier sense (a phantom beep
  // or a masked one) — both pure functions of (round, src, dst), so the
  // outcome is identical at any thread count.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    CheckScope scope("beep.feedback");
    CheckScope::set_round(round_);
    FaultStats& local_faults = lane_faults_[static_cast<std::size_t>(lane)];
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      BeepProgram& prog = *programs_[v];
      if (prog.halted()) continue;
      if (faults != nullptr && faults->node_down(v, round_)) continue;
      CheckScope::set_node(v);
      bool heard = false;
      // Half duplex: a beeping node cannot carrier-sense its neighbors.
      if (mode_ == DuplexMode::kFullDuplex || beeped_[v] == 0) {
        for (const NodeId u : graph_.neighbors(v)) {
          if (beeped_[u] == 0) continue;
          if (faults != nullptr &&
              faults->on_message(round_, u, v, 0).drop) {
            ++local_faults.dropped;
            continue;
          }
          heard = true;
          break;
        }
      }
      if (faults != nullptr && faults->on_message(round_, v, v, 0).corrupt) {
        heard = !heard;
        ++local_faults.corrupted;
      }
      prog.feedback(round_, heard);
    }
  });
  if (faults_ != nullptr) {
    FaultStats realized;
    for (FaultStats& local : lane_faults_) {
      realized += local;
      local = FaultStats{};
    }
    faults_->record(realized);
    tally_node_downtime(round_, n);
  }

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !all_halted();
}

std::uint64_t BeepEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
