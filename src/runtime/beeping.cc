#include "runtime/beeping.h"

#include "util/check.h"

namespace dmis {

BeepEngine::BeepEngine(const Graph& graph,
                       std::vector<std::unique_ptr<BeepProgram>> programs,
                       DuplexMode mode)
    : graph_(graph),
      programs_(std::move(programs)),
      mode_(mode),
      beeped_(graph.node_count(), 0) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool BeepEngine::step() {
  if (all_halted()) return false;
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    BeepProgram& prog = *programs_[v];
    if (prog.halted()) {
      beeped_[v] = 0;
      continue;
    }
    const BeepAction a = prog.act(round_);
    beeped_[v] = (a == BeepAction::kBeep) ? 1 : 0;
    if (beeped_[v] != 0) ++costs_.beeps;
  }
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    BeepProgram& prog = *programs_[v];
    if (prog.halted()) continue;
    bool heard = false;
    // Half duplex: a beeping node cannot carrier-sense its neighbors.
    if (mode_ == DuplexMode::kFullDuplex || beeped_[v] == 0) {
      for (const NodeId u : graph_.neighbors(v)) {
        if (beeped_[u] != 0) {
          heard = true;
          break;
        }
      }
    }
    prog.feedback(round_, heard);
  }
  ++round_;
  ++costs_.rounds;
  return !all_halted();
}

std::uint64_t BeepEngine::run(std::uint64_t max_rounds) {
  std::uint64_t executed = 0;
  while (executed < max_rounds && !all_halted()) {
    step();
    ++executed;
  }
  return executed;
}

bool BeepEngine::all_halted() const { return live_count() == 0; }

std::uint64_t BeepEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
