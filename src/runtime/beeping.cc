#include "runtime/beeping.h"

#include "util/check.h"

namespace dmis {

BeepEngine::BeepEngine(const Graph& graph,
                       std::vector<std::unique_ptr<BeepProgram>> programs,
                       DuplexMode mode, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      mode_(mode),
      pool_(threads),
      beeped_(graph.node_count(), 0),
      lane_beeps_(static_cast<std::size_t>(pool_.thread_count()), 0) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool BeepEngine::step() {
  if (all_halted()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();

  // Act phase: each node decides beep/listen into its own slot.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    std::uint64_t local_beeps = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      BeepProgram& prog = *programs_[v];
      if (prog.halted()) {
        beeped_[v] = 0;
        continue;
      }
      const BeepAction a = prog.act(round_);
      beeped_[v] = (a == BeepAction::kBeep) ? 1 : 0;
      if (beeped_[v] != 0) ++local_beeps;
    }
    lane_beeps_[static_cast<std::size_t>(lane)] = local_beeps;
  });
  std::uint64_t beeps = 0;
  for (std::uint64_t& local : lane_beeps_) {
    beeps += local;
    local = 0;
  }
  costs_.add_beeps(beeps);
  emit_messages(beeps, beeps);  // a beep is a 1-bit broadcast
  emit_wire(WireMessageType::kBeep, beeps, beeps);

  // Feedback barrier: the beep mask is frozen; each node scans its
  // neighborhood independently.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      BeepProgram& prog = *programs_[v];
      if (prog.halted()) continue;
      bool heard = false;
      // Half duplex: a beeping node cannot carrier-sense its neighbors.
      if (mode_ == DuplexMode::kFullDuplex || beeped_[v] == 0) {
        for (const NodeId u : graph_.neighbors(v)) {
          if (beeped_[u] != 0) {
            heard = true;
            break;
          }
        }
      }
      prog.feedback(round_, heard);
    }
  });

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !all_halted();
}

std::uint64_t BeepEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
