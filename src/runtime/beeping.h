// Synchronous beeping engine (paper §2.2).
//
// Per round each node either beeps or listens; each node then learns one bit:
// whether at least one *neighbor* beeped (full duplex — a beeping node also
// detects beeping neighbors). Nothing else crosses the network, which is the
// point: the Beeping MIS algorithm needs only this 1-bit feedback.
//
// Implements the unified SimulationEngine contract (runtime/engine.h). The
// engine owns a live-node frontier (decided bitmap + compact sorted live
// array, compacted at the feedback barrier), and the act and feedback
// fan-outs are partitioned over the *frontier* across a WorkerPool with a
// barrier between them: act() writes only the node's own beep slot, and
// feedback() reads the frozen beep mask — bit-identical at any thread
// count. A node's beep slot is zeroed when it leaves the frontier, so
// neighbors of decided nodes still read a correct (silent) mask.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "runtime/cost.h"
#include "runtime/engine.h"
#include "runtime/parallel.h"

namespace dmis {

enum class BeepAction : std::uint8_t { kListen = 0, kBeep = 1 };

/// Full duplex: a beeping node still detects beeping neighbors (the model
/// of paper §2.2). Half duplex: only listeners detect beeps (the model of
/// Holzer–Lynch [20, 21], discussed in the paper's footnote 2) — a beeping
/// node's feedback is always "heard nothing".
enum class DuplexMode : std::uint8_t { kFullDuplex, kHalfDuplex };

class BeepProgram {
 public:
  virtual ~BeepProgram() = default;

  /// Decide this round's action.
  virtual BeepAction act(std::uint64_t round) = 0;

  /// Receive the round's feedback: did any live neighbor beep? Returns
  /// true iff the node has *now* halted — the decide notification the
  /// engine uses to retire the node from its frontier. This is the only
  /// moment a program may change its halted state, and the return value
  /// must agree with halted() afterwards.
  virtual bool feedback(std::uint64_t round, bool heard_beep) = 0;

  /// Halted nodes neither beep nor hear (they left the problem). Read once
  /// per node at construction to seed the frontier; afterwards halt
  /// transitions flow through feedback()'s return value.
  virtual bool halted() const = 0;
};

class BeepEngine final : public SimulationEngine {
 public:
  /// `threads` is a pure performance knob (see runtime/parallel.h).
  BeepEngine(const Graph& graph,
             std::vector<std::unique_ptr<BeepProgram>> programs,
             DuplexMode mode = DuplexMode::kFullDuplex, int threads = 1);

  /// Executes one round; returns false if all programs have halted.
  bool step() override;

  /// O(1): the frontier size, maintained at the feedback barrier.
  std::uint64_t live_count() const override { return live_.size(); }
  const BeepProgram& program(NodeId v) const { return *programs_[v]; }

 private:
  const Graph& graph_;
  std::vector<std::unique_ptr<BeepProgram>> programs_;
  DuplexMode mode_;
  WorkerPool pool_;
  std::vector<char> beeped_;  // scratch; zeroed for retired nodes
  std::vector<std::uint64_t> lane_beeps_;
  std::vector<FaultStats> lane_faults_;
  // Frontier (SoA): see runtime/congest.h — same layout and contract.
  std::vector<std::uint8_t> decided_;
  std::vector<NodeId> live_;
  std::vector<std::uint64_t> lane_halts_;
};

}  // namespace dmis
