// Synchronous full-duplex beeping engine (paper §2.2).
//
// Per round each node either beeps or listens; each node then learns one bit:
// whether at least one *neighbor* beeped (full duplex — a beeping node also
// detects beeping neighbors). Nothing else crosses the network, which is the
// point: the Beeping MIS algorithm needs only this 1-bit feedback.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "runtime/cost.h"

namespace dmis {

enum class BeepAction : std::uint8_t { kListen = 0, kBeep = 1 };

/// Full duplex: a beeping node still detects beeping neighbors (the model
/// of paper §2.2). Half duplex: only listeners detect beeps (the model of
/// Holzer–Lynch [20, 21], discussed in the paper's footnote 2) — a beeping
/// node's feedback is always "heard nothing".
enum class DuplexMode : std::uint8_t { kFullDuplex, kHalfDuplex };

class BeepProgram {
 public:
  virtual ~BeepProgram() = default;

  /// Decide this round's action.
  virtual BeepAction act(std::uint64_t round) = 0;

  /// Receive the round's feedback: did any live neighbor beep?
  virtual void feedback(std::uint64_t round, bool heard_beep) = 0;

  /// Halted nodes neither beep nor hear (they left the problem).
  virtual bool halted() const = 0;
};

class BeepEngine {
 public:
  BeepEngine(const Graph& graph,
             std::vector<std::unique_ptr<BeepProgram>> programs,
             DuplexMode mode = DuplexMode::kFullDuplex);

  /// Executes one round; returns false if all programs have halted.
  bool step();
  /// Runs until all halt or max_rounds elapse; returns rounds executed.
  std::uint64_t run(std::uint64_t max_rounds);

  bool all_halted() const;
  std::uint64_t live_count() const;
  const CostAccounting& costs() const { return costs_; }
  const BeepProgram& program(NodeId v) const { return *programs_[v]; }

 private:
  const Graph& graph_;
  std::vector<std::unique_ptr<BeepProgram>> programs_;
  DuplexMode mode_;
  CostAccounting costs_;
  std::uint64_t round_ = 0;
  std::vector<char> beeped_;  // scratch
};

}  // namespace dmis
