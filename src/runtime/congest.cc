#include "runtime/congest.h"

#include "util/check.h"

namespace dmis {

CongestEngine::CongestEngine(
    const Graph& graph, std::vector<std::unique_ptr<CongestProgram>> programs,
    int bandwidth_bits, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      bandwidth_bits_(bandwidth_bits),
      pool_(threads),
      inboxes_(graph.node_count()),
      outboxes_(graph.node_count()),
      lane_costs_(static_cast<std::size_t>(pool_.thread_count())) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  DMIS_CHECK(bandwidth_bits_ >= 1, "bandwidth must be positive");
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool CongestEngine::step() {
  if (all_halted()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();

  // Send phase: every live node fills its own outbox; the model's bandwidth
  // and neighbor constraints are validated here, per sender.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      auto& outbox = outboxes_[v];
      outbox.clear();
      CongestProgram& prog = *programs_[v];
      if (prog.halted()) continue;
      prog.send(round_, outbox);
      for (const auto& msg : outbox) {
        DMIS_CHECK(msg.bits >= 0 && msg.bits <= bandwidth_bits_,
                   "node " << v << " message of " << msg.bits
                           << " bits exceeds B=" << bandwidth_bits_);
        DMIS_CHECK(
            msg.dst == CongestProgram::kAllNeighbors ||
                graph_.has_edge(v, msg.dst),
            "node " << v << " sent to non-neighbor " << msg.dst);
      }
    }
  });

  // Delivery barrier: each live destination gathers from its neighbors'
  // outboxes in neighbor (= ascending sender id) order, which matches the
  // sequential sender-order delivery exactly. Message/bit counts accumulate
  // per lane and reduce in lane order below.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    CostAccounting& local = lane_costs_[static_cast<std::size_t>(lane)];
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId u = static_cast<NodeId>(i);
      inboxes_[u].clear();
      if (programs_[u]->halted()) continue;
      for (const NodeId v : graph_.neighbors(u)) {
        if (programs_[v]->halted()) continue;
        for (const auto& msg : outboxes_[v]) {
          if (msg.dst == CongestProgram::kAllNeighbors || msg.dst == u) {
            inboxes_[u].push_back({v, msg.payload, msg.bits});
            ++local.messages;
            local.bits += static_cast<std::uint64_t>(msg.bits);
          }
        }
      }
    }
  });
  std::uint64_t delivered_messages = 0;
  std::uint64_t delivered_bits = 0;
  for (CostAccounting& local : lane_costs_) {
    delivered_messages += local.messages;
    delivered_bits += local.bits;
    local = CostAccounting{};
  }
  costs_.messages += delivered_messages;
  costs_.bits += delivered_bits;
  emit_messages(delivered_messages, delivered_bits);

  // Receive phase.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      CongestProgram& prog = *programs_[v];
      if (!prog.halted()) prog.receive(round_, inboxes_[v]);
      inboxes_[v].clear();
    }
  });

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !all_halted();
}

std::uint64_t CongestEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
