#include "runtime/congest.h"

#include <algorithm>

#include "util/check.h"

namespace dmis {

CongestEngine::CongestEngine(
    const Graph& graph, std::vector<std::unique_ptr<CongestProgram>> programs,
    int bandwidth_bits, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      bandwidth_bits_(bandwidth_bits),
      wire_ctx_(WireContext::for_nodes(
          graph.node_count() < 1 ? 1 : graph.node_count())),
      pool_(threads),
      outboxes_(graph.node_count(), pool_.thread_count()),
      inboxes_(graph.node_count(), pool_.thread_count()),
      lane_costs_(static_cast<std::size_t>(pool_.thread_count())),
      lane_faults_(static_cast<std::size_t>(pool_.thread_count())),
      lane_halts_(static_cast<std::size_t>(pool_.thread_count())) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  DMIS_CHECK(bandwidth_bits_ >= 1, "bandwidth must be positive");
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
  // Seed the frontier: the one place halted() is polled. From here on a
  // node leaves the frontier exactly once, via receive()'s return value.
  decided_.resize(programs_.size(), 0);
  live_.reserve(programs_.size());
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (programs_[v]->halted()) {
      decided_[v] = 1;
    } else {
      live_.push_back(v);
    }
  }
}

bool CongestEngine::step() {
  if (live_.empty()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();
  const FaultPlane* faults = faults_;
  if (faults != nullptr && delayed_.empty()) delayed_.resize(n);

  // Send phase, over the frontier only: every live node fills its slot in
  // the outbox arena through a typed outbox; the model's bandwidth and
  // neighbor constraints are validated there, per message, at the encode
  // choke point. A node the fault plane marks down (crashed/stalled)
  // executes nothing this round — its slot stays open and empty. Decided
  // nodes are never visited; their stale arena slots read as empty.
  outboxes_.begin_round();
  pool_.parallel_for_indices(
      live_, [&](const std::uint32_t* first, const std::uint32_t* last,
                 int lane) {
        CheckScope scope("congest.send");
        CheckScope::set_round(round_);
        for (const std::uint32_t* p = first; p != last; ++p) {
          const NodeId v = *p;
          outboxes_.open(lane, v);
          if (faults != nullptr && faults->node_down(v, round_)) continue;
          CheckScope::set_node(v);
          CongestOutbox out(outboxes_, v, graph_, bandwidth_bits_,
                            wire_ctx_);
          programs_[v]->send(round_, out);
        }
      });

  // Delivery barrier, over frontier destinations only: each live
  // destination gathers from its live neighbors' outbox slots in neighbor
  // (= ascending sender id) order, which matches the sequential
  // sender-order delivery exactly — the frontier is sorted and
  // parallel_for_indices partitions it contiguously, so (lane, position)
  // order equals ascending node order. The fault plane is consulted here,
  // at the single wire choke point: decisions are pure functions of
  // (round, src, dst, outbox index), so drops/corruptions/duplicates/
  // delays are bit-identical at any thread count. Message/bit counts
  // accumulate per lane/type and reduce in lane order below. Halted
  // senders are skipped via the decided bitmap — no virtual call.
  inboxes_.begin_round();
  pool_.parallel_for_indices(
      live_, [&](const std::uint32_t* first, const std::uint32_t* last,
                 int lane) {
    CheckScope scope("congest.deliver");
    CheckScope::set_round(round_);
    CostAccounting& local = lane_costs_[static_cast<std::size_t>(lane)];
    FaultStats& local_faults = lane_faults_[static_cast<std::size_t>(lane)];
    for (const std::uint32_t* p = first; p != last; ++p) {
      const NodeId u = *p;
      inboxes_.open(lane, u);
      const bool receiver_up =
          faults == nullptr || !faults->node_down(u, round_);
      CheckScope::set_node(u);
      if (faults != nullptr && !delayed_[u].empty()) {
        // Matured delayed messages arrive first, in the order they were
        // held back (per-destination queue: single writer, deterministic).
        auto& queue = delayed_[u];
        std::size_t kept = 0;
        for (DelayedMessage& d : queue) {
          if (d.deliver_round > round_) {
            queue[kept++] = d;
            continue;
          }
          if (receiver_up) {
            inboxes_.append(u, d.msg);
            local.add_messages(d.msg.type, 1,
                               static_cast<std::uint64_t>(d.msg.bits));
          }
        }
        queue.resize(kept);
      }
      if (!receiver_up) continue;
      for (const NodeId v : graph_.neighbors(u)) {
        if (decided_[v] != 0) continue;
        std::uint64_t salt = 0;
        for (const auto& msg : outboxes_.of(v)) {
          const std::uint64_t this_salt = salt++;
          if (msg.dst != CongestProgram::kAllNeighbors && msg.dst != u) {
            continue;
          }
          CongestMessage delivered{v, msg.payload, msg.bits, msg.type};
          int copies = 1;
          if (faults != nullptr) {
            const FaultDecision d =
                faults->on_message(round_, v, u, this_salt);
            if (d.drop) {
              ++local_faults.dropped;
              continue;
            }
            if (d.corrupt && msg.bits >= 1) {
              // The flipped bit indexes the significant payload bits across
              // words (LSB-first), matching the wide-field packing order.
              const int bit =
                  faults->corrupt_bit(round_, v, u, this_salt, msg.bits);
              FaultPlane::corrupt_word(
                  delivered.payload[static_cast<std::size_t>(bit / 64)],
                  bit % 64);
              ++local_faults.corrupted;
            }
            if (d.duplicate) {
              copies = 2;
              ++local_faults.duplicated;
            }
            if (d.delay > 0) {
              ++local_faults.delayed;
              delayed_[u].push_back({round_ + d.delay, delivered});
              continue;
            }
          }
          for (int c = 0; c < copies; ++c) {
            inboxes_.append(u, delivered);
            local.add_messages(delivered.type, 1,
                               static_cast<std::uint64_t>(delivered.bits));
          }
        }
      }
    }
  });
  std::uint64_t delivered_messages = 0;
  std::uint64_t delivered_bits = 0;
  std::array<WireTypeTally, kWireMessageTypeCount> delivered{};
  for (CostAccounting& local : lane_costs_) {
    delivered_messages += local.messages;
    delivered_bits += local.bits;
    for (std::size_t t = 0; t < delivered.size(); ++t) {
      delivered[t] += local.by_type[t];
    }
    local = CostAccounting{};
  }
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    if (delivered[t].messages == 0) continue;
    costs_.add_messages(static_cast<WireMessageType>(t),
                        delivered[t].messages, delivered[t].bits);
  }
  if (faults_ != nullptr) {
    FaultStats realized;
    for (FaultStats& local : lane_faults_) {
      realized += local;
      local = FaultStats{};
    }
    faults_->record(realized);
    tally_node_downtime(round_, n);
  }
  emit_messages(delivered_messages, delivered_bits);
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    emit_wire(static_cast<WireMessageType>(t), delivered[t].messages,
              delivered[t].bits);
  }

  // Receive phase, over the frontier: receive()'s return value is the
  // decide notification — it marks the bitmap and bumps the lane's halt
  // count; the frontier itself is compacted at the barrier below.
  std::fill(lane_halts_.begin(), lane_halts_.end(), 0);
  pool_.parallel_for_indices(
      live_, [&](const std::uint32_t* first, const std::uint32_t* last,
                 int lane) {
        CheckScope scope("congest.receive");
        CheckScope::set_round(round_);
        std::uint64_t halts = 0;
        for (const std::uint32_t* p = first; p != last; ++p) {
          const NodeId v = *p;
          if (faults != nullptr && faults->node_down(v, round_)) continue;
          CheckScope::set_node(v);
          if (programs_[v]->receive(round_, inboxes_.of(v))) {
            decided_[v] = 1;
            ++halts;
          }
        }
        lane_halts_[static_cast<std::size_t>(lane)] = halts;
      });

  // Frontier compaction: a pure function of this round's decide events.
  // Runs before emit_round_end so observers see the post-round live count,
  // and only on rounds where something decided. Departing nodes release
  // their fault-plane delay queue — a message delayed past its
  // destination's halt would otherwise be parked forever.
  std::uint64_t newly_halted = 0;
  for (const std::uint64_t h : lane_halts_) newly_halted += h;
  if (newly_halted > 0) {
    std::size_t kept = 0;
    for (const NodeId v : live_) {
      if (decided_[v] == 0) {
        live_[kept++] = v;
      } else if (!delayed_.empty() && !delayed_[v].empty()) {
        std::vector<DelayedMessage>().swap(delayed_[v]);
      }
    }
    live_.resize(kept);
  }

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !live_.empty();
}

}  // namespace dmis
