#include "runtime/congest.h"

#include "util/check.h"

namespace dmis {

CongestEngine::CongestEngine(
    const Graph& graph, std::vector<std::unique_ptr<CongestProgram>> programs,
    int bandwidth_bits, int threads)
    : graph_(graph),
      programs_(std::move(programs)),
      bandwidth_bits_(bandwidth_bits),
      wire_ctx_(WireContext::for_nodes(
          graph.node_count() < 1 ? 1 : graph.node_count())),
      pool_(threads),
      outboxes_(graph.node_count(), pool_.thread_count()),
      inboxes_(graph.node_count(), pool_.thread_count()),
      lane_costs_(static_cast<std::size_t>(pool_.thread_count())) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  DMIS_CHECK(bandwidth_bits_ >= 1, "bandwidth must be positive");
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool CongestEngine::step() {
  if (all_halted()) return false;
  emit_round_begin();
  const NodeId n = graph_.node_count();

  // Send phase: every live node fills its slot in the outbox arena through
  // a typed outbox; the model's bandwidth and neighbor constraints are
  // validated there, per message, at the encode choke point.
  outboxes_.begin_round();
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      outboxes_.open(lane, i);
      CongestProgram& prog = *programs_[v];
      if (prog.halted()) continue;
      CongestOutbox out(outboxes_, v, graph_, bandwidth_bits_, wire_ctx_);
      prog.send(round_, out);
    }
  });

  // Delivery barrier: each live destination gathers from its neighbors'
  // outbox slots in neighbor (= ascending sender id) order, which matches
  // the sequential sender-order delivery exactly. Message/bit counts
  // accumulate per lane/type and reduce in lane order below.
  inboxes_.begin_round();
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int lane) {
    CostAccounting& local = lane_costs_[static_cast<std::size_t>(lane)];
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId u = static_cast<NodeId>(i);
      inboxes_.open(lane, i);
      if (programs_[u]->halted()) continue;
      for (const NodeId v : graph_.neighbors(u)) {
        if (programs_[v]->halted()) continue;
        for (const auto& msg : outboxes_.of(v)) {
          if (msg.dst == CongestProgram::kAllNeighbors || msg.dst == u) {
            inboxes_.append(u, {v, msg.payload, msg.bits, msg.type});
            local.add_messages(msg.type, 1,
                               static_cast<std::uint64_t>(msg.bits));
          }
        }
      }
    }
  });
  std::uint64_t delivered_messages = 0;
  std::uint64_t delivered_bits = 0;
  std::array<WireTypeTally, kWireMessageTypeCount> delivered{};
  for (CostAccounting& local : lane_costs_) {
    delivered_messages += local.messages;
    delivered_bits += local.bits;
    for (std::size_t t = 0; t < delivered.size(); ++t) {
      delivered[t] += local.by_type[t];
    }
    local = CostAccounting{};
  }
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    if (delivered[t].messages == 0) continue;
    costs_.add_messages(static_cast<WireMessageType>(t),
                        delivered[t].messages, delivered[t].bits);
  }
  emit_messages(delivered_messages, delivered_bits);
  for (std::size_t t = 0; t < delivered.size(); ++t) {
    emit_wire(static_cast<WireMessageType>(t), delivered[t].messages,
              delivered[t].bits);
  }

  // Receive phase.
  pool_.parallel_for(n, [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      CongestProgram& prog = *programs_[v];
      if (!prog.halted()) prog.receive(round_, inboxes_.of(i));
    }
  });

  const std::uint64_t finished = round_;
  ++round_;
  ++costs_.rounds;
  emit_round_end(finished);
  return !all_halted();
}

std::uint64_t CongestEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
