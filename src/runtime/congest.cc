#include "runtime/congest.h"

#include "util/check.h"

namespace dmis {

CongestEngine::CongestEngine(
    const Graph& graph, std::vector<std::unique_ptr<CongestProgram>> programs,
    int bandwidth_bits)
    : graph_(graph),
      programs_(std::move(programs)),
      bandwidth_bits_(bandwidth_bits),
      inboxes_(graph.node_count()) {
  DMIS_CHECK(programs_.size() == graph_.node_count(),
             "program count " << programs_.size() << " != node count "
                              << graph_.node_count());
  DMIS_CHECK(bandwidth_bits_ >= 1, "bandwidth must be positive");
  for (const auto& p : programs_) {
    DMIS_CHECK(p != nullptr, "null program");
  }
}

bool CongestEngine::step() {
  if (all_halted()) return false;
  // Send phase: collect every live node's outbox, validating the model.
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    CongestProgram& prog = *programs_[v];
    if (prog.halted()) continue;
    outbox_.clear();
    prog.send(round_, outbox_);
    for (const auto& msg : outbox_) {
      DMIS_CHECK(msg.bits >= 0 && msg.bits <= bandwidth_bits_,
                 "node " << v << " message of " << msg.bits
                         << " bits exceeds B=" << bandwidth_bits_);
      if (msg.dst == CongestProgram::kAllNeighbors) {
        for (const NodeId u : graph_.neighbors(v)) {
          if (programs_[u]->halted()) continue;
          inboxes_[u].push_back({v, msg.payload, msg.bits});
          ++costs_.messages;
          costs_.bits += static_cast<std::uint64_t>(msg.bits);
        }
      } else {
        DMIS_CHECK(graph_.has_edge(v, msg.dst),
                   "node " << v << " sent to non-neighbor " << msg.dst);
        if (!programs_[msg.dst]->halted()) {
          inboxes_[msg.dst].push_back({v, msg.payload, msg.bits});
          ++costs_.messages;
          costs_.bits += static_cast<std::uint64_t>(msg.bits);
        }
      }
    }
  }
  // Receive phase.
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    CongestProgram& prog = *programs_[v];
    if (prog.halted()) {
      inboxes_[v].clear();
      continue;
    }
    prog.receive(round_, inboxes_[v]);
    inboxes_[v].clear();
  }
  ++round_;
  ++costs_.rounds;
  return !all_halted();
}

std::uint64_t CongestEngine::run(std::uint64_t max_rounds) {
  std::uint64_t executed = 0;
  while (executed < max_rounds && !all_halted()) {
    step();
    ++executed;
  }
  return executed;
}

bool CongestEngine::all_halted() const { return live_count() == 0; }

std::uint64_t CongestEngine::live_count() const {
  std::uint64_t live = 0;
  for (const auto& p : programs_) {
    if (!p->halted()) ++live;
  }
  return live;
}

}  // namespace dmis
