// Synchronous CONGEST-model engine (paper §1, model (1)).
//
// One program object per node; a program sees only:
//   * its own id, its neighbor list (initial knowledge per the model), and
//   * the messages delivered to it each round.
// The engine enforces the model: a message may only target a neighbor and
// may carry at most B bits; violations throw. Rounds, messages, and bits are
// counted exactly.
//
// Implements the unified SimulationEngine contract (runtime/engine.h) and
// steps nodes through a WorkerPool: the send and receive fan-outs are
// partitioned across threads, with a barrier between the phases. Programs
// must confine themselves to their own state (the model already demands
// this); send() must not change halted(), which the engine reads at phase
// boundaries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "runtime/cost.h"
#include "runtime/engine.h"
#include "runtime/parallel.h"

namespace dmis {

/// A received message: sender plus a payload of `bits` significant bits.
struct CongestMessage {
  NodeId src = kInvalidNode;
  std::uint64_t payload = 0;
  int bits = 0;
};

/// Per-node algorithm logic. Implementations keep only local state.
class CongestProgram {
 public:
  /// Broadcast sentinel: deliver to every live neighbor.
  static constexpr NodeId kAllNeighbors = kInvalidNode;

  struct Outgoing {
    NodeId dst = kAllNeighbors;
    std::uint64_t payload = 0;
    int bits = 0;
  };

  virtual ~CongestProgram() = default;

  /// Produce this round's messages. `out` arrives empty.
  virtual void send(std::uint64_t round, std::vector<Outgoing>& out) = 0;

  /// Consume this round's inbox (messages from live neighbors only).
  virtual void receive(std::uint64_t round,
                       std::span<const CongestMessage> inbox) = 0;

  /// A halted node no longer sends or receives (it has decided and left the
  /// problem, e.g. joined the MIS or saw an MIS neighbor).
  virtual bool halted() const = 0;
};

class CongestEngine final : public SimulationEngine {
 public:
  /// Programs must have exactly node_count entries; bandwidth_bits is B.
  /// `threads` is a pure performance knob (see runtime/parallel.h).
  CongestEngine(const Graph& graph,
                std::vector<std::unique_ptr<CongestProgram>> programs,
                int bandwidth_bits, int threads = 1);

  /// Executes exactly one round (no-op and uncounted if all halted).
  /// Returns false if all programs have halted.
  bool step() override;

  std::uint64_t live_count() const override;
  const CongestProgram& program(NodeId v) const { return *programs_[v]; }

 private:
  const Graph& graph_;
  std::vector<std::unique_ptr<CongestProgram>> programs_;
  int bandwidth_bits_;
  WorkerPool pool_;
  // Scratch, reused across rounds.
  std::vector<std::vector<CongestMessage>> inboxes_;
  std::vector<std::vector<CongestProgram::Outgoing>> outboxes_;
  std::vector<CostAccounting> lane_costs_;
};

}  // namespace dmis
