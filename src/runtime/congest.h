// Synchronous CONGEST-model engine (paper §1, model (1)).
//
// One program object per node; a program sees only:
//   * its own id, its neighbor list (initial knowledge per the model), and
//   * the messages delivered to it each round.
// The engine enforces the model at the send choke point: a message may only
// target a neighbor and may carry at most B bits; violations throw. Sends go
// through a typed outbox (wire/messages.h codecs), so payload layout, the
// bandwidth check, and per-message-type accounting all happen in one place.
// Rounds, messages, and bits are counted exactly, broken down per type.
//
// Implements the unified SimulationEngine contract (runtime/engine.h) and
// steps nodes through a WorkerPool. The engine owns a live-node frontier: a
// decided bitmap plus a compact sorted array of undecided node ids,
// compacted at the receive barrier (a node leaves exactly once, when
// receive() reports it halted). All three per-round fan-outs — send,
// deliver, receive — partition the *frontier* across lanes
// (WorkerPool::parallel_for_indices), so round cost scales with the number
// of undecided nodes, not n. Outboxes and inboxes live in per-round
// DeliveryArenas (runtime/arena.h) — flat per-lane buffers reset, not
// freed, each round; slots are opened only for frontier nodes, and stale
// slots read as empty (epoch check). Programs must confine themselves to
// their own state (the model already demands this); send() must not change
// halted() — the halt decision is reported once, by receive()'s return
// value, and the engine never polls halted() after construction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "runtime/arena.h"
#include "runtime/cost.h"
#include "runtime/engine.h"
#include "runtime/parallel.h"
#include "wire/messages.h"

namespace dmis {

/// Inline payload capacity of one CONGEST message, in 64-bit words. Derived
/// from the model: B at the codec's id-width ceiling is
/// congest_bandwidth_bits(2^kMaxIdBits) = 4·kMaxIdBits = 120 bits, so two
/// words bound every admissible message (Luby's 3·id_bits priority is the
/// widest typed one at 90 bits). push_typed static_asserts each type.
inline constexpr int kCongestPayloadWords =
    (congest_bandwidth_bits(static_cast<NodeId>(kMaxWireNodes)) + 63) / 64;
inline constexpr int kCongestPayloadBits = 64 * kCongestPayloadWords;

/// A received message: sender plus a payload of `bits` significant bits
/// (LSB-first across `payload` words), tagged with its wire type.
struct CongestMessage {
  NodeId src = kInvalidNode;
  std::array<std::uint64_t, kCongestPayloadWords> payload{};
  int bits = 0;
  WireMessageType type = WireMessageType::kRaw;
};

/// Decodes a typed CONGEST message (tag-checked, range-validated).
template <class Msg>
Msg decode_message(const WireContext& ctx, const CongestMessage& m) {
  DMIS_CHECK(m.type == Msg::kType,
             "message type '" << wire_message_type_name(m.type)
                              << "' decoded as '"
                              << wire_message_type_name(Msg::kType) << "'");
  return decode_words<Msg>(ctx, m.payload, m.bits);
}

class CongestOutbox;

/// Per-node algorithm logic. Implementations keep only local state.
class CongestProgram {
 public:
  /// Broadcast sentinel: deliver to every live neighbor.
  static constexpr NodeId kAllNeighbors = kInvalidNode;

  struct Outgoing {
    NodeId dst = kAllNeighbors;
    std::array<std::uint64_t, kCongestPayloadWords> payload{};
    int bits = 0;
    WireMessageType type = WireMessageType::kRaw;
  };

  virtual ~CongestProgram() = default;

  /// Produce this round's messages into the engine-owned outbox.
  virtual void send(std::uint64_t round, CongestOutbox& out) = 0;

  /// Consume this round's inbox (messages from live neighbors only).
  /// Returns true iff the node has *now* halted — the decide notification
  /// the engine uses to retire the node from its frontier. This is the only
  /// moment a program may change its halted state, and the return value
  /// must agree with halted() afterwards.
  virtual bool receive(std::uint64_t round,
                       std::span<const CongestMessage> inbox) = 0;

  /// A halted node no longer sends or receives (it has decided and left the
  /// problem, e.g. joined the MIS or saw an MIS neighbor). The engine reads
  /// this once per node at construction to seed its frontier; afterwards
  /// halt transitions flow through receive()'s return value.
  virtual bool halted() const = 0;
};

/// The send surface handed to a program each round: typed sends encode
/// through the wire codecs; push_raw is the untyped escape hatch (tests,
/// fault injection). Every path validates the model here — destination must
/// be a neighbor (or the broadcast sentinel) and the payload must fit B.
class CongestOutbox {
 public:
  template <class Msg>
  void send(NodeId dst, const Msg& msg) {
    push_typed(dst, msg);
  }
  template <class Msg>
  void broadcast(const Msg& msg) {
    push_typed(CongestProgram::kAllNeighbors, msg);
  }

  /// Single-word raw payload (tests, fault injection); messages wider than
  /// one word go through the typed path or push_raw_words.
  void push_raw(NodeId dst, std::uint64_t payload, int bits,
                WireMessageType type = WireMessageType::kRaw) {
    CongestProgram::Outgoing out;
    out.dst = dst;
    out.payload[0] = payload;
    out.bits = bits;
    out.type = type;
    push_outgoing(src_, out);
  }

  /// Multi-word raw payload, LSB-first across `words`.
  void push_raw_words(
      NodeId dst, const std::array<std::uint64_t, kCongestPayloadWords>& words,
      int bits, WireMessageType type = WireMessageType::kRaw) {
    push_outgoing(src_, {dst, words, bits, type});
  }

  const WireContext& ctx() const { return ctx_; }

 private:
  friend class CongestEngine;
  CongestOutbox(DeliveryArena<CongestProgram::Outgoing>& arena, NodeId src,
                const Graph& graph, int bandwidth_bits,
                const WireContext& ctx)
      : arena_(arena),
        src_(src),
        graph_(graph),
        bandwidth_bits_(bandwidth_bits),
        ctx_(ctx) {}

  template <class Msg>
  void push_typed(NodeId dst, const Msg& msg) {
    static_assert(max_encoded_bits<Msg>() <= kCongestPayloadBits,
                  "message type cannot fit a CONGEST payload even at the "
                  "worst-case B; widen kCongestPayloadWords deliberately");
    CongestProgram::Outgoing out;
    out.dst = dst;
    out.type = Msg::kType;
    out.bits = encode_words(ctx_, msg, out.payload);
    push_outgoing(src_, out);
  }

  /// The model's send choke point: destination must be a neighbor (or the
  /// broadcast sentinel) and the payload must fit B.
  void push_outgoing(NodeId src, const CongestProgram::Outgoing& out) {
    DMIS_CHECK(out.bits >= 0 && out.bits <= bandwidth_bits_,
               "node " << src << " message of " << out.bits
                       << " bits exceeds B=" << bandwidth_bits_);
    DMIS_CHECK(out.dst == CongestProgram::kAllNeighbors ||
                   graph_.has_edge(src, out.dst),
               "node " << src << " sent to non-neighbor " << out.dst);
    arena_.append(src, out);
  }

  DeliveryArena<CongestProgram::Outgoing>& arena_;
  NodeId src_;
  const Graph& graph_;
  int bandwidth_bits_;
  const WireContext& ctx_;
};

class CongestEngine final : public SimulationEngine {
 public:
  /// Programs must have exactly node_count entries; bandwidth_bits is B.
  /// `threads` is a pure performance knob (see runtime/parallel.h).
  CongestEngine(const Graph& graph,
                std::vector<std::unique_ptr<CongestProgram>> programs,
                int bandwidth_bits, int threads = 1);

  /// Executes exactly one round (no-op and uncounted if all halted).
  /// Returns false if all programs have halted.
  bool step() override;

  /// O(1): the frontier size, maintained incrementally at the receive
  /// barrier — never a scan over programs.
  std::uint64_t live_count() const override { return live_.size(); }
  const CongestProgram& program(NodeId v) const { return *programs_[v]; }
  const WireContext& wire_context() const { return wire_ctx_; }

  /// Total messages currently parked in fault-plane delay queues. Queues of
  /// nodes that left the frontier are freed at compaction, so after a
  /// destination halts its backlog never lingers (regression-tested).
  std::uint64_t delayed_backlog() const {
    std::uint64_t total = 0;
    for (const auto& q : delayed_) total += q.size();
    return total;
  }

 private:
  /// A message held back by a fault-plane delay decision, delivered to its
  /// destination once `deliver_round` arrives.
  struct DelayedMessage {
    std::uint64_t deliver_round = 0;
    CongestMessage msg;
  };

  const Graph& graph_;
  std::vector<std::unique_ptr<CongestProgram>> programs_;
  int bandwidth_bits_;
  WireContext wire_ctx_;
  WorkerPool pool_;
  // Per-round delivery storage, reset (not freed) every round.
  DeliveryArena<CongestProgram::Outgoing> outboxes_;
  DeliveryArena<CongestMessage> inboxes_;
  std::vector<CostAccounting> lane_costs_;
  // Fault-plane state: per-destination delay queues (each written only by
  // its destination's lane) and per-lane realized-fault tallies.
  std::vector<std::vector<DelayedMessage>> delayed_;
  std::vector<FaultStats> lane_faults_;
  // Frontier (SoA): decided_[v] mirrors programs_[v]->halted(); live_ is the
  // sorted compact array of undecided ids, compacted at the receive barrier.
  // lane_halts_ carries each lane's newly-halted count to the barrier so
  // compaction is skipped entirely on rounds where nothing decided.
  std::vector<std::uint8_t> decided_;
  std::vector<NodeId> live_;
  std::vector<std::uint64_t> lane_halts_;
};

}  // namespace dmis
