// Cost accounting shared by all three model engines (CONGEST, beeping,
// congested clique). The paper's claims are stated in synchronous rounds;
// messages and bits are tracked so experiments can also compare bandwidth
// budgets across models (experiment E10).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/bits.h"

namespace dmis {

struct CostAccounting {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;  ///< point-to-point messages delivered
  std::uint64_t bits = 0;      ///< total payload bits delivered
  std::uint64_t beeps = 0;     ///< beeping model: number of beep events

  CostAccounting& operator+=(const CostAccounting& other) {
    rounds += other.rounds;
    messages += other.messages;
    bits += other.bits;
    beeps += other.beeps;
    return *this;
  }
};

/// The per-message bandwidth B = c * ceil(log2 n) bits ("each node can send
/// O(log n) bits", paper §1). The default multiplier c=4 accommodates the
/// widest single message any algorithm here sends (a 2-word routed packet);
/// the floor of 32 bits keeps B sane on toy graphs (O(log n) hides a
/// constant that dominates at tiny n).
constexpr int congest_bandwidth_bits(NodeId n, int multiplier = 4) {
  const int b = multiplier * bits_for_range(n < 2 ? 2 : n);
  return b < 32 ? 32 : b;
}

}  // namespace dmis
