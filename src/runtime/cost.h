// Cost accounting shared by all three model engines (CONGEST, beeping,
// congested clique). The paper's claims are stated in synchronous rounds;
// messages and bits are tracked so experiments can also compare bandwidth
// budgets across models (experiment E10). Since the wire layer, bits are
// exact — each delivered message is charged its encoded size, broken down
// per WireMessageType (DESIGN.md §9), not a flat per-packet rate.
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.h"
#include "util/bits.h"
#include "wire/types.h"

namespace dmis {

/// Count/bits of one message type (one cell of E10's per-type breakdown).
struct WireTypeTally {
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;

  WireTypeTally& operator+=(const WireTypeTally& other) {
    messages += other.messages;
    bits += other.bits;
    return *this;
  }
  friend bool operator==(const WireTypeTally&, const WireTypeTally&) = default;
};

struct CostAccounting {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;  ///< point-to-point messages delivered
  std::uint64_t bits = 0;      ///< total payload bits delivered (exact)
  std::uint64_t beeps = 0;     ///< beeping model: number of beep events
  std::uint64_t retries = 0;   ///< phase re-executions under faults (E19)
  /// Per-message-type breakdown. Point-to-point deliveries keep
  /// sum(by_type[...].messages over non-beep types) == messages; beep events
  /// are tallied under kBeep (1 bit each) but are carrier bursts, not
  /// messages, so they do not count toward `messages`.
  std::array<WireTypeTally, kWireMessageTypeCount> by_type{};

  const WireTypeTally& of(WireMessageType t) const {
    return by_type[static_cast<std::size_t>(t)];
  }

  /// Charge `count` delivered messages of `type` carrying `total_bits` bits
  /// in aggregate. Typed messages of one kind all cost the same in a run
  /// (codec invariant: widths depend only on the WireContext), but kRaw
  /// batches may mix sizes, so the aggregate is what gets charged.
  void add_messages(WireMessageType type, std::uint64_t count,
                    std::uint64_t total_bits) {
    messages += count;
    bits += total_bits;
    auto& tally = by_type[static_cast<std::size_t>(type)];
    tally.messages += count;
    tally.bits += total_bits;
  }

  /// Charge beep events (1 bit of carrier information each).
  void add_beeps(std::uint64_t count) {
    beeps += count;
    auto& tally = by_type[static_cast<std::size_t>(WireMessageType::kBeep)];
    tally.messages += count;
    tally.bits += count;
  }

  CostAccounting& operator+=(const CostAccounting& other) {
    rounds += other.rounds;
    messages += other.messages;
    bits += other.bits;
    beeps += other.beeps;
    retries += other.retries;
    for (std::size_t i = 0; i < by_type.size(); ++i) {
      by_type[i] += other.by_type[i];
    }
    return *this;
  }
};

/// The per-message bandwidth B = c * ceil(log2 n) bits ("each node can send
/// O(log n) bits", paper §1). The default multiplier c=4 accommodates the
/// widest single CONGEST message any algorithm here sends; the floor of 32
/// bits keeps B sane on toy graphs (O(log n) hides a constant that dominates
/// at tiny n).
constexpr int congest_bandwidth_bits(NodeId n, int multiplier = 4) {
  const int b = multiplier * bits_for_range(n < 2 ? 2 : n);
  return b < 32 ? 32 : b;
}

}  // namespace dmis
