// The unified engine contract of the simulation runtime.
//
// All three model substrates (CONGEST, beeping, congested clique) implement
// SimulationEngine: the same step/run/all_halted/live_count/costs surface and
// the same observer event stream (runtime/observer.h). Algorithms plug in as
// node programs (or drive the clique substrate's routing primitives); new
// models and algorithms reuse this layer instead of growing bespoke engines.
//
// Observation protocol, per executed round:
//   1. on_phase_marker(kIterationBegin)  — only if an analysis probe says the
//      round opens an iteration; carries a MisAnalysisView snapshot
//   2. on_round_begin
//   3. on_messages_delivered             — once communication is resolved
//   4. on_round_end                      — costs for the round are charged
//   5. on_phase_marker(kIterationEnd)    — only if the probe says the round
//      closes an iteration; carries a fresh snapshot
// With no observer attached, none of this runs: every emit helper is guarded
// by a single `observers_.empty()` branch.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "runtime/cost.h"
#include "runtime/faults.h"
#include "runtime/observer.h"

namespace dmis {

class SimulationEngine {
 public:
  virtual ~SimulationEngine() = default;

  /// Attaches a fault plane (runtime/faults.h), consulted at the engine's
  /// wire-delivery choke point. Borrowed, never owned; must outlive the
  /// engine or be detached (nullptr) first. An inactive (null-schedule)
  /// plane is ignored entirely, so attaching one cannot perturb a run.
  void set_fault_plane(FaultPlane* plane) {
    faults_ = (plane != nullptr && plane->active()) ? plane : nullptr;
  }
  FaultPlane* fault_plane() const { return faults_; }

  /// Executes one synchronous round. Returns false once every participant
  /// has halted (in which case nothing is executed or charged).
  virtual bool step() = 0;

  /// Runs until all participants halt or `max_rounds` elapse; returns the
  /// number of rounds executed.
  std::uint64_t run(std::uint64_t max_rounds) {
    std::uint64_t executed = 0;
    while (executed < max_rounds && !all_halted()) {
      step();
      ++executed;
    }
    return executed;
  }

  virtual bool all_halted() const { return live_count() == 0; }
  virtual std::uint64_t live_count() const = 0;
  const CostAccounting& costs() const { return costs_; }
  std::uint64_t round() const { return round_; }

  ObserverRegistry& observers() { return observers_; }
  const ObserverRegistry& observers() const { return observers_; }

  /// Algorithm-registered analysis channel. When set (and observers are
  /// attached), the engine emits iteration markers carrying per-node
  /// analysis snapshots — how the golden-round auditor of paper §2.2/§2.3
  /// watches an execution without the algorithm body calling it.
  struct AnalysisProbe {
    /// If `round` opens an analysis iteration, return its ordinal.
    std::function<std::optional<std::uint64_t>(std::uint64_t round)>
        iteration_begin;
    /// If `round` closes an analysis iteration, return its ordinal.
    std::function<std::optional<std::uint64_t>(std::uint64_t round)>
        iteration_end;
    /// Snapshot the current per-node state for the given marker kind
    /// (kIterationBegin or kIterationEnd — liveness conventions may differ,
    /// e.g. phase-commit semantics). The returned spans must stay valid
    /// until the next probe call.
    std::function<MisAnalysisView(PhaseMarkerKind)> snapshot;
  };

  void set_analysis_probe(AnalysisProbe probe) { probe_ = std::move(probe); }

  /// Emits an explicit phase marker (no-op when unobserved). Public so the
  /// code driving an engine (e.g. the clique MIS simulation) can mark its
  /// own phase structure into the event stream.
  void mark_phase(PhaseMarkerKind kind, std::uint64_t index) {
    if (observers_.empty()) return;
    observers_.phase_marker({kind, index}, context(round_));
  }

 protected:
  bool observed() const { return !observers_.empty(); }

  RoundContext context(std::uint64_t round) const {
    RoundContext ctx;
    ctx.round = round;
    ctx.live = live_count();
    ctx.costs = &costs_;
    return ctx;
  }

  /// Call at the top of step(), before any node code runs.
  void emit_round_begin() {
    if (observers_.empty()) return;
    if (probe_.has_value() && probe_->iteration_begin && probe_->snapshot) {
      if (const auto iter = probe_->iteration_begin(round_)) {
        const MisAnalysisView view =
            probe_->snapshot(PhaseMarkerKind::kIterationBegin);
        RoundContext ctx = context(round_);
        ctx.analysis = &view;
        observers_.phase_marker({PhaseMarkerKind::kIterationBegin, *iter},
                                ctx);
      }
    }
    observers_.round_begin(context(round_));
  }

  /// Call once the round's communication is resolved.
  void emit_messages(std::uint64_t messages, std::uint64_t bits) {
    if (observers_.empty()) return;
    observers_.messages_delivered(context(round_), messages, bits);
  }

  /// Call after emit_messages, once per message type with a non-zero count
  /// this round (the per-type slice of the same delivery).
  void emit_wire(WireMessageType type, std::uint64_t messages,
                 std::uint64_t bits) {
    if (observers_.empty() || messages == 0) return;
    observers_.wire_delivered(context(round_), type, messages, bits);
  }

  /// Call at the end of step(), after costs for `finished_round` have been
  /// charged (round_ already advanced past it).
  void emit_round_end(std::uint64_t finished_round) {
    if (observers_.empty()) return;
    observers_.round_end(context(finished_round));
    if (probe_.has_value() && probe_->iteration_end && probe_->snapshot) {
      if (const auto iter = probe_->iteration_end(finished_round)) {
        const MisAnalysisView view =
            probe_->snapshot(PhaseMarkerKind::kIterationEnd);
        RoundContext ctx = context(finished_round);
        ctx.analysis = &view;
        observers_.phase_marker({PhaseMarkerKind::kIterationEnd, *iter}, ctx);
      }
    }
  }

  /// Charges the downed-node rounds of `round` to the plane's stats (call
  /// from a single-threaded section; no-op without an active plane with
  /// node faults).
  void tally_node_downtime(std::uint64_t round, std::uint64_t node_count) {
    if (faults_ == nullptr || !faults_->has_node_faults()) return;
    FaultStats delta;
    for (std::uint64_t v = 0; v < node_count; ++v) {
      if (faults_->node_down(static_cast<NodeId>(v), round)) {
        ++delta.node_down_rounds;
      }
    }
    faults_->record(delta);
  }

  CostAccounting costs_;
  ObserverRegistry observers_;
  FaultPlane* faults_ = nullptr;
  std::uint64_t round_ = 0;

 private:
  std::optional<AnalysisProbe> probe_;
};

}  // namespace dmis
