#include "runtime/faults.h"

#include "rng/mix.h"
#include "util/check.h"

namespace dmis {
namespace {

constexpr double to_unit(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

void validate_rate(double rate, const char* name) {
  DMIS_CHECK(rate >= 0.0 && rate <= 1.0,
             "fault rate '" << name << "' = " << rate << " outside [0, 1]");
}

}  // namespace

FaultPlane::FaultPlane(FaultSchedule schedule)
    : schedule_(std::move(schedule)), rng_(mix64(schedule_.seed, 0xFA17)) {
  validate_rate(schedule_.drop_rate, "drop");
  validate_rate(schedule_.corrupt_rate, "corrupt");
  validate_rate(schedule_.duplicate_rate, "duplicate");
  validate_rate(schedule_.delay_rate, "delay");
  DMIS_CHECK(schedule_.delay_rounds >= 1,
             "delay_rounds must be >= 1, got " << schedule_.delay_rounds);
  for (const NodeFaultSpec& f : schedule_.node_faults) {
    DMIS_CHECK(f.node != kInvalidNode, "node fault without a node");
  }
  message_faults_ = schedule_.drop_rate > 0.0 ||
                    schedule_.corrupt_rate > 0.0 ||
                    schedule_.duplicate_rate > 0.0 ||
                    schedule_.delay_rate > 0.0;
  active_ = !schedule_.empty();
}

std::uint64_t FaultPlane::decision_word(std::uint64_t round, NodeId src,
                                        NodeId dst, std::uint64_t salt) const {
  // One word per message coordinate; sub-decisions re-mix it with distinct
  // tweaks so drop/corrupt/duplicate/delay draws are independent.
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  return rng_.word(RngStream::kFaults, pair, mix64(round, salt));
}

FaultDecision FaultPlane::on_message(std::uint64_t round, NodeId src,
                                     NodeId dst, std::uint64_t salt) const {
  FaultDecision d;
  if (!message_faults_) return d;
  const std::uint64_t w = decision_word(round, src, dst, salt);
  if (schedule_.drop_rate > 0.0 &&
      to_unit(mix64(w, 1)) < schedule_.drop_rate) {
    d.drop = true;
    return d;  // a dropped message cannot also be corrupted/duplicated
  }
  if (schedule_.corrupt_rate > 0.0 &&
      to_unit(mix64(w, 2)) < schedule_.corrupt_rate) {
    d.corrupt = true;
    return d;
  }
  if (schedule_.duplicate_rate > 0.0 &&
      to_unit(mix64(w, 3)) < schedule_.duplicate_rate) {
    d.duplicate = true;
    return d;
  }
  if (schedule_.delay_rate > 0.0 &&
      to_unit(mix64(w, 4)) < schedule_.delay_rate) {
    d.delay = schedule_.delay_rounds;
  }
  return d;
}

int FaultPlane::corrupt_bit(std::uint64_t round, NodeId src, NodeId dst,
                            std::uint64_t salt, int bits) const {
  DMIS_CHECK(bits >= 1, "cannot corrupt a 0-bit payload");
  const std::uint64_t w = decision_word(round, src, dst, salt);
  return static_cast<int>(mix64(w, 5) % static_cast<std::uint64_t>(bits));
}

bool FaultPlane::node_down(NodeId node, std::uint64_t round) const {
  for (const NodeFaultSpec& f : schedule_.node_faults) {
    if (f.node != node || round < f.round) continue;
    if (f.duration == 0) return true;  // crash: down forever
    if (round < f.round + f.duration) return true;
  }
  return false;
}

void FaultPlane::corrupt_word(std::uint64_t& word, int bit) {
  DMIS_CHECK(bit >= 0 && bit < 64, "corrupt bit " << bit << " outside word");
  word ^= std::uint64_t{1} << bit;
}

void FaultPlane::corrupt_payload(WirePayload& payload, int bit) {
  DMIS_CHECK(bit >= 0 && bit < payload.bits,
             "corrupt bit " << bit << " outside payload of " << payload.bits
                            << " bits");
  corrupt_word(payload.words[static_cast<std::size_t>(bit / 64)], bit % 64);
}

}  // namespace dmis
