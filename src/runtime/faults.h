// Deterministic fault plane of the simulation runtime.
//
// The paper's guarantees (Theorem 1.1, the shattering analysis of §2.2) are
// proved for a fault-free synchronous model. To measure how the reproduction
// degrades when that assumption breaks, failure is made a first-class,
// seeded *input*: a FaultPlane is consulted by every engine (CONGEST,
// beeping, congested clique) at its wire-delivery choke point and decides,
// per message, whether to deliver, drop, bit-corrupt, duplicate, or delay it
// — and, per node, whether the node is crashed or stalled this round.
//
// Determinism contract (extends runtime/parallel.h): every decision is a
// pure function of (schedule seed, round, src, dst, salt) through the
// counter RNG — never of thread interleaving or evaluation order — so a
// seeded fault schedule yields bit-identical executions at any --threads
// count, and a recorded schedule replays a failure exactly (runtime/repro.h).
//
// Corrupted payloads flow into the typed decoders of wire/codec.h, so
// range-validated fields fail loudly (PreconditionError with a FailureSite)
// instead of being truncated into valid values; corruptions that land on
// value bits without redundancy decode as a *different valid* message — the
// realistic silent-corruption case the invariant auditor exists to catch.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rng/random_source.h"
#include "wire/codec.h"

namespace dmis {

/// A scheduled whole-node fault: from `round` on, the node neither sends nor
/// receives for `duration` rounds (duration 0 = crash: down forever).
struct NodeFaultSpec {
  NodeId node = kInvalidNode;
  std::uint64_t round = 0;
  std::uint64_t duration = 0;  ///< 0 = crash (permanent)

  friend bool operator==(const NodeFaultSpec&, const NodeFaultSpec&) = default;
};

/// The declarative fault schedule: per-message fault rates, the delay depth,
/// scheduled node faults, and the seed the per-message coin flips derive
/// from. A default-constructed schedule is the null plane (no faults).
struct FaultSchedule {
  std::uint64_t seed = 0;
  double drop_rate = 0.0;       ///< message vanishes
  double corrupt_rate = 0.0;    ///< one payload bit flips
  double duplicate_rate = 0.0;  ///< message delivered twice
  double delay_rate = 0.0;      ///< message arrives `delay_rounds` late
  std::uint64_t delay_rounds = 1;
  std::vector<NodeFaultSpec> node_faults;

  bool empty() const {
    return drop_rate == 0.0 && corrupt_rate == 0.0 && duplicate_rate == 0.0 &&
           delay_rate == 0.0 && node_faults.empty();
  }
  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;
};

/// Realized fault counts, tallied by the engines (per-lane partials reduced
/// at barriers, so counts too are thread-count invariant).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t node_down_rounds = 0;  ///< live-node rounds lost to crash/stall

  FaultStats& operator+=(const FaultStats& o) {
    dropped += o.dropped;
    corrupted += o.corrupted;
    duplicated += o.duplicated;
    delayed += o.delayed;
    node_down_rounds += o.node_down_rounds;
    return *this;
  }
  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// What the plane decided for one message. Drop excludes the others; the
/// remaining three are sampled independently but at most one fires per
/// message (corrupt > duplicate > delay precedence keeps semantics simple).
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  std::uint64_t delay = 0;  ///< > 0: hold the message back this many rounds

  bool clean() const { return !drop && !corrupt && !duplicate && delay == 0; }
};

class FaultPlane {
 public:
  explicit FaultPlane(FaultSchedule schedule);

  const FaultSchedule& schedule() const { return schedule_; }
  /// False for a null schedule: engines skip every fault branch, keeping the
  /// execution bit-identical to a run with no plane attached.
  bool active() const { return active_; }

  /// The per-message decision — a pure function of its arguments (plus the
  /// schedule seed). `salt` disambiguates multiple messages on the same
  /// (round, src, dst) coordinate: engines pass a deterministic per-message
  /// ordinal (outbox index, packet index).
  FaultDecision on_message(std::uint64_t round, NodeId src, NodeId dst,
                           std::uint64_t salt) const;

  /// Bit index in [0, bits) to flip for a corrupt decision (pure function).
  int corrupt_bit(std::uint64_t round, NodeId src, NodeId dst,
                  std::uint64_t salt, int bits) const;

  /// Is `node` crashed or mid-stall in `round`?
  bool node_down(NodeId node, std::uint64_t round) const;
  bool has_node_faults() const { return !schedule_.node_faults.empty(); }

  /// Engines report realized faults here from single-threaded sections only
  /// (lane partials are reduced first).
  void record(const FaultStats& delta) { stats_ += delta; }
  const FaultStats& stats() const { return stats_; }

  /// Flips `bit` of the significant payload bits — the corruption primitive
  /// shared by all engines and the corruption tests.
  static void corrupt_payload(WirePayload& payload, int bit);
  static void corrupt_word(std::uint64_t& word, int bit);

 private:
  std::uint64_t decision_word(std::uint64_t round, NodeId src, NodeId dst,
                              std::uint64_t salt) const;

  FaultSchedule schedule_;
  RandomSource rng_;
  bool active_ = false;
  bool message_faults_ = false;
  FaultStats stats_;
};

}  // namespace dmis
