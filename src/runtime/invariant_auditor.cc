#include "runtime/invariant_auditor.h"

#include <sstream>

#include "util/check.h"

namespace dmis {

const char* invariant_kind_name(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kIndependence:
      return "independence";
    case InvariantKind::kDomination:
      return "domination";
    case InvariantKind::kMonotonicity:
      return "monotonicity";
  }
  return "unknown";
}

std::vector<InvariantViolation> check_mis_invariants(
    const Graph& g, std::span<const char> in_mis, std::span<const char> decided,
    std::uint64_t round, std::size_t cap) {
  std::vector<InvariantViolation> out;
  const NodeId n = g.node_count();
  auto emit = [&](InvariantKind kind, NodeId node, NodeId witness,
                  std::string detail) {
    if (out.size() >= cap) return;
    out.push_back({kind, round, 0, node, witness, std::move(detail)});
  };
  if (in_mis.size() == static_cast<std::size_t>(n)) {
    // Independence: scan each node's neighbors above it (each edge once).
    for (NodeId v = 0; v < n; ++v) {
      if (in_mis[v] == 0) continue;
      for (const NodeId u : g.neighbors(v)) {
        if (u > v && in_mis[u] != 0) {
          std::ostringstream os;
          os << "adjacent nodes " << v << " and " << u << " both in the MIS";
          emit(InvariantKind::kIndependence, v, u, os.str());
        }
      }
    }
    // Domination: a decided node that did not join must see a joined
    // neighbor.
    if (decided.size() == static_cast<std::size_t>(n)) {
      for (NodeId v = 0; v < n; ++v) {
        if (decided[v] == 0 || in_mis[v] != 0) continue;
        bool dominated = false;
        for (const NodeId u : g.neighbors(v)) {
          if (in_mis[u] != 0) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          std::ostringstream os;
          os << "node " << v << " removed without an MIS neighbor";
          emit(InvariantKind::kDomination, v, kInvalidNode, os.str());
        }
      }
    }
  }
  return out;
}

void InvariantAuditor::on_phase_marker(const PhaseMarker& marker,
                                       const RoundContext& ctx) {
  if (marker.kind != PhaseMarkerKind::kIterationEnd) return;
  if (ctx.analysis == nullptr) return;
  const std::span<const char> in_mis = ctx.analysis->in_mis;
  const std::span<const char> decided = ctx.analysis->decided;
  const NodeId n = graph_.node_count();
  if (in_mis.size() != static_cast<std::size_t>(n)) return;

  for (InvariantViolation& v :
       check_mis_invariants(graph_, in_mis, decided, ctx.round,
                            max_violations_)) {
    v.iteration = marker.index;
    record(std::move(v));
  }

  // Monotonicity against the previous snapshot: membership and decidedness
  // never revert in any algorithm here (joiners halt; removed nodes halt).
  if (have_prev_) {
    for (NodeId v = 0; v < n; ++v) {
      if (prev_in_mis_[v] != 0 && in_mis[v] == 0) {
        std::ostringstream os;
        os << "node " << v << " left the MIS";
        record({InvariantKind::kMonotonicity, ctx.round, marker.index, v,
                kInvalidNode, os.str()});
      }
      if (!decided.empty() && prev_decided_[v] != 0 && decided[v] == 0) {
        std::ostringstream os;
        os << "node " << v << " became undecided again";
        record({InvariantKind::kMonotonicity, ctx.round, marker.index, v,
                kInvalidNode, os.str()});
      }
    }
  }
  prev_in_mis_.assign(in_mis.begin(), in_mis.end());
  if (!decided.empty()) {
    prev_decided_.assign(decided.begin(), decided.end());
  } else {
    prev_decided_.assign(static_cast<std::size_t>(n), 0);
  }
  have_prev_ = true;
}

void InvariantAuditor::record(InvariantViolation v) {
  ++total_;
  if (violations_.size() < max_violations_) violations_.push_back(std::move(v));
}

}  // namespace dmis
