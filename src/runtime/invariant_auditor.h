// Round-level MIS invariant auditing (the fault plane's detection side).
//
// Under a fault-free execution the algorithms of the paper maintain, at
// every iteration boundary, the safety invariants their proofs rest on:
//   * independence — no two adjacent nodes are both in the MIS;
//   * domination  — a node that left the problem without joining has an MIS
//     neighbor (it was removed *because* a neighbor joined);
//   * monotonicity — joined stays joined, decided stays decided.
// Under an active fault plane (runtime/faults.h) these can break: a dropped
// announce beep yields two adjacent joiners, a corrupted payload that still
// decodes misleads a removal. The InvariantAuditor is a RoundObserver that
// re-checks the invariants at every kIterationEnd marker against the
// engine's analysis snapshots, records violations with the node and witness
// involved, and hands enough context to runtime/repro.h to write a replayable
// crash bundle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "runtime/observer.h"

namespace dmis {

enum class InvariantKind : std::uint8_t {
  kIndependence,  ///< adjacent nodes both in the MIS
  kDomination,    ///< removed node with no MIS neighbor
  kMonotonicity,  ///< a joined/decided flag reverted
};

const char* invariant_kind_name(InvariantKind kind);

struct InvariantViolation {
  InvariantKind kind = InvariantKind::kIndependence;
  std::uint64_t round = 0;      ///< engine round of the failing snapshot
  std::uint64_t iteration = 0;  ///< iteration marker ordinal
  NodeId node = kInvalidNode;
  NodeId witness = kInvalidNode;  ///< the other endpoint, if the kind has one
  std::string detail;

  friend bool operator==(const InvariantViolation&,
                         const InvariantViolation&) = default;
};

/// One-shot invariant check of a final (or intermediate) MIS state. Spans
/// may be empty to skip the checks needing them; at most `cap` violations
/// are materialized.
std::vector<InvariantViolation> check_mis_invariants(
    const Graph& g, std::span<const char> in_mis, std::span<const char> decided,
    std::uint64_t round, std::size_t cap = 64);

/// Observer running the checks at every kIterationEnd marker that carries an
/// analysis snapshot with membership state (MisAnalysisView::in_mis). Attach
/// to any engine; detach-safe like every RoundObserver.
class InvariantAuditor final : public RoundObserver {
 public:
  explicit InvariantAuditor(const Graph& graph, std::size_t max_violations = 64)
      : graph_(graph), max_violations_(max_violations) {}

  void on_phase_marker(const PhaseMarker& marker,
                       const RoundContext& ctx) override;

  /// Recorded violations (capped at max_violations; total_violations() keeps
  /// the exact count).
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t total_violations() const { return total_; }
  bool clean() const { return total_ == 0; }

 private:
  void record(InvariantViolation v);

  const Graph& graph_;
  std::size_t max_violations_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t total_ = 0;
  std::vector<char> prev_in_mis_;
  std::vector<char> prev_decided_;
  bool have_prev_ = false;
};

}  // namespace dmis
