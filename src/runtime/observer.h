// Round observation layer of the unified simulation runtime.
//
// Every engine (CONGEST, beeping, congested clique) and every lock-step
// runner emits the same event stream: round begin, messages delivered, round
// end, and algorithm-level phase markers. Observers are *analysis-side*
// instrumentation — they never feed information back into an execution, so
// attaching one cannot change algorithmic results (only wall-clock time).
//
// The registry's fast path is a single `empty()` test: an engine with no
// observer attached pays one branch per round and never materializes a
// RoundContext, so unobserved runs cost exactly what they did before this
// layer existed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/cost.h"

namespace dmis {

/// Omniscient-observer view of an MIS execution's per-node analysis state
/// (the d_t(v)/p_t(v) quantities of paper §2.2/§2.3 are derived from it).
/// Engines fill it through an algorithm-registered probe; lock-step runners
/// fill it directly. Spans point into storage owned by the emitter and are
/// valid only for the duration of the callback.
struct MisAnalysisView {
  std::span<const char> alive;
  std::span<const int> p_exp;        ///< p_t(v) = 2^-p_exp[v]
  std::span<const char> superheavy;  ///< empty: no super-heavy classification
  std::span<const char> in_mis;      ///< empty: membership not exposed
  std::span<const char> decided;     ///< joined or removed; empty: not exposed
};

enum class PhaseMarkerKind : std::uint8_t {
  kPhaseBegin,
  kPhaseEnd,
  kIterationBegin,  ///< one iteration of a beeping dynamic is about to run
  kIterationEnd,    ///< ... has completed (removals applied)
};

struct PhaseMarker {
  PhaseMarkerKind kind = PhaseMarkerKind::kPhaseBegin;
  std::uint64_t index = 0;  ///< phase or iteration ordinal
};

/// Event payload. `analysis` is non-null only for marker events emitted by
/// an execution that has analysis state to show (see MisAnalysisView).
struct RoundContext {
  std::uint64_t round = 0;
  std::uint64_t live = 0;
  const CostAccounting* costs = nullptr;
  const MisAnalysisView* analysis = nullptr;
};

/// Passive per-round instrumentation. Default implementations ignore every
/// event, so observers override only what they need.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// The round `ctx.round` is about to execute.
  virtual void on_round_begin(const RoundContext& ctx) { (void)ctx; }

  /// The round's communication happened: `messages` messages carrying `bits`
  /// payload bits were delivered (beep engines report beeps as 1-bit
  /// messages; clique routing reports packets).
  virtual void on_messages_delivered(const RoundContext& ctx,
                                     std::uint64_t messages,
                                     std::uint64_t bits) {
    (void)ctx;
    (void)messages;
    (void)bits;
  }

  /// Per-message-type slice of the same delivery: emitted once per message
  /// type with a non-zero count, after on_messages_delivered. The sum over
  /// all emissions of a round equals that round's (messages, bits) — this is
  /// the event E10's per-type bandwidth breakdown is built on.
  virtual void on_wire_delivered(const RoundContext& ctx, WireMessageType type,
                                 std::uint64_t messages, std::uint64_t bits) {
    (void)ctx;
    (void)type;
    (void)messages;
    (void)bits;
  }

  /// The round `ctx.round` completed (its costs are already charged).
  virtual void on_round_end(const RoundContext& ctx) { (void)ctx; }

  /// Algorithm-structure event (phase/iteration boundary).
  virtual void on_phase_marker(const PhaseMarker& marker,
                               const RoundContext& ctx) {
    (void)marker;
    (void)ctx;
  }
};

/// Fan-out of events to attached observers, in attach order. Observers are
/// borrowed, never owned; detach before destroying an observer that might
/// still see events. Detaching is safe *during* dispatch (an observer may
/// detach itself — or a peer — from inside a callback): the slot is nulled
/// immediately, so the detached observer receives no further events, and the
/// vector is compacted once the outermost dispatch returns. Attaching during
/// dispatch is also safe; the new observer starts receiving events from the
/// next event on.
class ObserverRegistry {
 public:
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  void attach(RoundObserver* observer) {
    if (observer == nullptr) return;
    observers_.push_back(observer);
    ++live_;
  }

  void detach(RoundObserver* observer) {
    for (RoundObserver*& slot : observers_) {
      if (slot == observer) {
        slot = nullptr;
        --live_;
      }
    }
    if (dispatch_depth_ == 0) std::erase(observers_, nullptr);
  }

  void round_begin(const RoundContext& ctx) const {
    dispatch([&](RoundObserver* o) { o->on_round_begin(ctx); });
  }
  void messages_delivered(const RoundContext& ctx, std::uint64_t messages,
                          std::uint64_t bits) const {
    dispatch([&](RoundObserver* o) {
      o->on_messages_delivered(ctx, messages, bits);
    });
  }
  void wire_delivered(const RoundContext& ctx, WireMessageType type,
                      std::uint64_t messages, std::uint64_t bits) const {
    dispatch([&](RoundObserver* o) {
      o->on_wire_delivered(ctx, type, messages, bits);
    });
  }
  void round_end(const RoundContext& ctx) const {
    dispatch([&](RoundObserver* o) { o->on_round_end(ctx); });
  }
  void phase_marker(const PhaseMarker& marker, const RoundContext& ctx) const {
    dispatch([&](RoundObserver* o) { o->on_phase_marker(marker, ctx); });
  }

 private:
  // Index-based iteration: a callback may attach (push_back can reallocate)
  // or detach (slots become null) mid-dispatch. Observers attached during
  // dispatch are appended past the current end and thus picked up by the
  // same loop — acceptable because attach order still defines event order.
  // The depth guard is RAII because a callback may throw (the service's
  // cancellation observer aborts a run that way); the registry must stay
  // consistent for the next job.
  struct DepthGuard {
    const ObserverRegistry* r;
    explicit DepthGuard(const ObserverRegistry* reg) : r(reg) {
      ++r->dispatch_depth_;
    }
    ~DepthGuard() {
      if (--r->dispatch_depth_ == 0) std::erase(r->observers_, nullptr);
    }
  };

  template <typename Fn>
  void dispatch(Fn&& fn) const {
    DepthGuard guard(this);
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      RoundObserver* o = observers_[i];
      if (o != nullptr) fn(o);
    }
  }

  // Mutable: dispatch is observation-side and logically const; the deferred
  // compaction bookkeeping is not observable state.
  mutable std::vector<RoundObserver*> observers_;
  mutable int dispatch_depth_ = 0;
  std::size_t live_ = 0;
};

/// Records per-round cost deltas and phase markers — the bench-side
/// instrumentation for perf trajectories (rounds where the message volume
/// spikes, phase boundaries, live-set decay).
class TraceRecorder final : public RoundObserver {
 public:
  struct RoundTrace {
    std::uint64_t round = 0;
    std::uint64_t live_at_begin = 0;
    CostAccounting delta;  ///< costs charged by this round
  };
  struct MarkerTrace {
    PhaseMarker marker;
    std::uint64_t round = 0;
  };

  void on_round_begin(const RoundContext& ctx) override {
    current_.round = ctx.round;
    current_.live_at_begin = ctx.live;
    begin_costs_ = ctx.costs != nullptr ? *ctx.costs : CostAccounting{};
  }

  void on_round_end(const RoundContext& ctx) override {
    if (ctx.costs != nullptr) {
      current_.delta.rounds = ctx.costs->rounds - begin_costs_.rounds;
      current_.delta.messages = ctx.costs->messages - begin_costs_.messages;
      current_.delta.bits = ctx.costs->bits - begin_costs_.bits;
      current_.delta.beeps = ctx.costs->beeps - begin_costs_.beeps;
      for (std::size_t i = 0; i < current_.delta.by_type.size(); ++i) {
        current_.delta.by_type[i].messages =
            ctx.costs->by_type[i].messages - begin_costs_.by_type[i].messages;
        current_.delta.by_type[i].bits =
            ctx.costs->by_type[i].bits - begin_costs_.by_type[i].bits;
      }
    }
    rounds_.push_back(current_);
    current_ = RoundTrace{};
  }

  void on_phase_marker(const PhaseMarker& marker,
                       const RoundContext& ctx) override {
    markers_.push_back({marker, ctx.round});
  }

  const std::vector<RoundTrace>& rounds() const { return rounds_; }
  const std::vector<MarkerTrace>& markers() const { return markers_; }

  CostAccounting total() const {
    CostAccounting sum;
    for (const RoundTrace& r : rounds_) sum += r.delta;
    return sum;
  }

 private:
  RoundTrace current_;
  CostAccounting begin_costs_;
  std::vector<RoundTrace> rounds_;
  std::vector<MarkerTrace> markers_;
};

}  // namespace dmis
