#include "runtime/parallel.h"

#include <algorithm>

namespace dmis {

WorkerPool::WorkerPool(int threads) : threads_(std::max(threads, 1)) {
  errors_.assign(static_cast<std::size_t>(threads_), nullptr);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int lane = 1; lane < threads_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int WorkerPool::clamp_threads(int requested) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int cap = hw > 0 ? hw : 1;
  return std::clamp(requested, 1, std::max(cap, 1));
}

int WorkerPool::lanes_per_worker(int total_threads, int workers) {
  const int w = std::max(workers, 1);
  const int total = std::max(total_threads, 1);
  return std::max(total / w, 1);
}

WorkerPool::Chunk WorkerPool::chunk_of(std::size_t n, int lane) const {
  // Static contiguous partition: chunk sizes differ by at most one and
  // depend only on (n, threads_).
  const auto t = static_cast<std::size_t>(threads_);
  const auto l = static_cast<std::size_t>(lane);
  return {n * l / t, n * (l + 1) / t};
}

void WorkerPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, int)>* job = nullptr;
    const IndexFn* index_job = nullptr;
    const std::uint32_t* index_data = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      index_job = index_job_;
      index_data = index_data_;
      n = job_n_;
    }
    const Chunk c = chunk_of(n, lane);
    try {
      if (c.begin < c.end) {
        if (index_job != nullptr) {
          (*index_job)(index_data + c.begin, index_data + c.end, lane);
        } else {
          (*job)(c.begin, c.end, lane);
        }
      }
    } catch (...) {
      errors_[static_cast<std::size_t>(lane)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

void WorkerPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& fn) {
  if (threads_ == 1 || n == 0) {
    if (n > 0) fn(0, n, 0);
    return;
  }
  std::fill(errors_.begin(), errors_.end(), nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    index_job_ = nullptr;
    index_data_ = nullptr;
    job_n_ = n;
    pending_ = threads_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();
  // The calling thread is lane 0.
  const Chunk c = chunk_of(n, 0);
  try {
    if (c.begin < c.end) fn(c.begin, c.end, 0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void WorkerPool::parallel_for_indices(std::span<const std::uint32_t> indices,
                                      const IndexFn& fn) {
  const std::size_t n = indices.size();
  if (threads_ == 1 || n == 0) {
    if (n > 0) fn(indices.data(), indices.data() + n, 0);
    return;
  }
  std::fill(errors_.begin(), errors_.end(), nullptr);
  const std::uint32_t* data = indices.data();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = nullptr;
    index_job_ = &fn;
    index_data_ = data;
    job_n_ = n;
    pending_ = threads_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();
  // The calling thread is lane 0.
  const Chunk c = chunk_of(n, 0);
  try {
    if (c.begin < c.end) fn(data + c.begin, data + c.end, 0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    index_job_ = nullptr;
    index_data_ = nullptr;
  }
  for (const std::exception_ptr& e : errors_) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace dmis
