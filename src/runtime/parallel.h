// Deterministic intra-round parallelism for the simulation runtime.
//
// Within one synchronous round, node programs are independent by model
// definition: send/act decisions depend only on a node's own state, and
// receive/feedback consume a per-node inbox computed at a barrier. The pool
// therefore partitions the per-round node fan-outs across threads.
//
// Determinism argument (why results are bit-identical at any thread count):
//   * the partition of [0, n) into chunks is a pure function of (n, threads),
//     and every per-index computation writes only that index's slots;
//   * per-node randomness is counter-based (rng/random_source.h): a draw is
//     a pure function of (seed, stream, node, round), never of execution
//     order;
//   * cross-node aggregation (message/bit/beep counts) sums unsigned
//     integers, which is order-independent; ordered aggregation (inbox
//     contents) is produced per-destination in neighbor order, identical to
//     the sequential sender-order delivery because adjacency lists are
//     sorted.
// Thread count is therefore a pure performance knob, asserted by the
// determinism tests (tests/test_parallel.cc).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace dmis {

class WorkerPool {
 public:
  /// A pool with `threads` total lanes (the calling thread is lane 0, so
  /// `threads - 1` workers are spawned). threads <= 1 spawns nothing and
  /// parallel_for degenerates to an inline loop with zero overhead.
  explicit WorkerPool(int threads = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return threads_; }

  /// Runs `fn(chunk_begin, chunk_end, lane)` over a static contiguous
  /// partition of [0, n) into thread_count() chunks (lane = chunk index, for
  /// per-lane partial aggregation). Blocks until every chunk completes. The
  /// first exception thrown by any chunk (lowest lane wins) is rethrown on
  /// the calling thread.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, int)>& fn);

  /// Callback for parallel_for_indices: a contiguous pointer range into the
  /// caller's index array plus the lane that owns it.
  using IndexFn = std::function<void(const std::uint32_t*,
                                     const std::uint32_t*, int)>;

  /// Frontier variant of parallel_for: partitions the *positions* of
  /// `indices` (not [0, n)) into thread_count() static contiguous chunks and
  /// runs `fn(first, last, lane)` on each chunk's pointer range. The chunk
  /// layout is a pure function of (indices.size(), threads), so iterating a
  /// sorted frontier preserves the sequential ascending-index order within
  /// and across lanes — the determinism argument above applies unchanged
  /// with "node id" replaced by "frontier position". The span must stay
  /// valid and unmodified until the call returns. Implemented natively (not
  /// as a wrapper lambda) so the hot path does zero heap allocation.
  void parallel_for_indices(std::span<const std::uint32_t> indices,
                            const IndexFn& fn);

  /// Clamp a requested thread count to [1, hardware_concurrency].
  static int clamp_threads(int requested);

  /// Splits one total thread budget across `workers` concurrent consumers
  /// (the batch execution service runs `workers` jobs at once, each stepping
  /// its nodes through a WorkerPool of this many lanes): the returned
  /// per-consumer lane count satisfies `workers * lanes <= max(total,
  /// workers)`, so concurrent jobs plus intra-job stepping never
  /// oversubscribe the budget. Always >= 1 — a worker can run its job, just
  /// sequentially.
  static int lanes_per_worker(int total_threads, int workers);

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  Chunk chunk_of(std::size_t n, int lane) const;
  void worker_loop(int lane);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t, std::size_t, int)>* job_ = nullptr;
  const IndexFn* index_job_ = nullptr;
  const std::uint32_t* index_data_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace dmis
