#include "runtime/repro.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace dmis {
namespace {

constexpr const char* kMagic = "dmis-repro-bundle v1";

std::string format_rate(double rate) {
  std::ostringstream os;
  os << std::setprecision(17) << rate;
  return os.str();
}

// One "key: value" line; values never contain newlines (details are
// sanitized on write).
void put(std::ostream& os, const char* key, const std::string& value) {
  os << key << ": " << value << "\n";
}

std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

struct Parser {
  explicit Parser(std::istream& stream) : is(stream) {}

  std::istream& is;
  std::string line;
  std::uint64_t lineno = 0;

  bool next() {
    while (std::getline(is, line)) {
      ++lineno;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      return true;
    }
    return false;
  }

  // Splits "key: value"; throws on malformed lines.
  void split(std::string& key, std::string& value) const {
    const std::size_t colon = line.find(": ");
    DMIS_CHECK(colon != std::string::npos,
               "repro bundle line " << lineno << " is not 'key: value': '"
                                    << line << "'");
    key = line.substr(0, colon);
    value = line.substr(colon + 2);
  }
};

std::uint64_t parse_u64(const Parser& p, const std::string& value) {
  std::size_t used = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  DMIS_CHECK(used == value.size() && !value.empty(),
             "repro bundle line " << p.lineno << ": bad integer '" << value
                                  << "'");
  return out;
}

std::int64_t parse_i64(const Parser& p, const std::string& value) {
  std::size_t used = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  DMIS_CHECK(used == value.size() && !value.empty(),
             "repro bundle line " << p.lineno << ": bad integer '" << value
                                  << "'");
  return out;
}

double parse_rate(const Parser& p, const std::string& value) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  DMIS_CHECK(used == value.size() && !value.empty(),
             "repro bundle line " << p.lineno << ": bad rate '" << value
                                  << "'");
  return out;
}

}  // namespace

void write_repro_bundle(std::ostream& os, const ReproBundle& bundle) {
  os << kMagic << "\n";
  put(os, "algorithm", bundle.algorithm);
  put(os, "seed", std::to_string(bundle.seed));
  put(os, "threads", std::to_string(bundle.threads));
  put(os, "max_rounds", std::to_string(bundle.max_rounds));
  if (!bundle.options_json.empty()) {
    put(os, "options", sanitize(bundle.options_json));
  }
  const FaultSchedule& s = bundle.schedule;
  put(os, "fault_seed", std::to_string(s.seed));
  put(os, "drop_rate", format_rate(s.drop_rate));
  put(os, "corrupt_rate", format_rate(s.corrupt_rate));
  put(os, "duplicate_rate", format_rate(s.duplicate_rate));
  put(os, "delay_rate", format_rate(s.delay_rate));
  put(os, "delay_rounds", std::to_string(s.delay_rounds));
  for (const NodeFaultSpec& f : s.node_faults) {
    os << "node_fault: " << f.node << " " << f.round << " " << f.duration
       << "\n";
  }
  put(os, "failure_kind", sanitize(bundle.failure.kind));
  put(os, "failure_round", std::to_string(bundle.failure.round));
  put(os, "failure_node", std::to_string(bundle.failure.node));
  put(os, "failure_witness", std::to_string(bundle.failure.witness));
  put(os, "failure_detail", sanitize(bundle.failure.detail));
  os << "graph: " << bundle.graph.node_count() << " "
     << bundle.graph.edge_count() << "\n";
  bundle.graph.for_each_edge(
      [&os](NodeId u, NodeId v) { os << u << " " << v << "\n"; });
}

ReproBundle read_repro_bundle(std::istream& is) {
  Parser p(is);
  DMIS_CHECK(p.next() && p.line == kMagic,
             "not a repro bundle (expected '" << kMagic << "')");
  ReproBundle bundle;
  bool saw_graph = false;
  NodeId graph_nodes = 0;
  std::uint64_t graph_edges = 0;
  std::string key;
  std::string value;
  while (!saw_graph && p.next()) {
    p.split(key, value);
    if (key == "algorithm") {
      bundle.algorithm = value;
    } else if (key == "seed") {
      bundle.seed = parse_u64(p, value);
    } else if (key == "threads") {
      bundle.threads = static_cast<int>(parse_i64(p, value));
    } else if (key == "max_rounds") {
      bundle.max_rounds = parse_u64(p, value);
    } else if (key == "options") {
      bundle.options_json = value;
    } else if (key == "fault_seed") {
      bundle.schedule.seed = parse_u64(p, value);
    } else if (key == "drop_rate") {
      bundle.schedule.drop_rate = parse_rate(p, value);
    } else if (key == "corrupt_rate") {
      bundle.schedule.corrupt_rate = parse_rate(p, value);
    } else if (key == "duplicate_rate") {
      bundle.schedule.duplicate_rate = parse_rate(p, value);
    } else if (key == "delay_rate") {
      bundle.schedule.delay_rate = parse_rate(p, value);
    } else if (key == "delay_rounds") {
      bundle.schedule.delay_rounds = parse_u64(p, value);
    } else if (key == "node_fault") {
      std::istringstream fields(value);
      NodeFaultSpec f;
      fields >> f.node >> f.round >> f.duration;
      DMIS_CHECK(!fields.fail(), "repro bundle line "
                                     << p.lineno << ": bad node_fault '"
                                     << value << "'");
      bundle.schedule.node_faults.push_back(f);
    } else if (key == "failure_kind") {
      bundle.failure.kind = value;
    } else if (key == "failure_round") {
      bundle.failure.round = parse_u64(p, value);
    } else if (key == "failure_node") {
      bundle.failure.node = parse_i64(p, value);
    } else if (key == "failure_witness") {
      bundle.failure.witness = parse_i64(p, value);
    } else if (key == "failure_detail") {
      bundle.failure.detail = value;
    } else if (key == "graph") {
      std::istringstream fields(value);
      fields >> graph_nodes >> graph_edges;
      DMIS_CHECK(!fields.fail(), "repro bundle line "
                                     << p.lineno << ": bad graph header '"
                                     << value << "'");
      saw_graph = true;
    } else {
      DMIS_CHECK(false, "repro bundle line " << p.lineno << ": unknown key '"
                                             << key << "'");
    }
  }
  DMIS_CHECK(saw_graph, "repro bundle has no graph section");
  DMIS_CHECK(!bundle.algorithm.empty(), "repro bundle has no algorithm");
  std::vector<Edge> edges;
  edges.reserve(graph_edges);
  for (std::uint64_t i = 0; i < graph_edges; ++i) {
    DMIS_CHECK(p.next(), "repro bundle graph truncated: expected "
                             << graph_edges << " edges, got " << i);
    std::istringstream fields(p.line);
    NodeId u = 0;
    NodeId v = 0;
    fields >> u >> v;
    DMIS_CHECK(!fields.fail(), "repro bundle line " << p.lineno
                                                    << ": bad edge '"
                                                    << p.line << "'");
    edges.push_back({u, v});
  }
  bundle.graph = graph_from_edges(graph_nodes, edges);
  return bundle;
}

void save_repro_bundle(const std::string& path, const ReproBundle& bundle) {
  std::ofstream os(path);
  DMIS_CHECK(os.good(), "cannot open '" << path << "' for writing");
  write_repro_bundle(os, bundle);
  DMIS_CHECK(os.good(), "failed writing repro bundle to '" << path << "'");
}

ReproBundle load_repro_bundle(const std::string& path) {
  std::ifstream is(path);
  DMIS_CHECK(is.good(), "cannot open repro bundle '" << path << "'");
  return read_repro_bundle(is);
}

}  // namespace dmis
