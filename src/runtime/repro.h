// Crash-repro bundles: everything needed to replay a failing faulted run.
//
// When an execution under an active fault plane fails — the invariant
// auditor records a violation, or a corrupted payload trips a decoder's
// PreconditionError — the full cause is already deterministic: the graph,
// the algorithm, its seed, the thread count, and the fault schedule pin the
// execution bit-for-bit (see the determinism contract in runtime/faults.h).
// A ReproBundle captures exactly those inputs plus a structured record of
// the observed failure, in a line-oriented text format (`dmis-repro-bundle
// v1`) that round-trips exactly: integers in decimal, rates at 17
// significant digits (enough to reproduce any double bit-for-bit).
//
// `dmis_cli replay --bundle <file>` re-runs the bundle and verifies the
// recorded failure reproduces; tests/data/ keeps a checked-in bundle as a
// CI regression gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "runtime/faults.h"

namespace dmis {

/// Structured record of the failure the bundle reproduces. Comparison is by
/// field, never by formatted message text (which may embed build paths).
struct RecordedFailure {
  /// "invariant:<name>" (auditor kinds), "precondition" (decode/check
  /// failure), "assert" (internal cross-check), or "none" (clean run
  /// recorded for regression baselines).
  std::string kind = "none";
  std::uint64_t round = 0;
  std::int64_t node = -1;
  std::int64_t witness = -1;
  std::string detail;

  friend bool operator==(const RecordedFailure&,
                         const RecordedFailure&) = default;
};

struct ReproBundle {
  std::string algorithm;  ///< registry name (see mis/registry.h)
  std::uint64_t seed = 0;
  int threads = 1;
  std::uint64_t max_rounds = 0;  ///< algorithm iterations cap
  /// Canonical algorithm-options JSON (mis/registry.h); empty means "all
  /// defaults" — v1 bundles written before typed options parse as empty.
  std::string options_json;
  FaultSchedule schedule;
  Graph graph;
  RecordedFailure failure;
};

void write_repro_bundle(std::ostream& os, const ReproBundle& bundle);
/// Parses a bundle; throws PreconditionError on malformed input.
ReproBundle read_repro_bundle(std::istream& is);

void save_repro_bundle(const std::string& path, const ReproBundle& bundle);
ReproBundle load_repro_bundle(const std::string& path);

}  // namespace dmis
