#include "svc/cache.h"

#include "svc/store.h"
#include "util/check.h"

namespace dmis::svc {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  DMIS_CHECK(shards >= 1, "ResultCache needs at least one shard");
  const std::size_t per_shard =
      capacity < shards ? 1 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

std::optional<std::string> ResultCache::get(const JobKey& key) {
  {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const std::string* value = shard.lru.get(key)) {
      ++shard.hits;
      return *value;
    }
    ++shard.misses;
  }
  // Disk tier probe outside the shard lock — store I/O must not serialize
  // unrelated RAM lookups on this shard.
  if (store_ != nullptr) {
    if (std::optional<std::string> disk = store_->get(key)) {
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      insert_ram(key, *disk);
      return disk;
    }
  }
  return std::nullopt;
}

void ResultCache::insert_ram(const JobKey& key, const std::string& canonical) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const std::string* existing = shard.lru.peek(key)) {
    shard.bytes -= existing->size();
  } else if (shard.lru.size() >= shard.lru.capacity()) {
    // Full and inserting a new key: the LRU entry is about to go.
    shard.bytes -= shard.lru.lru_entry()->second.size();
  }
  shard.evictions += shard.lru.put(key, canonical);
  ++shard.insertions;
  shard.bytes += canonical.size();
}

void ResultCache::put(const JobKey& key, const std::string& canonical) {
  insert_ram(key, canonical);
  if (store_ != nullptr) {
    // Write-through. A false return is an I/O failure the store already
    // counted and reported; serving continues from RAM.
    store_->put(key, canonical);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  out.store_hits = store_hits_.load(std::memory_order_relaxed);
  return out;
}

TextTable ResultCache::stats_table() const {
  const CacheStats s = stats();
  TextTable table({"metric", "value"});
  table.row().cell("cache_hits").cell(s.hits);
  table.row().cell("cache_misses").cell(s.misses);
  table.row().cell("cache_hit_rate").cell(s.hit_rate());
  table.row().cell("cache_insertions").cell(s.insertions);
  table.row().cell("cache_evictions").cell(s.evictions);
  table.row().cell("cache_entries").cell(s.entries);
  table.row().cell("cache_bytes").cell(s.bytes);
  table.row().cell("cache_store_hits").cell(s.store_hits);
  return table;
}

}  // namespace dmis::svc
