// Result cache of the batch execution service.
//
// Sharded LRU over canonical result strings, keyed by JobKey. Correctness
// is inherited from determinism (svc/job.h): a spec hashes to a key, the
// key's value is the canonical result bytes of that spec, so a hit returns
// exactly what re-executing would — the cache can change latency, never
// answers. Sharding bounds lock contention: a key picks its shard by hi
// bits, each shard holds its own mutex, LRU list, and counters; stats are
// aggregated on read and surfaced through the repository's TextTable
// convention like every other stats source.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "svc/job.h"
#include "util/lru.h"
#include "util/table.h"

namespace dmis::svc {

class ResultStore;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;       ///< sum of cached canonical-result sizes
  std::uint64_t store_hits = 0;  ///< RAM misses satisfied by the disk tier

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

class ResultCache {
 public:
  /// `capacity` total entries, split evenly across `shards` (each shard gets
  /// at least one slot, so the effective total is >= shards).
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  std::size_t shard_count() const { return shards_.size(); }

  /// Attaches the durable disk tier (svc/store.h). With a store attached,
  /// get() falls back to a digest-verified store probe on RAM miss and
  /// repopulates the LRU on a disk hit; put() writes through. The store
  /// must outlive the cache. Pass nullptr to detach.
  void attach_store(ResultStore* store) { store_ = store; }
  ResultStore* store() const { return store_; }

  /// Canonical result bytes for `key`, or nullopt (counts a hit/miss; a
  /// disk-tier hit counts a RAM miss plus a store hit).
  std::optional<std::string> get(const JobKey& key);

  /// Inserts (or refreshes) `key`, writing through to the attached store
  /// (if any). Only kOk results belong here — the service enforces that;
  /// the cache itself is value-agnostic.
  void put(const JobKey& key, const std::string& canonical);

  /// Aggregated over shards.
  CacheStats stats() const;

  /// Counters as a stats table (columns: metric, value) — the same surface
  /// the CLI and benches print for cost accounting.
  TextTable stats_table() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    LruCache<JobKey, std::string, JobKeyHash> lru;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;

    explicit Shard(std::size_t capacity) : lru(capacity) {}
  };

  Shard& shard_of(const JobKey& key) {
    return *shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }

  /// RAM insert only — shared by put() and the read-through repopulate,
  /// which must not write back what it just read from disk.
  void insert_ram(const JobKey& key, const std::string& canonical);

  std::vector<std::unique_ptr<Shard>> shards_;
  ResultStore* store_ = nullptr;
  std::atomic<std::uint64_t> store_hits_{0};
};

}  // namespace dmis::svc
