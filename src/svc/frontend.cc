#include "svc/frontend.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/dmg.h"
#include "svc/net/graph_store.h"
#include "svc/net/line_chunker.h"
#include "util/check.h"
#include "util/json.h"

namespace dmis::svc {
namespace {

// Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
// positive on small-literal + to_string concatenation.
std::string anon_id(std::uint64_t seq) {
  std::string id = "#";
  id += std::to_string(seq);
  return id;
}

std::string id_from(const json::Value& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_number()) return std::to_string(v.as_u64());
  DMIS_CHECK(false, "request id must be a string or an unsigned integer");
  return {};
}

double rate_field(const json::Value& obj, const char* name) {
  const json::Value* v = obj.find(name);
  if (v == nullptr) return 0.0;
  const double rate = v->as_double();
  DMIS_CHECK(rate >= 0.0 && rate <= 1.0,
             "fault rate '" << name << "' out of [0,1]: " << rate);
  return rate;
}

void parse_node_faults(const json::Value& arr, bool is_stall,
                       FaultSchedule& schedule) {
  for (const json::Value& entry : arr.as_array()) {
    const auto& fields = entry.as_array();
    DMIS_CHECK(fields.size() == (is_stall ? 3u : 2u),
               (is_stall ? "stall entries are [node,round,duration]"
                         : "crash entries are [node,round]"));
    NodeFaultSpec spec;
    spec.node = static_cast<NodeId>(fields[0].as_u64());
    spec.round = fields[1].as_u64();
    if (is_stall) {
      spec.duration = fields[2].as_u64();
      DMIS_CHECK(spec.duration > 0, "stall duration must be > 0");
    }
    schedule.node_faults.push_back(spec);
  }
}

/// Resolves the request's graph source. "graph_file" accepts either text
/// edge lists or .dmg containers (sniffed by magic): a .dmg maps in O(1)
/// and its header digest rides into the spec as the cached content digest.
/// "graph_digest" resolves through the digest-addressed content directory.
/// When set, `source` receives the provenance string (JobSpec::graph_source;
/// never part of the job key, so every source of the same bytes shares one
/// cache line).
Graph graph_from_request(const json::Value& req, bool verify_digest,
                         const std::string& graphs_dir, std::string* source) {
  const json::Value* file = req.find("graph_file");
  const json::Value* edges = req.find("edges");
  const json::Value* digest = req.find("graph_digest");
  const int sources = (file != nullptr) + (edges != nullptr) +
                      (digest != nullptr);
  DMIS_CHECK(sources == 1,
             "request needs exactly one graph source: "
             "\"graph_file\", \"graph_digest\" or \"n\"+\"edges\"");
  if (digest != nullptr) {
    DMIS_CHECK(!graphs_dir.empty(),
               "\"graph_digest\" needs a graph directory "
               "(serve with --graphs-dir)");
    if (source != nullptr) *source = "digest:" + digest->as_string();
    return net::resolve_graph(graphs_dir, digest->as_string(), verify_digest);
  }
  if (file != nullptr) {
    if (source != nullptr) *source = file->as_string();
    return load_graph_file(file->as_string(), verify_digest);
  }
  const json::Value* n = req.find("n");
  DMIS_CHECK(n != nullptr, "inline \"edges\" need a node count \"n\"");
  GraphBuilder builder(static_cast<NodeId>(n->as_u64()));
  for (const json::Value& e : edges->as_array()) {
    const auto& pair = e.as_array();
    DMIS_CHECK(pair.size() == 2, "edges are [u,v] pairs");
    builder.add_edge(static_cast<NodeId>(pair[0].as_u64()),
                     static_cast<NodeId>(pair[1].as_u64()));
  }
  return std::move(builder).build();
}

std::string escape_id(const std::string& id) {
  return json::Value::string(id).dump();
}

std::string oversized_line_error(const std::string& id,
                                 std::size_t max_line_bytes) {
  return format_error_response(
      id, "request line exceeds " + std::to_string(max_line_bytes) + " bytes");
}

/// Repro-bundle write outcome: `path` on success, `error` when the bundle
/// could not be written (non-fatal — the response still carries the
/// result, plus a "bundle_error" field instead of a "bundle" path).
struct BundleOutcome {
  std::string path;
  std::string error;
};

/// The response line. `canonical` is embedded verbatim: the byte-identity
/// guarantee of the result object is end-to-end, parser to output.
std::string format_response(const std::string& id, const Completion& c,
                            bool include_timing,
                            const BundleOutcome& bundle) {
  std::ostringstream oss;
  oss << "{\"id\":" << escape_id(id)
      << ",\"cached\":" << (c.cache_hit ? "true" : "false")
      << ",\"result\":" << c.canonical;
  if (c.status == JobStatus::kEnvError) oss << ",\"retryable\":true";
  if (!bundle.path.empty()) {
    oss << ",\"bundle\":" << json::Value::string(bundle.path).dump();
  }
  if (!bundle.error.empty()) {
    oss << ",\"bundle_error\":" << json::Value::string(bundle.error).dump();
  }
  if (include_timing) {
    oss << ",\"elapsed_us\":"
        << static_cast<std::uint64_t>(c.elapsed_s * 1e6);
  }
  oss << "}";
  return oss.str();
}

std::string format_stats(const std::string& id,
                         const ExecutionService& service) {
  const CacheStats c = service.cache().stats();
  const SchedulerStats s = service.scheduler().stats();
  const LatencyHistogram& l = service.latency();
  std::ostringstream oss;
  oss << "{\"id\":" << escape_id(id) << ",\"stats\":{"
      << "\"cache\":{\"hits\":" << c.hits << ",\"misses\":" << c.misses
      << ",\"insertions\":" << c.insertions
      << ",\"evictions\":" << c.evictions << ",\"entries\":" << c.entries
      << ",\"bytes\":" << c.bytes
      << ",\"store_hits\":" << c.store_hits << "},"
      << "\"scheduler\":{\"submitted\":" << s.submitted
      << ",\"executed\":" << s.executed << ",\"completed\":" << s.completed
      << ",\"cancelled\":" << s.cancelled
      << ",\"deadline_expired\":" << s.deadline_expired
      << ",\"rejected\":" << s.rejected << ",\"retries\":" << s.retries
      << ",\"env_errors\":" << s.env_errors
      << ",\"max_queue_depth\":" << s.max_queue_depth << "},"
      << "\"latency\":{\"count\":" << l.count()
      << ",\"p50_us\":" << l.percentile_us(0.50)
      << ",\"p90_us\":" << l.percentile_us(0.90)
      << ",\"p99_us\":" << l.percentile_us(0.99) << "}";
  if (const ResultStore* store = service.store()) {
    const StoreStats st = store->stats();
    oss << ",\"store\":{\"segments\":" << st.segments
        << ",\"records\":" << st.records
        << ",\"recovered\":" << st.recovered_records
        << ",\"torn_bytes_truncated\":" << st.torn_bytes_truncated
        << ",\"corrupt_skipped\":" << st.corrupt_records_skipped
        << ",\"appends\":" << st.appends
        << ",\"read_hits\":" << st.read_hits << "}";
  }
  oss << "}}";
  return oss.str();
}

/// Writes the bundle once. A write failure is degraded service, not failed
/// service: the outcome carries the error text for the response's
/// "bundle_error" field and serving continues.
BundleOutcome maybe_write_bundle(const FrontEndOptions& options,
                                 const JobKey& key,
                                 const std::string& bundle_text) {
  if (options.bundle_dir.empty() || bundle_text.empty()) return {};
  BundleOutcome out;
  out.path = options.bundle_dir + "/" + key.hex() + ".bundle";
  std::ofstream os(out.path, std::ios::binary);
  if (os.good()) {
    os << bundle_text;
    os.flush();
  }
  if (!os.good()) {
    out.error = "cannot write bundle file " + out.path;
    out.path.clear();
  }
  return out;
}

volatile std::sig_atomic_t g_drain_requested = 0;

void drain_signal_handler(int) { g_drain_requested = 1; }

}  // namespace

void install_drain_handlers() {
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked accept/read must EINTR out
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool drain_requested() { return g_drain_requested != 0; }

void reset_drain_flag() { g_drain_requested = 0; }

std::string format_error_response(const std::string& id,
                                  const std::string& message,
                                  bool retryable) {
  std::ostringstream oss;
  oss << "{\"id\":" << escape_id(id)
      << ",\"error\":" << json::Value::string(message).dump();
  // The taxonomy bit for clients: environmental failures may heal, so the
  // same request is worth resubmitting; deterministic ones never are.
  if (retryable) oss << ",\"retryable\":true";
  oss << "}";
  return oss.str();
}

std::string service_stats_json(const ExecutionService& service,
                               const std::string& id) {
  return format_stats(id, service);
}

Request parse_request(const std::string& line, std::uint64_t seq,
                      bool verify_graph_digest, const std::string& graphs_dir) {
  const json::Value req = json::parse(line);
  DMIS_CHECK(req.is_object(), "request must be a JSON object");

  Request out;
  if (const json::Value* id = req.find("id")) {
    out.id = id_from(*id);
  } else {
    out.id = anon_id(seq);
  }
  if (const json::Value* cmd = req.find("cmd")) {
    DMIS_CHECK(cmd->as_string() == "stats",
               "unknown cmd '" << cmd->as_string() << "' (only \"stats\")");
    out.stats = true;
    return out;
  }

  const json::Value* algorithm = req.find("algorithm");
  DMIS_CHECK(algorithm != nullptr, "request needs an \"algorithm\"");
  out.spec.algorithm = algorithm->as_string();
  if (const json::Value* seed = req.find("seed")) {
    out.spec.seed = seed->as_u64();
  }
  if (const json::Value* mr = req.find("max_rounds")) {
    out.spec.max_rounds = mr->as_u64();
  }
  if (const json::Value* opts = req.find("options")) {
    DMIS_CHECK(opts->is_object(), "\"options\" must be an object");
    // Stored as text; admission validates it against the algorithm's option
    // schema and the job key folds the canonical re-encoding.
    out.spec.options_json = opts->dump();
  }
  out.spec.graph = graph_from_request(req, verify_graph_digest, graphs_dir,
                                      &out.spec.graph_source);

  if (const json::Value* faults = req.find("faults")) {
    DMIS_CHECK(faults->is_object(), "\"faults\" must be an object");
    FaultSchedule& schedule = out.spec.faults;
    schedule.drop_rate = rate_field(*faults, "drop");
    schedule.corrupt_rate = rate_field(*faults, "corrupt");
    schedule.duplicate_rate = rate_field(*faults, "duplicate");
    schedule.delay_rate = rate_field(*faults, "delay");
    if (const json::Value* dr = faults->find("delay_rounds")) {
      schedule.delay_rounds = dr->as_u64();
    }
    if (const json::Value* crash = faults->find("crash")) {
      parse_node_faults(*crash, /*is_stall=*/false, schedule);
    }
    if (const json::Value* stall = faults->find("stall")) {
      parse_node_faults(*stall, /*is_stall=*/true, schedule);
    }
    if (const json::Value* fs = faults->find("seed")) {
      schedule.seed = fs->as_u64();
    } else {
      schedule.seed = out.spec.seed;  // mirrors the CLI's --fault-seed default
    }
  }

  if (const json::Value* priority = req.find("priority")) {
    const std::optional<JobPriority> parsed =
        job_priority_from_name(priority->as_string());
    DMIS_CHECK(parsed.has_value(),
               "unknown priority '" << priority->as_string()
                                    << "' (interactive|batch|background)");
    out.priority = *parsed;
  }
  if (const json::Value* deadline = req.find("deadline_ms")) {
    const double ms = deadline->as_double();
    DMIS_CHECK(ms >= 0.0, "deadline_ms must be >= 0");
    out.deadline_s = ms / 1e3;
  }
  return out;
}

std::string handle_request_line(ExecutionService& service,
                                const FrontEndOptions& options,
                                const std::string& line, std::uint64_t seq) {
  Request request;
  try {
    request = parse_request(line, seq, options.verify_digest,
                            options.graphs_dir);
  } catch (const EnvironmentError& e) {
    // e.g. an unreadable "graph_file": the request may be fine once the
    // world heals, so clients are told the resubmit is worth it.
    return format_error_response(anon_id(seq), e.what(), /*retryable=*/true);
  } catch (const std::exception& e) {
    return format_error_response(anon_id(seq), e.what());
  }
  if (request.stats) return format_stats(request.id, service);
  const Completion completion = service.run(std::move(request.spec),
                                            request.priority,
                                            request.deadline_s);
  const BundleOutcome bundle =
      maybe_write_bundle(options, completion.key, completion.bundle_text);
  return format_response(request.id, completion, options.include_timing,
                         bundle);
}

std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           ExecutionService& service,
                           const FrontEndOptions& options) {
  std::uint64_t handled = 0;
  net::LineChunker chunker(options.max_line_bytes);
  std::string line;
  char chunk[65536];
  // A drain signal ends the loop at the next request boundary; the request
  // being handled always finishes (handling is synchronous). A blocked
  // peek() interrupted by the un-restarted signal fails and exits too.
  bool saw_eof = false;
  while (!drain_requested()) {
    // Block for one byte, then drain what is already buffered: interactive
    // clients get per-line turnaround, bulk pipes still move in big chunks.
    if (in.peek() == std::char_traits<char>::eof()) {
      saw_eof = true;
      break;
    }
    std::size_t got = 0;
    chunk[got++] = static_cast<char>(in.get());
    const std::streamsize more = in.readsome(
        chunk + got, static_cast<std::streamsize>(sizeof(chunk) - got));
    if (more > 0) got += static_cast<std::size_t>(more);
    chunker.append(chunk, got);
    for (bool draining_lines = true; draining_lines;) {
      switch (chunker.next_line(&line)) {
        case net::LineChunker::Next::kLine:
          if (line.find_first_not_of(" \t\r") == std::string::npos) break;
          ++handled;
          out << handle_request_line(service, options, line, handled) << "\n";
          out.flush();
          break;
        case net::LineChunker::Next::kOversized:
          ++handled;
          out << oversized_line_error(anon_id(handled), options.max_line_bytes)
              << "\n";
          out.flush();
          break;
        case net::LineChunker::Next::kNeedMore:
          draining_lines = false;
          break;
      }
    }
  }
  // Getline semantics at EOF: an unterminated trailing line still answers —
  // but only on a true end of stream. A drain exit (including a signal
  // failing the blocked peek above) may leave a half-received request
  // buffered, and answering that with a parse error would fault a request
  // the client never finished sending.
  if (saw_eof && !drain_requested() && chunker.flush_eof(&line) &&
      line.find_first_not_of(" \t\r") != std::string::npos) {
    ++handled;
    out << handle_request_line(service, options, line, handled) << "\n";
    out.flush();
  }
  return handled;
}

std::uint64_t run_batch(std::istream& in, std::ostream& out,
                        ExecutionService& service,
                        const FrontEndOptions& options) {
  FrontEndOptions batch_options = options;
  batch_options.include_timing = false;  // bit-identical output contract

  // Parse the whole drain first; malformed lines respond in place.
  struct Slot {
    std::string id;
    std::string error;   // set: emit an error response
    bool stats = false;
    std::size_t unique_index = 0;
    bool first_occurrence = false;
  };
  std::vector<Slot> slots;
  std::vector<Request> unique;  // first occurrence of each distinct JobKey
  std::unordered_map<JobKey, std::size_t, JobKeyHash> seen;

  std::string line;
  std::uint64_t seq = 0;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++seq;
    Slot slot;
    try {
      Request request = parse_request(line, seq, batch_options.verify_digest,
                                      batch_options.graphs_dir);
      slot.id = request.id;
      if (request.stats) {
        slot.stats = true;
      } else {
        const JobKey key = job_key(request.spec);
        const auto [it, inserted] = seen.emplace(key, unique.size());
        slot.unique_index = it->second;
        slot.first_occurrence = inserted;
        if (inserted) unique.push_back(std::move(request));
      }
    } catch (const std::exception& e) {
      slot.id = anon_id(seq);
      slot.error = e.what();
    }
    slots.push_back(std::move(slot));
  }

  // Execute every distinct job once. Submission order is request order, so
  // priority classes still shape who runs first; results are collected in
  // the same deterministic order regardless of worker interleaving.
  std::vector<ExecutionService::Pending> pending;
  pending.reserve(unique.size());
  for (Request& request : unique) {
    pending.push_back(service.submit(std::move(request.spec),
                                     request.priority, request.deadline_s));
  }
  std::vector<Completion> completions;
  completions.reserve(pending.size());
  for (ExecutionService::Pending& p : pending) {
    completions.push_back(service.wait(p));
  }
  std::vector<BundleOutcome> bundles(completions.size());
  for (std::size_t i = 0; i < completions.size(); ++i) {
    bundles[i] = maybe_write_bundle(batch_options, completions[i].key,
                                    completions[i].bundle_text);
  }

  // Emit in request order; duplicates of an earlier request are cache hits
  // by definition (deterministic, not a race against worker timing).
  std::uint64_t handled = 0;
  for (const Slot& slot : slots) {
    ++handled;
    if (!slot.error.empty()) {
      out << format_error_response(slot.id, slot.error) << "\n";
      continue;
    }
    if (slot.stats) {
      out << format_stats(slot.id, service) << "\n";
      continue;
    }
    Completion c = completions[slot.unique_index];
    c.cache_hit = c.cache_hit || !slot.first_occurrence;
    out << format_response(slot.id, c, /*include_timing=*/false,
                           bundles[slot.unique_index])
        << "\n";
  }
  out.flush();
  return handled;
}

int serve_unix_socket(const std::string& path, ExecutionService& service,
                      const FrontEndOptions& options) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 4) != 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }

  std::uint64_t seq = 0;
  while (!drain_requested()) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // signal delivery: re-check the drain flag
      std::perror("accept");
      ::close(listener);
      ::unlink(path.c_str());
      return 1;
    }
    // One serve-style session per connection: read lines, answer in order.
    // The same LineChunker as the stdin and TCP transports does the partial
    // read reassembly (and oversized-line rejection with resync).
    net::LineChunker chunker(options.max_line_bytes);
    char chunk[65536];
    std::string line;
    bool open = true;
    const auto send_all = [&](const std::string& response) {
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n = ::send(client, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          open = false;
          return;
        }
        sent += static_cast<std::size_t>(n);
      }
    };
    const auto answer_line = [&] {
      if (line.find_first_not_of(" \t\r") == std::string::npos) return;
      ++seq;
      send_all(handle_request_line(service, options, line, seq) + "\n");
    };
    bool at_eof = false;
    while (open && !at_eof && !drain_requested()) {
      const ssize_t got = ::read(client, chunk, sizeof(chunk));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) {
        at_eof = true;
        break;
      }
      chunker.append(chunk, static_cast<std::size_t>(got));
      for (bool draining_lines = true; open && draining_lines;) {
        switch (chunker.next_line(&line)) {
          case net::LineChunker::Next::kLine:
            answer_line();
            break;
          case net::LineChunker::Next::kOversized:
            ++seq;
            send_all(oversized_line_error(anon_id(seq),
                                          options.max_line_bytes) +
                     "\n");
            break;
          case net::LineChunker::Next::kNeedMore:
            draining_lines = false;
            break;
        }
      }
    }
    // Half-close: answer an unterminated trailing line (getline semantics).
    if (open && at_eof && chunker.flush_eof(&line)) answer_line();
    ::close(client);
  }
  // Graceful drain: stop listening and remove the path so an immediate
  // restart binds without EADDRINUSE-style failures.
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace dmis::svc
