// Line-delimited JSON front end: `dmis serve` and `dmis batch`.
//
// One request per line, one response per line, in order. Two modes share
// the protocol but differ in scheduling discipline:
//   * serve_stream — sequential request/response over a stream (stdin or a
//     Unix socket connection): each request runs through the service before
//     the next is read, so cache hits/misses are a pure function of the
//     request sequence and responses may carry timing.
//   * run_batch — drains a whole request file: structurally identical
//     requests are deduplicated by JobKey up front (first occurrence
//     executes, the rest are reported as cache hits), unique jobs run
//     concurrently on the scheduler, and responses are emitted in request
//     order with no timing fields — batch output is bit-identical at any
//     worker/thread count.
//
// Request object (all fields but "algorithm" + graph source optional):
//   {"id":"r1","algorithm":"luby","seed":7,"graph_file":"g.el"}
//   {"id":"r2","algorithm":"luby","seed":7,"graph_file":"g.dmg"}
// "graph_file" accepts a text edge list or a .dmg container (graph/dmg.h,
// sniffed by magic). A .dmg maps in O(1) and its precomputed header digest
// feeds the job key directly, so digest-keyed requests dedup/cache without
// the service ever rehashing — or even reading — the arrays.
//   {"id":"r3","algorithm":"luby","seed":7,"graph_digest":"3c5f..."}
// "graph_digest" resolves the graph from the digest-addressed content
// directory (svc/net/graph_store.h, FrontEndOptions::graphs_dir): clients
// upload once with `dmis graphs put` and then name the graph by its 16-hex
// content digest — the sharded deployment's way to keep multi-megabyte
// graphs out of every request line. An unknown digest is a deterministic
// error (upload first), not a retryable one.
//   {"id":2,"algorithm":"congest","seed":1,"n":4,"edges":[[0,1],[2,3]],
//    "priority":"interactive","deadline_ms":500,"max_rounds":0,
//    "options":{"phase_length":6},
//    "faults":{"seed":9,"drop":0.01,"crash":[[3,2]],"stall":[[1,4,2]]}}
// "algorithm" is any name `dmis list` prints; "options" is that algorithm's
// typed option object (see `dmis solve <algorithm> --help`).
//   {"cmd":"stats"}                      — serving counters snapshot
// Response:
//   {"id":"r1","cached":false,"result":{...canonical...},"elapsed_us":N}
//   {"id":"r1","error":"message"}        — malformed request (stream keeps going)
// Failed jobs with a bundle directory configured also carry
// "bundle":"<dir>/<jobkey>.bundle" pointing at a replayable repro bundle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "svc/service.h"

namespace dmis::svc {

struct FrontEndOptions {
  /// Attach "elapsed_us" to responses (serve). Batch forces this off to keep
  /// its output bit-identical across thread counts.
  bool include_timing = true;
  /// When non-empty, failed jobs write their repro bundle to
  /// `<bundle_dir>/<jobkey>.bundle` and reference it in the response.
  std::string bundle_dir;
  /// Recompute and check the stored content digest (plus offsets/adjacency
  /// structure) of every .dmg referenced by a "graph_file" field — a full
  /// scan, trading the O(1) load away for end-to-end integrity.
  bool verify_digest = false;
  /// Digest-addressed graph directory backing "graph_digest" requests
  /// (svc/net/graph_store.h). Empty: such requests are rejected.
  std::string graphs_dir;
  /// Longest accepted request line; longer lines are answered with an error
  /// and the stream resyncs at the next newline (LineChunker semantics).
  std::size_t max_line_bytes = 8u << 20;
};

/// One parsed request line.
struct Request {
  std::string id;
  bool stats = false;  ///< {"cmd":"stats"}
  JobSpec spec;
  JobPriority priority = JobPriority::kBatch;
  std::optional<double> deadline_s;
};

/// Parses one request line; throws PreconditionError on malformed input.
/// `seq` names anonymous requests ("#<seq>"). `verify_graph_digest` applies
/// to .dmg "graph_file" sources (FrontEndOptions::verify_digest);
/// `graphs_dir` backs "graph_digest" sources (empty rejects them).
Request parse_request(const std::string& line, std::uint64_t seq,
                      bool verify_graph_digest = false,
                      const std::string& graphs_dir = {});

/// One {"id":...,"error":...} response line, with the taxonomy bit
/// ("retryable":true) when the failure is environmental. Shared by every
/// front end and the router (which answers some errors without a worker).
std::string format_error_response(const std::string& id,
                                  const std::string& message,
                                  bool retryable = false);

/// Handles one request line end-to-end (parse, execute/lookup, format).
/// Parse failures become {"error": ...} responses, never exceptions.
std::string handle_request_line(ExecutionService& service,
                                const FrontEndOptions& options,
                                const std::string& line, std::uint64_t seq);

/// Sequential request/response loop until EOF. Returns the number of
/// requests handled.
std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           ExecutionService& service,
                           const FrontEndOptions& options);

/// Batch drain with JobKey deduplication (see file comment). Returns the
/// number of requests handled.
std::uint64_t run_batch(std::istream& in, std::ostream& out,
                        ExecutionService& service,
                        const FrontEndOptions& options);

/// Accept loop on a Unix stream socket: one client at a time, each
/// connection a serve_stream-style session. Runs until EOF-equivalent
/// shutdown or a requested drain (install_drain_handlers); on drain the
/// in-flight request finishes, the listening socket is closed and the path
/// unlinked so an immediate restart can bind again. Returns nonzero on
/// setup failure, zero on graceful shutdown.
int serve_unix_socket(const std::string& path, ExecutionService& service,
                      const FrontEndOptions& options);

/// Installs SIGINT/SIGTERM handlers that request a graceful drain instead
/// of killing the process: serve loops finish the in-flight request, stop
/// accepting, and return, after which the caller seals the store and emits
/// a final stats line. Deliberately without SA_RESTART, so blocking
/// accept(2)/read(2) calls are interrupted (EINTR) and re-check the flag.
void install_drain_handlers();

/// True once a drain signal has arrived (async-signal-safe flag).
bool drain_requested();

/// Clears the drain flag so another serve loop can run in the same process
/// (in-process transport tests; a CLI that serves in phases).
void reset_drain_flag();

/// The serving-counters JSON emitted for {"cmd":"stats"} requests and as
/// the final stats line on drain, as one response line with the given id.
std::string service_stats_json(const ExecutionService& service,
                               const std::string& id = "drain");

}  // namespace dmis::svc
