#include "svc/job.h"

#include <bit>
#include <cstdio>
#include <sstream>
#include <vector>

#include "mis/registry.h"
#include "mis/replay.h"
#include "rng/mix.h"
#include "runtime/observer.h"
#include "runtime/repro.h"
#include "util/check.h"
#include "util/json.h"

namespace dmis::svc {
namespace {

// Domain-separation tags for the two independent key folds.
constexpr std::uint64_t kKeyTagHi = 0x6a6f626b65792d68ULL;  // "jobkey-h"
constexpr std::uint64_t kKeyTagLo = 0x6a6f626b65792d6cULL;  // "jobkey-l"
// Seed of the graph content digest folded into job keys: the shared
// graph-layer seed (graph/graph.h), which is also what a .dmg header
// precomputes — file-backed specs fold their key from the cached header
// digest without rehashing the arrays.
constexpr std::uint64_t kGraphDigestSeed = kGraphContentDigestSeed;

class KeyFolder {
 public:
  explicit KeyFolder(std::uint64_t tag) : h_(mix64(tag)) {}
  void add(std::uint64_t word) { h_ = mix64(h_, word); }
  void add_rate(double rate) { add(std::bit_cast<std::uint64_t>(rate)); }
  void add_string(const std::string& s) {
    add(s.size());
    std::uint64_t word = 0;
    int filled = 0;
    for (const char c : s) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
              << (8 * filled);
      if (++filled == 8) {
        add(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled != 0) add(word);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_;
};

/// The options bytes that enter the job key: the *canonical* encoding
/// (every declared field, declaration order, defaults included), so an
/// empty options object and explicitly-spelled defaults are the same
/// computation and share a cache line. Unknown algorithms and unparsable
/// options fold the raw text — those specs are rejected, never cached.
std::string canonical_options(const JobSpec& spec) {
  const AlgorithmDescriptor* descriptor =
      AlgorithmRegistry::instance().find(spec.algorithm);
  if (descriptor == nullptr) return spec.options_json;
  try {
    return AlgoOptions::parse(*descriptor, spec.options_json)
        .canonical_json();
  } catch (const PreconditionError&) {
    return spec.options_json;
  }
}

void fold_spec(KeyFolder& f, const JobSpec& spec) {
  f.add(spec.graph.content_digest(kGraphDigestSeed));
  f.add_string(spec.algorithm);
  f.add(spec.seed);
  f.add(spec.max_rounds);
  f.add_string(canonical_options(spec));
  // Normalized fault schedule: an empty schedule contributes a constant, so
  // its (execution-irrelevant) seed cannot split cache keys.
  if (spec.faults.empty()) {
    f.add(0);
    return;
  }
  f.add(1);
  f.add(spec.faults.seed);
  f.add_rate(spec.faults.drop_rate);
  f.add_rate(spec.faults.corrupt_rate);
  f.add_rate(spec.faults.duplicate_rate);
  f.add_rate(spec.faults.delay_rate);
  f.add(spec.faults.delay_rounds);
  f.add(spec.faults.node_faults.size());
  for (const NodeFaultSpec& nf : spec.faults.node_faults) {
    f.add(nf.node);
    f.add(nf.round);
    f.add(nf.duration);
  }
}

/// Hex mask of the MIS membership: nibble i holds nodes 4i..4i+3 (node
/// 4i + j on bit j), lowercase, ceil(n/4) digits. Compact enough to embed in
/// a response while still being a full certificate.
std::string mask_to_hex(const std::vector<char>& mask) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve((mask.size() + 3) / 4);
  for (std::size_t i = 0; i < mask.size(); i += 4) {
    int nibble = 0;
    for (std::size_t j = 0; j < 4 && i + j < mask.size(); ++j) {
      if (mask[i + j] != 0) nibble |= 1 << j;
    }
    out.push_back(digits[nibble]);
  }
  return out;
}

/// The canonical result JSON: field set and order are fixed, every value is
/// a pure function of the spec — this exact byte string is what the result
/// cache stores and what responses embed verbatim.
std::string canonical_json(const JobSpec& spec, const AlgoOptions& options,
                           const FaultRunResult& r, JobStatus status) {
  json::Value o = json::Value::object();
  o.set("status", json::Value::string(job_status_name(status)));
  o.set("algorithm", json::Value::string(spec.algorithm));
  o.set("seed", json::Value::number(spec.seed));
  o.set("max_rounds", json::Value::number(spec.max_rounds));
  o.set("options", options.to_json());
  o.set("digest",
        json::Value::number(spec.graph.content_digest(kGraphDigestSeed)));
  o.set("n", json::Value::number(std::uint64_t{spec.graph.node_count()}));
  o.set("m", json::Value::number(spec.graph.edge_count()));
  o.set("mis_size", json::Value::number(r.run.mis_size()));
  o.set("undecided", json::Value::number(r.run.undecided_count()));
  o.set("rounds", json::Value::number(r.run.rounds));
  o.set("messages", json::Value::number(r.run.costs.messages));
  o.set("bits", json::Value::number(r.run.costs.bits));
  o.set("beeps", json::Value::number(r.run.costs.beeps));
  o.set("retries", json::Value::number(r.retries));
  o.set("violations", json::Value::number(r.total_violations));
  o.set("dropped", json::Value::number(r.fault_stats.dropped));
  o.set("corrupted", json::Value::number(r.fault_stats.corrupted));
  o.set("duplicated", json::Value::number(r.fault_stats.duplicated));
  o.set("delayed", json::Value::number(r.fault_stats.delayed));
  o.set("failure", json::Value::string(r.failure.kind));
  if (r.failed()) {
    o.set("failure_round", json::Value::number(r.failure.round));
    o.set("failure_node", json::Value::number(r.failure.node));
    o.set("failure_witness", json::Value::number(r.failure.witness));
  }
  o.set("mis", json::Value::string(mask_to_hex(r.run.in_mis)));
  return o.dump();
}

std::string minimal_json(const JobSpec& spec, JobStatus status,
                         const std::string& reason) {
  json::Value o = json::Value::object();
  o.set("status", json::Value::string(job_status_name(status)));
  o.set("algorithm", json::Value::string(spec.algorithm));
  o.set("seed", json::Value::number(spec.seed));
  o.set("reason", json::Value::string(reason));
  return o.dump();
}

/// Throws JobCancelledError at the next round boundary once the token
/// expires — the cooperative preemption point of every engine.
class CancelObserver final : public RoundObserver {
 public:
  explicit CancelObserver(const CancelToken* token) : token_(token) {}

  void on_round_begin(const RoundContext&) override { check(); }
  void on_phase_marker(const PhaseMarker&, const RoundContext&) override {
    check();
  }

 private:
  void check() const {
    const CancelToken::Reason reason = token_->reason();
    if (reason != CancelToken::Reason::kNone) {
      throw JobCancelledError(reason);
    }
  }
  const CancelToken* token_;
};

}  // namespace

std::string JobKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

JobKey job_key(const JobSpec& spec) {
  KeyFolder hi(kKeyTagHi);
  KeyFolder lo(kKeyTagLo);
  fold_spec(hi, spec);
  fold_spec(lo, spec);
  return {hi.value(), lo.value()};
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kEnvError: return "env_error";
  }
  return "?";
}

void CancelToken::set_deadline_after(double seconds) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  const double budget_ns = seconds <= 0.0 ? 0.0 : seconds * 1e9;
  deadline_ns_.store(now_ns + static_cast<std::int64_t>(budget_ns),
                     std::memory_order_release);
}

CancelToken::Reason CancelToken::reason() const {
  if (cancelled_.load(std::memory_order_acquire)) return Reason::kCancelled;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  if (now_ns >= deadline_ns_.load(std::memory_order_acquire)) {
    return Reason::kDeadline;
  }
  return Reason::kNone;
}

namespace {
std::atomic<int> g_inject_env_failures{0};

/// Consumes one injected failure if any are armed.
bool take_injected_env_failure() {
  int remaining = g_inject_env_failures.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (g_inject_env_failures.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}
}  // namespace

void inject_env_failures_for_testing(int count) {
  g_inject_env_failures.store(count, std::memory_order_relaxed);
}

JobResult make_cancelled_result(const JobSpec& spec,
                                CancelToken::Reason reason) {
  JobResult out;
  out.status = JobStatus::kCancelled;
  out.canonical = minimal_json(spec, JobStatus::kCancelled,
                               reason == CancelToken::Reason::kDeadline
                                   ? "deadline"
                                   : "cancelled");
  return out;
}

JobResult execute_job(const JobSpec& spec, int threads, CancelToken* cancel) {
  JobResult out;
  // Admission, in order of specificity: the algorithm must exist, its
  // options must parse, the spec must not ask for a capability the
  // algorithm lacks, and the graph must fit the algorithm's node ceiling.
  // Each rejection reason names its own failure.
  const AlgorithmDescriptor* descriptor =
      AlgorithmRegistry::instance().find(spec.algorithm);
  if (descriptor == nullptr) {
    out.status = JobStatus::kRejected;
    out.canonical = minimal_json(
        spec, JobStatus::kRejected,
        "unknown algorithm '" + spec.algorithm + "' (registered: " +
            AlgorithmRegistry::instance().joined_names() + ")");
    return out;
  }
  AlgoOptions options(*descriptor);
  try {
    options = AlgoOptions::parse(*descriptor, spec.options_json);
  } catch (const PreconditionError& e) {
    out.status = JobStatus::kRejected;
    out.canonical = minimal_json(spec, JobStatus::kRejected, e.what());
    return out;
  }
  if (!spec.faults.empty() && !descriptor->caps.fault_injectable) {
    out.status = JobStatus::kRejected;
    out.canonical = minimal_json(
        spec, JobStatus::kRejected,
        "algorithm '" + spec.algorithm +
            "' lacks capability fault-injection (fault-capable: " +
            AlgorithmRegistry::instance().joined_names(
                [](const AlgorithmDescriptor& d) {
                  return d.caps.fault_injectable;
                }) +
            ")");
    return out;
  }
  // Node-ceiling admission: id-carrying engines are bounded by the wire
  // codecs' kMaxIdBits (descriptor.max_nodes); an oversized graph is a
  // rejection naming the actual bound, never an engine-level throw recorded
  // as an algorithm failure.
  try {
    check_node_admission(*descriptor, spec.graph.node_count());
  } catch (const PreconditionError& e) {
    out.status = JobStatus::kRejected;
    out.canonical = minimal_json(spec, JobStatus::kRejected, e.what());
    return out;
  }
  if (cancel != nullptr && cancel->expired()) {
    return make_cancelled_result(spec, cancel->reason());
  }

  // Per-round preemption rides the observer capability; without it the job
  // is only cancellable while queued (checked above).
  CancelObserver watchdog(cancel);
  std::vector<RoundObserver*> extra;
  if (cancel != nullptr && descriptor->caps.observer_attachable) {
    extra.push_back(&watchdog);
  }

  try {
    DMIS_CHECK_ENV(!take_injected_env_failure(),
                   "injected environment failure (testing hook)");
    const FaultRunResult r = run_algorithm_with_faults(
        spec.graph, spec.algorithm, spec.seed, threads, spec.faults,
        spec.max_rounds, extra, spec.options_json);
    out.status = r.failed() ? JobStatus::kFailed : JobStatus::kOk;
    out.canonical = canonical_json(spec, options, r, out.status);
    if (r.failed()) {
      // threads=1 in the bundle: the recorded failure is thread-invariant,
      // and a fixed value keeps batch output bit-identical at any --threads.
      const ReproBundle bundle = make_repro_bundle(
          spec.graph, spec.algorithm, spec.seed, 1, spec.max_rounds,
          spec.faults, r, spec.options_json);
      std::ostringstream oss;
      write_repro_bundle(oss, bundle);
      out.bundle_text = oss.str();
    }
  } catch (const JobCancelledError& e) {
    out = make_cancelled_result(spec, e.reason());
  } catch (const EnvironmentError& e) {
    // The environmental class of the taxonomy: graph file vanished, store
    // or bundle I/O failed. The spec itself is fine, so the result is
    // retryable and deliberately not canonical — it is never cached.
    out.status = JobStatus::kEnvError;
    out.retryable = true;
    out.canonical = minimal_json(spec, JobStatus::kEnvError, e.what());
  } catch (const std::bad_alloc&) {
    out.status = JobStatus::kEnvError;
    out.retryable = true;
    out.canonical =
        minimal_json(spec, JobStatus::kEnvError, "out of memory");
  }
  return out;
}

}  // namespace dmis::svc
