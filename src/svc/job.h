// Job model of the batch execution service (DESIGN.md §11).
//
// A JobSpec is the canonical description of one MIS computation: graph
// content, algorithm, seed, round budget, and fault schedule. Everything in
// the spec — and nothing outside it — determines the result bit-for-bit:
// thread count is deliberately *not* part of the spec, because the runtime's
// determinism contract (runtime/parallel.h, runtime/faults.h) makes results
// thread-count invariant. That is the service's cache-coherence argument in
// one line: identical specs are identical computations, so a cached result
// is a provably correct answer, not a stale approximation.
//
// JobKey is the 128-bit hash of a spec (graph content digest + scalar
// fields); JobResult carries the outcome as a *canonical* JSON string whose
// bytes are a pure function of the spec — the unit of cache storage and of
// the byte-identical-response guarantee.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/graph.h"
#include "runtime/faults.h"

namespace dmis::svc {

/// One computation request. Any algorithm of the AlgorithmRegistry
/// (mis/registry.h) is accepted; capability mismatches — a fault schedule
/// for a non-fault-capable algorithm — are rejected at admission.
struct JobSpec {
  std::string algorithm;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 0;  ///< 0 = algorithm default budget
  /// Algorithm-specific typed options as JSON (mis/registry.h); empty means
  /// defaults. Keys fold the *canonical* encoding, so spelling defaults out
  /// explicitly hits the same cache line as omitting them.
  std::string options_json;
  FaultSchedule faults;
  Graph graph;
  /// Provenance of the graph content when it arrived by file reference
  /// (the "graph_file" request field — an edge list or a mmap-backed .dmg,
  /// graph/dmg.h). Deliberately excluded from the key and from the
  /// canonical result bytes: the spec is content-addressed, and the same
  /// content must produce the same bytes whether it arrived inline or by
  /// file. A .dmg-sourced graph carries its header digest as a cached
  /// content digest, so job_key() folds it without rehashing the arrays.
  std::string graph_source;
};

/// 128-bit content hash of a JobSpec. Two independent 64-bit folds push the
/// collision probability far below the graph digest's own 2^-64.
struct JobKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const JobKey&, const JobKey&) = default;
  /// 32 lowercase hex chars (hi then lo) — also the repro-bundle file stem.
  std::string hex() const;
};

struct JobKeyHash {
  std::size_t operator()(const JobKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// The canonical spec hash. An empty fault schedule is normalized (its seed
/// is ignored) so "no faults with seed 3" and "no faults with seed 7" — the
/// same computation — share a key.
JobKey job_key(const JobSpec& spec);

enum class JobStatus : std::uint8_t {
  kOk,         ///< run finished, invariants hold, result cacheable
  kFailed,     ///< run failed (violation/poisoned decode); repro bundle set
  kCancelled,  ///< cancelled or deadline-expired; never cached
  kRejected,   ///< inadmissible spec: unknown algorithm, bad options, or a
               ///< capability the algorithm lacks (the reason names which)
  kEnvError,   ///< environmental failure (I/O, ENOMEM): the spec is fine,
               ///< the world is not — retryable, never cached
};
const char* job_status_name(JobStatus status);

/// Outcome of one job. `canonical` is the deterministic result JSON object
/// (see canonical docs above); `elapsed_s` and `cache_hit` are serving-side
/// annotations that never enter the canonical bytes.
struct JobResult {
  JobStatus status = JobStatus::kOk;
  std::string canonical;
  /// Replayable repro bundle text (runtime/repro.h format), set iff the job
  /// failed. Written with threads=1 — valid for any execution by the
  /// thread-invariance contract.
  std::string bundle_text;
  /// The error-taxonomy bit (DESIGN.md §15): true iff status == kEnvError.
  /// Deterministic failures re-run to the identical failure, so retrying
  /// them is pure waste; environmental ones may succeed on retry, and the
  /// scheduler does so (bounded, deterministic backoff) before reporting.
  bool retryable = false;
};

/// Cooperative cancellation: checked by the per-job deadline observer at
/// every round boundary, and by the scheduler before starting a queued job.
class CancelToken {
 public:
  enum class Reason : std::uint8_t { kNone, kCancelled, kDeadline };

  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms a wall-clock deadline `seconds` from now (steady clock).
  void set_deadline_after(double seconds);

  /// kCancelled dominates kDeadline when both hold.
  Reason reason() const;
  bool expired() const { return reason() != Reason::kNone; }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{
      std::numeric_limits<std::int64_t>::max()};
};

/// Thrown out of a run by the cancellation observer; execute_job converts it
/// into a kCancelled result. Never escapes the service layer.
class JobCancelledError : public std::runtime_error {
 public:
  explicit JobCancelledError(CancelToken::Reason reason)
      : std::runtime_error(reason == CancelToken::Reason::kDeadline
                               ? "job deadline exceeded"
                               : "job cancelled"),
        reason_(reason) {}
  CancelToken::Reason reason() const { return reason_; }

 private:
  CancelToken::Reason reason_;
};

/// Runs one job to a JobResult. `threads` is the intra-job WorkerPool lane
/// count (a pure performance knob). Never throws for spec-level problems:
/// unknown algorithms, unparsable options and capability mismatches yield
/// kRejected (the reason distinguishes them), cancellation yields
/// kCancelled, algorithm failures yield kFailed with a replayable bundle.
/// Deadline/cancel preemption is per-round and needs the observer
/// capability; non-observable algorithms are only cancellable while queued.
JobResult execute_job(const JobSpec& spec, int threads,
                      CancelToken* cancel = nullptr);

/// A kCancelled result for a job that never ran (queue shutdown, deadline
/// expired while queued).
JobResult make_cancelled_result(const JobSpec& spec,
                                CancelToken::Reason reason);

/// Test hook: the next `count` executions of execute_job throw an
/// EnvironmentError before running — exercises the kEnvError path and the
/// scheduler's bounded retry without needing real I/O failures. Process-wide
/// and self-consuming; pass 0 to clear.
void inject_env_failures_for_testing(int count);

}  // namespace dmis::svc
