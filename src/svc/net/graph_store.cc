#include "svc/net/graph_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "graph/dmg.h"
#include "util/check.h"

namespace dmis::svc::net {
namespace {

constexpr std::size_t kDigestHexLen = 16;

void ensure_dir(const std::string& dir) {
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0) {
    DMIS_CHECK_ENV(::mkdir(dir.c_str(), 0777) == 0,
                   "cannot create graph store directory: "
                       << dir << " (" << std::strerror(errno) << ")");
  } else {
    DMIS_CHECK(S_ISDIR(st.st_mode),
               "graph store path is not a directory: " << dir);
  }
}

std::string entry_path(const std::string& dir, const std::string& digest_hex) {
  return dir + "/" + digest_hex + ".dmg";
}

std::uint64_t file_bytes(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0
             ? static_cast<std::uint64_t>(st.st_size)
             : 0;
}

GraphPutResult put_built_graph(const std::string& dir, const Graph& g) {
  ensure_dir(dir);
  GraphPutResult out;
  out.digest_hex = graph_digest_hex(g);
  out.nodes = g.node_count();
  out.edges = g.edge_count();
  const std::string path = entry_path(dir, out.digest_hex);
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    out.created = false;  // content-addressed: same name implies same bytes
    out.bytes = static_cast<std::uint64_t>(st.st_size);
    return out;
  }
  // Dot-temp plus rename: a reader never maps a half-written container, and
  // racing puts of the same content are benign (identical bytes, last
  // rename wins).
  const std::string tmp =
      dir + "/.tmp-" + out.digest_hex + "-" + std::to_string(::getpid());
  write_dmg_file(g, tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    DMIS_CHECK_ENV(false, "cannot publish graph into store: "
                              << path << " (" << std::strerror(err) << ")");
  }
  out.created = true;
  out.bytes = file_bytes(path);
  return out;
}

}  // namespace

std::string graph_digest_hex(std::uint64_t digest) {
  char buf[kDigestHexLen + 1];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, kDigestHexLen);
}

std::string graph_digest_hex(const Graph& g) {
  return graph_digest_hex(g.content_digest(kGraphContentDigestSeed));
}

bool is_graph_digest(const std::string& text) {
  if (text.size() != kDigestHexLen) return false;
  for (const char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

GraphPutResult put_graph(const std::string& dir, const std::string& src_path) {
  return put_built_graph(dir, load_graph_file(src_path));
}

GraphPutResult put_graph(const std::string& dir, const Graph& g) {
  return put_built_graph(dir, g);
}

Graph resolve_graph(const std::string& dir, const std::string& digest_hex,
                    bool verify) {
  DMIS_CHECK(!dir.empty(),
             "graph_digest requests need a graph store (--graphs-dir)");
  DMIS_CHECK(is_graph_digest(digest_hex),
             "malformed graph_digest '" << digest_hex
                                        << "' (want 16 lowercase hex chars)");
  const std::string path = entry_path(dir, digest_hex);
  struct stat st {};
  // A digest the store has never seen is a client-side precondition — the
  // graph must be uploaded (`dmis graphs put`) before it can be referenced —
  // not an environmental fault worth retrying.
  DMIS_CHECK(::stat(path.c_str(), &st) == 0,
             "unknown graph_digest " << digest_hex << " (no " << path
                                     << "; upload with `dmis graphs put`)");
  Graph g = load_dmg_file(path, verify);
  const std::string actual = graph_digest_hex(g);
  DMIS_CHECK(actual == digest_hex,
             "graph store corruption: " << path << " carries digest " << actual
                                        << " (run `dmis graphs gc`)");
  return g;
}

std::vector<GraphEntry> list_graphs(const std::string& dir) {
  std::vector<GraphEntry> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != kDigestHexLen + 4 ||
        name.compare(kDigestHexLen, 4, ".dmg") != 0 ||
        !is_graph_digest(name.substr(0, kDigestHexLen))) {
      continue;
    }
    const std::string path = dir + "/" + name;
    GraphEntry ge;
    ge.digest_hex = name.substr(0, kDigestHexLen);
    ge.bytes = file_bytes(path);
    try {
      const Graph g = load_dmg_file(path);
      ge.nodes = g.node_count();
      ge.edges = g.edge_count();
    } catch (const std::exception&) {
      // Unmappable entry: listed with zero shape; gc removes it.
    }
    out.push_back(std::move(ge));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const GraphEntry& a, const GraphEntry& b) {
              return a.digest_hex < b.digest_hex;
            });
  return out;
}

GraphGcReport gc_graphs(const std::string& dir) {
  GraphGcReport report;
  DIR* d = ::opendir(dir.c_str());
  DMIS_CHECK_ENV(d != nullptr, "cannot open graph store directory: "
                                   << dir << " ("
                                   << std::strerror(errno) << ")");
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    std::string reason;
    if (name.rfind(".tmp-", 0) == 0) {
      reason = "stray temp file from an interrupted put";
    } else if (name.size() != kDigestHexLen + 4 ||
               name.compare(kDigestHexLen, 4, ".dmg") != 0 ||
               !is_graph_digest(name.substr(0, kDigestHexLen))) {
      continue;  // foreign file: not ours to delete
    } else {
      // Full verification: structure checks plus digest recomputation.
      try {
        const Graph g = load_dmg_file(path, /*verify_digest=*/true);
        const std::string actual = graph_digest_hex(g);
        if (actual != name.substr(0, kDigestHexLen)) {
          reason = "content digest " + actual + " does not match name";
        }
      } catch (const std::exception& e) {
        reason = e.what();
      }
    }
    if (reason.empty()) {
      ++report.kept;
      continue;
    }
    const std::uint64_t bytes = static_cast<std::uint64_t>(st.st_size);
    if (::unlink(path.c_str()) == 0) {
      ++report.removed;
      report.reclaimed_bytes += bytes;
      report.notes.push_back("removed " + name + ": " + reason);
    } else {
      report.notes.push_back("cannot remove " + name + ": " +
                             std::strerror(errno));
    }
  }
  return report;
}

}  // namespace dmis::svc::net
