// Digest-addressed graph content store (DESIGN.md §16).
//
// Clients upload a graph once (`dmis graphs put`) and reference it in every
// subsequent request by its 16-hex content digest instead of resending
// edges. The store is a flat directory of .dmg containers named by digest:
//
//   <dir>/<16 lowercase hex>.dmg
//
// The name *is* the contract: a file's name must equal the content digest
// stored in its .dmg header (which `put` computed from the edge set). A
// resolve therefore maps the file in O(1) and cross-checks name against
// header without scanning the arrays — the same trusted-digest fast path
// the service's job keys already ride (graph/dmg.h). Since the digest is a
// pure function of the edge set, a digest-addressed request hashes to the
// same JobKey as the equivalent inline-edges request, so caches, stores and
// routing agree across both arrival paths — byte-identical responses
// included.
//
// Writes are crash-safe by construction: `put` writes to a dot-temp file in
// the same directory and rename(2)s it into place, so a reader never
// observes a half-written container, and concurrent puts of the same graph
// are idempotent (last rename wins, contents identical). Workers of a
// sharded deployment point at one shared directory; the router resolves
// digests through the same code path when computing routing keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dmis::svc::net {

/// The digest spelling used in file names and "graph_digest" request
/// fields: 16 lowercase hex chars of content_digest(kGraphContentDigestSeed).
std::string graph_digest_hex(std::uint64_t digest);
std::string graph_digest_hex(const Graph& g);

/// True iff `text` is a well-formed digest spelling (16 lowercase hex).
bool is_graph_digest(const std::string& text);

struct GraphPutResult {
  std::string digest_hex;
  bool created = false;       ///< false: the digest was already present
  std::uint64_t bytes = 0;    ///< container size on disk
  NodeId nodes = 0;
  std::uint64_t edges = 0;
};

/// Ingests `src_path` (edge list or .dmg, sniffed by magic) into the store,
/// creating `dir` if needed. Idempotent: re-putting existing content reports
/// created=false and rewrites nothing.
GraphPutResult put_graph(const std::string& dir, const std::string& src_path);

/// Stores an already-built graph (bench/test convenience; same semantics).
GraphPutResult put_graph(const std::string& dir, const Graph& g);

/// Resolves a digest to its graph: O(1) mmap of <dir>/<digest>.dmg plus a
/// name-vs-header cross-check. An unknown digest throws PreconditionError
/// (the client must `dmis graphs put` first — not an environmental fault);
/// a name/header mismatch throws too (the store is corrupt at that entry;
/// `dmis graphs gc` removes it). `verify` additionally recomputes the
/// digest from the arrays — a full scan.
Graph resolve_graph(const std::string& dir, const std::string& digest_hex,
                    bool verify = false);

struct GraphEntry {
  std::string digest_hex;
  NodeId nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
};

/// Every well-named entry, sorted by digest. Header-only reads — O(1) per
/// entry. A missing or empty directory lists as empty.
std::vector<GraphEntry> list_graphs(const std::string& dir);

struct GraphGcReport {
  std::uint64_t kept = 0;
  std::uint64_t removed = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::vector<std::string> notes;  ///< one per removed file, with the reason
};

/// Full-verification sweep: recomputes every entry's digest and removes
/// entries whose contents do not match their name (torn writes that somehow
/// bypassed the rename protocol, bit rot, misnamed files) plus stray
/// `.tmp-*` files from crashed puts. Valid entries are never touched.
GraphGcReport gc_graphs(const std::string& dir);

}  // namespace dmis::svc::net
