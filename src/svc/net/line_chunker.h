// Partial-read line reassembly shared by every serving transport.
//
// The protocol is one JSON request per '\n'-terminated line, but no
// transport guarantees whole lines per read: a TCP segment can carry one
// byte of a request or three requests and a half. LineChunker turns an
// arbitrary byte-chunk stream back into lines:
//
//   LineChunker chunker(max_line_bytes);
//   chunker.append(buf, got);                 // whatever read(2) returned
//   std::string line;
//   while (true) {
//     switch (chunker.next_line(&line)) {
//       case LineChunker::Next::kLine:      handle(line); continue;
//       case LineChunker::Next::kOversized: reject();     continue;
//       case LineChunker::Next::kNeedMore:  break;        // read again
//     }
//     break;
//   }
//
// Oversized lines (no '\n' within max_line_bytes, or a terminated line
// longer than that) are *rejected and resynchronized*, not fatal: the
// offending line's bytes are discarded through its terminating newline and
// the stream continues at the next line — one kOversized event per bad
// line, so the caller can answer it with a protocol error response. A
// trailing unterminated line at EOF is surfaced by flush_eof() (getline
// semantics: the last line does not need a newline).
//
// Carriage returns immediately before the newline are stripped, so CRLF
// clients work unchanged.
#pragma once

#include <cstddef>
#include <string>

namespace dmis::svc::net {

class LineChunker {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 8u << 20;

  explicit LineChunker(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Feeds one read's worth of bytes. While discarding an oversized line,
  /// incoming bytes up to (and including) its terminating newline are
  /// dropped without buffering, so a hostile never-ending line costs O(1)
  /// memory, not O(stream).
  void append(const char* data, std::size_t n) {
    std::size_t begin = 0;
    if (discarding_) {
      std::size_t i = 0;
      while (i < n && data[i] != '\n') ++i;
      if (i == n) return;  // still inside the oversized line
      discarding_ = false;
      begin = i + 1;
    }
    buffer_.append(data + begin, n - begin);
  }

  enum class Next {
    kLine,      ///< `out` holds the next complete line
    kNeedMore,  ///< no complete line buffered; append more bytes
    kOversized  ///< a line exceeded max_line_bytes and was discarded
  };

  /// Pops the next complete line into `out` (newline and a trailing '\r'
  /// stripped). Call in a loop until kNeedMore.
  Next next_line(std::string* out) {
    const std::size_t newline = buffer_.find('\n');
    if (newline == std::string::npos) {
      if (buffer_.size() > max_line_bytes_) {
        // Unterminated and already too long: drop what we have and keep
        // dropping until the newline shows up in a later append.
        buffer_.clear();
        discarding_ = true;
        return Next::kOversized;
      }
      return Next::kNeedMore;
    }
    if (newline > max_line_bytes_) {
      buffer_.erase(0, newline + 1);
      return Next::kOversized;
    }
    out->assign(buffer_, 0, newline);
    buffer_.erase(0, newline + 1);
    if (!out->empty() && out->back() == '\r') out->pop_back();
    return Next::kLine;
  }

  /// EOF: surfaces a trailing line that never got its newline. Returns true
  /// and fills `out` iff such a partial exists (it is consumed).
  bool flush_eof(std::string* out) {
    if (discarding_ || buffer_.empty()) return false;
    out->assign(buffer_);
    buffer_.clear();
    if (!out->empty() && out->back() == '\r') out->pop_back();
    return true;
  }

  /// Bytes buffered awaiting their newline (0 while discarding).
  std::size_t buffered_bytes() const { return buffer_.size(); }
  std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::string buffer_;
  std::size_t max_line_bytes_;
  bool discarding_ = false;
};

}  // namespace dmis::svc::net
