#include "svc/net/router.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>

#include "rng/mix.h"
#include "svc/frontend.h"
#include "svc/net/line_chunker.h"
#include "svc/net/tcp.h"
#include "util/check.h"
#include "util/json.h"

namespace dmis::svc::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kRingSalt = 0x726f75746572ULL;  // "router"


bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  DMIS_CHECK_ENV(n > 0, "cannot resolve /proc/self/exe: "
                            << std::strerror(errno));
  return std::string(buf, static_cast<std::size_t>(n));
}

void sleep_ms(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1'000'000L};
  ::nanosleep(&ts, nullptr);
}

}  // namespace

HashRing::HashRing(std::size_t workers, int vnodes) : workers_(workers) {
  DMIS_CHECK(workers > 0, "hash ring needs at least one worker");
  DMIS_CHECK(vnodes > 0, "hash ring needs at least one vnode per worker");
  ring_.reserve(workers * static_cast<std::size_t>(vnodes));
  for (std::uint32_t w = 0; w < workers; ++w) {
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(
          mix64(kRingSalt, w, static_cast<std::uint64_t>(v)), w);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::slot_for(const JobKey& key) const {
  const std::uint64_t h = mix64(key.hi, key.lo);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry,
         std::uint64_t value) { return entry.first < value; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::size_t HashRing::pick(const JobKey& key) const {
  return ring_[slot_for(key)].second;
}

// ---------------------------------------------------------------------------

struct Router::Worker {
  std::size_t index = 0;
  TcpEndpoint addr;
  pid_t pid = 0;         // spawn mode only
  int announce_fd = -1;  // child's stdout pipe, held open for its lifetime
  int fd = -1;
  LineChunker chunker;
  std::string outbuf;
  std::size_t out_off = 0;
  std::deque<std::uint64_t> inflight;  // seqs sent, responses pending (FIFO)
  bool dead = false;       // revival exhausted its attempt budget
  // Revival state machine (tick_revivals): armed by worker_down, one
  // attempt per due tick, disarmed on reconnect or on exhaustion (dead).
  bool reviving = false;
  int revive_attempts = 0;
  Clock::time_point next_revive{};

  std::size_t pending_out() const { return outbuf.size() - out_off; }
};

struct Router::Client {
  int in_fd = -1;
  int out_fd = -1;
  LineChunker chunker;
  std::string outbuf;
  std::size_t out_off = 0;
  std::deque<std::uint64_t> queue;  // this client's requests, arrival order
  bool eof = false;
  bool closed = false;
  bool owns_fds = false;  // accepted TCP client: close on removal
  bool recycled = false;  // slot returned to free_clients_, awaiting reuse

  std::size_t pending_out() const { return outbuf.size() - out_off; }
};

struct Router::Pending {
  std::size_t client = 0;
  std::string id;
  std::string line;  // forwarded bytes; cleared once answered
  JobKey key;
  int worker = -1;
  int attempts = 0;  // sends so far
  bool done = false;
  bool stats_request = false;  // response rendered lazily at emission time
  std::string response;        // cleared once emitted
  Clock::time_point start;
};

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.spawn_workers > 0
                ? static_cast<std::size_t>(options_.spawn_workers)
                : options_.worker_addrs.size(),
            options_.vnodes) {
  // Client/worker sockets can vanish mid-write; every send path handles the
  // error return, so the signal is pure noise.
  ::signal(SIGPIPE, SIG_IGN);
  const std::size_t n = ring_.worker_count();
  workers_.resize(n);
  stats_.per_worker.assign(n, 0);
  if (!options_.store_dir.empty()) {
    // Workers open <store_dir>/worker<i>; the store creates one level, so
    // the shared parent must exist first.
    const int rc = ::mkdir(options_.store_dir.c_str(), 0777);
    DMIS_CHECK_ENV(rc == 0 || errno == EEXIST,
                   "cannot create store directory " << options_.store_dir
                                                    << ": "
                                                    << std::strerror(errno));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i].index = i;
    if (options_.spawn_workers > 0) {
      spawn_worker(i);
    } else {
      workers_[i].addr = parse_endpoint(options_.worker_addrs[i]);
    }
    std::string error;
    DMIS_CHECK_ENV(connect_worker(i, &error),
                   "cannot connect to worker " << i << ": " << error);
  }
}

Router::~Router() {
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) ::close(worker.fd);
    if (worker.pid > 0) ::kill(worker.pid, SIGTERM);
  }
  for (Worker& worker : workers_) {
    if (worker.pid <= 0) continue;
    // Bounded graceful wait (workers seal their stores on SIGTERM), then
    // the hammer.
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 100; ++i) {
      if (::waitpid(worker.pid, &status, WNOHANG) > 0) {
        reaped = true;
        break;
      }
      sleep_ms(20);
    }
    if (!reaped) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, &status, 0);
    }
    if (worker.announce_fd >= 0) ::close(worker.announce_fd);
  }
}

std::size_t Router::worker_count() const { return workers_.size(); }

pid_t Router::worker_pid(std::size_t i) const { return workers_[i].pid; }

std::string Router::worker_addr(std::size_t i) const {
  return workers_[i].addr.str();
}

void Router::spawn_worker(std::size_t i) {
  Worker& worker = workers_[i];
  const std::string exe = options_.exe.empty() ? self_exe() : options_.exe;

  std::vector<std::string> args = {exe, "serve", "--tcp", "127.0.0.1:0"};
  if (!options_.store_dir.empty()) {
    args.push_back("--store-dir");
    args.push_back(options_.store_dir + "/worker" + std::to_string(i));
  }
  if (!options_.graphs_dir.empty()) {
    args.push_back("--graphs-dir");
    args.push_back(options_.graphs_dir);
  }
  args.insert(args.end(), options_.worker_flags.begin(),
              options_.worker_flags.end());

  int announce[2];
  DMIS_CHECK_ENV(::pipe(announce) == 0, "pipe: " << std::strerror(errno));
  const pid_t pid = ::fork();
  DMIS_CHECK_ENV(pid >= 0, "fork: " << std::strerror(errno));
  if (pid == 0) {
    // Child: stdout carries the {"listening":...} announcement; stdin is
    // detached (a TCP worker never reads it); stderr stays inherited so
    // worker drain stats land in the router's stderr.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) ::dup2(devnull, 0);
    ::dup2(announce[1], 1);
    // Everything above stderr is the router's plumbing (worker sockets,
    // client connections, the front-end listener): a worker holding those
    // open would keep dead clients' pipes readable forever and hold TCP
    // connections the router believes closed. Workers start with clean
    // tables — close_range covers every fd (a router carrying thousands of
    // client sockets exceeds any hardcoded bound), with an RLIMIT_NOFILE
    // sweep as the fallback on kernels without the syscall.
#ifdef SYS_close_range
    if (::syscall(SYS_close_range, 3u, ~0u, 0u) != 0)
#endif
    {
      rlimit nofile{};
      rlim_t max_fd = 1024;
      if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
          nofile.rlim_cur != RLIM_INFINITY) {
        max_fd = nofile.rlim_cur;
      }
      for (rlim_t fd = 3; fd < max_fd; ++fd) ::close(static_cast<int>(fd));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "router: execv %s: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(announce[1]);

  // Read the worker's listening line (poll-bounded; a worker that never
  // announces is killed and reported).
  LineChunker chunker;
  std::string line;
  bool announced = false;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.spawn_timeout_ms);
  while (!announced && Clock::now() < deadline) {
    pollfd pfd{announce[0], POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    char chunk[512];
    const ssize_t got = ::read(announce[0], chunk, sizeof(chunk));
    if (got <= 0) break;
    chunker.append(chunk, static_cast<std::size_t>(got));
    announced = chunker.next_line(&line) == LineChunker::Next::kLine;
  }
  if (!announced) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    ::close(announce[0]);
    DMIS_CHECK_ENV(false, "worker " << i << " never announced its address");
  }
  const json::Value announce_json = json::parse(line);
  const json::Value* listening = announce_json.find("listening");
  DMIS_CHECK(listening != nullptr,
             "worker announcement lacks \"listening\": " << line);

  if (worker.announce_fd >= 0) ::close(worker.announce_fd);
  worker.announce_fd = announce[0];
  worker.pid = pid;
  worker.addr = parse_endpoint(listening->as_string());
  worker.dead = false;
  std::fprintf(stderr, "router: worker %zu pid %d listening %s\n", i,
               static_cast<int>(pid), worker.addr.str().c_str());
}

bool Router::connect_worker(std::size_t i, std::string* error) {
  Worker& worker = workers_[i];
  const int fd = connect_tcp(worker.addr, error);
  if (fd < 0) return false;
  worker.fd = fd;
  worker.chunker = LineChunker(options_.max_line_bytes);
  worker.outbuf.clear();
  worker.out_off = 0;
  worker.dead = false;
  worker.reviving = false;
  worker.revive_attempts = 0;
  return true;
}

// One attempt per due worker per call, never a sleep: the old synchronous
// retry loop (attempts x delay, plus a spawn timeout each) froze all client
// and worker I/O for seconds whenever a worker died; here the poll loop
// keeps servicing traffic between attempts.
void Router::tick_revivals() {
  const Clock::time_point now = Clock::now();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    if (!worker.reviving || worker.fd >= 0 || worker.dead) continue;
    if (now < worker.next_revive) continue;
    ++worker.revive_attempts;
    worker.next_revive =
        now + std::chrono::milliseconds(options_.reconnect_delay_ms);
    std::string error = "connect failed";
    bool connectable = true;
    if (worker.pid > 0) {
      int status = 0;
      if (::waitpid(worker.pid, &status, WNOHANG) > 0) worker.pid = 0;
    }
    if (options_.spawn_workers > 0 && worker.pid == 0) {
      // The process is gone: restart it (new pid, new ephemeral port; ring
      // ownership is index-keyed so the key range is unchanged).
      try {
        spawn_worker(i);
        ++stats_.restarts;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "router: worker %zu restart failed: %s\n", i,
                     e.what());
        error = e.what();
        connectable = false;
      }
    }
    if (connectable && connect_worker(i, &error)) continue;
    if (worker.revive_attempts >= options_.reconnect_attempts) {
      std::fprintf(stderr, "router: worker %zu unreachable (%s)\n", i,
                   error.c_str());
      worker.dead = true;
      worker.reviving = false;
    }
  }
}

void Router::worker_down(std::size_t i) {
  Worker& worker = workers_[i];
  if (worker.fd >= 0) ::close(worker.fd);
  worker.fd = -1;
  worker.outbuf.clear();
  worker.out_off = 0;
  // Everything unanswered goes back through dispatch: the worker processed
  // some prefix of these, but determinism makes re-execution harmless (same
  // spec, same canonical bytes — at worst a cache/store hit on the revived
  // worker).
  while (!worker.inflight.empty()) {
    reassign_queue_.push_back(worker.inflight.front());
    worker.inflight.pop_front();
  }
  if (!worker.dead && !worker.reviving) {
    worker.reviving = true;
    worker.revive_attempts = 0;
    worker.next_revive = Clock::now();  // first attempt on the next tick
  }
}

void Router::send_to_worker(std::size_t i, std::uint64_t seq) {
  Worker& worker = workers_[i];
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // already answered and reclaimed
  Pending& p = it->second;
  ++p.attempts;
  if (p.attempts > 1) ++stats_.resends;
  ++stats_.forwarded;
  worker.outbuf.append(p.line);
  worker.outbuf.push_back('\n');
  worker.inflight.push_back(seq);
  flush_worker(i);
}

void Router::flush_worker(std::size_t i) {
  Worker& worker = workers_[i];
  while (worker.fd >= 0 && worker.pending_out() > 0) {
    const ssize_t n = ::send(worker.fd, worker.outbuf.data() + worker.out_off,
                             worker.pending_out(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      worker.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    worker_down(i);
    return;
  }
  if (worker.pending_out() == 0) {
    worker.outbuf.clear();
    worker.out_off = 0;
  }
}

void Router::read_worker(std::size_t i) {
  Worker& worker = workers_[i];
  char chunk[65536];
  const ssize_t got = ::read(worker.fd, chunk, sizeof(chunk));
  if (got < 0 && (errno == EINTR || errno == EAGAIN)) return;
  if (got <= 0) {
    worker_down(i);
    return;
  }
  worker.chunker.append(chunk, static_cast<std::size_t>(got));
  std::string line;
  while (worker.chunker.next_line(&line) == LineChunker::Next::kLine) {
    if (worker.inflight.empty()) {
      std::fprintf(stderr, "router: worker %zu sent an unmatched response\n",
                   i);
      continue;
    }
    const std::uint64_t seq = worker.inflight.front();
    worker.inflight.pop_front();
    complete(seq, std::move(line));
    line = {};
  }
}

void Router::reap_exited() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    if (worker.pid <= 0) continue;
    int status = 0;
    if (::waitpid(worker.pid, &status, WNOHANG) <= 0) continue;
    worker.pid = 0;
    std::fprintf(stderr, "router: worker %zu exited; restarting\n", i);
    worker_down(i);  // arms the revival state machine; the tick respawns
  }
}

void Router::handle_client_line(std::size_t client_index,
                                const std::string& line) {
  const std::uint64_t seq = next_seq_++;
  Pending& p = pending_[seq];
  p.client = client_index;
  p.start = Clock::now();
  ++stats_.requests;
  clients_[client_index].queue.push_back(seq);

  Request request;
  try {
    request = parse_request(line, seq + 1, options_.verify_digest,
                            options_.graphs_dir);
  } catch (const EnvironmentError& e) {
    ++stats_.parse_errors;
    complete(seq, format_error_response("#" + std::to_string(seq + 1),
                                        e.what(), /*retryable=*/true));
    return;
  } catch (const std::exception& e) {
    ++stats_.parse_errors;
    complete(seq, format_error_response("#" + std::to_string(seq + 1),
                                        e.what()));
    return;
  }
  p.id = request.id;
  if (request.stats) {
    // Rendered when it reaches the front of the client's queue, so the
    // counters reflect every request that precedes it in the stream.
    p.stats_request = true;
    p.done = true;
    emit_ready(client_index);
    return;
  }
  // The routing key *is* the job key: the same 128-bit spec hash that names
  // cache lines and store records names the owning worker, so every path to
  // the same computation converges on the same shard.
  p.key = job_key(request.spec);
  p.line = line;
  p.worker = static_cast<int>(ring_.pick(p.key));
  ++stats_.per_worker[static_cast<std::size_t>(p.worker)];
  reassign_queue_.push_back(seq);  // dispatched by the loop's drain pass
}

void Router::complete(std::uint64_t seq, std::string response) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // already answered and reclaimed
  Pending& p = it->second;
  p.done = true;
  p.response = std::move(response);
  p.line.clear();
  latency_.record_us(std::chrono::duration<double, std::micro>(
                         Clock::now() - p.start)
                         .count());
  const std::size_t client = p.client;  // emit_ready may erase p
  emit_ready(client);
}

void Router::fail_pending(std::uint64_t seq, const std::string& message) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  ++stats_.failed;
  complete(seq,
           format_error_response(it->second.id, message, /*retryable=*/true));
}

void Router::reassign_or_fail(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.done) return;
  Pending& p = it->second;
  if (p.attempts >= options_.max_attempts_per_request) {
    fail_pending(seq, "worker unreachable after " +
                          std::to_string(p.attempts) + " attempts");
    return;
  }
  const auto connected = [&](std::size_t w) { return workers_[w].fd >= 0; };
  std::size_t target = static_cast<std::size_t>(p.worker);
  if (!connected(target)) {
    if (!workers_[target].dead) {
      // The owner is mid-revival: hold the request and let the next
      // dispatch pass retry (revival is bounded, so this wait is too).
      reassign_queue_.push_back(seq);
      return;
    }
    // The owner is gone for good: walk the ring to the first connected
    // successor.
    const std::size_t rerouted = ring_.pick_alive(p.key, connected);
    if (!connected(rerouted)) {
      bool reviving = false;
      for (const Worker& worker : workers_) {
        reviving |= worker.reviving && !worker.dead;
      }
      if (reviving) {  // someone may still come back; wait for the verdict
        reassign_queue_.push_back(seq);
        return;
      }
      fail_pending(seq, "all workers unreachable");
      return;
    }
    if (rerouted != target) {
      ++stats_.reroutes;
      p.worker = static_cast<int>(rerouted);
    }
    target = rerouted;
  }
  send_to_worker(target, seq);
}

void Router::emit_ready(std::size_t client_index) {
  Client& client = clients_[client_index];
  while (!client.queue.empty()) {
    const auto it = pending_.find(client.queue.front());
    if (it == pending_.end()) {  // defensive: emitted entries leave the queue
      client.queue.pop_front();
      continue;
    }
    Pending& p = it->second;
    if (!p.done) break;
    if (!client.closed) {  // a dead client's responses are discarded
      if (p.stats_request) p.response = stats_json(p.id);
      client.outbuf.append(p.response);
      client.outbuf.push_back('\n');
    }
    client.queue.pop_front();
    pending_.erase(it);  // answered: the request's slot is reclaimed
  }
  flush_client(client_index);
}

void Router::flush_client(std::size_t client_index) {
  Client& client = clients_[client_index];
  while (!client.closed && client.pending_out() > 0) {
    const ssize_t n = ::write(client.out_fd,
                              client.outbuf.data() + client.out_off,
                              client.pending_out());
    if (n > 0) {
      client.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    client.closed = true;  // client gone; its unread responses are dropped
    return;
  }
  if (client.pending_out() == 0) {
    client.outbuf.clear();
    client.out_off = 0;
  }
}

std::uint64_t Router::serve_fds(int in_fd, int out_fd) {
  Client client;
  client.in_fd = in_fd;
  client.out_fd = out_fd;
  client.chunker = LineChunker(options_.max_line_bytes);
  // Nonblocking writes keep one slow client from stalling every worker; the
  // original flags are restored on exit (the fd is borrowed, not owned).
  const int out_flags = ::fcntl(out_fd, F_GETFL);
  if (out_flags >= 0) ::fcntl(out_fd, F_SETFL, out_flags | O_NONBLOCK);
  clients_.push_back(std::move(client));
  const std::uint64_t handled = run_loop(-1);
  if (out_flags >= 0) ::fcntl(out_fd, F_SETFL, out_flags);
  clients_.clear();
  free_clients_.clear();
  pending_.clear();
  reassign_queue_.clear();
  return handled;
}

int Router::serve_tcp_frontend(int listener_fd) {
  run_loop(listener_fd);
  ::close(listener_fd);
  // The drain exit fires at the top of an iteration, before that iteration's
  // lifecycle pass could retire connections the drain made idle — close the
  // survivors here so no accepted fd outlives the front end. (Every response
  // has been flushed: the exit condition requires it.)
  for (Client& client : clients_) {
    if (client.owns_fds && client.in_fd >= 0) ::close(client.in_fd);
  }
  clients_.clear();
  free_clients_.clear();
  pending_.clear();
  reassign_queue_.clear();
  return 0;
}

std::uint64_t Router::run_loop(int listener_fd) {
  const std::uint64_t entry_requests = stats_.requests;
  for (;;) {
    const bool draining = drain_requested();

    // Supervision tick: reap exited spawned workers (even idle ones) and
    // advance each down worker's revival state machine by one bounded,
    // non-blocking attempt.
    if (options_.spawn_workers > 0) reap_exited();
    tick_revivals();

    // Dispatch pass: one sweep over everything waiting for a worker (fresh
    // requests and orphans of dead connections). Requests whose owner is
    // mid-revival re-queue themselves; the snapshot bound keeps the sweep
    // from spinning on them.
    for (std::size_t sweep = reassign_queue_.size();
         sweep > 0 && !reassign_queue_.empty(); --sweep) {
      const std::uint64_t seq = reassign_queue_.front();
      reassign_queue_.pop_front();
      reassign_or_fail(seq);
    }

    // Exit conditions. serve_fds: the client stream ended and every
    // response is out. TCP front end: drain only. A drain does not wait
    // for idle clients to hang up — only for queued work to finish and
    // produced responses to flush.
    bool inflight = !reassign_queue_.empty();
    for (const Worker& worker : workers_) {
      inflight |= !worker.inflight.empty();
    }
    bool clients_idle = true;
    for (const Client& client : clients_) {
      clients_idle &= client.closed ||
                      ((client.eof || draining) && client.queue.empty() &&
                       client.pending_out() == 0);
    }
    if (draining && !inflight && clients_idle) break;
    if (listener_fd < 0 && clients_idle && !inflight) break;

    std::vector<pollfd> fds;
    struct Slot {
      enum Kind { kListener, kClientIn, kClientOut, kWorker } kind;
      std::size_t index;
    };
    std::vector<Slot> slots;
    if (listener_fd >= 0 && !draining) {
      fds.push_back({listener_fd, POLLIN, 0});
      slots.push_back({Slot::kListener, 0});
    }
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      Client& client = clients_[c];
      if (client.closed) continue;
      short in_events = 0;
      if (!client.eof && !draining) in_events |= POLLIN;
      if (client.in_fd == client.out_fd) {
        if (client.pending_out() > 0) in_events |= POLLOUT;
        if (in_events != 0) {
          fds.push_back({client.in_fd, in_events, 0});
          slots.push_back({Slot::kClientIn, c});
        }
      } else {
        if (in_events != 0) {
          fds.push_back({client.in_fd, in_events, 0});
          slots.push_back({Slot::kClientIn, c});
        }
        if (client.pending_out() > 0) {
          fds.push_back({client.out_fd, POLLOUT, 0});
          slots.push_back({Slot::kClientOut, c});
        }
      }
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].fd < 0) continue;
      short events = POLLIN;
      if (workers_[w].pending_out() > 0) events |= POLLOUT;
      fds.push_back({workers_[w].fd, events, 0});
      slots.push_back({Slot::kWorker, w});
    }
    // A worker mid-revival wants ticks at its retry cadence even when no
    // fd is ready (its socket is down, so nothing polls for it).
    bool reviving_any = false;
    for (const Worker& worker : workers_) {
      reviving_any |= worker.reviving && !worker.dead && worker.fd < 0;
    }
    const int timeout_ms =
        reviving_any ? std::max(10, std::min(options_.reconnect_delay_ms, 100))
                     : 100;

    if (fds.empty()) {
      if (!reviving_any && (draining || listener_fd < 0)) break;
      sleep_ms(timeout_ms);
      continue;
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // drain signal: loop re-checks the flag
      std::perror("router: poll");
      return stats_.requests - entry_requests;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      const Slot slot = slots[i];
      switch (slot.kind) {
        case Slot::kListener: {
          const int accepted = ::accept(listener_fd, nullptr, nullptr);
          if (accepted >= 0) {
            const int flags = ::fcntl(accepted, F_GETFL);
            if (flags >= 0) ::fcntl(accepted, F_SETFL, flags | O_NONBLOCK);
            Client client;
            client.in_fd = accepted;
            client.out_fd = accepted;
            client.owns_fds = true;
            client.chunker = LineChunker(options_.max_line_bytes);
            if (free_clients_.empty()) {
              clients_.push_back(std::move(client));
            } else {
              clients_[free_clients_.back()] = std::move(client);
              free_clients_.pop_back();
            }
          }
          break;
        }
        case Slot::kClientIn: {
          Client& client = clients_[slot.index];
          // A pipe/FIFO whose writers are gone reports a bare POLLHUP with
          // no POLLIN; the read below returns 0 and records the EOF.
          if ((revents & (POLLIN | POLLHUP)) != 0 && !client.eof) {
            char chunk[65536];
            const ssize_t got = ::read(client.in_fd, chunk, sizeof(chunk));
            if (got > 0) {
              client.chunker.append(chunk, static_cast<std::size_t>(got));
              std::string line;
              for (bool more = true; more;) {
                switch (client.chunker.next_line(&line)) {
                  case LineChunker::Next::kLine:
                    if (!blank_line(line)) {
                      handle_client_line(slot.index, line);
                    }
                    break;
                  case LineChunker::Next::kOversized: {
                    const std::uint64_t seq = next_seq_++;
                    pending_[seq].client = slot.index;
                    pending_[seq].start = Clock::now();
                    ++stats_.requests;
                    clients_[slot.index].queue.push_back(seq);
                    ++stats_.parse_errors;
                    complete(seq, format_error_response(
                                      "#" + std::to_string(seq + 1),
                                      "request line exceeds " +
                                          std::to_string(
                                              options_.max_line_bytes) +
                                          " bytes"));
                    break;
                  }
                  case LineChunker::Next::kNeedMore:
                    more = false;
                    break;
                }
              }
            } else if (got == 0) {
              Client& c2 = clients_[slot.index];
              c2.eof = true;
              std::string line;
              if (c2.chunker.flush_eof(&line) && !blank_line(line)) {
                handle_client_line(slot.index, line);
              }
            } else if (errno != EINTR && errno != EAGAIN) {
              clients_[slot.index].closed = true;
            }
          }
          if ((revents & POLLOUT) != 0) flush_client(slot.index);
          if ((revents & (POLLERR | POLLNVAL)) != 0) {
            clients_[slot.index].closed = true;
          }
          break;
        }
        case Slot::kClientOut:
          flush_client(slot.index);
          break;
        case Slot::kWorker: {
          Worker& worker = workers_[slot.index];
          if (worker.fd < 0) break;  // went down earlier this iteration
          if ((revents & POLLIN) != 0) read_worker(slot.index);
          if (worker.fd >= 0 && (revents & POLLOUT) != 0) {
            flush_worker(slot.index);
          }
          if (worker.fd >= 0 &&
              (revents & (POLLERR | POLLNVAL)) != 0) {
            worker_down(slot.index);
          }
          if (worker.fd >= 0 && (revents & POLLHUP) != 0 &&
              (revents & POLLIN) == 0) {
            worker_down(slot.index);
          }
          break;
        }
      }
    }

    // Accepted-client lifecycle. A connection whose stream ended — or that
    // a drain is retiring — closes once every response is emitted and
    // flushed (serve_tcp's eof-and-flushed rule); its fd drops immediately
    // so completed connections never accumulate, and fully drained slots
    // are recycled through free_clients_ so a long-running front end holds
    // per-connection state only for live connections.
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      Client& client = clients_[c];
      if (!client.closed && client.owns_fds && client.queue.empty() &&
          client.pending_out() == 0 && (client.eof || draining)) {
        client.closed = true;
      }
      if (!client.closed || !client.owns_fds) continue;
      if (client.in_fd >= 0) {
        ::close(client.in_fd);
        client.in_fd = -1;
        client.out_fd = -1;
      }
      if (!client.recycled && client.queue.empty()) {
        client = Client();
        client.closed = true;
        client.recycled = true;
        free_clients_.push_back(c);
      }
    }
  }
  return stats_.requests - entry_requests;
}

std::string Router::stats_json(const std::string& id) const {
  std::ostringstream oss;
  oss << "{\"id\":" << json::Value::string(id).dump() << ",\"stats\":{"
      << "\"router\":{\"workers\":" << workers_.size()
      << ",\"requests\":" << stats_.requests
      << ",\"forwarded\":" << stats_.forwarded
      << ",\"resends\":" << stats_.resends
      << ",\"reroutes\":" << stats_.reroutes
      << ",\"restarts\":" << stats_.restarts
      << ",\"parse_errors\":" << stats_.parse_errors
      << ",\"failed\":" << stats_.failed << ",\"per_worker\":[";
  for (std::size_t i = 0; i < stats_.per_worker.size(); ++i) {
    if (i > 0) oss << ",";
    oss << stats_.per_worker[i];
  }
  oss << "],\"latency\":{\"count\":" << latency_.count()
      << ",\"p50_us\":" << latency_.percentile_us(0.50)
      << ",\"p90_us\":" << latency_.percentile_us(0.90)
      << ",\"p99_us\":" << latency_.percentile_us(0.99) << "}}}}";
  return oss.str();
}

}  // namespace dmis::svc::net
