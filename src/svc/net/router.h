// Multi-process sharded serving: the router (DESIGN.md §16).
//
// `dmis serve --router --workers N` turns the single-process service into
// the paper's deployment shape — many cooperating processes behind one
// front end. The router owns no scheduler and no cache; it
//
//   * spawns and supervises N worker processes (each a plain
//     `dmis serve --tcp 127.0.0.1:0` with its own scheduler, LRU and
//     `--store-dir <base>/worker<i>` segment namespace), or connects to
//     externally started workers (`--worker-addr host:port`, repeatable);
//   * routes every request by consistent hash of its JobKey over a fixed
//     ring of virtual nodes, so a given job always lands on the same
//     worker and that worker's cache + durable store stay authoritative
//     for its key range;
//   * pipelines: requests to different workers are in flight
//     simultaneously (each worker connection is FIFO, so responses match
//     sends per connection), and responses are emitted to each client in
//     that client's request order through a reorder buffer;
//   * survives worker death: unanswered requests on a dead connection are
//     re-sent after reconnect/restart — safe because identical specs
//     produce identical canonical bytes, so at-least-once delivery cannot
//     change any response — with bounded attempts, then rerouted to the
//     ring successor, then failed with the retryable taxonomy bit;
//   * restarts spawned workers that exit, automatically.
//
// The router answers {"cmd":"stats"} itself (routing counters + its own
// request-latency histogram); per-worker serving stats remain one
// connection away on each worker. Parse failures are answered locally and
// never forwarded. Anonymous request ids ("#<seq>") are numbered by the
// worker that executes them, so sharded deployments should send explicit
// ids (every client in this repo does).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/job.h"
#include "util/stats.h"

namespace dmis::svc::net {

/// Consistent-hash ring: `vnodes` virtual nodes per worker, placement a
/// pure function of (worker index, vnode index) — every router instance
/// over the same worker count agrees on ownership, and ownership is stable
/// across worker restarts (index-keyed, not address-keyed).
class HashRing {
 public:
  HashRing(std::size_t workers, int vnodes = 64);

  std::size_t worker_count() const { return workers_; }

  /// The owning worker for a key.
  std::size_t pick(const JobKey& key) const;

  /// Walks the ring clockwise from the key's position and returns the first
  /// worker for which `alive(worker)` holds; falls back to pick() when none
  /// does. Used for reroute-on-failure.
  template <typename AlivePredicate>
  std::size_t pick_alive(const JobKey& key, AlivePredicate&& alive) const {
    std::size_t slot = slot_for(key);
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      const std::size_t worker = ring_[(slot + step) % ring_.size()].second;
      if (alive(worker)) return worker;
    }
    return ring_[slot].second;
  }

 private:
  std::size_t slot_for(const JobKey& key) const;

  std::size_t workers_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted
};

struct RouterOptions {
  /// Spawn mode: number of worker processes to launch (0 = external mode,
  /// which requires worker_addrs).
  int spawn_workers = 0;
  std::vector<std::string> worker_addrs;  ///< external mode: host:port each
  /// Binary to exec for spawned workers; empty resolves /proc/self/exe.
  std::string exe;
  /// Extra `dmis serve` flags forwarded verbatim to every spawned worker
  /// (threads, cache sizing, timing...).
  std::vector<std::string> worker_flags;
  /// Non-empty: worker i serves with `--store-dir <store_dir>/worker<i>` —
  /// one segment namespace per key range.
  std::string store_dir;
  /// Shared digest-addressed graph directory: used by the router to resolve
  /// "graph_digest" while computing routing keys, and forwarded to spawned
  /// workers as their --graphs-dir.
  std::string graphs_dir;
  bool verify_digest = false;  ///< routing-side parse option
  int vnodes = 64;
  /// Reconnect/restart attempts per worker revival, and the wait between
  /// them. Deterministic backoff, same rationale as the scheduler's.
  int reconnect_attempts = 40;
  int reconnect_delay_ms = 50;
  /// Sends per request (first try + resends/reroutes) before the router
  /// answers with a retryable error itself.
  int max_attempts_per_request = 4;
  std::size_t max_line_bytes = 8u << 20;
  int spawn_timeout_ms = 10'000;  ///< waiting for a worker's listening line
};

struct RouterStats {
  std::uint64_t requests = 0;      ///< client lines handled (any outcome)
  std::uint64_t forwarded = 0;     ///< sends to workers, resends included
  std::uint64_t resends = 0;       ///< re-sent after a dead connection
  std::uint64_t reroutes = 0;      ///< moved to a ring successor
  std::uint64_t restarts = 0;      ///< spawned worker restarts
  std::uint64_t parse_errors = 0;  ///< answered locally, never forwarded
  std::uint64_t failed = 0;        ///< answered with a router-side error
  std::vector<std::uint64_t> per_worker;  ///< requests routed per worker
};

class Router {
 public:
  explicit Router(RouterOptions options);
  /// Terminates spawned workers (SIGTERM, bounded wait, then SIGKILL).
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::size_t worker_count() const;
  /// Spawned worker's pid (0 in external mode).
  pid_t worker_pid(std::size_t i) const;
  /// Current address (changes across restarts in spawn mode).
  std::string worker_addr(std::size_t i) const;

  /// Serves one client over an fd pair (stdin/stdout: 0, 1; a socketpair in
  /// tests/benches). Returns at client EOF once every request is answered,
  /// or on drain. Returns the number of client lines handled.
  std::uint64_t serve_fds(int in_fd, int out_fd);

  /// Accept loop for a TCP client front end; runs until drain. Takes
  /// ownership of the listener fd.
  int serve_tcp_frontend(int listener_fd);

  RouterStats stats() const { return stats_; }
  /// Router-side wall latency (arrival to response emission) per request.
  const LatencyHistogram& latency() const { return latency_; }
  /// One response line: {"id":...,"stats":{"router":{...}}} with the
  /// routing counters and the p50/p90/p99 of the router-side request
  /// latency histogram. Field order is fixed (deterministic output).
  std::string stats_json(const std::string& id) const;

 private:
  struct Worker;
  struct Client;
  struct Pending;

  void spawn_worker(std::size_t i);
  bool connect_worker(std::size_t i, std::string* error);
  /// Advances every down worker's revival state machine by at most one
  /// bounded attempt. Never sleeps: attempt pacing and the attempt budget
  /// are per-worker state, and the poll loop drives the ticks, so client
  /// and other-worker I/O keeps flowing while a worker is down.
  void tick_revivals();
  void worker_down(std::size_t i);
  void send_to_worker(std::size_t i, std::uint64_t seq);
  void flush_worker(std::size_t i);
  void read_worker(std::size_t i);
  void reap_exited();

  void handle_client_line(std::size_t client_index, const std::string& line);
  void complete(std::uint64_t seq, std::string response);
  void fail_pending(std::uint64_t seq, const std::string& message);
  void reassign_or_fail(std::uint64_t seq);
  void emit_ready(std::size_t client_index);
  void flush_client(std::size_t client_index);

  /// The shared poll loop behind both front ends. `listener_fd` < 0 means
  /// fixed client set (serve_fds); otherwise accept until drain.
  std::uint64_t run_loop(int listener_fd);

  RouterOptions options_;
  HashRing ring_;
  std::vector<Worker> workers_;
  std::vector<Client> clients_;
  std::vector<std::size_t> free_clients_;  // recycled accepted-client slots
  // Live requests only, keyed by seq: each entry is erased as its response
  // is emitted (or discarded with its dead client), so a long-running
  // router holds memory proportional to in-flight work, not history.
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::deque<std::uint64_t> reassign_queue_;  // awaiting (re)dispatch
  std::uint64_t next_seq_ = 0;
  RouterStats stats_;
  LatencyHistogram latency_;
};

}  // namespace dmis::svc::net
