#include "svc/net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <vector>

#include "svc/net/line_chunker.h"
#include "util/check.h"

namespace dmis::svc::net {
namespace {

using Clock = std::chrono::steady_clock;

sockaddr_in make_addr(const TcpEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  // Numeric addresses only (plus the "localhost" spelling): the serving
  // plane is loopback/LAN-addressed by supervisors, not DNS clients.
  const std::string host =
      endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  DMIS_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "not an IPv4 address: '" << endpoint.host << "'");
  return addr;
}

/// One client connection of the serve loop.
struct Conn {
  int fd = -1;
  LineChunker chunker;
  std::string outbuf;        // response bytes not yet accepted by the kernel
  std::size_t out_off = 0;   // sent prefix of outbuf
  Clock::time_point last_activity;
  bool eof = false;     // client half-closed; flush remaining output, then close
  bool closed = false;  // marked for removal this iteration

  explicit Conn(int f, std::size_t max_line, Clock::time_point now)
      : fd(f), chunker(max_line), last_activity(now) {}

  std::size_t pending_out() const { return outbuf.size() - out_off; }
};

/// Pushes as much pending output as the kernel will take right now.
/// Nonblocking: EAGAIN leaves the rest for POLLOUT; a hard error closes.
void flush_output(Conn& conn) {
  while (conn.pending_out() > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off, conn.pending_out(),
               MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.closed = true;  // peer gone mid-write; nothing recoverable
    return;
  }
  conn.outbuf.clear();
  conn.out_off = 0;
}

void enqueue_response(Conn& conn, const std::string& line) {
  conn.outbuf.append(line);
  conn.outbuf.push_back('\n');
  flush_output(conn);
}

std::string oversized_error(std::uint64_t seq, std::size_t max_line_bytes) {
  return "{\"id\":\"#" + std::to_string(seq) +
         "\",\"error\":\"request line exceeds " +
         std::to_string(max_line_bytes) + " bytes\"}";
}

bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

/// Feeds every complete buffered line through the service.
void handle_buffered_lines(Conn& conn, ExecutionService& service,
                           const FrontEndOptions& options,
                           const TcpServeOptions& tcp, std::uint64_t& seq) {
  std::string line;
  for (;;) {
    switch (conn.chunker.next_line(&line)) {
      case LineChunker::Next::kLine:
        if (blank_line(line)) continue;
        ++seq;
        enqueue_response(conn,
                         handle_request_line(service, options, line, seq));
        continue;
      case LineChunker::Next::kOversized:
        ++seq;
        enqueue_response(conn, oversized_error(seq, tcp.max_line_bytes));
        continue;
      case LineChunker::Next::kNeedMore:
        return;
    }
  }
}

}  // namespace

TcpEndpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  DMIS_CHECK(colon != std::string::npos && colon > 0 &&
                 colon + 1 < spec.size(),
             "malformed endpoint '" << spec << "' (want host:port)");
  TcpEndpoint out;
  out.host = spec.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  DMIS_CHECK(end != nullptr && *end == '\0' && port <= 65535,
             "malformed port in endpoint '" << spec << "'");
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

int listen_tcp(const TcpEndpoint& endpoint) {
  const sockaddr_in addr = make_addr(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DMIS_CHECK_ENV(fd >= 0, "socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    DMIS_CHECK_ENV(false, "bind " << endpoint.str() << ": "
                                  << std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    DMIS_CHECK_ENV(false, "listen " << endpoint.str() << ": "
                                    << std::strerror(err));
  }
  return fd;
}

TcpEndpoint local_endpoint(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  DMIS_CHECK_ENV(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0,
                 "getsockname: " << std::strerror(errno));
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  TcpEndpoint out;
  out.host = host;
  out.port = ntohs(addr.sin_port);
  return out;
}

int connect_tcp(const TcpEndpoint& endpoint, std::string* error) {
  const sockaddr_in addr = make_addr(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = endpoint.str() + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int serve_tcp(int listener_fd, ExecutionService& service,
              const FrontEndOptions& options, const TcpServeOptions& tcp) {
  std::vector<Conn> conns;
  std::uint64_t seq = 0;

  while (!drain_requested()) {
    std::vector<pollfd> fds;
    const bool accepting =
        conns.size() < static_cast<std::size_t>(tcp.max_connections);
    fds.push_back({listener_fd, static_cast<short>(accepting ? POLLIN : 0),
                   0});
    for (const Conn& conn : conns) {
      short events = 0;
      if (!conn.eof) events |= POLLIN;
      if (conn.pending_out() > 0) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    // The timeout bounds both idle reaping and drain-flag latency.
    const int timeout_ms =
        tcp.idle_timeout_ms > 0 ? std::min(tcp.idle_timeout_ms, 250) : 250;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // drain signal: loop re-checks the flag
      std::perror("poll");
      break;
    }
    const Clock::time_point now = Clock::now();

    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listener_fd, nullptr, nullptr);
      if (client >= 0) {
        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.emplace_back(client, tcp.max_line_bytes, now);
        // The new conn has no pollfd this iteration; it is polled next turn.
      }
    }

    for (std::size_t i = 0; i < conns.size() && i + 1 < fds.size(); ++i) {
      Conn& conn = conns[i];
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      if ((revents & POLLIN) != 0) {
        char chunk[65536];
        const ssize_t got = ::read(conn.fd, chunk, sizeof(chunk));
        if (got > 0) {
          conn.last_activity = now;
          conn.chunker.append(chunk, static_cast<std::size_t>(got));
          handle_buffered_lines(conn, service, options, tcp, seq);
        } else if (got == 0) {
          // Half-close: an unterminated trailing line still gets answered
          // (getline semantics), then remaining output flushes and we close.
          conn.eof = true;
          std::string line;
          if (conn.chunker.flush_eof(&line) && !blank_line(line)) {
            ++seq;
            enqueue_response(conn,
                             handle_request_line(service, options, line, seq));
          }
          if (conn.pending_out() == 0) conn.closed = true;
        } else if (errno != EINTR && errno != EAGAIN) {
          conn.closed = true;
        }
      }
      if (!conn.closed && (revents & POLLOUT) != 0) flush_output(conn);
      if (!conn.closed && conn.eof && conn.pending_out() == 0) {
        conn.closed = true;
      }
      if (!conn.closed && (revents & (POLLERR | POLLNVAL)) != 0) {
        conn.closed = true;
      }
      // POLLHUP with readable data is handled by the read path above; a
      // bare hangup with nothing pending means the peer is simply gone.
      if (!conn.closed && (revents & POLLHUP) != 0 &&
          (revents & POLLIN) == 0) {
        conn.closed = true;
      }
    }

    if (tcp.idle_timeout_ms > 0) {
      for (Conn& conn : conns) {
        if (conn.closed || conn.pending_out() > 0) continue;
        const auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 now - conn.last_activity)
                                 .count();
        if (idle_ms >= tcp.idle_timeout_ms) conn.closed = true;
      }
    }

    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i].closed) {
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // Graceful drain: responses already produced are flushed (bounded), then
  // everything closes so a restart can bind immediately.
  for (Conn& conn : conns) {
    for (int attempt = 0; attempt < 20 && conn.pending_out() > 0; ++attempt) {
      pollfd pfd{conn.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 50) > 0) flush_output(conn);
    }
    ::close(conn.fd);
  }
  ::close(listener_fd);
  return 0;
}

}  // namespace dmis::svc::net
