// TCP transport for the serving protocol (DESIGN.md §16).
//
// `dmis serve --tcp host:port` speaks the exact line-delimited JSON
// protocol of the stdin and Unix-socket front ends, over a poll(2)-based
// connection loop:
//   * many concurrent connections, each with its own LineChunker for
//     partial-read reassembly and its own pending-output buffer for
//     partial writes (sends never block the loop: EAGAIN parks the
//     remainder until POLLOUT);
//   * request handling is synchronous and interleaves across connections
//     at line granularity — the service's cache/scheduler semantics are
//     identical to the other transports;
//   * idle connections are closed after idle_timeout_ms of silence;
//   * oversized request lines are answered with a protocol error response
//     and the stream resynchronizes at the next newline;
//   * SIGINT/SIGTERM (install_drain_handlers) drain gracefully: the
//     in-flight request finishes, buffered responses are flushed, every
//     socket is closed, and serve_tcp returns 0 so the caller can seal the
//     store and emit the final stats line.
//
// Port 0 binds an ephemeral port — local_endpoint() reports what the
// kernel picked, and the CLI announces it as a {"listening":...} line on
// stdout so supervisors (the router, smoke scripts) can find the worker.
#pragma once

#include <cstdint>
#include <string>

#include "svc/frontend.h"

namespace dmis::svc::net {

struct TcpEndpoint {
  std::string host;  ///< IPv4 dotted quad or a name resolvable by inet_pton
  std::uint16_t port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port". Throws PreconditionError on malformed specs.
TcpEndpoint parse_endpoint(const std::string& spec);

/// Binds and listens (SO_REUSEADDR; port 0 = ephemeral). Returns the
/// listener fd; throws EnvironmentError on failure.
int listen_tcp(const TcpEndpoint& endpoint);

/// The locally bound address of a socket — resolves ephemeral ports.
TcpEndpoint local_endpoint(int fd);

/// Blocking connect. Returns the fd, or -1 with `error` filled.
int connect_tcp(const TcpEndpoint& endpoint, std::string* error);

struct TcpServeOptions {
  int idle_timeout_ms = 60'000;  ///< 0 disables idle reaping
  std::size_t max_line_bytes = 8u << 20;
  int max_connections = 64;  ///< accept pauses (backlog holds) at the cap
};

/// The poll loop described in the file comment. Takes ownership of
/// `listener_fd` (closed before returning). Returns 0 on graceful drain or
/// nonzero on an unrecoverable poll-loop failure.
int serve_tcp(int listener_fd, ExecutionService& service,
              const FrontEndOptions& options, const TcpServeOptions& tcp);

}  // namespace dmis::svc::net
