#include "svc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "runtime/parallel.h"
#include "util/check.h"

namespace dmis::svc {

const char* job_priority_name(JobPriority priority) {
  switch (priority) {
    case JobPriority::kInteractive: return "interactive";
    case JobPriority::kBatch: return "batch";
    case JobPriority::kBackground: return "background";
  }
  return "?";
}

std::optional<JobPriority> job_priority_from_name(const std::string& name) {
  if (name == "interactive") return JobPriority::kInteractive;
  if (name == "batch") return JobPriority::kBatch;
  if (name == "background") return JobPriority::kBackground;
  return std::nullopt;
}

bool Ticket::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

const JobResult& Ticket::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return result_;
}

void Ticket::complete(JobResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = std::move(result);
    done_ = true;
  }
  done_cv_.notify_all();
}

Scheduler::Scheduler(SchedulerOptions options)
    : workers_count_(std::max(options.workers, 1)),
      threads_per_job_(WorkerPool::lanes_per_worker(options.total_threads,
                                                    options.workers)),
      queue_capacity_(std::max<std::size_t>(options.queue_capacity, 1)),
      max_retries_(std::max(options.max_retries, 0)),
      retry_backoff_s_(std::max(options.retry_backoff_s, 0.0)) {
  workers_.reserve(static_cast<std::size_t>(workers_count_));
  for (int w = 0; w < workers_count_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  std::vector<std::shared_ptr<Ticket>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (auto& queue : queues_) {
      for (auto& ticket : queue) orphaned.push_back(std::move(ticket));
      queue.clear();
    }
    stats_.cancelled += orphaned.size();
    stats_.completed += orphaned.size();
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Complete orphans outside the scheduler lock: waiters wake immediately
  // and never deadlock against the dying scheduler.
  for (const auto& ticket : orphaned) {
    ticket->token_.cancel();
    ticket->complete(make_cancelled_result(ticket->spec_,
                                           CancelToken::Reason::kCancelled));
  }
  for (std::thread& t : workers_) t.join();
}

std::size_t Scheduler::queued_locked() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

std::shared_ptr<Ticket> Scheduler::admit(JobSpec spec, JobPriority priority,
                                         std::optional<double> deadline_s,
                                         bool blocking) {
  const auto klass = static_cast<std::size_t>(priority);
  DMIS_CHECK(klass < kPriorityClasses,
             "bad priority class " << static_cast<int>(priority));
  auto ticket =
      std::shared_ptr<Ticket>(new Ticket(std::move(spec), priority));
  if (deadline_s.has_value()) ticket->token_.set_deadline_after(*deadline_s);

  std::unique_lock<std::mutex> lock(mutex_);
  DMIS_CHECK(!shutdown_, "submit on a shut-down scheduler");
  if (blocking) {
    space_cv_.wait(lock, [this] {
      return shutdown_ || queued_locked() < queue_capacity_;
    });
    DMIS_CHECK(!shutdown_, "scheduler shut down while awaiting admission");
  } else if (queued_locked() >= queue_capacity_) {
    ++stats_.rejected;
    return nullptr;
  }
  queues_[klass].push_back(ticket);
  ++stats_.submitted;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_locked());
  lock.unlock();
  work_cv_.notify_one();
  return ticket;
}

std::shared_ptr<Ticket> Scheduler::submit(JobSpec spec, JobPriority priority,
                                          std::optional<double> deadline_s) {
  return admit(std::move(spec), priority, deadline_s, /*blocking=*/true);
}

std::shared_ptr<Ticket> Scheduler::try_submit(
    JobSpec spec, JobPriority priority, std::optional<double> deadline_s) {
  return admit(std::move(spec), priority, deadline_s, /*blocking=*/false);
}

std::shared_ptr<Ticket> Scheduler::pop_locked() {
  for (auto& queue : queues_) {  // strict priority: class 0 first
    if (!queue.empty()) {
      std::shared_ptr<Ticket> ticket = std::move(queue.front());
      queue.pop_front();
      return ticket;
    }
  }
  return nullptr;
}

void Scheduler::worker_loop() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return shutdown_ || queued_locked() > 0; });
      if (shutdown_ && queued_locked() == 0) return;
      ticket = pop_locked();
    }
    space_cv_.notify_one();
    if (ticket == nullptr) continue;

    JobResult result;
    const CancelToken::Reason pre = ticket->token_.reason();
    bool executed = false;
    std::uint64_t attempts_retried = 0;
    if (pre != CancelToken::Reason::kNone) {
      // Expired while queued: complete without running — an abandoned or
      // impossible deadline must not occupy a worker.
      result = make_cancelled_result(ticket->spec_, pre);
    } else {
      result = execute_job(ticket->spec_, threads_per_job_, &ticket->token_);
      executed = true;
      // The retry half of the error taxonomy: environmental failures may
      // heal (a file reappears, memory frees up), so re-run up to
      // max_retries_ times with a deterministic linear backoff.
      // Deterministic failures never reach here — execute_job marks only
      // kEnvError retryable.
      for (int attempt = 1;
           result.status == JobStatus::kEnvError && attempt <= max_retries_ &&
           ticket->token_.reason() == CancelToken::Reason::kNone;
           ++attempt) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            retry_backoff_s_ * static_cast<double>(attempt)));
        ++attempts_retried;
        result =
            execute_job(ticket->spec_, threads_per_job_, &ticket->token_);
      }
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (executed) ++stats_.executed;
      ++stats_.completed;
      stats_.retries += attempts_retried;
      if (result.status == JobStatus::kEnvError) ++stats_.env_errors;
      if (result.status == JobStatus::kCancelled) {
        const CancelToken::Reason reason = ticket->token_.reason();
        if (reason == CancelToken::Reason::kDeadline) {
          ++stats_.deadline_expired;
        } else {
          ++stats_.cancelled;
        }
      }
    }
    ticket->complete(std::move(result));
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TextTable Scheduler::stats_table() const {
  const SchedulerStats s = stats();
  TextTable table({"metric", "value"});
  table.row().cell("jobs_submitted").cell(s.submitted);
  table.row().cell("jobs_executed").cell(s.executed);
  table.row().cell("jobs_completed").cell(s.completed);
  table.row().cell("jobs_cancelled").cell(s.cancelled);
  table.row().cell("jobs_deadline_expired").cell(s.deadline_expired);
  table.row().cell("jobs_rejected").cell(s.rejected);
  table.row().cell("jobs_retried").cell(s.retries);
  table.row().cell("jobs_env_error").cell(s.env_errors);
  table.row().cell("max_queue_depth").cell(s.max_queue_depth);
  return table;
}

}  // namespace dmis::svc
