// Job scheduler of the batch execution service.
//
// A bounded admission queue with three priority classes feeding a fixed
// worker pool. Design points:
//   * Backpressure, not unbounded buffering: `submit` blocks while the queue
//     is at capacity (`try_submit` refuses instead), so a producer can never
//     grow memory without bound — admission is the memory ceiling.
//   * Priorities are strict with FIFO within a class: interactive beats
//     batch beats background. Starvation of lower classes under sustained
//     higher-class load is the documented, intended policy.
//   * One thread budget: the scheduler runs `workers` jobs concurrently and
//     gives each job `WorkerPool::lanes_per_worker(total_threads, workers)`
//     intra-job lanes, so concurrent jobs plus deterministic node stepping
//     never oversubscribe (runtime/parallel.h).
//   * Cancellation/deadline never stalls the queue: an expired ticket is
//     completed as kCancelled without executing, and a running job is
//     aborted at its next round boundary by the per-job observer
//     (svc/job.h). Determinism makes scheduling order irrelevant to result
//     *content* — only latency depends on the queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "svc/job.h"
#include "util/table.h"

namespace dmis::svc {

enum class JobPriority : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};
inline constexpr std::size_t kPriorityClasses = 3;

const char* job_priority_name(JobPriority priority);
/// Parses "interactive" / "batch" / "background"; nullopt otherwise.
std::optional<JobPriority> job_priority_from_name(const std::string& name);

struct SchedulerOptions {
  int workers = 1;            ///< concurrent jobs
  int total_threads = 1;      ///< budget shared by all concurrent jobs
  std::size_t queue_capacity = 256;  ///< admission bound (queued, not running)
  /// Bounded retry of *environmental* failures (kEnvError) — deterministic
  /// failures re-run to the identical failure and are never retried. Each
  /// retry waits attempt * retry_backoff_s (deterministic, not jittered: a
  /// reproducible schedule is worth more here than thundering-herd
  /// avoidance in a single-process service).
  int max_retries = 2;
  double retry_backoff_s = 0.01;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;   ///< jobs that actually ran
  std::uint64_t completed = 0;  ///< tickets finished (any status)
  std::uint64_t cancelled = 0;  ///< explicit cancel or shutdown
  std::uint64_t deadline_expired = 0;
  std::uint64_t rejected = 0;   ///< try_submit refusals (queue full)
  std::uint64_t retries = 0;    ///< env-error re-executions (kEnvError only)
  std::uint64_t env_errors = 0;  ///< jobs that ended kEnvError after retries
  std::uint64_t max_queue_depth = 0;

  friend bool operator==(const SchedulerStats&, const SchedulerStats&) =
      default;
};

/// Handle to one submitted job. Created only by Scheduler; shared between
/// the submitter and the worker that completes it.
class Ticket {
 public:
  const JobSpec& spec() const { return spec_; }
  JobPriority priority() const { return priority_; }

  /// Requests cancellation: a queued job completes as kCancelled without
  /// running; a running job stops at its next round boundary.
  void cancel() { token_.cancel(); }

  bool done() const;
  /// Blocks until the job completes. The reference stays valid for the
  /// ticket's lifetime.
  const JobResult& wait();

 private:
  friend class Scheduler;
  Ticket(JobSpec spec, JobPriority priority) noexcept
      : spec_(std::move(spec)), priority_(priority) {}

  void complete(JobResult result);

  JobSpec spec_;
  JobPriority priority_;
  CancelToken token_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  JobResult result_;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  /// Cancels everything still queued, waits for running jobs, joins workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int worker_count() const { return workers_count_; }
  /// Intra-job WorkerPool lanes each job gets (the budget split).
  int threads_per_job() const { return threads_per_job_; }

  /// Admits a job, blocking while the queue is full (backpressure).
  /// `deadline_s`, when set, arms a wall-clock deadline counted from
  /// admission.
  std::shared_ptr<Ticket> submit(JobSpec spec,
                                 JobPriority priority = JobPriority::kBatch,
                                 std::optional<double> deadline_s = {});

  /// Non-blocking admission; nullptr when the queue is at capacity (the
  /// refusal is counted in stats().rejected).
  std::shared_ptr<Ticket> try_submit(
      JobSpec spec, JobPriority priority = JobPriority::kBatch,
      std::optional<double> deadline_s = {});

  SchedulerStats stats() const;
  TextTable stats_table() const;

 private:
  std::shared_ptr<Ticket> admit(JobSpec spec, JobPriority priority,
                                std::optional<double> deadline_s,
                                bool blocking);
  void worker_loop();
  std::shared_ptr<Ticket> pop_locked();
  std::size_t queued_locked() const;

  int workers_count_;
  int threads_per_job_;
  std::size_t queue_capacity_;
  int max_retries_;
  double retry_backoff_s_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for jobs / shutdown
  std::condition_variable space_cv_;  // submitters wait for queue space
  std::deque<std::shared_ptr<Ticket>> queues_[kPriorityClasses];
  bool shutdown_ = false;
  SchedulerStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace dmis::svc
