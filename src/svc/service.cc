#include "svc/service.h"

#include <utility>

namespace dmis::svc {

ExecutionService::ExecutionService(ServiceOptions options)
    : store_(options.store_dir.empty()
                 ? nullptr
                 : std::make_unique<ResultStore>(StoreOptions{
                       options.store_dir, options.store_segment_bytes})),
      cache_(options.cache_entries, options.cache_shards),
      scheduler_(options.scheduler) {
  if (store_ != nullptr) cache_.attach_store(store_.get());
}

ExecutionService::Pending ExecutionService::submit(
    JobSpec spec, JobPriority priority, std::optional<double> deadline_s) {
  Pending pending;
  pending.start_ = std::chrono::steady_clock::now();
  pending.key_ = job_key(spec);
  if (std::optional<std::string> cached = cache_.get(pending.key_)) {
    pending.cached_ = std::move(*cached);
    return pending;
  }
  pending.ticket_ = scheduler_.submit(std::move(spec), priority, deadline_s);
  return pending;
}

Completion ExecutionService::wait(Pending& pending) {
  Completion out;
  out.key = pending.key_;
  if (pending.ticket_ == nullptr) {
    out.status = JobStatus::kOk;  // only OK results are ever cached
    out.cache_hit = true;
    out.canonical = std::move(pending.cached_);
  } else {
    const JobResult& result = pending.ticket_->wait();
    out.status = result.status;
    out.canonical = result.canonical;
    out.bundle_text = result.bundle_text;
    if (result.status == JobStatus::kOk) {
      cache_.put(pending.key_, result.canonical);
    }
  }
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - pending.start_)
                      .count();
  latency_.record_us(out.elapsed_s * 1e6);
  return out;
}

Completion ExecutionService::run(JobSpec spec, JobPriority priority,
                                 std::optional<double> deadline_s) {
  Pending pending = submit(std::move(spec), priority, deadline_s);
  return wait(pending);
}

}  // namespace dmis::svc
