// Execution service: scheduler + result cache behind one submit/wait API.
//
// The cache sits in front of admission: a submit whose JobKey is cached
// completes immediately with the stored canonical bytes — no queue slot, no
// worker, no thread budget. Misses go through the scheduler; an OK result is
// inserted into the cache when the waiter collects it. Failed, cancelled and
// rejected jobs are never cached ("no poisoning"): a deadline that fired
// once must not make the answer unavailable forever, and a faulted failure
// is re-derivable from its bundle instead.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "svc/cache.h"
#include "svc/job.h"
#include "svc/scheduler.h"
#include "util/table.h"

namespace dmis::svc {

struct ServiceOptions {
  SchedulerOptions scheduler;
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;
};

/// Terminal outcome of one service request.
struct Completion {
  JobKey key;
  JobStatus status = JobStatus::kOk;
  bool cache_hit = false;
  /// Canonical result JSON — byte-identical for identical specs, whether it
  /// came from the cache or a fresh execution.
  std::string canonical;
  std::string bundle_text;  ///< set iff status == kFailed
  double elapsed_s = 0.0;   ///< serving-side; never part of canonical bytes
};

class ExecutionService {
 public:
  explicit ExecutionService(ServiceOptions options);

  /// In-flight request: either an immediate cache hit or a scheduler ticket.
  class Pending {
   public:
    bool cache_hit() const { return ticket_ == nullptr; }
    void cancel() {
      if (ticket_ != nullptr) ticket_->cancel();
    }

   private:
    friend class ExecutionService;
    JobKey key_;
    std::string cached_;  // canonical bytes when hit
    std::shared_ptr<Ticket> ticket_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Cache lookup, then admission on miss (blocking when the queue is full —
  /// the scheduler's backpressure applies to the service API unchanged).
  Pending submit(JobSpec spec, JobPriority priority = JobPriority::kBatch,
                 std::optional<double> deadline_s = {});

  /// Blocks until done; inserts OK results into the cache.
  Completion wait(Pending& pending);

  /// submit + wait.
  Completion run(JobSpec spec, JobPriority priority = JobPriority::kBatch,
                 std::optional<double> deadline_s = {});

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

 private:
  ResultCache cache_;
  Scheduler scheduler_;
};

}  // namespace dmis::svc
