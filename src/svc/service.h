// Execution service: scheduler + result cache behind one submit/wait API.
//
// The cache sits in front of admission: a submit whose JobKey is cached
// completes immediately with the stored canonical bytes — no queue slot, no
// worker, no thread budget. Misses go through the scheduler; an OK result is
// inserted into the cache when the waiter collects it. Failed, cancelled and
// rejected jobs are never cached ("no poisoning"): a deadline that fired
// once must not make the answer unavailable forever, and a faulted failure
// is re-derivable from its bundle instead.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "svc/cache.h"
#include "svc/job.h"
#include "svc/scheduler.h"
#include "svc/store.h"
#include "util/stats.h"
#include "util/table.h"

namespace dmis::svc {

struct ServiceOptions {
  SchedulerOptions scheduler;
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;
  /// Non-empty: open (recovering) a durable ResultStore there and attach it
  /// under the LRU — RAM misses probe disk, OK results write through.
  std::string store_dir;
  std::uint64_t store_segment_bytes = 4u << 20;
};

/// Terminal outcome of one service request.
struct Completion {
  JobKey key;
  JobStatus status = JobStatus::kOk;
  bool cache_hit = false;
  /// Canonical result JSON — byte-identical for identical specs, whether it
  /// came from the cache or a fresh execution.
  std::string canonical;
  std::string bundle_text;  ///< set iff status == kFailed
  double elapsed_s = 0.0;   ///< serving-side; never part of canonical bytes
};

class ExecutionService {
 public:
  explicit ExecutionService(ServiceOptions options);

  /// In-flight request: either an immediate cache hit or a scheduler ticket.
  class Pending {
   public:
    bool cache_hit() const { return ticket_ == nullptr; }
    void cancel() {
      if (ticket_ != nullptr) ticket_->cancel();
    }

   private:
    friend class ExecutionService;
    JobKey key_;
    std::string cached_;  // canonical bytes when hit
    std::shared_ptr<Ticket> ticket_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Cache lookup, then admission on miss (blocking when the queue is full —
  /// the scheduler's backpressure applies to the service API unchanged).
  Pending submit(JobSpec spec, JobPriority priority = JobPriority::kBatch,
                 std::optional<double> deadline_s = {});

  /// Blocks until done; inserts OK results into the cache.
  Completion wait(Pending& pending);

  /// submit + wait.
  Completion run(JobSpec spec, JobPriority priority = JobPriority::kBatch,
                 std::optional<double> deadline_s = {});

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  /// The durable tier, or nullptr when the service runs RAM-only.
  ResultStore* store() { return store_.get(); }
  const ResultStore* store() const { return store_.get(); }

  /// Wall-latency histogram over every wait() (submit-to-completion, cache
  /// hits included). Feeds the "latency" section of the stats line.
  const LatencyHistogram& latency() const { return latency_; }

  /// Drain-time durability point: flush + seal the store (no-op without
  /// one). Called by the frontends after the last in-flight job completes.
  void seal_store() {
    if (store_ != nullptr) store_->seal();
  }

 private:
  // Destruction order matters: scheduler_ first (declared last) so no
  // worker is completing into the cache while the cache or its disk tier
  // is going away; cache_ before store_ because it holds a store pointer.
  std::unique_ptr<ResultStore> store_;
  ResultCache cache_;
  Scheduler scheduler_;
  LatencyHistogram latency_;  // atomics only; safe at any destruction point
};

}  // namespace dmis::svc
