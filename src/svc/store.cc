#include "svc/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <tuple>
#include <utility>

#include "rng/mix.h"
#include "util/check.h"

namespace dmis::svc {
namespace {

// Domain-separation tag of the record digest fold ("drs-rcrd").
constexpr std::uint64_t kRecordDigestTag = 0x6472732d72637264ULL;
// A len field above this is garbage, not a record: no canonical result is
// remotely this large, and the cap keeps `32 + len` overflow-free.
constexpr std::uint64_t kMaxPayloadLen = 1ull << 30;

struct StoreHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
};
static_assert(sizeof(StoreHeader) == kStoreHeaderBytes,
              "store segment header must be exactly 16 bytes");

/// Digest over the whole record frame content: length, key, payload bytes
/// (folded in little-endian 8-byte words, same scheme as job keys).
std::uint64_t record_digest(std::uint64_t payload_len, const JobKey& key,
                            const char* payload) {
  std::uint64_t h = mix64(kRecordDigestTag);
  h = mix64(h, payload_len);
  h = mix64(h, key.hi);
  h = mix64(h, key.lo);
  std::uint64_t word = 0;
  int filled = 0;
  for (std::uint64_t i = 0; i < payload_len; ++i) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(payload[i]))
            << (8 * filled);
    if (++filled == 8) {
      h = mix64(h, word);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) h = mix64(h, word);
  return h;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store_u64(char* p, std::uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

/// One complete, digest-valid record found by a scan.
struct ScannedRecord {
  JobKey key;
  std::uint64_t offset;  ///< frame start within the segment
  std::uint64_t payload_len;
};

/// Outcome of scanning one segment's bytes. `valid_end` is the offset just
/// past the last structurally complete record (valid or corrupt) — the
/// truncation point that removes exactly the torn tail and nothing else.
struct SegmentScan {
  bool alien = false;  ///< bad magic/version/endianness — not crash damage
  std::string alien_reason;
  std::uint64_t valid_end = 0;
  std::uint64_t torn_bytes = 0;
  std::uint64_t corrupt_records = 0;
  std::vector<ScannedRecord> records;
};

SegmentScan scan_segment_bytes(const char* data, std::uint64_t size,
                               const std::string& path,
                               std::vector<std::string>* notes) {
  SegmentScan scan;
  const auto note = [&](std::string line) {
    std::fprintf(stderr, "store: %s\n", line.c_str());
    if (notes != nullptr) notes->push_back(std::move(line));
  };
  if (size < kStoreHeaderBytes) {
    // A crash between creat() and the completed header write: the whole
    // file is a torn tail.
    scan.valid_end = 0;
    scan.torn_bytes = size;
    if (size > 0) note(path + ": torn header (" + std::to_string(size) +
                       " bytes) — truncating");
    return scan;
  }
  StoreHeader header{};
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    scan.alien = true;
    scan.alien_reason = path + ": bad magic — not a result-store segment";
    return scan;
  }
  if (header.endian_tag != kStoreEndianTag) {
    scan.alien = true;
    scan.alien_reason =
        path + ": bad endianness tag — written on an incompatible host";
    return scan;
  }
  if (header.version != kStoreVersion) {
    scan.alien = true;
    scan.alien_reason = path + ": unsupported segment version " +
                        std::to_string(header.version) +
                        " (this build reads version " +
                        std::to_string(kStoreVersion) + ")";
    return scan;
  }

  std::uint64_t o = kStoreHeaderBytes;
  scan.valid_end = o;
  while (o < size) {
    if (size - o < kStoreRecordFrameBytes) {
      scan.torn_bytes = size - o;
      break;
    }
    const std::uint64_t len = load_u64(data + o);
    if (len > kMaxPayloadLen || kStoreRecordFrameBytes + len > size - o) {
      // Either a torn length word or a record whose promised extent runs
      // off the file — indistinguishable from here; both are the tail.
      scan.torn_bytes = size - o;
      break;
    }
    JobKey key;
    key.hi = load_u64(data + o + 8);
    key.lo = load_u64(data + o + 16);
    const char* payload = data + o + 24;
    const std::uint64_t stored = load_u64(payload + len);
    const std::uint64_t end = o + kStoreRecordFrameBytes + len;
    if (record_digest(len, key, payload) != stored) {
      ++scan.corrupt_records;
      note(path + ": digest mismatch at offset " + std::to_string(o) +
           " (key " + key.hex() + ") — skipping record");
    } else {
      scan.records.push_back({key, o, len});
    }
    scan.valid_end = end;
    o = end;
  }
  if (scan.torn_bytes > 0) {
    note(path + ": torn tail of " + std::to_string(scan.torn_bytes) +
         " bytes at offset " + std::to_string(scan.valid_end));
  }
  return scan;
}

/// pread exactly `size` bytes at `offset`; returns false on error or EOF.
bool pread_fully(int fd, char* out, std::size_t size, off_t offset) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::pread(fd, out + got, size - got,
                              offset + static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads all of fd (size bytes) into a buffer; returns false on I/O error.
bool read_all(int fd, std::uint64_t size, std::vector<char>& out) {
  out.resize(static_cast<std::size_t>(size));
  return pread_fully(fd, out.data(), out.size(), 0);
}

/// Ascending list of segment ids present in `dir` (from seg-NNNNNN.drs
/// names). Throws EnvironmentError when the directory cannot be read.
std::vector<std::uint64_t> list_segment_ids(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  DMIS_CHECK_ENV(d != nullptr,
                 "cannot open store directory: " << dir << " ("
                                                 << std::strerror(errno)
                                                 << ")");
  std::vector<std::uint64_t> ids;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != 14 || name.rfind("seg-", 0) != 0 ||
        name.compare(name.size() - 4, 4, ".drs") != 0) {
      continue;
    }
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(name.c_str() + 4, &end, 10);
    if (end == name.c_str() + 10 && id > 0) ids.push_back(id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool write_fully(int fd, const char* data, std::size_t size, off_t offset) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::pwrite(fd, data + sent, size - sent,
                               offset + static_cast<off_t>(sent));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string store_segment_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.drs",
                static_cast<unsigned long long>(id));
  return buf;
}

ResultStore::ResultStore(StoreOptions options) : options_(std::move(options)) {
  DMIS_CHECK(!options_.dir.empty(), "ResultStore needs a directory");
  options_.segment_bytes =
      std::max<std::uint64_t>(options_.segment_bytes, kStoreHeaderBytes +
                                                          kStoreRecordFrameBytes);
  std::lock_guard<std::mutex> lock(mutex_);
  open_dir_locked();
  recover_locked();
}

ResultStore::~ResultStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) {
      ::fsync(seg.fd);
      ::close(seg.fd);
    }
  }
}

void ResultStore::open_dir_locked() {
  struct stat st{};
  if (::stat(options_.dir.c_str(), &st) != 0) {
    DMIS_CHECK_ENV(errno == ENOENT, "cannot stat store directory: "
                                        << options_.dir << " ("
                                        << std::strerror(errno) << ")");
    DMIS_CHECK_ENV(::mkdir(options_.dir.c_str(), 0777) == 0,
                   "cannot create store directory: "
                       << options_.dir << " (" << std::strerror(errno) << ")");
  } else {
    DMIS_CHECK(S_ISDIR(st.st_mode),
               "store path is not a directory: " << options_.dir);
  }
}

ResultStore::Segment ResultStore::open_segment_locked(std::uint64_t id,
                                                      bool create) {
  Segment seg;
  seg.path = options_.dir + "/" + store_segment_name(id);
  const int flags = O_RDWR | (create ? O_CREAT | O_EXCL : 0);
  seg.fd = ::open(seg.path.c_str(), flags, 0666);
  DMIS_CHECK_ENV(seg.fd >= 0, "cannot open store segment: "
                                  << seg.path << " (" << std::strerror(errno)
                                  << ")");
  if (create) {
    StoreHeader header{};
    std::memcpy(header.magic, kStoreMagic, sizeof(kStoreMagic));
    header.version = kStoreVersion;
    header.endian_tag = kStoreEndianTag;
    if (!write_fully(seg.fd, reinterpret_cast<const char*>(&header),
                     sizeof(header), 0)) {
      const int saved = errno;
      ::close(seg.fd);
      DMIS_CHECK_ENV(false, "cannot write store segment header: "
                                << seg.path << " (" << std::strerror(saved)
                                << ")");
    }
    fsync_dir_locked();  // the new directory entry must survive a crash
  }
  seg.size = kStoreHeaderBytes;
  return seg;
}

void ResultStore::fsync_dir_locked() {
  const int dfd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void ResultStore::recover_locked() {
  const std::vector<std::uint64_t> ids = list_segment_ids(options_.dir);
  for (const std::uint64_t id : ids) {
    Segment seg = open_segment_locked(id, /*create=*/false);
    struct stat st{};
    if (::fstat(seg.fd, &st) != 0) {
      const int saved = errno;
      ::close(seg.fd);
      DMIS_CHECK_ENV(false, "cannot stat store segment: "
                                << seg.path << " (" << std::strerror(saved)
                                << ")");
    }
    const auto file_size = static_cast<std::uint64_t>(st.st_size);
    std::vector<char> bytes;
    if (!read_all(seg.fd, file_size, bytes)) {
      const int saved = errno;
      ::close(seg.fd);
      DMIS_CHECK_ENV(false, "cannot read store segment: "
                                << seg.path << " (" << std::strerror(saved)
                                << ")");
    }
    const SegmentScan scan =
        scan_segment_bytes(bytes.data(), file_size, seg.path, nullptr);
    if (scan.alien) {
      ::close(seg.fd);
      DMIS_CHECK(false, scan.alien_reason
                            << " — `dmis store fsck` reports without opening");
    }
    if (scan.valid_end == 0) {
      // Torn header: reclaim the file as an empty segment.
      ::ftruncate(seg.fd, 0);
      StoreHeader header{};
      std::memcpy(header.magic, kStoreMagic, sizeof(kStoreMagic));
      header.version = kStoreVersion;
      header.endian_tag = kStoreEndianTag;
      DMIS_CHECK_ENV(write_fully(seg.fd,
                                 reinterpret_cast<const char*>(&header),
                                 sizeof(header), 0),
                     "cannot rewrite torn segment header: " << seg.path);
      ::fsync(seg.fd);
    } else if (scan.torn_bytes > 0) {
      ::ftruncate(seg.fd, static_cast<off_t>(scan.valid_end));
      ::fsync(seg.fd);
    }
    stats_.torn_bytes_truncated += scan.torn_bytes;
    stats_.corrupt_records_skipped += scan.corrupt_records;
    seg.size = std::max<std::uint64_t>(scan.valid_end, kStoreHeaderBytes);
    const auto segment_index = static_cast<std::uint32_t>(segments_.size());
    for (const ScannedRecord& r : scan.records) {
      const auto [it, inserted] =
          index_.emplace(r.key, RecordLoc{segment_index, r.offset,
                                          r.payload_len});
      if (inserted) {
        ++stats_.recovered_records;
        stats_.payload_bytes += r.payload_len;
      } else {
        ++stats_.duplicate_records;
      }
    }
    segments_.push_back(std::move(seg));
    next_segment_id_ = id + 1;
  }
  if (segments_.empty()) {
    segments_.push_back(open_segment_locked(next_segment_id_, /*create=*/true));
    ++next_segment_id_;
  }
  stats_.segments = segments_.size();
  stats_.records = index_.size();
}

std::optional<std::string> ResultStore::get(const JobKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.reads;
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  const RecordLoc loc = it->second;
  const Segment& seg = segments_[loc.segment];
  std::vector<char> frame(
      static_cast<std::size_t>(kStoreRecordFrameBytes + loc.payload_len));
  const bool ok = seg.fd >= 0 &&
                  pread_fully(seg.fd, frame.data(), frame.size(),
                              static_cast<off_t>(loc.offset));
  const char* payload = frame.data() + 24;
  if (!ok || load_u64(frame.data()) != loc.payload_len ||
      load_u64(frame.data() + 8) != key.hi ||
      load_u64(frame.data() + 16) != key.lo ||
      record_digest(loc.payload_len, key, payload) !=
          load_u64(payload + loc.payload_len)) {
    // Never serve bytes that fail their digest: drop the record and miss.
    ++stats_.read_corrupt;
    stats_.payload_bytes -= loc.payload_len;
    index_.erase(it);
    stats_.records = index_.size();
    std::fprintf(stderr,
                 "store: %s: record for key %s failed digest on read — "
                 "dropped\n",
                 seg.path.c_str(), key.hex().c_str());
    return std::nullopt;
  }
  ++stats_.read_hits;
  return std::string(payload, static_cast<std::size_t>(loc.payload_len));
}

bool ResultStore::contains(const JobKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key) != 0;
}

std::uint64_t ResultStore::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

bool ResultStore::roll_if_needed_locked(std::size_t incoming_bytes) {
  Segment& active = segments_.back();
  if (active.size + incoming_bytes <= options_.segment_bytes ||
      active.size <= kStoreHeaderBytes) {
    return true;
  }
  // Roll: seal the full segment's bytes before any record lands in a new
  // one, so segment order is also durability order.
  ::fsync(active.fd);
  try {
    segments_.push_back(open_segment_locked(next_segment_id_, /*create=*/true));
  } catch (const EnvironmentError& e) {
    // Rolling is an optimization; appending to the oversized segment keeps
    // serving (and durability) intact.
    std::fprintf(stderr, "store: segment roll failed, continuing: %s\n",
                 e.what());
    return false;
  }
  ++next_segment_id_;
  stats_.segments = segments_.size();
  return true;
}

bool ResultStore::append_locked(const JobKey& key,
                                const std::string& payload) {
  if (sealed_) {
    // A put after seal() reopens the active segment (drain is normally the
    // last thing a process does; reopening keeps the API total).
    Segment& active = segments_.back();
    if (active.fd < 0) {
      active.fd = ::open(active.path.c_str(), O_RDWR);
      if (active.fd < 0) {
        ++stats_.append_errors;
        return false;
      }
    }
    sealed_ = false;
  }
  roll_if_needed_locked(kStoreRecordFrameBytes + payload.size());
  Segment& active = segments_.back();
  std::vector<char> frame(kStoreRecordFrameBytes + payload.size());
  store_u64(frame.data(), payload.size());
  store_u64(frame.data() + 8, key.hi);
  store_u64(frame.data() + 16, key.lo);
  std::memcpy(frame.data() + 24, payload.data(), payload.size());
  store_u64(frame.data() + 24 + payload.size(),
            record_digest(payload.size(), key, payload.data()));
  if (!write_fully(active.fd, frame.data(), frame.size(),
                   static_cast<off_t>(active.size))) {
    // Back the partial frame out so the on-disk tail stays a record
    // boundary; if even that fails, recovery truncates it on next open.
    ::ftruncate(active.fd, static_cast<off_t>(active.size));
    ++stats_.append_errors;
    std::fprintf(stderr, "store: append failed on %s (%s)\n",
                 active.path.c_str(), std::strerror(errno));
    return false;
  }
  index_.emplace(key, RecordLoc{
                          static_cast<std::uint32_t>(segments_.size() - 1),
                          active.size, payload.size()});
  active.size += frame.size();
  ++stats_.appends;
  stats_.records = index_.size();
  stats_.payload_bytes += payload.size();
  return true;
}

bool ResultStore::put(const JobKey& key, const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.count(key) != 0) {
    // Determinism: the durable bytes for this key are already exactly
    // `canonical`; rewriting them would only grow the log.
    ++stats_.append_skipped;
    return true;
  }
  return append_locked(key, canonical);
}

void ResultStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!segments_.empty() && segments_.back().fd >= 0) {
    ::fsync(segments_.back().fd);
  }
}

void ResultStore::seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (segments_.empty() || sealed_) return;
  Segment& active = segments_.back();
  if (active.fd >= 0) ::fsync(active.fd);
  sealed_ = true;
}

std::uint64_t ResultStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Stable order: rewrite in (segment, offset) order so compaction is a
  // pure function of the live record set.
  std::vector<std::pair<JobKey, RecordLoc>> live(index_.begin(), index_.end());
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return std::tie(a.second.segment, a.second.offset) <
           std::tie(b.second.segment, b.second.offset);
  });

  std::uint64_t old_bytes = 0;
  for (const Segment& seg : segments_) old_bytes += seg.size;

  std::vector<Segment> fresh;
  std::unordered_map<JobKey, RecordLoc, JobKeyHash> fresh_index;
  fresh.push_back(open_segment_locked(next_segment_id_++, /*create=*/true));
  for (const auto& [key, loc] : live) {
    const Segment& src = segments_[loc.segment];
    std::vector<char> frame(
        static_cast<std::size_t>(kStoreRecordFrameBytes + loc.payload_len));
    const bool ok = pread_fully(src.fd, frame.data(), frame.size(),
                                static_cast<off_t>(loc.offset));
    const char* payload = frame.data() + 24;
    if (!ok || record_digest(loc.payload_len, key, payload) !=
                   load_u64(payload + loc.payload_len)) {
      ++stats_.read_corrupt;
      stats_.payload_bytes -= loc.payload_len;
      std::fprintf(stderr,
                   "store: compact dropped corrupt record for key %s\n",
                   key.hex().c_str());
      continue;
    }
    Segment& dst = fresh.back();
    if (dst.size + frame.size() > options_.segment_bytes &&
        dst.size > kStoreHeaderBytes) {
      ::fsync(dst.fd);
      fresh.push_back(open_segment_locked(next_segment_id_++, /*create=*/true));
    }
    Segment& active = fresh.back();
    DMIS_CHECK_ENV(write_fully(active.fd, frame.data(), frame.size(),
                               static_cast<off_t>(active.size)),
                   "compact write failed on " << active.path);
    fresh_index.emplace(key, RecordLoc{
                                 static_cast<std::uint32_t>(fresh.size() - 1),
                                 active.size, loc.payload_len});
    active.size += frame.size();
  }
  // Durability barrier: every fresh segment is on disk before any old one
  // goes away — a crash in between recovers duplicates, never losses.
  for (const Segment& seg : fresh) ::fsync(seg.fd);
  fsync_dir_locked();
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
    ::unlink(seg.path.c_str());
  }
  fsync_dir_locked();
  segments_ = std::move(fresh);
  index_ = std::move(fresh_index);
  sealed_ = false;
  stats_.segments = segments_.size();
  stats_.records = index_.size();
  std::uint64_t new_bytes = 0;
  for (const Segment& seg : segments_) new_bytes += seg.size;
  return old_bytes > new_bytes ? old_bytes - new_bytes : 0;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TextTable ResultStore::stats_table() const {
  const StoreStats s = stats();
  TextTable table({"metric", "value"});
  table.row().cell("store_segments").cell(s.segments);
  table.row().cell("store_records").cell(s.records);
  table.row().cell("store_payload_bytes").cell(s.payload_bytes);
  table.row().cell("store_recovered_records").cell(s.recovered_records);
  table.row().cell("store_torn_bytes_truncated").cell(s.torn_bytes_truncated);
  table.row().cell("store_corrupt_records_skipped")
      .cell(s.corrupt_records_skipped);
  table.row().cell("store_duplicate_records").cell(s.duplicate_records);
  table.row().cell("store_appends").cell(s.appends);
  table.row().cell("store_append_skipped").cell(s.append_skipped);
  table.row().cell("store_append_errors").cell(s.append_errors);
  table.row().cell("store_reads").cell(s.reads);
  table.row().cell("store_read_hits").cell(s.read_hits);
  table.row().cell("store_read_corrupt").cell(s.read_corrupt);
  return table;
}

StoreFsckReport ResultStore::fsck(const std::string& dir) {
  StoreFsckReport report;
  std::vector<std::uint64_t> ids;
  try {
    ids = list_segment_ids(dir);
  } catch (const EnvironmentError& e) {
    ++report.unrecoverable;
    report.notes.emplace_back(e.what());
    return report;
  }
  std::unordered_map<JobKey, bool, JobKeyHash> seen;
  for (const std::uint64_t id : ids) {
    const std::string path = dir + "/" + store_segment_name(id);
    ++report.segments;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      ++report.unrecoverable;
      report.notes.push_back(path + ": unreadable (" +
                             std::strerror(errno) + ")");
      continue;
    }
    struct stat st{};
    std::vector<char> bytes;
    if (::fstat(fd, &st) != 0 ||
        !read_all(fd, static_cast<std::uint64_t>(st.st_size), bytes)) {
      ++report.unrecoverable;
      report.notes.push_back(path + ": read failed (" +
                             std::strerror(errno) + ")");
      ::close(fd);
      continue;
    }
    ::close(fd);
    const SegmentScan scan = scan_segment_bytes(
        bytes.data(), static_cast<std::uint64_t>(st.st_size), path,
        &report.notes);
    if (scan.alien) {
      ++report.unrecoverable;
      report.notes.push_back(scan.alien_reason);
      continue;
    }
    report.torn_tail_bytes += scan.torn_bytes;
    report.corrupt_records += scan.corrupt_records;
    for (const ScannedRecord& r : scan.records) {
      ++report.valid_records;
      if (seen.emplace(r.key, true).second) {
        ++report.distinct_keys;
        report.payload_bytes += r.payload_len;
      } else {
        ++report.duplicate_records;
      }
    }
  }
  return report;
}

}  // namespace dmis::svc
