// Crash-safe durable result store (DESIGN.md §15).
//
// The disk tier under the sharded LRU result cache: an append-only log of
// (JobKey, canonical result bytes) records across numbered segment files.
// Determinism makes this trivially coherent — a key's bytes are a pure
// function of its spec, so a persisted record is exactly what re-executing
// would produce, forever; there is no invalidation problem, only integrity.
//
// Segment layout (`seg-NNNNNN.drs`, fixed-width little-endian fields):
//
//   offset  size  field
//   ------  ----  ---------------------------------------------
//        0     8  magic: the bytes "DMISRSLT"
//        8     4  version (kStoreVersion)
//       12     4  endianness tag (kStoreEndianTag, written native)
//       16     …  records, back to back
//
// Record framing (32 bytes of frame around the payload):
//
//   u64 payload_len | u64 key.hi | u64 key.lo | payload | u64 digest
//
// where `digest` is a seeded mix64 fold over (len, key, payload bytes).
// Each append is a single write(2) of the whole record; the active segment
// is fsync'd when it rolls at `segment_bytes` and on flush()/seal(), and
// the directory is fsync'd whenever a segment is created, so a sealed
// store survives power loss, and an unsealed one loses at most the
// unsynced tail — never its prefix.
//
// Recovery invariant: a `kill -9` at ANY byte offset recovers a valid
// prefix. The opening scan walks every segment record by record; an
// incomplete record at the tail of the last segment is a *torn tail* and is
// truncated away (counted, stderr-loud); a complete record whose digest
// does not match is *corrupt* and is skipped (counted, stderr-loud) without
// ending the scan. Reads re-verify the digest against the mapped-in bytes,
// so a record that rots after the scan is a miss, never a wrong answer —
// no torn or corrupt record is ever served.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/job.h"
#include "util/table.h"

namespace dmis::svc {

inline constexpr char kStoreMagic[8] = {'D', 'M', 'I', 'S',
                                        'R', 'S', 'L', 'T'};
inline constexpr std::uint32_t kStoreVersion = 1;
inline constexpr std::uint32_t kStoreEndianTag = 0x01020304;
inline constexpr std::size_t kStoreHeaderBytes = 16;
/// Frame bytes around each payload: len + key.hi + key.lo + digest.
inline constexpr std::size_t kStoreRecordFrameBytes = 32;
/// Segment file name for 1-based id `n`: seg-%06u.drs.
std::string store_segment_name(std::uint64_t id);

struct StoreOptions {
  std::string dir;  ///< created if absent; must be a directory
  /// Roll (fsync + start a new segment) once the active segment exceeds
  /// this many bytes. Small values exercise rolling; the default keeps
  /// segment count low for typical result sizes.
  std::uint64_t segment_bytes = 4u << 20;
};

struct StoreStats {
  // Live state after recovery + this process's appends.
  std::uint64_t segments = 0;
  std::uint64_t records = 0;        ///< distinct keys indexed
  std::uint64_t payload_bytes = 0;  ///< sum of indexed payload sizes
  // Recovery-scan outcome of the opening scan.
  std::uint64_t recovered_records = 0;     ///< valid records found on open
  std::uint64_t torn_bytes_truncated = 0;  ///< tail bytes cut by recovery
  std::uint64_t corrupt_records_skipped = 0;
  std::uint64_t duplicate_records = 0;  ///< same key seen again (first wins)
  // Serving counters.
  std::uint64_t appends = 0;
  std::uint64_t append_skipped = 0;  ///< key already durable (no rewrite)
  std::uint64_t append_errors = 0;   ///< I/O failures, non-fatal by contract
  std::uint64_t reads = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t read_corrupt = 0;  ///< digest mismatch on read — never served

  friend bool operator==(const StoreStats&, const StoreStats&) = default;
};

/// Read-only integrity report over a store directory (`dmis store fsck`).
/// Recoverable damage (torn tails, corrupt records) is counted but does not
/// make the store unusable; `unrecoverable` counts segments that cannot be
/// scanned at all (unreadable, bad magic/version/endianness) — zero after
/// any crash of a well-formed store.
struct StoreFsckReport {
  std::uint64_t segments = 0;
  std::uint64_t valid_records = 0;
  std::uint64_t distinct_keys = 0;
  std::uint64_t duplicate_records = 0;
  std::uint64_t corrupt_records = 0;
  std::uint64_t torn_tail_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t unrecoverable = 0;
  std::vector<std::string> notes;  ///< one human-readable line per finding

  bool clean() const { return unrecoverable == 0; }
};

class ResultStore {
 public:
  /// Opens (creating the directory if needed) and runs the recovery scan:
  /// torn tails are truncated in place, corrupt records skipped; both are
  /// reported on stderr and in stats(). Throws EnvironmentError when the
  /// directory cannot be created/read, PreconditionError when a segment is
  /// structurally alien (bad magic/version/endianness) — that is
  /// corruption fsck must surface, not a crash artifact.
  explicit ResultStore(StoreOptions options);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& dir() const { return options_.dir; }

  /// Digest-verified read of `key`'s canonical bytes. A record failing its
  /// digest re-check is dropped from the index and reported as a miss.
  std::optional<std::string> get(const JobKey& key);

  /// Appends (key, canonical). Returns false on I/O failure — durability
  /// degrades, serving must not: the error is counted and the store stays
  /// usable. A key already indexed is skipped (determinism: same key, same
  /// bytes) and reported as success.
  bool put(const JobKey& key, const std::string& canonical);

  bool contains(const JobKey& key) const;
  std::uint64_t record_count() const;

  /// fsync the active segment: everything appended so far is durable.
  void flush();
  /// Drain-time durability point: flush, then close the active segment so
  /// the store directory is quiescent (a subsequent put reopens it).
  void seal();

  /// Rewrites every indexed record into fresh segments and deletes the old
  /// ones — drops corrupt records, duplicates, and torn tails from disk.
  /// New segments are fully written and fsync'd before any old segment is
  /// unlinked, so a crash mid-compact never loses indexed records (at
  /// worst the next recovery sees duplicates). Returns bytes reclaimed.
  std::uint64_t compact();

  StoreStats stats() const;
  TextTable stats_table() const;

  /// Read-only scan of `dir` (no truncation, no repair) — `dmis store
  /// fsck`. Never throws on damaged segments; they are reported instead.
  static StoreFsckReport fsck(const std::string& dir);

 private:
  struct RecordLoc {
    std::uint32_t segment;  ///< index into segments_
    std::uint64_t offset;   ///< of the record frame start
    std::uint64_t payload_len;
  };
  struct Segment {
    std::string path;
    int fd = -1;  ///< O_RDWR; active segment appends, all segments pread
    std::uint64_t size = kStoreHeaderBytes;
  };

  void open_dir_locked();
  void recover_locked();
  Segment open_segment_locked(std::uint64_t id, bool create);
  bool roll_if_needed_locked(std::size_t incoming_bytes);
  bool append_locked(const JobKey& key, const std::string& payload);
  void fsync_dir_locked();

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::vector<Segment> segments_;  ///< ascending id order; back() is active
  std::uint64_t next_segment_id_ = 1;
  bool sealed_ = false;
  std::unordered_map<JobKey, RecordLoc, JobKeyHash> index_;
  StoreStats stats_;
};

}  // namespace dmis::svc
