// Small bit-math helpers shared across the simulator.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace dmis {

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t x) {
  DMIS_CHECK_CX(x >= 1, "ceil_log2 undefined for 0");
  return (x == 1) ? 0 : std::bit_width(x - 1);
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  DMIS_CHECK_CX(x >= 1, "floor_log2 undefined for 0");
  return std::bit_width(x) - 1;
}

/// Number of bits needed to represent values in [0, n); at least 1.
constexpr int bits_for_range(std::uint64_t n) {
  DMIS_CHECK_CX(n >= 1, "empty range");
  return (n <= 2) ? 1 : ceil_log2(n);
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  DMIS_CHECK_CX(b > 0, "division by zero");
  return (a + b - 1) / b;
}

}  // namespace dmis
