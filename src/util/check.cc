#include "util/check.h"

namespace dmis::detail {
namespace {

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line, const std::string& msg) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  return oss.str();
}

}  // namespace

void throw_precondition_failure(const char* expr, const char* file, int line,
                                const std::string& msg) {
  throw PreconditionError(
      format_failure("precondition", expr, file, line, msg));
}

void throw_invariant_failure(const char* expr, const char* file, int line,
                             const std::string& msg) {
  throw InvariantError(format_failure("invariant", expr, file, line, msg));
}

}  // namespace dmis::detail
