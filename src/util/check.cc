#include "util/check.h"

namespace dmis {
namespace {

thread_local FailureSite t_site;

std::string format_failure(const char* kind, const char* expr,
                           const char* file, int line, const std::string& msg,
                           const FailureSite& site) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  if (site.known()) {
    oss << " [site";
    if (site.engine != nullptr) oss << " engine=" << site.engine;
    if (site.round >= 0) oss << " round=" << site.round;
    if (site.node >= 0) oss << " node=" << site.node;
    if (site.message_type != nullptr) oss << " type=" << site.message_type;
    oss << "]";
  }
  return oss.str();
}

}  // namespace

CheckScope::CheckScope(const char* engine) : saved_(t_site) {
  t_site = FailureSite{};
  t_site.engine = engine;
}

CheckScope::~CheckScope() { t_site = saved_; }

void CheckScope::set_round(std::uint64_t round) {
  t_site.round = static_cast<std::int64_t>(round);
}

void CheckScope::set_node(std::int64_t node) { t_site.node = node; }

void CheckScope::set_message_type(const char* name) {
  t_site.message_type = name;
}

const FailureSite& CheckScope::current() { return t_site; }

namespace detail {

void throw_precondition_failure(const char* expr, const char* file, int line,
                                const std::string& msg) {
  const FailureSite site = CheckScope::current();
  throw PreconditionError(
      format_failure("precondition", expr, file, line, msg, site), site);
}

void throw_environment_failure(const char* expr, const char* file, int line,
                               const std::string& msg) {
  const FailureSite site = CheckScope::current();
  throw EnvironmentError(
      format_failure("environment", expr, file, line, msg, site), site);
}

void throw_invariant_failure(const char* expr, const char* file, int line,
                             const std::string& msg) {
  const FailureSite site = CheckScope::current();
  throw InvariantError(format_failure("invariant", expr, file, line, msg, site),
                       site);
}

}  // namespace detail
}  // namespace dmis
