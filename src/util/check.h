// Runtime precondition and invariant checking.
//
// The simulator is a *model checker* as much as a library: violating a model
// constraint (e.g. a CONGEST message wider than B bits, or a routing batch
// breaking Lenzen's precondition) must fail loudly, in every build type.
// Checks are therefore always on; they are not NDEBUG-gated.
//
//   DMIS_CHECK(cond, "message " << value);   // caller error -> std::invalid_argument
//   DMIS_ASSERT(cond, "message " << value);  // internal bug  -> std::logic_error
//
// Failures carry a structured FailureSite (engine, round, node, message
// type) when the failing code runs inside a CheckScope — engines open one
// around node stepping and packet decoding, so a fault-plane-induced decode
// failure names the exact delivery that was poisoned. The site is appended
// to the what() text and exposed as a typed accessor for repro bundles.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dmis {

/// Structured location of a failing check. Pointers must be string literals
/// (or other static storage): the site is copied into exceptions that may
/// outlive any dynamic string. Negative / null fields mean "unknown".
struct FailureSite {
  const char* engine = nullptr;        ///< e.g. "congest", "beep", "clique"
  std::int64_t round = -1;             ///< engine round being executed
  std::int64_t node = -1;              ///< node whose code/delivery failed
  const char* message_type = nullptr;  ///< wire_message_type_name(...)

  bool known() const {
    return engine != nullptr || round >= 0 || node >= 0 ||
           message_type != nullptr;
  }
};

/// Thrown by DMIS_CHECK when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
  PreconditionError(const std::string& msg, const FailureSite& site)
      : std::invalid_argument(msg), site_(site) {}
  const FailureSite& site() const { return site_; }

 private:
  FailureSite site_{};
};

/// Thrown by DMIS_CHECK_ENV when an *environmental* precondition fails: the
/// spec/request is fine but the world is not — an unreadable graph file,
/// store or bundle I/O, exhausted memory. The distinction is the service's
/// retry taxonomy (DESIGN.md §15): deterministic failures are never retried
/// (re-running reproduces them bit for bit), environmental ones get bounded
/// retry with deterministic backoff and a "retryable":true marker in error
/// responses. Subclasses PreconditionError so call sites that only care
/// about "caller-visible failure" keep working unchanged.
class EnvironmentError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// Thrown by DMIS_ASSERT when an internal invariant is broken (a bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
  InvariantError(const std::string& msg, const FailureSite& site)
      : std::logic_error(msg), site_(site) {}
  const FailureSite& site() const { return site_; }

 private:
  FailureSite site_{};
};

/// RAII annotation of the currently executing site (thread-local, so each
/// WorkerPool lane carries its own). The constructor snapshots the enclosing
/// site and starts a fresh one for `engine`; the setters refine it as the
/// engine iterates (cheap enough for per-node granularity in hot loops);
/// the destructor restores the enclosing site.
class CheckScope {
 public:
  explicit CheckScope(const char* engine);
  ~CheckScope();
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;

  static void set_round(std::uint64_t round);
  static void set_node(std::int64_t node);
  static void set_message_type(const char* name);

  /// The innermost active site of this thread (all-unknown when none).
  static const FailureSite& current();

 private:
  FailureSite saved_;
};

namespace detail {

[[noreturn]] void throw_precondition_failure(const char* expr, const char* file,
                                             int line, const std::string& msg);
[[noreturn]] void throw_environment_failure(const char* expr, const char* file,
                                            int line, const std::string& msg);
[[noreturn]] void throw_invariant_failure(const char* expr, const char* file,
                                          int line, const std::string& msg);

}  // namespace detail
}  // namespace dmis

// Constexpr-friendly precondition check (C++20 constexpr bodies cannot hold
// an ostringstream). The message must be a string literal. Throws without a
// FailureSite: these checks must stay evaluable at compile time.
#define DMIS_CHECK_CX(cond, literal_msg)                      \
  do {                                                        \
    if (!(cond)) [[unlikely]] {                               \
      throw ::dmis::PreconditionError(literal_msg);           \
    }                                                         \
  } while (false)

#define DMIS_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream dmis_check_oss_;                                    \
      dmis_check_oss_ << msg; /* NOLINT */                                   \
      ::dmis::detail::throw_precondition_failure(#cond, __FILE__, __LINE__,  \
                                                 dmis_check_oss_.str());     \
    }                                                                        \
  } while (false)

// Environmental precondition: same loudness as DMIS_CHECK, but the thrown
// type is EnvironmentError — the retryable class of the error taxonomy.
#define DMIS_CHECK_ENV(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream dmis_check_oss_;                                    \
      dmis_check_oss_ << msg; /* NOLINT */                                   \
      ::dmis::detail::throw_environment_failure(#cond, __FILE__, __LINE__,   \
                                                dmis_check_oss_.str());      \
    }                                                                        \
  } while (false)

#define DMIS_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream dmis_assert_oss_;                                   \
      dmis_assert_oss_ << msg; /* NOLINT */                                  \
      ::dmis::detail::throw_invariant_failure(#cond, __FILE__, __LINE__,     \
                                              dmis_assert_oss_.str());       \
    }                                                                        \
  } while (false)
