// Runtime precondition and invariant checking.
//
// The simulator is a *model checker* as much as a library: violating a model
// constraint (e.g. a CONGEST message wider than B bits, or a routing batch
// breaking Lenzen's precondition) must fail loudly, in every build type.
// Checks are therefore always on; they are not NDEBUG-gated.
//
//   DMIS_CHECK(cond, "message " << value);   // caller error -> std::invalid_argument
//   DMIS_ASSERT(cond, "message " << value);  // internal bug  -> std::logic_error
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dmis {

/// Thrown by DMIS_CHECK when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by DMIS_ASSERT when an internal invariant is broken (a bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_precondition_failure(const char* expr, const char* file,
                                             int line, const std::string& msg);
[[noreturn]] void throw_invariant_failure(const char* expr, const char* file,
                                          int line, const std::string& msg);

}  // namespace detail
}  // namespace dmis

// Constexpr-friendly precondition check (C++20 constexpr bodies cannot hold
// an ostringstream). The message must be a string literal.
#define DMIS_CHECK_CX(cond, literal_msg)                      \
  do {                                                        \
    if (!(cond)) [[unlikely]] {                               \
      throw ::dmis::PreconditionError(literal_msg);           \
    }                                                         \
  } while (false)

#define DMIS_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream dmis_check_oss_;                                    \
      dmis_check_oss_ << msg; /* NOLINT */                                   \
      ::dmis::detail::throw_precondition_failure(#cond, __FILE__, __LINE__,  \
                                                 dmis_check_oss_.str());     \
    }                                                                        \
  } while (false)

#define DMIS_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      std::ostringstream dmis_assert_oss_;                                   \
      dmis_assert_oss_ << msg; /* NOLINT */                                  \
      ::dmis::detail::throw_invariant_failure(#cond, __FILE__, __LINE__,     \
                                              dmis_assert_oss_.str());       \
    }                                                                        \
  } while (false)
