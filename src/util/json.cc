#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace dmis::json {
namespace {

constexpr int kMaxDepth = 64;

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// True iff `s` is exactly one valid JSON number token.
bool is_number_token(std::string_view s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size() || !is_digit(s[i])) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (i < s.size() && is_digit(s[i])) ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || !is_digit(s[i])) return false;
    while (i < s.size() && is_digit(s[i])) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || !is_digit(s[i])) return false;
    while (i < s.size() && is_digit(s[i])) ++i;
  }
  return i == s.size();
}

}  // namespace

Value Value::null() { return Value(); }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(std::uint64_t n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::number(std::int64_t n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::number(double d) {
  DMIS_CHECK(d == d && d - d == 0.0, "JSON cannot represent nan/inf");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  Value v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = buf;
  return v;
}

Value Value::number_token(std::string token) {
  DMIS_CHECK(is_number_token(token), "not a JSON number token: " << token);
  Value v;
  v.kind_ = Kind::kNumber;
  v.scalar_ = std::move(token);
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Value::as_bool() const {
  DMIS_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

std::uint64_t Value::as_u64() const {
  DMIS_CHECK(is_number(), "JSON value is not a number");
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  DMIS_CHECK(ec == std::errc() && ptr == scalar_.data() + scalar_.size(),
             "JSON number is not an unsigned 64-bit integer: " << scalar_);
  return out;
}

std::int64_t Value::as_i64() const {
  DMIS_CHECK(is_number(), "JSON value is not a number");
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  DMIS_CHECK(ec == std::errc() && ptr == scalar_.data() + scalar_.size(),
             "JSON number is not a signed 64-bit integer: " << scalar_);
  return out;
}

double Value::as_double() const {
  DMIS_CHECK(is_number(), "JSON value is not a number");
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(scalar_.c_str(), &end);
  DMIS_CHECK(errno == 0 && end == scalar_.c_str() + scalar_.size(),
             "JSON number out of double range: " << scalar_);
  return out;
}

const std::string& Value::as_string() const {
  DMIS_CHECK(is_string(), "JSON value is not a string");
  return scalar_;
}

const std::vector<Value>& Value::as_array() const {
  DMIS_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<Member>& Value::as_object() const {
  DMIS_CHECK(is_object(), "JSON value is not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::push_back(Value v) {
  DMIS_CHECK(is_array(), "push_back on a non-array JSON value");
  array_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  DMIS_CHECK(is_object(), "set on a non-object JSON value");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Value::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: os << scalar_; break;
    case Kind::kString: write_escaped(os, scalar_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) os << ',';
        array_[i].write(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) os << ',';
        write_escaped(os, members_[i].first);
        os << ':';
        members_[i].second.write(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::ostringstream oss;
  write(oss);
  return oss.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    DMIS_CHECK(pos_ == text_.size(),
               "trailing characters after JSON document at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    DMIS_CHECK(false, "JSON parse error at offset " << pos_ << ": " << what);
    std::abort();  // unreachable; DMIS_CHECK(false, ...) always throws
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::null();
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("bad number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("bad number fraction");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("bad number exponent");
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    return Value::number_token(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dmis::json
