// Minimal JSON document model for the service front end.
//
// The batch execution service (src/svc) speaks line-delimited JSON, so the
// repository needs a parser/serializer with three properties the usual
// "store everything as double" toy parsers lack:
//   1. exact integers — seeds are full 64-bit words, so number tokens are
//      kept verbatim and converted on access (as_u64 never round-trips
//      through a double);
//   2. deterministic output — objects preserve insertion order and numbers
//      are emitted as their original/constructed token, so a serialized
//      document is a pure function of its construction sequence (the
//      byte-identical-response guarantee of DESIGN.md §11 rests on this);
//   3. loud failure — malformed input throws PreconditionError with a
//      character position, never yields a half-parsed value.
// Full JSON except: no \uXXXX escapes beyond ASCII (rejected loudly), no
// nesting deeper than kMaxDepth (stack safety on adversarial input).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmis::json {

class Value;

using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;  // null

  static Value null();
  static Value boolean(bool b);
  /// Numbers from code: integers keep their exact decimal token; doubles are
  /// formatted with enough digits to round-trip bit-for-bit.
  static Value number(std::uint64_t v);
  static Value number(std::int64_t v);
  static Value number(double v);
  /// A number from a pre-formatted token (must be a valid JSON number).
  static Value number_token(std::string token);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw PreconditionError on kind mismatch (and, for
  /// the integer accessors, on tokens outside the target range).
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<Member>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  /// Mutators (builders). Throw on kind mismatch.
  void push_back(Value v);
  void set(std::string key, Value v);

  /// Serializes compactly (no whitespace), deterministically.
  void write(std::ostream& os) const;
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;        // number token or string payload
  std::vector<Value> array_;  // also object member values? no: see members_
  std::vector<Member> members_;
};

/// Parses one JSON document; the whole input must be consumed (trailing
/// whitespace allowed). Throws PreconditionError on malformed input.
Value parse(std::string_view text);

}  // namespace dmis::json
