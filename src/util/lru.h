// Least-recently-used cache primitive.
//
// A plain single-threaded LRU map: the result cache of the batch execution
// service (src/svc/cache.h) wraps one instance per shard behind a shard
// mutex, but the primitive itself is synchronization-free so tests and other
// subsystems can use it directly. Eviction order is exact LRU on get/put
// touches; capacity is counted in entries.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace dmis {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// A cache holding at most `capacity` entries. capacity >= 1.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    DMIS_CHECK(capacity >= 1, "LruCache capacity must be >= 1");
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Looks up `key` and marks it most-recently-used. Returns nullptr on
  /// miss. The pointer stays valid until the entry is evicted or the cache
  /// is destroyed.
  V* get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Lookup without touching the recency order (for stats/tests).
  const V* peek(const K& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or overwrites `key`, marking it most-recently-used. Returns the
  /// number of entries evicted to make room (0 or 1; overwrites evict
  /// nothing).
  std::size_t put(K key, V value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return 0;
    }
    std::size_t evicted = 0;
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      evicted = 1;
    }
    entries_.emplace_front(std::move(key), std::move(value));
    index_.emplace(entries_.front().first, entries_.begin());
    return evicted;
  }

  /// Erases `key` if present; returns whether it was.
  bool erase(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    entries_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// The least-recently-used entry — the next eviction victim — or nullptr
  /// when empty. Lets wrappers account for what an imminent put will evict.
  const std::pair<K, V>* lru_entry() const {
    return entries_.empty() ? nullptr : &entries_.back();
  }

  /// Keys in most-recently-used-first order (for tests).
  template <typename Fn>
  void for_each_mru(Fn&& fn) const {
    for (const auto& [k, v] : entries_) fn(k, v);
  }

 private:
  using Entry = std::pair<K, V>;
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace dmis
