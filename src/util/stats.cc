#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace dmis {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Accumulator::min() const {
  DMIS_CHECK(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  DMIS_CHECK(count_ > 0, "max of empty accumulator");
  return max_;
}

double Accumulator::sum() const { return mean_ * static_cast<double>(count_); }

double Accumulator::mean() const {
  DMIS_CHECK(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  DMIS_CHECK(!values.empty(), "percentile of empty data");
  DMIS_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]: " << q);
  std::sort(values.begin(), values.end());
  const auto n = values.size();
  const auto rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n) - 1.0,
                       std::floor(q * static_cast<double>(n))));
  return values[rank];
}

void LatencyHistogram::record_us(double us) {
  std::size_t bucket = 0;
  if (us >= 1.0) {
    const auto v = static_cast<std::uint64_t>(us);
    bucket = 64 - static_cast<std::size_t>(std::countl_zero(v));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t LatencyHistogram::percentile_us(double q) const {
  DMIS_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]: " << q);
  const std::uint64_t total = count();
  if (total == 0) return 0;
  // Nearest rank: the ceil(q * total)-th observation, 1-based.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return i == 0 ? 1 : (1ULL << i);
  }
  return 1ULL << (kBuckets - 1);
}

}  // namespace dmis
