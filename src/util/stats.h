// Streaming and batch statistics used by the experiment harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace dmis {

/// Streaming accumulator: count, min, max, mean, (sample) variance via
/// Welford's algorithm. Numerically stable; O(1) per observation.
class Accumulator {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;
  double max() const;
  double sum() const;
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

/// Batch percentile helper. Quantile q in [0,1] via nearest-rank on a copy of
/// the data (the input vector is not modified).
double percentile(std::vector<double> values, double q);

}  // namespace dmis
