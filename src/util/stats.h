// Streaming and batch statistics used by the experiment harnesses and the
// serving layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dmis {

/// Streaming accumulator: count, min, max, mean, (sample) variance via
/// Welford's algorithm. Numerically stable; O(1) per observation.
class Accumulator {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const;
  double max() const;
  double sum() const;
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

/// Batch percentile helper. Quantile q in [0,1] via nearest-rank on a copy of
/// the data (the input vector is not modified).
double percentile(std::vector<double> values, double q);

/// Fixed-bucket latency histogram for serving stats (DESIGN.md §16).
///
/// Bucket i counts latencies in [2^(i-1), 2^i) microseconds (bucket 0 is
/// [0, 1)), so percentile_us() reports the power-of-two *upper bound* of the
/// nearest-rank bucket — a deliberately coarse but deterministic figure:
/// identical request streams produce identical stats lines, byte for byte,
/// regardless of thread interleaving. Recording is a single relaxed atomic
/// increment; O(1) memory, no per-request allocation.
class LatencyHistogram {
 public:
  /// 40 buckets cover [1us, 2^39us ≈ 9.1 min) — far beyond any deadline.
  static constexpr std::size_t kBuckets = 40;

  void record_us(double us);

  std::uint64_t count() const;
  /// Upper bound (us) of the bucket holding the nearest-rank observation;
  /// 0 when empty. q in [0,1].
  std::uint64_t percentile_us(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

}  // namespace dmis
