#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace dmis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DMIS_CHECK(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  if (!rows_.empty()) {
    DMIS_CHECK(rows_.back().size() == headers_.size(),
               "previous row incomplete: " << rows_.back().size() << " of "
                                           << headers_.size() << " cells");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  DMIS_CHECK(!rows_.empty(), "cell() before row()");
  DMIS_CHECK(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(const char* value) {
  return cell(std::string(value));
}

TextTable& TextTable::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return cell(oss.str());
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = (c < r.size()) ? r[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << v;
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace dmis
