// Fixed-format console tables. Every bench binary prints its results through
// TextTable so EXPERIMENTS.md rows can be regenerated verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmis {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  TextTable& row();
  TextTable& cell(const std::string& value);
  TextTable& cell(const char* value);
  TextTable& cell(std::uint64_t value);
  TextTable& cell(std::int64_t value);
  TextTable& cell(int value);
  /// Doubles are formatted with the given precision (default 3 digits).
  TextTable& cell(double value, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmis
