// Bit-granular serialization primitives of the wire layer.
//
// The paper states every bandwidth claim in bits ("each node can send
// O(log n) bits per round", §1), so the wire layer writes and reads message
// fields at bit granularity into caller-owned word buffers. BitWriter packs
// fields LSB-first into consecutive 64-bit words; BitReader consumes the
// same stream. Neither allocates: both operate on a span handed in by the
// caller (a payload's inline words, an annotation table row).
#pragma once

#include <cstdint>
#include <span>

#include "util/check.h"

namespace dmis {

class BitWriter {
 public:
  /// Writes into `words` (zeroed here so partial words end up zero-padded).
  constexpr explicit BitWriter(std::span<std::uint64_t> words)
      : words_(words) {
    for (std::uint64_t& w : words_) w = 0;
  }

  /// Appends the low `bits` bits of `value`. Requires 0 <= bits <= 64 and
  /// that `value` fits (fail-loud: a value wider than its declared field is
  /// a codec bug, not something to truncate silently).
  constexpr void put(std::uint64_t value, int bits) {
    DMIS_CHECK_CX(bits >= 0 && bits <= 64, "field width out of [0,64]");
    DMIS_CHECK_CX(bits == 64 || (value >> bits) == 0,
                  "value does not fit its declared field width");
    DMIS_CHECK_CX(pos_ + bits <= 64 * static_cast<int>(words_.size()),
                  "BitWriter overflow: message exceeds buffer");
    if (bits == 0) return;
    const int word = pos_ / 64;
    const int offset = pos_ % 64;
    words_[static_cast<std::size_t>(word)] |= value << offset;
    const int spill = offset + bits - 64;
    if (spill > 0) {
      words_[static_cast<std::size_t>(word) + 1] |= value >> (bits - spill);
    }
    pos_ += bits;
  }

  /// Bits written so far.
  constexpr int bit_count() const { return pos_; }

 private:
  std::span<std::uint64_t> words_;
  int pos_ = 0;
};

class BitReader {
 public:
  /// Reads `total_bits` bits out of `words` (must hold at least that many).
  constexpr BitReader(std::span<const std::uint64_t> words, int total_bits)
      : words_(words), total_bits_(total_bits) {
    DMIS_CHECK_CX(total_bits >= 0 &&
                      total_bits <= 64 * static_cast<int>(words.size()),
                  "BitReader: declared bit count exceeds buffer");
  }

  /// Consumes the next `bits` bits. Reading past `total_bits` throws — a
  /// decoder asking for more bits than the message carries means the message
  /// is truncated or the field spec diverged from the encoder's.
  constexpr std::uint64_t get(int bits) {
    DMIS_CHECK_CX(bits >= 0 && bits <= 64, "field width out of [0,64]");
    DMIS_CHECK_CX(pos_ + bits <= total_bits_,
                  "BitReader underflow: truncated or mis-specified message");
    if (bits == 0) return 0;
    const int word = pos_ / 64;
    const int offset = pos_ % 64;
    std::uint64_t value = words_[static_cast<std::size_t>(word)] >> offset;
    const int spill = offset + bits - 64;
    if (spill > 0) {
      value |= words_[static_cast<std::size_t>(word) + 1] << (bits - spill);
    }
    if (bits < 64) value &= (std::uint64_t{1} << bits) - 1;
    pos_ += bits;
    return value;
  }

  constexpr int consumed_bits() const { return pos_; }
  constexpr int remaining_bits() const { return total_bits_ - pos_; }

 private:
  std::span<const std::uint64_t> words_;
  int total_bits_;
  int pos_ = 0;
};

}  // namespace dmis
