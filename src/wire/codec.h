// Typed message codecs: one declarative field spec per message type.
//
// A wire message is a plain struct with a `kType` tag and a single `visit`
// member that lists its fields with explicit bit widths:
//
//   struct GatherEdgeMsg {
//     NodeId u = 0, v = 0;
//     static constexpr WireMessageType kType = WireMessageType::kGatherEdge;
//     template <class S> constexpr void visit(S& s) {
//       s.id("u", u);
//       s.id("v", v);
//     }
//   };
//
// The same field list drives encoding, decoding, and size measurement, so
// the three can never diverge. Field kinds:
//   uint(name, v, bits)               — fixed-width unsigned integer
//   uint_range(name, v, bits, lo, hi) — ... with a validated value range
//   flag(name, v)                     — one bit
//   id(name, v)                       — node id, ctx.id_bits wide,
//                                       validated < ctx.node_count
//   word(name, v)                     — full 64-bit word
//   vec(name, v)                      — phase beep vector, ctx.phase_len wide
//   wide(name, v, bits)               — WideUint of up to kMaxWideFieldBits
//                                       bits (fields whose width scales with
//                                       id_bits past one word, e.g. Luby's
//                                       3·id_bits priority)
//
// Field widths depend only on the WireContext, never on field values, so
// every message of a type costs the same bits in a given run — the invariant
// that makes per-type accounting exact. Range violations fail loudly on both
// encode (caller bug) and decode (corrupt or truncated message); decoding
// also demands that every declared bit is consumed and that padding beyond
// the declared bit count is zero.
//
// max_encoded_bits<Msg>() is the compile-time worst-case size (ids at
// kMaxIdBits, vectors at kMaxPhaseLen); encode_payload static_asserts it
// against the payload capacity, so a message that could ever overflow a
// packet is a compile error, not a runtime surprise.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>

#include "util/check.h"
#include "wire/bitio.h"
#include "wire/types.h"

namespace dmis {

/// Capacity of one wide codec field, in 64-bit words. Two words cover every
/// id-derived width at the kMaxIdBits ceiling (3·30 = 90 bits for Luby's
/// priority); widening a field past this is a deliberate contract change —
/// the static_asserts in wire/messages.h must move with it.
inline constexpr int kWideFieldWords = 2;
inline constexpr int kMaxWideFieldBits = 64 * kWideFieldWords;

/// Value of a wide codec field: an unsigned integer of up to
/// kMaxWideFieldBits bits, stored LSB-first (w[0] low, w[1] high) — the same
/// word order BitWriter packs, so corruption bit indices line up. Ordered as
/// the integer it represents (high word first), which is what Luby's
/// priority comparison needs.
struct WideUint {
  std::array<std::uint64_t, kWideFieldWords> w{};

  static constexpr WideUint of(std::uint64_t lo, std::uint64_t hi = 0) {
    WideUint v;
    v.w[0] = lo;
    v.w[1] = hi;
    return v;
  }

  /// True iff every bit at position >= `bits` is zero (the value fits its
  /// declared field width).
  constexpr bool fits(int bits) const {
    for (int i = 0; i < kWideFieldWords; ++i) {
      const int low = bits - 64 * i;
      if (low >= 64) continue;
      const std::uint64_t tail = low <= 0 ? w[i] : w[i] >> low;
      if (tail != 0) return false;
    }
    return true;
  }

  friend constexpr bool operator==(const WideUint&, const WideUint&) = default;
  friend constexpr std::strong_ordering operator<=>(const WideUint& a,
                                                    const WideUint& b) {
    for (int i = kWideFieldWords - 1; i >= 0; --i) {
      if (a.w[i] != b.w[i]) return a.w[i] <=> b.w[i];
    }
    return std::strong_ordering::equal;
  }
};

/// Inline payload of a routed clique packet: at most kMaxPayloadWords 64-bit
/// words of which `bits` are significant, plus the type tag. This is the
/// unit the engines charge — bit-exact, per message (replacing the old flat
/// 128-bit packet rate).
inline constexpr int kMaxPayloadWords = 2;
inline constexpr int kMaxPayloadBits = 64 * kMaxPayloadWords;

struct WirePayload {
  std::array<std::uint64_t, kMaxPayloadWords> words{};
  std::uint16_t bits = 0;
  WireMessageType type = WireMessageType::kRaw;

  friend bool operator==(const WirePayload&, const WirePayload&) = default;

  /// Untyped payload escape hatch (tests, fault injection). Algorithm code
  /// must go through encode_payload instead.
  static constexpr WirePayload raw(std::uint64_t w0, std::uint64_t w1,
                                   int bits) {
    DMIS_CHECK_CX(bits >= 0 && bits <= kMaxPayloadBits,
                  "raw payload width out of range");
    WirePayload p;
    p.words = {w0, w1};
    p.bits = static_cast<std::uint16_t>(bits);
    p.type = WireMessageType::kRaw;
    return p;
  }
};

namespace wire_detail {

/// Sums field widths; never touches values. Constexpr so message sizes are
/// compile-time facts.
class MeasureSink {
 public:
  constexpr explicit MeasureSink(const WireContext& ctx) : ctx_(ctx) {}
  constexpr const WireContext& ctx() const { return ctx_; }
  constexpr int bits() const { return bits_; }

  template <class T>
  constexpr void uint(const char*, T&, int bits) {
    add(bits);
  }
  template <class T>
  constexpr void uint_range(const char*, T&, int bits, std::uint64_t,
                            std::uint64_t) {
    add(bits);
  }
  constexpr void flag(const char*, bool&) { add(1); }
  constexpr void id(const char*, NodeId&) { add(ctx_.id_bits); }
  constexpr void word(const char*, std::uint64_t&) { add(64); }
  constexpr void vec(const char*, std::uint64_t&) { add(ctx_.phase_len); }
  constexpr void wide(const char*, WideUint&, int bits) {
    DMIS_CHECK_CX(bits >= 0 && bits <= kMaxWideFieldBits,
                  "wide field width exceeds kMaxWideFieldBits");
    bits_ += bits;
  }

 private:
  constexpr void add(int bits) {
    DMIS_CHECK_CX(bits >= 0 && bits <= 64, "field width out of [0,64]");
    bits_ += bits;
  }
  WireContext ctx_;
  int bits_ = 0;
};

class EncodeSink {
 public:
  EncodeSink(BitWriter& writer, const WireContext& ctx)
      : writer_(writer), ctx_(ctx) {}
  const WireContext& ctx() const { return ctx_; }

  template <class T>
  void uint(const char* name, T& v, int bits) {
    const auto value = static_cast<std::uint64_t>(v);
    DMIS_CHECK(bits == 64 || (value >> bits) == 0,
               "field '" << name << "' value " << value
                         << " does not fit in " << bits << " bits");
    writer_.put(value, bits);
  }
  template <class T>
  void uint_range(const char* name, T& v, int bits, std::uint64_t lo,
                  std::uint64_t hi) {
    const auto value = static_cast<std::uint64_t>(v);
    DMIS_CHECK(value >= lo && value <= hi,
               "field '" << name << "' value " << value << " outside ["
                         << lo << ", " << hi << "]");
    writer_.put(value, bits);
  }
  void flag(const char* name, bool& v) {
    (void)name;
    writer_.put(v ? 1 : 0, 1);
  }
  void id(const char* name, NodeId& v) {
    DMIS_CHECK(v < ctx_.node_count, "id field '" << name << "' value " << v
                                                 << " >= n = "
                                                 << ctx_.node_count);
    writer_.put(v, ctx_.id_bits);
  }
  void word(const char* name, std::uint64_t& v) {
    (void)name;
    writer_.put(v, 64);
  }
  void vec(const char* name, std::uint64_t& v) {
    DMIS_CHECK(ctx_.phase_len == 64 || (v >> ctx_.phase_len) == 0,
               "vector field '" << name << "' has bits beyond phase length "
                                << ctx_.phase_len);
    writer_.put(v, ctx_.phase_len);
  }
  /// Writes a wide value LSB-first in <=64-bit chunks. The width is still
  /// value-independent (it depends only on the WireContext through the
  /// caller's `bits` expression), so per-type accounting stays exact.
  void wide(const char* name, WideUint& v, int bits) {
    DMIS_CHECK(bits >= 0 && bits <= kMaxWideFieldBits,
               "wide field '" << name << "' declared width " << bits
                              << " exceeds " << kMaxWideFieldBits << " bits");
    DMIS_CHECK(v.fits(bits), "wide field '"
                                 << name
                                 << "' has bits beyond its declared width "
                                 << bits);
    for (int i = 0; 64 * i < bits; ++i) {
      const int chunk = bits - 64 * i < 64 ? bits - 64 * i : 64;
      writer_.put(v.w[static_cast<std::size_t>(i)], chunk);
    }
  }

 private:
  BitWriter& writer_;
  const WireContext& ctx_;
};

class DecodeSink {
 public:
  DecodeSink(BitReader& reader, const WireContext& ctx)
      : reader_(reader), ctx_(ctx) {}
  const WireContext& ctx() const { return ctx_; }

  template <class T>
  void uint(const char* name, T& v, int bits) {
    (void)name;
    v = static_cast<T>(reader_.get(bits));
  }
  template <class T>
  void uint_range(const char* name, T& v, int bits, std::uint64_t lo,
                  std::uint64_t hi) {
    const std::uint64_t value = reader_.get(bits);
    DMIS_CHECK(value >= lo && value <= hi,
               "corrupt message: field '" << name << "' decoded as " << value
                                          << ", outside [" << lo << ", "
                                          << hi << "]");
    v = static_cast<T>(value);
  }
  void flag(const char* name, bool& v) {
    (void)name;
    v = reader_.get(1) != 0;
  }
  void id(const char* name, NodeId& v) {
    const std::uint64_t value = reader_.get(ctx_.id_bits);
    DMIS_CHECK(value < ctx_.node_count,
               "corrupt message: id field '" << name << "' decoded as "
                                             << value << " >= n = "
                                             << ctx_.node_count);
    v = static_cast<NodeId>(value);
  }
  void word(const char* name, std::uint64_t& v) {
    (void)name;
    v = reader_.get(64);
  }
  void vec(const char* name, std::uint64_t& v) {
    (void)name;
    v = reader_.get(ctx_.phase_len);
  }
  void wide(const char* name, WideUint& v, int bits) {
    (void)name;
    v = WideUint{};
    for (int i = 0; 64 * i < bits; ++i) {
      const int chunk = bits - 64 * i < 64 ? bits - 64 * i : 64;
      v.w[static_cast<std::size_t>(i)] = reader_.get(chunk);
    }
  }

 private:
  BitReader& reader_;
  const WireContext& ctx_;
};

}  // namespace wire_detail

/// Exact encoded size of Msg under `ctx` (widths are value-independent).
template <class Msg>
constexpr int encoded_bits(const WireContext& ctx) {
  wire_detail::MeasureSink sink(ctx);
  Msg msg{};
  msg.visit(sink);
  return sink.bits();
}

/// Compile-time worst-case size: ids at kMaxIdBits, vectors at kMaxPhaseLen.
template <class Msg>
constexpr int max_encoded_bits() {
  WireContext worst;
  worst.node_count = NodeId{1} << kMaxIdBits;
  worst.id_bits = kMaxIdBits;
  worst.phase_len = kMaxPhaseLen;
  wire_detail::MeasureSink sink(worst);
  Msg msg{};
  msg.visit(sink);
  return sink.bits();
}

/// Encodes into a caller-owned word buffer (e.g. an annotation-table row);
/// returns the bit count. The buffer must hold max_encoded_bits<Msg>().
template <class Msg>
int encode_words(const WireContext& ctx, const Msg& msg,
                 std::span<std::uint64_t> out) {
  BitWriter writer(out);
  wire_detail::EncodeSink sink(writer, ctx);
  Msg copy = msg;  // visit takes mutable refs; encoding only reads
  copy.visit(sink);
  return writer.bit_count();
}

/// Decodes `bits` bits from `words`. Throws PreconditionError if the size
/// does not match the field spec, a range-validated field is out of range,
/// or the padding beyond `bits` is non-zero — corrupt input fails loudly.
template <class Msg>
Msg decode_words(const WireContext& ctx, std::span<const std::uint64_t> words,
                 int bits) {
  DMIS_CHECK(bits == encoded_bits<Msg>(ctx),
             "message size " << bits << " != declared "
                             << encoded_bits<Msg>(ctx) << " bits");
  BitReader reader(words, bits);
  wire_detail::DecodeSink sink(reader, ctx);
  Msg msg{};
  msg.visit(sink);
  DMIS_ASSERT(reader.remaining_bits() == 0, "decoder left bits unread");
  // Padding check: everything beyond `bits` must be zero.
  for (std::size_t w = 0; w < words.size(); ++w) {
    const int from = bits - static_cast<int>(w) * 64;
    if (from >= 64) continue;
    const std::uint64_t tail =
        from <= 0 ? words[w] : words[w] >> from;
    DMIS_CHECK(tail == 0, "corrupt message: non-zero padding past bit "
                              << bits);
  }
  return msg;
}

/// Encodes a routed-packet payload. Compile-time guarantee: no registered
/// message can ever overflow the packet's inline words.
template <class Msg>
WirePayload encode_payload(const WireContext& ctx, const Msg& msg) {
  static_assert(max_encoded_bits<Msg>() <= kMaxPayloadBits,
                "message type cannot fit a packet payload");
  WirePayload p;
  p.bits = static_cast<std::uint16_t>(encode_words(ctx, msg, p.words));
  p.type = Msg::kType;
  return p;
}

/// Decodes a routed-packet payload, checking the type tag first.
template <class Msg>
Msg decode_payload(const WireContext& ctx, const WirePayload& p) {
  DMIS_CHECK(p.type == Msg::kType,
             "payload type '" << wire_message_type_name(p.type)
                              << "' decoded as '"
                              << wire_message_type_name(Msg::kType) << "'");
  return decode_words<Msg>(ctx, p.words, p.bits);
}

}  // namespace dmis
