// Every typed message the simulated networks carry, with explicit bit
// widths. This is the single place payload layouts are defined; no algorithm
// hand-packs words anymore (DESIGN.md §9 tabulates the budgets against the
// model's B).
//
// Conventions:
//   * ids cost ctx.id_bits = ceil(log2 n) — the paper's "O(log n) bits";
//   * probability exponents cost 7 bits and are range-validated against
//     Pow2Prob's domain [1, 120] (rng/pow2_prob.h) — a corrupt exponent
//     fails loudly at decode instead of being truncated into a valid one;
//   * beep vectors of the sparsified algorithm (§2.3/§2.4) cost exactly
//     R = ctx.phase_len bits;
//   * 64-bit fields (seeds, weights, partial sums) are the idealized
//     "O(log n)-bit word" of the model; they dominate a few message types'
//     budgets and are called out in DESIGN.md §9.
#pragma once

#include <algorithm>
#include <cstdint>
#include <tuple>

#include "wire/codec.h"
#include "wire/types.h"

namespace dmis {

/// Domain of probability exponents on the wire (Pow2Prob::kMaxNegExp).
inline constexpr int kWireMaxPExp = 120;
inline constexpr int kPExpBits = 7;

// ---------------------------------------------------------------- CONGEST --

/// One-bit carrier burst (the only signal of the beeping model, §2.2; also
/// the R1 beeps of the sparsified CONGEST translation, §2.3).
struct BeepMsg {
  bool pulse = true;
  static constexpr WireMessageType kType = WireMessageType::kBeep;
  template <class S>
  constexpr void visit(S& s) {
    s.flag("pulse", pulse);
  }
};

/// "I joined the MIS" — the 1-bit announcement closing an iteration.
struct JoinAnnounceMsg {
  bool joined = true;
  static constexpr WireMessageType kType = WireMessageType::kJoinAnnounce;
  template <class S>
  constexpr void visit(S& s) {
    s.flag("joined", joined);
  }
};

/// Luby's random priority: 3·ceil(log2 n) bits keeps local minima unique
/// w.h.p. while fitting inside B = 4·ceil(log2 n). A wide field — the full
/// 3·id_bits width is drawn and charged (90 bits at the kMaxIdBits ceiling,
/// past one word), with the sender id as the deterministic tiebreak.
struct LubyPriorityMsg {
  WideUint priority{};
  static constexpr WireMessageType kType = WireMessageType::kLubyPriority;
  template <class S>
  constexpr void visit(S& s) {
    s.wide("priority", priority, 3 * s.ctx().id_bits);
  }
};

/// §2.1 per-iteration probe: the mark flag plus p_t(v)'s exponent (so
/// neighbors can accumulate d_t(v) exactly).
struct GhaffariProbeMsg {
  bool marked = false;
  int p_exp = 1;
  static constexpr WireMessageType kType = WireMessageType::kGhaffariProbe;
  template <class S>
  constexpr void visit(S& s) {
    s.flag("marked", marked);
    s.uint_range("p_exp", p_exp, kPExpBits, 1, kWireMaxPExp);
  }
};

/// §2.3 phase opener: publish p_{t0}(v) so neighbors can decide super-heavy
/// status.
struct SparsifiedOpenerMsg {
  int p_exp = 1;
  static constexpr WireMessageType kType = WireMessageType::kSparsifiedOpener;
  template <class S>
  constexpr void visit(S& s) {
    s.uint_range("p_exp", p_exp, kPExpBits, 1, kWireMaxPExp);
  }
};

// ---------------------------------------------- clique phase simulation ----

/// §2.4 step 2: a super-heavy node's committed beep vector for the whole
/// phase (its p halves deterministically, so all R beeps are predictable).
struct PhaseBeepVectorMsg {
  std::uint64_t vector = 0;
  static constexpr WireMessageType kType = WireMessageType::kPhaseBeepVector;
  template <class S>
  constexpr void visit(S& s) {
    s.vec("vector", vector);
  }
};

/// §2.4 step 6: an S node's realized beep vector plus its MIS-join iteration
/// (6 bits index into the phase, valid only when `joined`).
struct PhaseOutcomeMsg {
  std::uint64_t realized = 0;
  bool joined = false;
  std::uint32_t join_iter = 0;
  static constexpr WireMessageType kType = WireMessageType::kPhaseOutcome;
  template <class S>
  constexpr void visit(S& s) {
    s.vec("realized", realized);
    s.flag("joined", joined);
    s.uint("join_iter", join_iter, 6);
  }
};

/// The per-node decoration of the sampled graph G*[S] (paper §2.4): the
/// starting exponent, the OR of super-heavy neighbors' committed vectors,
/// and the private phase seed (the O(log n)-bit compression of the phase's
/// per-round randomness). Ships as annotation words through the gather, not
/// as a single packet. The or-mask is kMaxPhaseLen wide (not ctx.phase_len)
/// so decorations decode without knowing R.
struct PhaseDecorationMsg {
  int p0_exp = 1;
  std::uint64_t superheavy_or_mask = 0;
  std::uint64_t phase_seed = 0;
  static constexpr WireMessageType kType = WireMessageType::kRaw;
  template <class S>
  constexpr void visit(S& s) {
    s.uint_range("p0_exp", p0_exp, kPExpBits, 1, kWireMaxPExp);
    s.uint("superheavy_or_mask", superheavy_or_mask, kMaxPhaseLen);
    s.word("phase_seed", phase_seed);
  }
};

// ------------------------------------------------------- gather (L. 2.14) --

/// One edge of a node's current knowledge, shipped during exponentiation.
struct GatherEdgeMsg {
  NodeId u = 0;
  NodeId v = 0;
  static constexpr WireMessageType kType = WireMessageType::kGatherEdge;
  template <class S>
  constexpr void visit(S& s) {
    s.id("u", u);
    s.id("v", v);
  }
};

/// Maximum annotation words per node a gather can ship (6-bit index).
inline constexpr std::uint32_t kMaxAnnotationWords = 64;

/// One 64-bit decoration word of a known node.
struct GatherAnnotationMsg {
  NodeId node = 0;
  std::uint32_t index = 0;
  std::uint64_t data = 0;
  static constexpr WireMessageType kType = WireMessageType::kGatherAnnotation;
  template <class S>
  constexpr void visit(S& s) {
    s.id("node", node);
    s.uint_range("index", index, 6, 0, kMaxAnnotationWords - 1);
    s.word("data", data);
  }
};

// ----------------------------------------------------------- MST / CC ------

/// Borůvka upward report: a node's lightest outgoing edge (or none) to its
/// component leader.
struct MstReportMsg {
  bool has_edge = false;
  std::uint64_t weight = 0;
  NodeId u = 0;
  NodeId v = 0;
  static constexpr WireMessageType kType = WireMessageType::kMstReport;
  template <class S>
  constexpr void visit(S& s) {
    s.flag("has_edge", has_edge);
    s.word("weight", weight);
    s.id("u", u);
    s.id("v", v);
  }
};

/// A component's chosen lightest outgoing edge, leader → coordinator.
struct MstChosenMsg {
  std::uint64_t weight = 0;
  NodeId u = 0;
  NodeId v = 0;
  static constexpr WireMessageType kType = WireMessageType::kMstChosen;
  template <class S>
  constexpr void visit(S& s) {
    s.word("weight", weight);
    s.id("u", u);
    s.id("v", v);
  }
};

/// New component label (coordinator → leaders, leaders → members).
struct MstLabelMsg {
  NodeId label = 0;
  static constexpr WireMessageType kType = WireMessageType::kMstLabel;
  template <class S>
  constexpr void visit(S& s) {
    s.id("label", label);
  }
};

// ------------------------------------- leader cleanup / ruling set ---------

/// "I am still undecided" — residual-set membership, node → leader.
struct ResidualPresenceMsg {
  NodeId node = 0;
  static constexpr WireMessageType kType = WireMessageType::kResidualPresence;
  template <class S>
  constexpr void visit(S& s) {
    s.id("node", node);
  }
};

/// One residual edge (both endpoints undecided), node → leader.
struct ResidualEdgeMsg {
  NodeId u = 0;
  NodeId v = 0;
  static constexpr WireMessageType kType = WireMessageType::kResidualEdge;
  template <class S>
  constexpr void visit(S& s) {
    s.id("u", u);
    s.id("v", v);
  }
};

/// The leader's verdict routed back to a residual node.
struct MisDecisionMsg {
  bool in_mis = false;
  static constexpr WireMessageType kType = WireMessageType::kMisDecision;
  template <class S>
  constexpr void visit(S& s) {
    s.flag("in_mis", in_mis);
  }
};

// ------------------------------------------------------------ triangles ----

/// An edge copy addressed to the owner of one group triple.
struct TriangleEdgeMsg {
  NodeId u = 0;
  NodeId v = 0;
  std::uint32_t triple = 0;
  static constexpr WireMessageType kType = WireMessageType::kTriangleEdge;
  template <class S>
  constexpr void visit(S& s) {
    s.id("u", u);
    s.id("v", v);
    s.uint("triple", triple, 32);
  }
};

/// A triple owner's partial triangle count, convergecast to the leader.
struct TriangleCountMsg {
  std::uint64_t count = 0;
  static constexpr WireMessageType kType = WireMessageType::kTriangleCount;
  template <class S>
  constexpr void visit(S& s) {
    s.word("count", count);
  }
};

// -------------------------------------------------- accounting-only types --

/// Leader election: everyone announces its id; minimum wins.
struct LeaderElectMsg {
  NodeId id = 0;
  static constexpr WireMessageType kType = WireMessageType::kLeaderElect;
  template <class S>
  constexpr void visit(S& s) {
    s.id("id", id);
  }
};

/// Ruling set: a live node's current degree (values in [0, n)).
struct DegreeAnnounceMsg {
  NodeId degree = 0;
  static constexpr WireMessageType kType = WireMessageType::kDegreeAnnounce;
  template <class S>
  constexpr void visit(S& s) {
    s.uint("degree", degree, s.ctx().id_bits);
  }
};

/// Every registered message type, for exhaustive codec tests: round-trip and
/// corruption coverage iterate this list so a type added above without test
/// coverage still gets the generic treatment.
using AllWireMessages =
    std::tuple<BeepMsg, JoinAnnounceMsg, LubyPriorityMsg, GhaffariProbeMsg,
               SparsifiedOpenerMsg, PhaseBeepVectorMsg, PhaseOutcomeMsg,
               PhaseDecorationMsg, GatherEdgeMsg, GatherAnnotationMsg,
               MstReportMsg, MstChosenMsg, MstLabelMsg, ResidualPresenceMsg,
               ResidualEdgeMsg, MisDecisionMsg, TriangleEdgeMsg,
               TriangleCountMsg, LeaderElectMsg, DegreeAnnounceMsg>;

// Compile-time derivation of the payload bound. Every packet-borne message
// must fit the inline payload at worst-case widths (ids at kMaxIdBits,
// vectors at kMaxPhaseLen); PhaseDecorationMsg is deliberately absent — it
// never rides a packet (kType = kRaw, shipped as gather annotation rows)
// and exceeds kMaxPayloadBits at the ceiling. Growing any message past
// kMaxPayloadBits means raising kMaxPayloadWords *and* re-auditing every
// engine that stores payload words inline (runtime/congest.h,
// clique/network.h) — these asserts make that a deliberate act.
inline constexpr int kWidestPacketMessageBits = std::max(
    {max_encoded_bits<BeepMsg>(), max_encoded_bits<JoinAnnounceMsg>(),
     max_encoded_bits<LubyPriorityMsg>(), max_encoded_bits<GhaffariProbeMsg>(),
     max_encoded_bits<SparsifiedOpenerMsg>(),
     max_encoded_bits<PhaseBeepVectorMsg>(), max_encoded_bits<PhaseOutcomeMsg>(),
     max_encoded_bits<GatherEdgeMsg>(), max_encoded_bits<GatherAnnotationMsg>(),
     max_encoded_bits<MstReportMsg>(), max_encoded_bits<MstChosenMsg>(),
     max_encoded_bits<MstLabelMsg>(), max_encoded_bits<ResidualPresenceMsg>(),
     max_encoded_bits<ResidualEdgeMsg>(), max_encoded_bits<MisDecisionMsg>(),
     max_encoded_bits<TriangleEdgeMsg>(), max_encoded_bits<TriangleCountMsg>(),
     max_encoded_bits<LeaderElectMsg>(), max_encoded_bits<DegreeAnnounceMsg>()});
// The widest packet message is MstReportMsg: 1 + 64 + 2·kMaxIdBits = 125.
static_assert(kWidestPacketMessageBits ==
              1 + 64 + 2 * kMaxIdBits);
// Tight fit: kMaxPayloadWords is exactly what the widest message needs.
static_assert(kWidestPacketMessageBits <= kMaxPayloadBits);
static_assert(kWidestPacketMessageBits > kMaxPayloadBits - 64,
              "kMaxPayloadWords is over-provisioned; shrink it deliberately");
// Luby's wide priority spans words at the ceiling but fits the wide-field
// capacity: 3·kMaxIdBits = 90 <= kMaxWideFieldBits.
static_assert(max_encoded_bits<LubyPriorityMsg>() == 3 * kMaxIdBits);
static_assert(max_encoded_bits<LubyPriorityMsg>() <= kMaxWideFieldBits);
// Annotation-row-only decoration: width independent of id_bits.
static_assert(max_encoded_bits<PhaseDecorationMsg>() == 7 + 63 + 64);

}  // namespace dmis
