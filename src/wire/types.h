// Message-type registry and encoding context of the wire layer.
//
// Every payload that crosses a simulated network carries a WireMessageType
// tag, which buys two things:
//   * bit-exact, per-message-type bandwidth accounting (CostAccounting
//     tallies count/bits per tag; experiment E10 breaks the bandwidth of
//     every algorithm down by message kind against the model's B of §1);
//   * typed decoding — receivers dispatch on the tag and the codec layer
//     (wire/codec.h) validates field ranges instead of reinterpreting raw
//     words.
//
// WireContext carries the run-dependent field widths: node ids cost
// ceil(log2 n) bits (the paper's "O(log n)"), and the sparsified phase
// vectors of §2.3/§2.4 cost exactly R bits.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/bits.h"
#include "util/check.h"

namespace dmis {

enum class WireMessageType : std::uint8_t {
  kRaw = 0,           ///< untyped payload (tests, fault injection)
  kBeep,              ///< 1-bit carrier burst (beeping model, §2.2)
  kJoinAnnounce,      ///< 1-bit "I joined the MIS" broadcast
  kLubyPriority,      ///< Luby: 3·ceil(log2 n)-bit random priority
  kGhaffariProbe,     ///< §2.1: marked flag + p_t(v) exponent
  kSparsifiedOpener,  ///< §2.3 phase opener: p_{t0}(v) exponent
  kPhaseBeepVector,   ///< §2.4: super-heavy committed beep vector (R bits)
  kPhaseOutcome,      ///< §2.4: realized beep vector + join iteration
  kGatherEdge,        ///< Lemma 2.14 exponentiation: one known edge
  kGatherAnnotation,  ///< Lemma 2.14: one 64-bit decoration word
  kMstReport,         ///< Borůvka: node's lightest outgoing edge to leader
  kMstChosen,         ///< Borůvka: leader's chosen edge to coordinator
  kMstLabel,          ///< Borůvka: new component label (down + fanout)
  kResidualPresence,  ///< leader cleanup / ruling set: "I am residual"
  kResidualEdge,      ///< leader cleanup / ruling set: residual edge
  kMisDecision,       ///< leader verdict routed back: in MIS or not
  kTriangleEdge,      ///< triangle counting: edge copy to a triple owner
  kTriangleCount,     ///< triangle counting: per-owner partial sum
  kLeaderElect,       ///< id announcement of the leader election round
  kDegreeAnnounce,    ///< ruling set: live-degree broadcast
  kCount,             // sentinel — keep last
};

inline constexpr std::size_t kWireMessageTypeCount =
    static_cast<std::size_t>(WireMessageType::kCount);

constexpr const char* wire_message_type_name(WireMessageType t) {
  switch (t) {
    case WireMessageType::kRaw: return "raw";
    case WireMessageType::kBeep: return "beep";
    case WireMessageType::kJoinAnnounce: return "join_announce";
    case WireMessageType::kLubyPriority: return "luby_priority";
    case WireMessageType::kGhaffariProbe: return "ghaffari_probe";
    case WireMessageType::kSparsifiedOpener: return "sparsified_opener";
    case WireMessageType::kPhaseBeepVector: return "phase_beep_vector";
    case WireMessageType::kPhaseOutcome: return "phase_outcome";
    case WireMessageType::kGatherEdge: return "gather_edge";
    case WireMessageType::kGatherAnnotation: return "gather_annotation";
    case WireMessageType::kMstReport: return "mst_report";
    case WireMessageType::kMstChosen: return "mst_chosen";
    case WireMessageType::kMstLabel: return "mst_label";
    case WireMessageType::kResidualPresence: return "residual_presence";
    case WireMessageType::kResidualEdge: return "residual_edge";
    case WireMessageType::kMisDecision: return "mis_decision";
    case WireMessageType::kTriangleEdge: return "triangle_edge";
    case WireMessageType::kTriangleCount: return "triangle_count";
    case WireMessageType::kLeaderElect: return "leader_elect";
    case WireMessageType::kDegreeAnnounce: return "degree_announce";
    case WireMessageType::kCount: return "?";
  }
  return "?";
}

/// Ceiling on the id field width the codecs are specified against: the
/// compile-time max-bit bound of every message assumes ids of at most
/// kMaxIdBits bits (n <= kMaxWireNodes). Fields whose width is a multiple
/// of id_bits (Luby's 3·id_bits priority) exceed one 64-bit word at this
/// ceiling and use the codec's wide-field kind (wire/codec.h).
inline constexpr int kMaxIdBits = 30;

/// Largest node count any id-carrying wire context admits: ids wider than
/// kMaxIdBits have no codec. This is the admission ceiling the registry
/// descriptors surface for every engine that opens a WireContext.
inline constexpr std::uint64_t kMaxWireNodes = std::uint64_t{1} << kMaxIdBits;

/// Upper bound on the sparsified phase length R (beep vectors are packed
/// into one 64-bit word with R <= 63; see SparsifiedParams).
inline constexpr int kMaxPhaseLen = 63;

/// Run-dependent field widths shared by encoder and decoder. Everything in
/// here is public knowledge in the model's sense (derivable from n and the
/// algorithm parameters every node starts with), so carrying it out-of-band
/// costs no bandwidth.
namespace wire_detail {

/// Runtime half of for_nodes' id-width check. The bound in the message is
/// *derived* from kMaxIdBits (it can never drift from the constant); the
/// function is deliberately non-constexpr, so a violating compile-time
/// for_nodes is itself the loud failure.
[[noreturn]] inline void throw_id_width_exceeded(NodeId n) {
  DMIS_CHECK(false, "node count " << n << " needs " << bits_for_range(n)
                                  << " id bits, exceeding the codec id-width "
                                     "ceiling kMaxIdBits = "
                                  << kMaxIdBits << " (max n = 2^" << kMaxIdBits
                                  << " = " << kMaxWireNodes << ")");
}

}  // namespace wire_detail

struct WireContext {
  NodeId node_count = 0;
  int id_bits = 1;     ///< bits per node-id field: bits_for_range(n)
  int phase_len = 0;   ///< R of §2.3/§2.4; width of beep-vector fields

  static constexpr WireContext for_nodes(NodeId n, int phase_len = 0) {
    DMIS_CHECK_CX(n >= 1, "empty network has no wire context");
    WireContext ctx;
    ctx.node_count = n;
    ctx.id_bits = bits_for_range(n);
    if (ctx.id_bits > kMaxIdBits) [[unlikely]] {
      wire_detail::throw_id_width_exceeded(n);
    }
    DMIS_CHECK_CX(phase_len >= 0 && phase_len <= kMaxPhaseLen,
                  "phase length out of [0, kMaxPhaseLen]");
    ctx.phase_len = phase_len;
    return ctx;
  }
};

}  // namespace dmis
