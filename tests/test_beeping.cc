#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.h"
#include "mis/beeping.h"
#include "mis/instrumentation.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace dmis {
namespace {

using ::dmis::testing::GraphCase;
using ::dmis::testing::standard_suite;

class BeepingSuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(BeepingSuite, ProducesMaximalIndependentSet) {
  const Graph& g = GetParam().graph;
  for (std::uint64_t seed : {41u, 42u}) {
    BeepingOptions opts;
    opts.randomness = RandomSource(seed);
    const MisRun run = beeping_mis(g, opts);
    EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BeepingSuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

TEST(Beeping, DeterministicPerSeed) {
  const Graph g = gnp(150, 0.06, 50);
  BeepingOptions opts;
  opts.randomness = RandomSource(1);
  const MisRun a = beeping_mis(g, opts);
  const MisRun b = beeping_mis(g, opts);
  EXPECT_EQ(a.in_mis, b.in_mis);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Beeping, LocalComplexityScalesWithDegree) {
  // Theorem 2.1: decided within C(log deg + log 1/eps) iterations. Check the
  // aggregate form: mean decision time on a high-degree graph stays small.
  const Graph g = gnp(800, 0.05, 51);  // avg degree ~40
  BeepingOptions opts;
  opts.randomness = RandomSource(2);
  const MisRun run = beeping_mis(g, opts);
  Accumulator decision_iters;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_NE(run.decided_round[v], kNeverDecided);
    decision_iters.add(static_cast<double>(run.decided_round[v]));
  }
  // log2(40) ~ 5.3; C is a modest constant in practice.
  EXPECT_LT(decision_iters.mean(), 30.0);
}

TEST(Beeping, GoldenRoundAuditorFindsTheAnalysisStructure) {
  const Graph g = gnp(400, 0.05, 52);
  GoldenRoundAuditor auditor(g);
  BeepingOptions opts;
  opts.randomness = RandomSource(3);
  opts.observers.push_back(&auditor);
  const MisRun run = beeping_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis));
  const GoldenRoundReport& report = auditor.report();
  EXPECT_GT(report.observed_node_rounds, 0u);
  // Lemma 2.3's conclusion (>= 0.05T golden rounds) in aggregate.
  EXPECT_GE(report.golden_fraction(), 0.05);
  // Lemmas 2.4/2.5: wrong moves are <= 0.02-probability events.
  EXPECT_LE(report.wrong_move_rate(), 0.04);
  // Lemma 2.2: constant removal probability within golden rounds.
  EXPECT_GE(report.gamma(), 0.1);
}

TEST(Beeping, IsolatedNodesJoinQuickly) {
  const Graph g = empty_graph(64);
  BeepingOptions opts;
  opts.randomness = RandomSource(4);
  const MisRun run = beeping_mis(g, opts);
  EXPECT_EQ(run.mis_size(), 64u);
  for (NodeId v = 0; v < 64; ++v) {
    // Geometric with p = 1/2: 40 iterations is beyond astronomically safe.
    EXPECT_LT(run.decided_round[v], 40u);
  }
}

TEST(Beeping, PartialRunIsConsistent) {
  const Graph g = complete(128);
  BeepingOptions opts;
  opts.randomness = RandomSource(5);
  opts.max_iterations = 2;
  const MisRun run = beeping_mis(g, opts);
  EXPECT_TRUE(is_independent_set(g, run.in_mis));
  EXPECT_LE(run.mis_size(), 1u);
  EXPECT_LE(run.rounds, 4u);
}

TEST(Beeping, BeepCostsAreCounted) {
  const Graph g = gnp(100, 0.1, 53);
  BeepingOptions opts;
  opts.randomness = RandomSource(6);
  const MisRun run = beeping_mis(g, opts);
  EXPECT_GT(run.costs.beeps, 0u);
  EXPECT_EQ(run.costs.messages, 0u);  // the beeping model carries no messages
}

}  // namespace
}  // namespace dmis
