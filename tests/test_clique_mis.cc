#include <gtest/gtest.h>

#include <vector>

#include "graph/properties.h"
#include "mis/clique_mis.h"
#include "mis/sparsified.h"
#include "test_helpers.h"

namespace dmis {
namespace {

using ::dmis::testing::GraphCase;
using ::dmis::testing::standard_suite;

class CliqueMisSuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CliqueMisSuite, ProducesMaximalIndependentSet) {
  const Graph& g = GetParam().graph;
  for (std::uint64_t seed : {81u, 82u}) {
    CliqueMisOptions opts;
    opts.params = SparsifiedParams::from_n(g.node_count());
    opts.randomness = RandomSource(seed);
    const CliqueMisResult result = clique_mis(g, opts);
    EXPECT_TRUE(is_maximal_independent_set(g, result.run.in_mis))
        << "seed " << seed;
    EXPECT_EQ(result.run.undecided_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CliqueMisSuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

// The headline integration test: the congested-clique simulation must be
// *bit-identical* to the direct run of the sparsified algorithm under the
// same seed — same super-heavy sets, same sampled sets, same realized beep
// vectors, same joins, removals, and probability trajectories, phase by
// phase, and the same final MIS.
class EquivalenceSuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(EquivalenceSuite, CliqueSimulationMatchesDirectRunExactly) {
  const Graph& g = GetParam().graph;
  const std::uint64_t seed = 4242;
  const std::uint64_t phase_budget = 64;

  SparsifiedOptions direct_opts;
  direct_opts.params = SparsifiedParams::from_n(g.node_count());
  direct_opts.randomness = RandomSource(seed);
  direct_opts.max_phases = phase_budget;
  std::vector<SparsifiedPhaseRecord> direct_trace;
  direct_opts.trace = [&](const SparsifiedPhaseRecord& r) {
    direct_trace.push_back(r);
  };
  const MisRun direct = sparsified_mis(g, direct_opts);

  CliqueMisOptions clique_opts;
  clique_opts.params = direct_opts.params;
  clique_opts.randomness = RandomSource(seed);
  clique_opts.max_phases = phase_budget;
  std::vector<SparsifiedPhaseRecord> clique_trace;
  clique_opts.trace = [&](const SparsifiedPhaseRecord& r) {
    clique_trace.push_back(r);
  };
  const CliqueMisResult clique = clique_mis(g, clique_opts);

  ASSERT_EQ(direct_trace.size(), clique_trace.size());
  for (std::size_t k = 0; k < direct_trace.size(); ++k) {
    const auto& d = direct_trace[k];
    const auto& c = clique_trace[k];
    EXPECT_EQ(d.phase, c.phase);
    EXPECT_EQ(d.live_at_start, c.live_at_start) << "phase " << k;
    EXPECT_EQ(d.alive_start, c.alive_start) << "phase " << k;
    EXPECT_EQ(d.superheavy, c.superheavy) << "phase " << k;
    EXPECT_EQ(d.sampled, c.sampled) << "phase " << k;
    EXPECT_EQ(d.p_exp_start, c.p_exp_start) << "phase " << k;
    EXPECT_EQ(d.p_exp_end, c.p_exp_end) << "phase " << k;
    EXPECT_EQ(d.realized_beeps, c.realized_beeps) << "phase " << k;
    EXPECT_EQ(d.join_iter, c.join_iter) << "phase " << k;
    EXPECT_EQ(d.removed_iter, c.removed_iter) << "phase " << k;
    EXPECT_EQ(d.max_sampled_degree, c.max_sampled_degree) << "phase " << k;
  }
  // With the generous budget both runs decide everyone in part 1, so the
  // final sets agree exactly (the clique cleanup is a no-op).
  EXPECT_EQ(direct.undecided_count(), 0u);
  EXPECT_EQ(direct.in_mis, clique.run.in_mis);
  EXPECT_EQ(direct.decided_round, clique.run.decided_round);
  EXPECT_EQ(clique.stats.residual_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, EquivalenceSuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

TEST(CliqueMis, CleanupCompletesShortBudgets) {
  // With a tiny phase budget, part 2 must finish the job.
  const Graph g = gnp(300, 0.1, 90);
  CliqueMisOptions opts;
  opts.params = SparsifiedParams::from_n(300);
  opts.randomness = RandomSource(1);
  opts.max_phases = 1;
  const CliqueMisResult result = clique_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, result.run.in_mis));
  EXPECT_GT(result.stats.residual_nodes, 0u);
  EXPECT_GT(result.stats.cleanup_rounds, 0u);
}

TEST(CliqueMis, DefaultBudgetShattersToLinearResidual) {
  const Graph g = random_regular(600, 16, 91);
  CliqueMisOptions opts;
  opts.params = SparsifiedParams::from_n(600);
  opts.randomness = RandomSource(2);
  const CliqueMisResult result = clique_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, result.run.in_mis));
  // Lemma 2.11: residual edges = O(n).
  EXPECT_LE(result.stats.residual_edges, 600u);
}

TEST(CliqueMis, RoundsWithinConstantFactorOfDirectAtLaptopScale) {
  // The asymptotic win (Theorem 1.1) needs R = Θ(sqrt(log n)) to beat the
  // per-phase overhead 3 + 2 ceil(log2(2R+1)); with exact constant
  // accounting the crossover sits far beyond in-memory n (EXPERIMENTS.md,
  // E1). What must hold at any scale: the clique simulation stays within a
  // small constant factor of the direct CONGEST run, and the factor
  // *improves* as R grows.
  const Graph g = gnp(800, 0.2, 92);
  SparsifiedOptions direct_opts;
  direct_opts.params = SparsifiedParams::from_n(800);
  direct_opts.randomness = RandomSource(3);
  const MisRun direct = sparsified_mis(g, direct_opts);

  CliqueMisOptions opts;
  opts.params = direct_opts.params;
  opts.randomness = RandomSource(3);
  const CliqueMisResult result = clique_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, result.run.in_mis));
  EXPECT_LT(result.run.rounds, 4 * direct.rounds);
}

TEST(CliqueMis, GatherLoadsStayWithinConstantBatches) {
  // Lenzen feasibility: loads may exceed n only by a small constant factor,
  // i.e. routing needs O(1) batches per doubling step (E7 quantifies).
  const Graph g = gnp(500, 0.15, 93);
  CliqueMisOptions opts;
  opts.params = SparsifiedParams::from_n(500);
  opts.randomness = RandomSource(4);
  const CliqueMisResult result = clique_mis(g, opts);
  EXPECT_LE(result.stats.max_gather_source_load, 4u * 500u);
  EXPECT_LE(result.stats.max_gather_dest_load, 4u * 500u);
  EXPECT_GT(result.stats.phases, 0u);
}

TEST(CliqueMis, RejectsImmediateRemovalSemantics) {
  const Graph g = cycle(10);
  CliqueMisOptions opts;
  opts.params.immediate_superheavy_removal = true;
  EXPECT_THROW(clique_mis(g, opts), PreconditionError);
}

TEST(CliqueMis, ValiantRoutingAlsoProducesValidMis) {
  const Graph g = gnp(250, 0.1, 94);
  CliqueMisOptions opts;
  opts.params = SparsifiedParams::from_n(250);
  opts.randomness = RandomSource(5);
  opts.route_mode = RouteMode::kValiant;
  const CliqueMisResult result = clique_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, result.run.in_mis));
}

TEST(CliqueMis, EmptyAndTinyGraphs) {
  CliqueMisOptions opts;
  const CliqueMisResult empty = clique_mis(Graph(), opts);
  EXPECT_TRUE(empty.run.in_mis.empty());
  const Graph one = empty_graph(1);
  const CliqueMisResult single = clique_mis(one, opts);
  EXPECT_TRUE(is_maximal_independent_set(one, single.run.in_mis));
  const Graph two = complete(2);
  const CliqueMisResult pair = clique_mis(two, opts);
  EXPECT_TRUE(is_maximal_independent_set(two, pair.run.in_mis));
}

}  // namespace
}  // namespace dmis
