#include <gtest/gtest.h>

#include <algorithm>

#include "clique/network.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {
namespace {

TEST(CliqueNetwork, RouteSortsByDestinationAndCharges) {
  CliqueNetwork net(8, RandomSource(1));
  std::vector<Packet> packets{{3, 5, WirePayload::raw(10, 0, 16)},
                              {1, 2, WirePayload::raw(11, 0, 16)},
                              {7, 2, WirePayload::raw(12, 0, 16)},
                              {0, 5, WirePayload::raw(13, 0, 16)}};
  const RouteReport report = net.route(packets);
  EXPECT_EQ(report.packets, 4u);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.rounds, static_cast<std::uint64_t>(kLenzenRoundsPerBatch));
  EXPECT_EQ(report.max_source_load, 1u);
  EXPECT_EQ(report.max_dest_load, 2u);
  // Sorted by (dst, src).
  EXPECT_EQ(packets[0].dst, 2u);
  EXPECT_EQ(packets[0].src, 1u);
  EXPECT_EQ(packets[1].dst, 2u);
  EXPECT_EQ(packets[1].src, 7u);
  EXPECT_EQ(packets[3].dst, 5u);
  EXPECT_EQ(net.costs().rounds, 2u);
  EXPECT_EQ(net.costs().messages, 4u);
  // Bit-exact accounting: each packet charges its encoded size, not a flat
  // per-packet rate.
  EXPECT_EQ(net.costs().bits, 4u * 16);
  EXPECT_EQ(net.costs().of(WireMessageType::kRaw).messages, 4u);
  EXPECT_EQ(net.costs().of(WireMessageType::kRaw).bits, 4u * 16);
}

TEST(CliqueNetwork, RouteTalliesPerMessageType) {
  CliqueNetwork net(8, RandomSource(1));
  const WireContext& ctx = net.wire_context();
  std::vector<Packet> packets{
      {0, 1, encode_payload(ctx, GatherEdgeMsg{2, 3})},
      {1, 2, encode_payload(ctx, GatherEdgeMsg{4, 5})},
      {2, 3, encode_payload(ctx, TriangleCountMsg{7})},
  };
  net.route(packets);
  const int edge_bits = encoded_bits<GatherEdgeMsg>(ctx);
  const int count_bits = encoded_bits<TriangleCountMsg>(ctx);
  EXPECT_EQ(net.costs().messages, 3u);
  EXPECT_EQ(net.costs().of(WireMessageType::kGatherEdge).messages, 2u);
  EXPECT_EQ(net.costs().of(WireMessageType::kGatherEdge).bits,
            2u * static_cast<std::uint64_t>(edge_bits));
  EXPECT_EQ(net.costs().of(WireMessageType::kTriangleCount).messages, 1u);
  EXPECT_EQ(net.costs().bits,
            2u * static_cast<std::uint64_t>(edge_bits) +
                static_cast<std::uint64_t>(count_bits));
}

TEST(CliqueNetwork, EmptyRouteIsFree) {
  CliqueNetwork net(4, RandomSource(1));
  std::vector<Packet> packets;
  const RouteReport report = net.route(packets);
  EXPECT_EQ(report.rounds, 0u);
  EXPECT_EQ(net.costs().rounds, 0u);
}

TEST(CliqueNetwork, OverloadedDestinationSplitsIntoBatches) {
  const NodeId n = 4;
  CliqueNetwork net(n, RandomSource(1));
  // 9 packets to one destination with n = 4: ceil(9/4) = 3 Lenzen batches.
  std::vector<Packet> packets;
  for (int i = 0; i < 9; ++i) {
    packets.push_back({static_cast<NodeId>(i % n), 2, WirePayload{}});
  }
  const RouteReport report = net.route(packets);
  EXPECT_EQ(report.batches, 3u);
  EXPECT_EQ(report.rounds, 3u * kLenzenRoundsPerBatch);
  EXPECT_EQ(report.max_dest_load, 9u);
}

TEST(CliqueNetwork, AtCapacityIsOneBatch) {
  const NodeId n = 4;
  CliqueNetwork net(n, RandomSource(1));
  // Every node sends exactly n packets, one per destination: loads = n.
  std::vector<Packet> packets;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      packets.push_back({s, d, WirePayload{}});
    }
  }
  const RouteReport report = net.route(packets);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.max_source_load, static_cast<std::uint64_t>(n));
  EXPECT_EQ(report.max_dest_load, static_cast<std::uint64_t>(n));
}

TEST(CliqueNetwork, RejectsOutOfRangeEndpoints) {
  CliqueNetwork net(4, RandomSource(1));
  std::vector<Packet> bad{{0, 9, WirePayload{}}};
  EXPECT_THROW(net.route(bad), PreconditionError);
  std::vector<Packet> bad2{{9, 0, WirePayload{}}};
  EXPECT_THROW(net.route(bad2), PreconditionError);
}

TEST(CliqueNetwork, ValiantModeMeasuresAtLeastTwoRounds) {
  CliqueNetwork net(16, RandomSource(3), RouteMode::kValiant);
  std::vector<Packet> packets;
  for (NodeId s = 0; s < 16; ++s) {
    packets.push_back({s, static_cast<NodeId>((s + 1) % 16), WirePayload{}});
  }
  const RouteReport report = net.route(packets);
  EXPECT_GE(report.rounds, 2u);
  // One packet per source through a random middle: max pair multiplicity is
  // tiny; delivery happens in far fewer rounds than packets.
  EXPECT_LE(report.rounds, 8u);
}

TEST(CliqueNetwork, ValiantIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    CliqueNetwork net(32, RandomSource(seed), RouteMode::kValiant);
    std::vector<Packet> packets;
    for (NodeId s = 0; s < 32; ++s) {
      for (int k = 0; k < 8; ++k) {
        packets.push_back(
            {s, static_cast<NodeId>((s * 7 + k) % 32), WirePayload{}});
      }
    }
    return net.route(packets).rounds;
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

TEST(CliqueNetwork, BroadcastRoundAccounting) {
  CliqueNetwork net(10, RandomSource(1));
  net.charge_broadcast_round(WireMessageType::kRaw, 3, 16);
  EXPECT_EQ(net.costs().rounds, 1u);
  EXPECT_EQ(net.costs().messages, 3u * 9);
  EXPECT_EQ(net.costs().bits, 3u * 9 * 16);
  EXPECT_EQ(net.costs().of(WireMessageType::kRaw).messages, 3u * 9);
  EXPECT_THROW(
      net.charge_broadcast_round(WireMessageType::kRaw, 1, kPacketBits + 1),
      PreconditionError);
}

TEST(CliqueNetwork, NeighborhoodRoundAccounting) {
  CliqueNetwork net(10, RandomSource(1));
  net.charge_neighborhood_round(WireMessageType::kSparsifiedOpener, 42, 7);
  EXPECT_EQ(net.costs().rounds, 1u);
  EXPECT_EQ(net.costs().messages, 42u);
  EXPECT_EQ(net.costs().bits, 42u * 7);
  EXPECT_EQ(net.costs().of(WireMessageType::kSparsifiedOpener).messages, 42u);
  EXPECT_EQ(net.costs().of(WireMessageType::kSparsifiedOpener).bits, 42u * 7);
}

TEST(CliqueNetwork, LeaderElection) {
  CliqueNetwork net(10, RandomSource(1));
  EXPECT_EQ(net.elect_leader(), 0u);
  EXPECT_EQ(net.costs().rounds, 1u);
  EXPECT_EQ(net.costs().of(WireMessageType::kLeaderElect).messages,
            10u * 9u);
}

TEST(CliqueNetwork, RejectsEmptyClique) {
  EXPECT_THROW(CliqueNetwork(0, RandomSource(1)), PreconditionError);
}

}  // namespace
}  // namespace dmis
