// The .dmg container: round-trip fidelity, O(1)-load digest caching, loud
// failures on every corrupted-header axis, and mmap lifetime semantics.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "graph/dmg.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/properties.h"
#include "mis/registry.h"
#include "util/check.h"

namespace dmis {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A written-then-corrupted copy of a valid small .dmg, for the failure
/// tests: `mutate` edits the raw bytes before they are rewritten.
template <typename Mutator>
std::string corrupted_dmg(const std::string& name, Mutator&& mutate) {
  const Graph g = gnp(64, 0.1, 5);
  const std::string path = temp_path(name);
  write_dmg_file(g, path);
  std::vector<char> bytes = read_bytes(path);
  mutate(bytes);
  write_bytes(path, bytes);
  return path;
}

TEST(Dmg, RoundTripPreservesStructureAndDigest) {
  const Graph original = gnp(500, 0.02, 42);
  const std::string path = temp_path("roundtrip.dmg");
  write_dmg_file(original, path);

  const Graph loaded = load_dmg_file(path);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.edge_count(), original.edge_count());
  EXPECT_EQ(loaded.max_degree(), original.max_degree());
  for (NodeId v = 0; v < original.node_count(); ++v) {
    const auto a = original.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "node " << v;
  }
  // The cached header digest must agree with a from-scratch recomputation.
  EXPECT_EQ(loaded.content_digest(kGraphContentDigestSeed),
            original.content_digest(kGraphContentDigestSeed));
}

TEST(Dmg, EveryRegistryAlgorithmBitIdenticalAcrossBackends) {
  const Graph owned = gnp(200, 0.05, 9);
  const std::string path = temp_path("backends.dmg");
  write_dmg_file(owned, path);
  const Graph mapped = load_dmg_file(path);

  for (const AlgorithmDescriptor* d : AlgorithmRegistry::instance().all()) {
    const AlgoOptions options(*d);
    AlgoRunRequest request;
    request.seed = 1234;
    const MisRun a = run_registered_algorithm(*d, owned, options, request).run;
    const MisRun b =
        run_registered_algorithm(*d, mapped, options, request).run;
    EXPECT_EQ(a.in_mis, b.in_mis) << d->name;
    EXPECT_EQ(a.rounds, b.rounds) << d->name;
    EXPECT_EQ(a.costs.messages, b.costs.messages) << d->name;
    EXPECT_EQ(a.costs.bits, b.costs.bits) << d->name;
    EXPECT_TRUE(is_maximal_independent_set(mapped, b.in_mis)) << d->name;
  }
}

TEST(Dmg, LoadIsO1NoArrayScan) {
  // Not a timing test: the digest arriving pre-cached is the observable
  // consequence of the loader not scanning the arrays. A cache-less graph
  // would have to walk every edge to answer content_digest.
  const Graph g = gnp(300, 0.03, 77);
  const std::string path = temp_path("o1.dmg");
  write_dmg_file(g, path);
  const Graph loaded = load_dmg_file(path);
  ASSERT_TRUE(loaded.cached_digest().has_value());
  EXPECT_EQ(loaded.cached_digest()->seed, kGraphContentDigestSeed);
  EXPECT_EQ(loaded.cached_digest()->value,
            g.content_digest(kGraphContentDigestSeed));
}

TEST(Dmg, VerifyDigestAcceptsIntactFile) {
  const Graph g = gnp(150, 0.05, 3);
  const std::string path = temp_path("verify_ok.dmg");
  write_dmg_file(g, path);
  const Graph loaded = load_dmg_file(path, /*verify_digest=*/true);
  EXPECT_EQ(loaded.edge_count(), g.edge_count());
}

TEST(Dmg, BadMagicFailsLoudly) {
  const std::string path =
      corrupted_dmg("bad_magic.dmg", [](std::vector<char>& b) { b[0] = 'X'; });
  try {
    load_dmg_file(path);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(Dmg, BadVersionFailsLoudly) {
  const std::string path =
      corrupted_dmg("bad_version.dmg", [](std::vector<char>& b) { b[8] = 99; });
  try {
    load_dmg_file(path);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(Dmg, OppositeEndiannessFailsLoudly) {
  // Reverse the endian tag in place: exactly what the file would look like
  // written on an opposite-endianness host.
  const std::string path =
      corrupted_dmg("bad_endian.dmg", [](std::vector<char>& b) {
        std::swap(b[12], b[15]);
        std::swap(b[13], b[14]);
      });
  try {
    load_dmg_file(path);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos)
        << e.what();
  }
}

TEST(Dmg, TruncatedHeaderFailsLoudly) {
  const std::string path =
      corrupted_dmg("short_header.dmg",
                    [](std::vector<char>& b) { b.resize(kDmgHeaderBytes / 2); });
  EXPECT_THROW(load_dmg_file(path), PreconditionError);
}

TEST(Dmg, TruncatedArraysFailLoudly) {
  const std::string path = corrupted_dmg(
      "short_arrays.dmg", [](std::vector<char>& b) { b.resize(b.size() - 8); });
  try {
    load_dmg_file(path);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Dmg, TrailingBytesFailLoudly) {
  const std::string path = corrupted_dmg(
      "trailing.dmg", [](std::vector<char>& b) { b.push_back('\0'); });
  EXPECT_THROW(load_dmg_file(path), PreconditionError);
}

TEST(Dmg, DigestMismatchCaughtOnlyUnderVerify) {
  // Flip one adjacency byte (u32 entries start after the offsets block) but
  // keep it a structurally valid graph: adjust within a neighbor list so the
  // O(1) probes still pass.
  const Graph g = complete(8);  // dense, so every adjacency byte is id data
  const std::string path = temp_path("digest_flip.dmg");
  write_dmg_file(g, path);
  std::vector<char> bytes = read_bytes(path);
  // Node 0's neighbor list is 1..7; rewriting its first entry from 1 to 2
  // keeps entries in-range but breaks strict sortedness — caught by the
  // structural half of verification. To hit the *digest* check, rewrite the
  // stored digest instead: content mismatches header.
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
  write_bytes(path, bytes);

  // The O(1) path trusts the header: the load succeeds, the lie undetected.
  EXPECT_NO_THROW(load_dmg_file(path));
  // --verify-digest recomputes and compares: loud failure, path included.
  try {
    load_dmg_file(path, /*verify_digest=*/true);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
        << e.what();
  }
}

TEST(Dmg, CorruptAdjacencyCaughtUnderVerify) {
  const std::string path =
      corrupted_dmg("bad_adj.dmg", [](std::vector<char>& b) {
        // Last adjacency entry (final 4 bytes) -> out-of-range id.
        b[b.size() - 1] = static_cast<char>(0xff);
        b[b.size() - 2] = static_cast<char>(0xff);
      });
  EXPECT_NO_THROW(load_dmg_file(path));
  EXPECT_THROW(load_dmg_file(path, /*verify_digest=*/true),
               PreconditionError);
}

TEST(Dmg, CopiesShareTheMappingAndOutliveTheOriginal) {
  const Graph g = gnp(100, 0.05, 11);
  const std::string path = temp_path("lifetime.dmg");
  write_dmg_file(g, path);
  std::optional<Graph> first(load_dmg_file(path));
  Graph copy = *first;       // shares the backing storage
  first.reset();             // dropping the original must not unmap
  EXPECT_EQ(copy.edge_count(), g.edge_count());
  EXPECT_EQ(copy.neighbors(0).size(), g.neighbors(0).size());
}

TEST(Dmg, MappingSurvivesUnlink) {
  // POSIX keeps mapped pages alive after the directory entry goes away —
  // the loader must not depend on the path outliving the load.
  const Graph g = gnp(100, 0.05, 13);
  const std::string path = temp_path("unlinked.dmg");
  write_dmg_file(g, path);
  const Graph loaded = load_dmg_file(path);
  ASSERT_EQ(::unlink(path.c_str()), 0);
  EXPECT_EQ(loaded.edge_count(), g.edge_count());
  EXPECT_EQ(loaded.content_digest(kGraphContentDigestSeed),
            g.content_digest(kGraphContentDigestSeed));
}

TEST(Dmg, LoadGraphFileAutoDetectsBothContainers) {
  const Graph g = gnp(80, 0.06, 17);
  const std::string dmg_path = temp_path("auto.dmg");
  const std::string el_path = temp_path("auto.el");
  write_dmg_file(g, dmg_path);
  write_edge_list_file(g, el_path);

  EXPECT_TRUE(is_dmg_file(dmg_path));
  EXPECT_FALSE(is_dmg_file(el_path));
  EXPECT_FALSE(is_dmg_file(temp_path("nonexistent.dmg")));

  const Graph from_dmg = load_graph_file(dmg_path);
  const Graph from_el = load_graph_file(el_path);
  EXPECT_EQ(from_dmg.content_digest(kGraphContentDigestSeed),
            from_el.content_digest(kGraphContentDigestSeed));
}

}  // namespace
}  // namespace dmis
