// Failure injection: programs that violate the model contracts, engines
// that must reject them loudly, and malformed inputs at every substrate
// boundary. A simulator that silently accepts contract violations produces
// wrong science; these tests pin the guardrails.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "clique/gather.h"
#include "clique/network.h"
#include "graph/generators.h"
#include "mis/clique_mis.h"
#include "mis/sparsified.h"
#include "runtime/congest.h"
#include "util/check.h"

namespace dmis {
namespace {

// A program whose behavior is scripted per round — the adversary harness.
class ScriptedProgram final : public CongestProgram {
 public:
  using SendFn = std::function<void(std::uint64_t, CongestOutbox&)>;
  explicit ScriptedProgram(SendFn send) : send_(std::move(send)) {}

  void send(std::uint64_t round, CongestOutbox& out) override {
    send_(round, out);
  }
  void receive(std::uint64_t, std::span<const CongestMessage>) override {}
  bool halted() const override { return false; }

 private:
  SendFn send_;
};

CongestEngine make_engine(const Graph& g,
                          ScriptedProgram::SendFn adversary) {
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.push_back(std::make_unique<ScriptedProgram>(std::move(adversary)));
  for (NodeId v = 1; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<ScriptedProgram>(
        [](std::uint64_t, CongestOutbox&) {}));
  }
  return CongestEngine(g, std::move(programs), 32);
}

TEST(FailureInjection, OversizedMessageRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(CongestProgram::kAllNeighbors, 0, 33);
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, NegativeBitsRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(CongestProgram::kAllNeighbors, 0, -1);
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, SendingToSelfRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(0, 1, 8);  // node 0 -> node 0: not an edge
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, SendingAcrossTheGraphRejected) {
  const Graph g = path(4);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(3, 1, 8);  // 0 and 3 are not adjacent
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, LateViolationStillCaught) {
  // Behave for 5 rounds, then violate: the check is per-round, not
  // construction-time.
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t round, CongestOutbox& out) {
    if (round == 5) {
      out.push_raw(CongestProgram::kAllNeighbors, 0, 500);
    } else {
      out.push_raw(CongestProgram::kAllNeighbors, 0, 1);
    }
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(engine.step());
  }
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, MistypedDecodeRejected) {
  // A raw payload presented to a typed decoder fails on the tag, not by
  // silently reinterpreting bits.
  const WireContext ctx = WireContext::for_nodes(8);
  CongestMessage msg{0, 0b101, 3, WireMessageType::kRaw};
  EXPECT_THROW(decode_message<JoinAnnounceMsg>(ctx, msg), PreconditionError);
}

TEST(FailureInjection, RoutePacketsOutOfRange) {
  CliqueNetwork net(8, RandomSource(1));
  std::vector<Packet> bad{{8, 0, WirePayload{}}};
  EXPECT_THROW(net.route(bad), PreconditionError);
  std::vector<Packet> bad2{{0, kInvalidNode, WirePayload{}}};
  EXPECT_THROW(net.route(bad2), PreconditionError);
}

TEST(FailureInjection, GatherAnnotationMismatch) {
  const Graph g = cycle(5);
  CliqueNetwork net(5, RandomSource(1));
  const AnnotationTable too_few(4, 1);
  EXPECT_THROW(gather_balls(net, g, too_few, 1), PreconditionError);
  const AnnotationTable fine(5, 1);
  EXPECT_THROW(gather_balls(net, g, fine, 0), PreconditionError);
}

TEST(FailureInjection, SparsifiedParameterValidation) {
  const Graph g = cycle(6);
  SparsifiedOptions opts;
  opts.params.phase_length = -1;
  EXPECT_THROW(sparsified_mis(g, opts), PreconditionError);
  opts.params.phase_length = 2;
  opts.params.sample_boost = -3;
  EXPECT_THROW(sparsified_mis(g, opts), PreconditionError);
}

TEST(FailureInjection, CliqueMisParameterValidation) {
  const Graph g = cycle(6);
  CliqueMisOptions opts;
  opts.params.phase_length = 70;
  EXPECT_THROW(clique_mis(g, opts), PreconditionError);
}

TEST(FailureInjection, EngineCountMismatch) {
  const Graph g = path(3);
  std::vector<std::unique_ptr<CongestProgram>> one;
  one.push_back(std::make_unique<ScriptedProgram>(
      [](std::uint64_t, CongestOutbox&) {}));
  EXPECT_THROW(CongestEngine(g, std::move(one), 32), PreconditionError);
  std::vector<std::unique_ptr<CongestProgram>> with_null(3);
  with_null[0] = std::make_unique<ScriptedProgram>(
      [](std::uint64_t, CongestOutbox&) {});
  EXPECT_THROW(CongestEngine(g, std::move(with_null), 32),
               PreconditionError);
}

}  // namespace
}  // namespace dmis
