// Failure injection: programs that violate the model contracts, engines
// that must reject them loudly, and malformed inputs at every substrate
// boundary. A simulator that silently accepts contract violations produces
// wrong science; these tests pin the guardrails.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <tuple>

#include "clique/gather.h"
#include "clique/network.h"
#include "graph/generators.h"
#include "mis/clique_mis.h"
#include "mis/sparsified.h"
#include "runtime/congest.h"
#include "runtime/faults.h"
#include "util/check.h"
#include "wire/messages.h"

namespace dmis {
namespace {

// A program whose behavior is scripted per round — the adversary harness.
class ScriptedProgram final : public CongestProgram {
 public:
  using SendFn = std::function<void(std::uint64_t, CongestOutbox&)>;
  explicit ScriptedProgram(SendFn send) : send_(std::move(send)) {}

  void send(std::uint64_t round, CongestOutbox& out) override {
    send_(round, out);
  }
  bool receive(std::uint64_t, std::span<const CongestMessage>) override {
    return false;
  }
  bool halted() const override { return false; }

 private:
  SendFn send_;
};

CongestEngine make_engine(const Graph& g,
                          ScriptedProgram::SendFn adversary) {
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.push_back(std::make_unique<ScriptedProgram>(std::move(adversary)));
  for (NodeId v = 1; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<ScriptedProgram>(
        [](std::uint64_t, CongestOutbox&) {}));
  }
  return CongestEngine(g, std::move(programs), 32);
}

TEST(FailureInjection, OversizedMessageRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(CongestProgram::kAllNeighbors, 0, 33);
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, NegativeBitsRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(CongestProgram::kAllNeighbors, 0, -1);
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, SendingToSelfRejected) {
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(0, 1, 8);  // node 0 -> node 0: not an edge
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, SendingAcrossTheGraphRejected) {
  const Graph g = path(4);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(3, 1, 8);  // 0 and 3 are not adjacent
  });
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, LateViolationStillCaught) {
  // Behave for 5 rounds, then violate: the check is per-round, not
  // construction-time.
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t round, CongestOutbox& out) {
    if (round == 5) {
      out.push_raw(CongestProgram::kAllNeighbors, 0, 500);
    } else {
      out.push_raw(CongestProgram::kAllNeighbors, 0, 1);
    }
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(engine.step());
  }
  EXPECT_THROW(engine.step(), PreconditionError);
}

TEST(FailureInjection, MistypedDecodeRejected) {
  // A raw payload presented to a typed decoder fails on the tag, not by
  // silently reinterpreting bits.
  const WireContext ctx = WireContext::for_nodes(8);
  CongestMessage msg{0, {0b101}, 3, WireMessageType::kRaw};
  EXPECT_THROW(decode_message<JoinAnnounceMsg>(ctx, msg), PreconditionError);
}

TEST(FailureInjection, RoutePacketsOutOfRange) {
  CliqueNetwork net(8, RandomSource(1));
  std::vector<Packet> bad{{8, 0, WirePayload{}}};
  EXPECT_THROW(net.route(bad), PreconditionError);
  std::vector<Packet> bad2{{0, kInvalidNode, WirePayload{}}};
  EXPECT_THROW(net.route(bad2), PreconditionError);
}

TEST(FailureInjection, GatherAnnotationMismatch) {
  const Graph g = cycle(5);
  CliqueNetwork net(5, RandomSource(1));
  const AnnotationTable too_few(4, 1);
  EXPECT_THROW(gather_balls(net, g, too_few, 1), PreconditionError);
  const AnnotationTable fine(5, 1);
  EXPECT_THROW(gather_balls(net, g, fine, 0), PreconditionError);
}

TEST(FailureInjection, SparsifiedParameterValidation) {
  const Graph g = cycle(6);
  SparsifiedOptions opts;
  opts.params.phase_length = -1;
  EXPECT_THROW(sparsified_mis(g, opts), PreconditionError);
  opts.params.phase_length = 2;
  opts.params.sample_boost = -3;
  EXPECT_THROW(sparsified_mis(g, opts), PreconditionError);
}

TEST(FailureInjection, CliqueMisParameterValidation) {
  const Graph g = cycle(6);
  CliqueMisOptions opts;
  opts.params.phase_length = 70;
  EXPECT_THROW(clique_mis(g, opts), PreconditionError);
}

// ------------------------------------------------------------------------
// Corruption adversaries: the fault plane's bit flips against every
// registered message type. The codec contract is that a flipped bit can
// never be silently absorbed — the decode either fails loudly
// (range-validated field, padding) or yields a *different* valid message
// (the silent-corruption case the invariant auditor exists for). Either
// way, the original message must be unrecoverable from the corrupted bits.
// ------------------------------------------------------------------------

constexpr WireContext kCorruptCtx = WireContext::for_nodes(8, 7);
// id_bits = 22 pushes the Luby priority (3·id_bits = 66 bits) across the
// one-word boundary, so flips land in the second word of a wide field and
// the cross-word LSB-first bit indexing is itself under test.
constexpr WireContext kWideCorruptCtx =
    WireContext::for_nodes(NodeId{1} << 22, 7);

template <class Msg>
void corruption_sweep(const WireContext& ctx) {
  SCOPED_TRACE(wire_message_type_name(Msg::kType));
  const Msg original{};
  std::array<std::uint64_t, 4> words{};
  const int bits = encode_words(ctx, original, words);
  ASSERT_EQ(bits, encoded_bits<Msg>(ctx));
  for (int bit = 0; bit < bits; ++bit) {
    std::array<std::uint64_t, 4> corrupted = words;
    corrupted[bit / 64] ^= (1ULL << (bit % 64));
    ASSERT_NE(corrupted, words);
    bool threw = false;
    Msg decoded{};
    try {
      decoded = decode_words<Msg>(ctx, corrupted, bits);
    } catch (const PreconditionError&) {
      threw = true;  // validated field caught the flip
    }
    if (threw) continue;
    // Silent path: the decoded message must be the *corrupted* one, never
    // the original — re-encoding must reproduce the flipped bits exactly.
    std::array<std::uint64_t, 4> reencoded{};
    ASSERT_EQ(encode_words(ctx, decoded, reencoded), bits);
    EXPECT_EQ(reencoded, corrupted)
        << "bit " << bit << " was silently absorbed";
  }
}

TEST(CorruptionAdversary, EveryMessageTypeEveryBit) {
  std::apply(
      [](auto... msgs) { (corruption_sweep<decltype(msgs)>(kCorruptCtx), ...); },
      AllWireMessages{});
}

TEST(CorruptionAdversary, EveryMessageTypeEveryBitWideContext) {
  std::apply(
      [](auto... msgs) {
        (corruption_sweep<decltype(msgs)>(kWideCorruptCtx), ...);
      },
      AllWireMessages{});
}

template <class Msg>
void padding_and_truncation_sweep(const WireContext& ctx) {
  SCOPED_TRACE(wire_message_type_name(Msg::kType));
  const Msg original{};
  std::array<std::uint64_t, 4> words{};
  const int bits = encode_words(ctx, original, words);
  if (bits < static_cast<int>(words.size()) * 64) {
    // A flip past the declared width is detected by the padding check.
    std::array<std::uint64_t, 4> padded = words;
    padded[bits / 64] ^= (1ULL << (bits % 64));
    EXPECT_THROW(decode_words<Msg>(ctx, padded, bits), PreconditionError);
  }
  if (bits > 0) {
    // Truncation (a short read) is a size mismatch, not a reinterpretation.
    EXPECT_THROW(decode_words<Msg>(ctx, words, bits - 1), PreconditionError);
  }
  EXPECT_THROW(decode_words<Msg>(ctx, words, bits + 1), PreconditionError);
}

TEST(CorruptionAdversary, PaddingAndTruncationRejected) {
  std::apply(
      [](auto... msgs) {
        (padding_and_truncation_sweep<decltype(msgs)>(kCorruptCtx), ...);
      },
      AllWireMessages{});
}

TEST(CorruptionAdversary, PaddingAndTruncationRejectedWideContext) {
  std::apply(
      [](auto... msgs) {
        (padding_and_truncation_sweep<decltype(msgs)>(kWideCorruptCtx), ...);
      },
      AllWireMessages{});
}

TEST(CorruptionAdversary, FaultPlaneFlipsOnlySignificantBits) {
  // corrupt_payload must target the significant region: flipping with every
  // legal bit index keeps the padding check satisfied (the flip lands inside
  // `bits`), so decode never rejects for padding reasons on these.
  const GatherEdgeMsg msg{3, 5};
  const WirePayload clean = encode_payload(kCorruptCtx, msg);
  for (int bit = 0; bit < clean.bits; ++bit) {
    WirePayload p = clean;
    FaultPlane::corrupt_payload(p, bit);
    EXPECT_NE(p.words, clean.words);
    WirePayload twice = p;
    FaultPlane::corrupt_payload(twice, bit);  // involution
    EXPECT_EQ(twice.words, clean.words);
    try {
      const GatherEdgeMsg out = decode_payload<GatherEdgeMsg>(kCorruptCtx, p);
      EXPECT_TRUE(out.u != msg.u || out.v != msg.v);
    } catch (const PreconditionError&) {
      // id decoded >= n: the loud path.
    }
  }
}

TEST(CorruptionAdversary, FaultPlaneIndexesAcrossPayloadWords) {
  // A wide field spans payload words; corrupt_payload(bit) must flip
  // exactly words[bit/64] bit bit%64 — deterministic, involutive, and
  // never silently absorbed by the decoder.
  LubyPriorityMsg msg;
  msg.priority = WideUint::of(0x0123456789ABCDEFULL, 0x2);  // 66-bit value
  const WirePayload clean = encode_payload(kWideCorruptCtx, msg);
  ASSERT_EQ(clean.bits, 66);  // 3 * 22: genuinely two words
  for (int bit = 0; bit < clean.bits; ++bit) {
    WirePayload p = clean;
    FaultPlane::corrupt_payload(p, bit);
    EXPECT_EQ(p.words[static_cast<std::size_t>(bit / 64)] ^
                  clean.words[static_cast<std::size_t>(bit / 64)],
              1ULL << (bit % 64));
    WirePayload twice = p;
    FaultPlane::corrupt_payload(twice, bit);  // involution
    EXPECT_EQ(twice.words, clean.words);
    const LubyPriorityMsg out =
        decode_payload<LubyPriorityMsg>(kWideCorruptCtx, p);
    EXPECT_NE(out.priority, msg.priority)
        << "flip at bit " << bit << " vanished";
  }
}

TEST(CorruptionAdversary, EngineFailureCarriesSite) {
  // A contract violation inside engine.step() runs under the engine's
  // CheckScope, so the thrown error names the engine and round — the
  // context repro bundles record.
  const Graph g = path(3);
  auto engine = make_engine(g, [](std::uint64_t, CongestOutbox& out) {
    out.push_raw(CongestProgram::kAllNeighbors, 0, 500);
  });
  try {
    engine.step();
    FAIL() << "oversized message must throw";
  } catch (const PreconditionError& e) {
    EXPECT_TRUE(e.site().known());
    ASSERT_NE(e.site().engine, nullptr);
    EXPECT_STREQ(e.site().engine, "congest.send");
    EXPECT_EQ(e.site().round, 0);
    EXPECT_NE(std::string(e.what()).find("congest.send"), std::string::npos);
  }
}

TEST(FailureInjection, EngineCountMismatch) {
  const Graph g = path(3);
  std::vector<std::unique_ptr<CongestProgram>> one;
  one.push_back(std::make_unique<ScriptedProgram>(
      [](std::uint64_t, CongestOutbox&) {}));
  EXPECT_THROW(CongestEngine(g, std::move(one), 32), PreconditionError);
  std::vector<std::unique_ptr<CongestProgram>> with_null(3);
  with_null[0] = std::make_unique<ScriptedProgram>(
      [](std::uint64_t, CongestOutbox&) {});
  EXPECT_THROW(CongestEngine(g, std::move(with_null), 32),
               PreconditionError);
}

}  // namespace
}  // namespace dmis
