// The fault plane's contracts: decisions are pure functions of their
// coordinates, a null plane is bit-identical to no plane, seeded schedules
// are thread-count invariant, and each fault kind realizes observably
// (drops break independence, crashes leave nodes undecided, delays and
// duplicates are counted, corruption triggers clique phase retries).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "clique/network.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/beeping.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/replay.h"
#include "runtime/congest.h"
#include "runtime/faults.h"

namespace dmis {
namespace {

void expect_same_run(const MisRun& a, const MisRun& b) {
  EXPECT_EQ(a.in_mis, b.in_mis);
  EXPECT_EQ(a.decided_round, b.decided_round);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.costs.messages, b.costs.messages);
  EXPECT_EQ(a.costs.bits, b.costs.bits);
  EXPECT_EQ(a.costs.retries, b.costs.retries);
}

FaultSchedule mixed_schedule(std::uint64_t seed) {
  FaultSchedule s;
  s.seed = seed;
  s.drop_rate = 0.08;
  s.corrupt_rate = 0.0;  // corruption is exercised separately (it can throw)
  s.duplicate_rate = 0.05;
  s.delay_rate = 0.05;
  s.delay_rounds = 2;
  return s;
}

TEST(FaultPlane, NullScheduleIsInactive) {
  const FaultPlane plane((FaultSchedule()));
  EXPECT_FALSE(plane.active());
  FaultSchedule with_node;
  with_node.node_faults.push_back({3, 0, 0});
  EXPECT_TRUE(FaultPlane(with_node).active());
}

TEST(FaultPlane, DecisionsArePureFunctions) {
  FaultSchedule s = mixed_schedule(42);
  s.corrupt_rate = 0.1;
  const FaultPlane plane(s);
  const FaultPlane again(s);
  for (std::uint64_t round = 0; round < 32; ++round) {
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      const FaultDecision d1 = plane.on_message(round, 3, 7, salt);
      const FaultDecision d2 = plane.on_message(round, 3, 7, salt);
      const FaultDecision d3 = again.on_message(round, 3, 7, salt);
      EXPECT_EQ(d1.drop, d2.drop);
      EXPECT_EQ(d1.corrupt, d2.corrupt);
      EXPECT_EQ(d1.duplicate, d2.duplicate);
      EXPECT_EQ(d1.delay, d2.delay);
      EXPECT_EQ(d1.drop, d3.drop);
      EXPECT_EQ(d1.corrupt, d3.corrupt);
      EXPECT_EQ(d1.duplicate, d3.duplicate);
      EXPECT_EQ(d1.delay, d3.delay);
      const int bit = plane.corrupt_bit(round, 3, 7, salt, 21);
      EXPECT_GE(bit, 0);
      EXPECT_LT(bit, 21);
      EXPECT_EQ(bit, plane.corrupt_bit(round, 3, 7, salt, 21));
    }
  }
}

TEST(FaultPlane, RateOneAlwaysDrops) {
  FaultSchedule s;
  s.drop_rate = 1.0;
  const FaultPlane plane(s);
  for (std::uint64_t round = 0; round < 64; ++round) {
    EXPECT_TRUE(plane.on_message(round, 0, 1, round).drop);
  }
}

TEST(FaultPlane, NodeDownWindows) {
  FaultSchedule s;
  s.node_faults.push_back({2, 5, 0});  // crash at 5
  s.node_faults.push_back({4, 3, 2});  // stall rounds 3,4
  const FaultPlane plane(s);
  EXPECT_FALSE(plane.node_down(2, 4));
  EXPECT_TRUE(plane.node_down(2, 5));
  EXPECT_TRUE(plane.node_down(2, 500));
  EXPECT_FALSE(plane.node_down(4, 2));
  EXPECT_TRUE(plane.node_down(4, 3));
  EXPECT_TRUE(plane.node_down(4, 4));
  EXPECT_FALSE(plane.node_down(4, 5));
  EXPECT_FALSE(plane.node_down(0, 3));
}

// A null (empty) schedule attached through the options must leave the
// execution bit-identical to no plane at all — the fault branches are never
// taken and no RNG words are consumed.
TEST(FaultNull, BeepingBitIdentical) {
  const Graph g = gnp(150, 0.04, 9);
  BeepingOptions base;
  base.randomness = RandomSource(11);
  const MisRun plain = beeping_mis(g, base);

  FaultPlane null_plane((FaultSchedule()));
  BeepingOptions with;
  with.randomness = RandomSource(11);
  with.faults = &null_plane;
  expect_same_run(plain, beeping_mis(g, with));
}

TEST(FaultNull, GhaffariBitIdentical) {
  const Graph g = gnp(150, 0.04, 9);
  GhaffariOptions base;
  base.randomness = RandomSource(11);
  const MisRun plain = ghaffari_mis(g, base);

  FaultPlane null_plane((FaultSchedule()));
  GhaffariOptions with;
  with.randomness = RandomSource(11);
  with.faults = &null_plane;
  expect_same_run(plain, ghaffari_mis(g, with));
}

TEST(FaultNull, ReplayDriverMatchesDirectRun) {
  const Graph g = gnp(120, 0.05, 3);
  const FaultRunResult r =
      run_algorithm_with_faults(g, "beeping", 7, 1, FaultSchedule());
  EXPECT_EQ(r.failure.kind, "none");
  EXPECT_EQ(r.total_violations, 0u);
  BeepingOptions o;
  o.randomness = RandomSource(7);
  expect_same_run(r.run, beeping_mis(g, o));
}

// The determinism contract: a seeded fault schedule yields bit-identical
// executions (result, violations, realized fault counts) at any thread
// count, on every engine.
class FaultThreadInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultThreadInvariance, SameScheduleSameRun) {
  const Graph g = gnp(130, 0.05, 17);
  const FaultSchedule s = mixed_schedule(23);
  const FaultRunResult r1 =
      run_algorithm_with_faults(g, GetParam(), 5, 1, s, 40);
  for (const int threads : {2, 4, 8}) {
    const FaultRunResult rt =
        run_algorithm_with_faults(g, GetParam(), 5, threads, s, 40);
    expect_same_run(r1.run, rt.run);
    EXPECT_EQ(r1.fault_stats, rt.fault_stats);
    EXPECT_EQ(r1.total_violations, rt.total_violations);
    EXPECT_EQ(r1.violations, rt.violations);
    EXPECT_TRUE(failures_match(r1.failure, rt.failure));
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultThreadInvariance,
                         ::testing::Values("beeping", "halfduplex", "luby",
                                           "ghaffari", "congest"));

// Corruption can throw (typed decoders fail loudly); the captured failure
// must still be thread-count invariant.
TEST(FaultThreadInvariance, CorruptionFailureIsDeterministic) {
  const Graph g = gnp(130, 0.05, 17);
  FaultSchedule s;
  s.seed = 23;
  s.corrupt_rate = 0.05;
  const FaultRunResult r1 =
      run_algorithm_with_faults(g, "ghaffari", 5, 1, s, 40);
  const FaultRunResult r8 =
      run_algorithm_with_faults(g, "ghaffari", 5, 8, s, 40);
  EXPECT_TRUE(failures_match(r1.failure, r8.failure));
  EXPECT_EQ(r1.fault_stats, r8.fault_stats);
}

// Dropping every announce makes adjacent joiners inevitable: with the
// carrier gone, every beeping node believes it beeped alone. The auditor
// must catch the independence violation.
TEST(FaultEffects, TotalDropBreaksIndependence) {
  const Graph g = complete(16);
  FaultSchedule s;
  s.seed = 1;
  s.drop_rate = 1.0;
  const FaultRunResult r =
      run_algorithm_with_faults(g, "beeping", 3, 1, s, 50);
  EXPECT_GT(r.fault_stats.dropped, 0u);
  EXPECT_GT(r.total_violations, 0u);
  EXPECT_EQ(r.failure.kind, "invariant:independence");
}

TEST(FaultEffects, CrashedNodeNeverDecides) {
  const Graph g = gnp(60, 0.1, 5);
  FaultSchedule s;
  s.node_faults.push_back({0, 0, 0});  // node 0 crashes before round 0
  const FaultRunResult r =
      run_algorithm_with_faults(g, "luby", 3, 1, s, 60);
  EXPECT_EQ(r.run.decided_round[0], kNeverDecided);
  EXPECT_GT(r.fault_stats.node_down_rounds, 0u);
  // Everyone else still terminates: the dynamic routes around the crash.
  EXPECT_LE(r.run.undecided_count(), 1u + g.degree(0));
}

TEST(FaultEffects, StallIsTransient) {
  const Graph g = gnp(60, 0.1, 5);
  FaultSchedule s;
  s.node_faults.push_back({0, 2, 4});  // down rounds [2, 6)
  const FaultRunResult r =
      run_algorithm_with_faults(g, "ghaffari", 3, 1, s);
  EXPECT_GT(r.fault_stats.node_down_rounds, 0u);
  EXPECT_LE(r.fault_stats.node_down_rounds, 4u);
  // A transient stall delays but does not exclude: the node decides.
  EXPECT_NE(r.run.decided_round[0], kNeverDecided);
}

TEST(FaultEffects, DelaysAndDuplicatesAreCounted) {
  const Graph g = gnp(100, 0.06, 2);
  FaultSchedule s;
  s.seed = 4;
  s.duplicate_rate = 0.3;
  s.delay_rate = 0.3;
  s.delay_rounds = 3;
  const FaultRunResult r =
      run_algorithm_with_faults(g, "ghaffari", 9, 2, s, 50);
  EXPECT_GT(r.fault_stats.duplicated, 0u);
  EXPECT_GT(r.fault_stats.delayed, 0u);
}

// The clique driver's retry policy: a lightly corrupted run trips a decoder
// inside a phase, re-executes it with fresh randomness, and still produces
// a valid MIS — with the retry surfaced in the stats.
TEST(FaultEffects, CliqueRetriesPoisonedPhase) {
  const Graph g = gnp(200, 6.0 / 199.0, 3);
  FaultSchedule s;
  s.seed = 5;
  s.corrupt_rate = 0.0001;
  const FaultRunResult r = run_algorithm_with_faults(g, "clique", 5, 1, s);
  EXPECT_EQ(r.failure.kind, "none");
  EXPECT_GE(r.retries, 1u);
  EXPECT_GT(r.fault_stats.corrupted, 0u);
  EXPECT_TRUE(is_maximal_independent_set(g, r.run.in_mis));
  EXPECT_EQ(r.run.costs.retries, r.retries);
}

// --- Frontier maintenance under the fault plane (DESIGN.md §13). ---

// A scripted CONGEST node: optionally broadcasts every round, and halts at
// a fixed round via receive()'s decide notification.
class ScriptedNode final : public CongestProgram {
 public:
  ScriptedNode(std::uint64_t halt_round, bool chatty)
      : halt_round_(halt_round), chatty_(chatty) {}
  void send(std::uint64_t round, CongestOutbox& out) override {
    if (chatty_) out.push_raw(kAllNeighbors, round & 0xff, 8);
  }
  bool receive(std::uint64_t round,
               std::span<const CongestMessage>) override {
    if (!halted_ && round >= halt_round_) {
      halted_ = true;
      return true;
    }
    return false;
  }
  bool halted() const override { return halted_; }

 private:
  std::uint64_t halt_round_;
  bool chatty_;
  bool halted_ = false;
};

// The delayed-queue leak class: messages delayed past a receiver's halt
// round used to sit in its queue for the rest of the run (they could never
// be delivered — matured messages to halted receivers are discarded). The
// frontier departure must free the queue instead.
TEST(FrontierMaintenance, DelayQueueFreedWhenDestinationHalts) {
  const Graph g = path(2);
  std::vector<std::unique_ptr<CongestProgram>> programs;
  programs.push_back(std::make_unique<ScriptedNode>(1000, true));  // sender
  programs.push_back(std::make_unique<ScriptedNode>(2, false));    // halts
  CongestEngine engine(g, std::move(programs), 32);
  FaultSchedule s;
  s.seed = 1;
  s.delay_rate = 1.0;
  s.delay_rounds = 100;  // far past the receiver's halt round
  FaultPlane plane(s);
  engine.set_fault_plane(&plane);

  engine.step();  // round 0: one message parked for node 1
  engine.step();  // round 1: two parked
  EXPECT_EQ(engine.delayed_backlog(), 2u);
  engine.step();  // round 2: third parked, then node 1 leaves the frontier
  EXPECT_EQ(engine.delayed_backlog(), 0u);
  EXPECT_EQ(plane.stats().delayed, 3u);
  EXPECT_EQ(engine.live_count(), 1u);
  // Once departed, nothing accrues for the dead destination again.
  engine.step();
  engine.step();
  EXPECT_EQ(engine.delayed_backlog(), 0u);
}

// The frontier invariant under node crashes, stalls, and message faults:
// live_count() (the O(1) frontier size) equals the scan over halted() after
// every round, and step() reports completion exactly when it hits zero.
TEST(FrontierMaintenance, LiveCountMatchesHaltedScanUnderFaults) {
  const NodeId n = 12;
  const Graph g = cycle(n);
  std::vector<std::unique_ptr<CongestProgram>> programs;
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(std::make_unique<ScriptedNode>((v * 7) % 11, true));
  }
  CongestEngine engine(g, std::move(programs), 32);
  FaultSchedule s;
  s.seed = 9;
  s.drop_rate = 0.1;
  s.delay_rate = 0.3;
  s.delay_rounds = 2;
  s.node_faults.push_back({0, 1, 0});  // crash at round 1
  s.node_faults.push_back({3, 1, 2});  // stall rounds [1, 3)
  FaultPlane plane(s);
  engine.set_fault_plane(&plane);

  for (int round = 0; round < 20; ++round) {
    const bool more = engine.step();
    std::uint64_t undecided = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!engine.program(v).halted()) ++undecided;
    }
    EXPECT_EQ(engine.live_count(), undecided) << "round " << round;
    EXPECT_EQ(more, undecided > 0) << "round " << round;
    if (!more) break;
  }
  EXPECT_EQ(engine.live_count(), 0u);
}

// The clique substrate's version of the same leak: packets parked by a
// delay decision for a destination that then retires must be dropped (and
// tallied), not delivered to a node that already left the computation.
TEST(FrontierMaintenance, CliqueRetirementDropsParkedPackets) {
  CliqueNetwork net(4, RandomSource(1));
  FaultSchedule s;
  s.seed = 2;
  s.delay_rate = 1.0;
  s.delay_rounds = 50;
  FaultPlane plane(s);
  net.set_fault_plane(&plane);
  std::vector<Packet> packets{
      {0, 1, WirePayload{}}, {2, 1, WirePayload{}}, {0, 3, WirePayload{}}};
  net.route(packets);
  EXPECT_TRUE(packets.empty());  // everything parked, nothing delivered
  EXPECT_EQ(net.pending_backlog(), 3u);
  EXPECT_EQ(plane.stats().delayed, 3u);
  EXPECT_EQ(net.live_count(), 4u);

  const NodeId first[] = {1};
  net.retire_nodes(first);
  EXPECT_EQ(net.pending_backlog(), 1u);  // only the dst-3 packet survives
  EXPECT_EQ(net.live_count(), 3u);
  EXPECT_EQ(plane.stats().dropped, 2u);
  net.retire_nodes(first);  // idempotent
  EXPECT_EQ(net.live_count(), 3u);

  const NodeId second[] = {3};
  net.retire_nodes(second);
  EXPECT_EQ(net.pending_backlog(), 0u);
  EXPECT_EQ(net.live_count(), 2u);
  EXPECT_EQ(plane.stats().dropped, 3u);
}

// Exhausted retries propagate the failure as a captured precondition, not a
// silent wrong answer.
TEST(FaultEffects, CliqueHeavyCorruptionFailsLoudly) {
  const Graph g = gnp(200, 6.0 / 199.0, 3);
  FaultSchedule s;
  s.seed = 5;
  s.corrupt_rate = 0.01;
  const FaultRunResult r = run_algorithm_with_faults(g, "clique", 5, 1, s);
  EXPECT_TRUE(r.failed());
  EXPECT_TRUE(r.failure.kind == "precondition" || r.failure.kind == "assert")
      << r.failure.kind;
}

}  // namespace
}  // namespace dmis
