#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clique/gather.h"
#include "graph/generators.h"
#include "graph/ops.h"
#include "rng/random_source.h"

namespace dmis {
namespace {

AnnotationTable tag_annotations(NodeId n) {
  AnnotationTable ann(n, 2);
  for (NodeId v = 0; v < n; ++v) {
    ann.row(v)[0] = 0xA000 + v;
    ann.row(v)[1] = 0xB000 + v;
  }
  return ann;
}

void check_against_bfs(const Graph& g, int radius) {
  CliqueNetwork net(std::max<NodeId>(g.node_count(), 1), RandomSource(5));
  const auto ann = tag_annotations(g.node_count());
  const GatherResult result = gather_balls(net, g, ann, radius);
  const int steps = gather_steps_for_radius(radius);
  const int knowledge_radius = (1 << steps) - 1;
  ASSERT_GE(knowledge_radius, radius);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const GatheredBall& ball = result.balls[v];
    EXPECT_EQ(ball.center, v);
    // Annotations cover exactly the BFS ball of the knowledge radius.
    const auto expect_ann = bfs_ball(g, v, knowledge_radius);
    ASSERT_EQ(ball.annotations.size(), expect_ann.size()) << "node " << v;
    for (const NodeId u : expect_ann) {
      auto it = ball.annotations.find(u);
      ASSERT_NE(it, ball.annotations.end()) << "node " << v << " missing "
                                            << u;
      const auto row = ann.row(u);
      EXPECT_EQ(it->second,
                std::vector<std::uint64_t>(row.begin(), row.end()));
    }
    // Edges: exactly those incident to the knowledge-radius ball.
    std::set<Edge> expected_edges;
    for (const NodeId u : expect_ann) {
      for (const NodeId w : g.neighbors(u)) {
        expected_edges.insert({std::min(u, w), std::max(u, w)});
      }
    }
    const std::set<Edge> got(ball.edges.begin(), ball.edges.end());
    EXPECT_EQ(got, expected_edges) << "node " << v;
    // Members are sorted and include the center.
    EXPECT_TRUE(std::is_sorted(ball.members.begin(), ball.members.end()));
    EXPECT_TRUE(std::binary_search(ball.members.begin(), ball.members.end(),
                                   v));
  }
  EXPECT_EQ(result.stats.steps, static_cast<std::uint64_t>(steps));
}

TEST(Gather, StepsForRadius) {
  EXPECT_EQ(gather_steps_for_radius(1), 1);
  EXPECT_EQ(gather_steps_for_radius(2), 2);
  EXPECT_EQ(gather_steps_for_radius(3), 2);
  EXPECT_EQ(gather_steps_for_radius(4), 3);
  EXPECT_EQ(gather_steps_for_radius(7), 3);
  EXPECT_EQ(gather_steps_for_radius(8), 4);
  EXPECT_THROW(gather_steps_for_radius(0), PreconditionError);
}

TEST(Gather, CycleMatchesBfs) { check_against_bfs(cycle(20), 3); }

TEST(Gather, PathMatchesBfs) { check_against_bfs(path(17), 4); }

TEST(Gather, GridMatchesBfs) { check_against_bfs(grid2d(5, 6), 2); }

TEST(Gather, SparseRandomMatchesBfs) {
  check_against_bfs(gnp(60, 0.03, 77), 2);
}

TEST(Gather, DisconnectedMatchesBfs) {
  check_against_bfs(disjoint_cliques(5, 4), 2);
}

TEST(Gather, IsolatedNodesKnowThemselves) {
  const Graph g = empty_graph(5);
  CliqueNetwork net(5, RandomSource(5));
  const auto ann = tag_annotations(5);
  const GatherResult result = gather_balls(net, g, ann, 2);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.balls[v].members, std::vector<NodeId>{v});
    EXPECT_TRUE(result.balls[v].edges.empty());
    EXPECT_EQ(result.balls[v].annotations.size(), 1u);
  }
  // Nothing was sent.
  EXPECT_EQ(result.stats.packets, 0u);
}

TEST(Gather, ChargesTwoRoundsPerStepAtFeasibleLoads) {
  const Graph g = cycle(100);
  CliqueNetwork net(100, RandomSource(5));
  const auto ann = tag_annotations(100);
  const GatherResult result = gather_balls(net, g, ann, 3);
  EXPECT_EQ(result.stats.steps, 2u);
  // On a cycle the knowledge stays tiny: every batch is Lenzen-feasible.
  EXPECT_EQ(result.stats.rounds,
            result.stats.steps * kLenzenRoundsPerBatch);
  EXPECT_LE(result.stats.max_source_load, 100u);
  EXPECT_GT(result.stats.packets, 0u);
}

TEST(Gather, AnnotationSizeMismatchThrows) {
  const Graph g = cycle(4);
  CliqueNetwork net(4, RandomSource(5));
  AnnotationTable ann(3, 1);
  EXPECT_THROW(gather_balls(net, g, ann, 1), PreconditionError);
}

TEST(Gather, StrideBeyondWireIndexRangeThrows) {
  EXPECT_THROW(AnnotationTable(2, kMaxAnnotationWords + 1), PreconditionError);
}

TEST(Gather, EmptyAnnotationsStillGatherTopology) {
  const Graph g = cycle(8);
  CliqueNetwork net(8, RandomSource(5));
  const AnnotationTable ann;  // stride 0: undecorated
  const GatherResult result = gather_balls(net, g, ann, 2);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_TRUE(result.balls[v].annotations.empty());
    EXPECT_FALSE(result.balls[v].edges.empty());
  }
}

}  // namespace
}  // namespace dmis
