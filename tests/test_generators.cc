#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "util/check.h"

namespace dmis {
namespace {

TEST(Generators, GnpEdgeCountConcentrates) {
  const NodeId n = 400;
  const double p = 0.05;
  const Graph g = gnp(n, p, 11);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gnp(50, 0.0, 1).edge_count(), 0u);
  EXPECT_EQ(gnp(50, 1.0, 1).edge_count(), 50u * 49 / 2);
  EXPECT_EQ(gnp(0, 0.5, 1).node_count(), 0u);
  EXPECT_EQ(gnp(1, 0.5, 1).edge_count(), 0u);
  EXPECT_THROW(gnp(10, 1.5, 1), PreconditionError);
  EXPECT_THROW(gnp(10, -0.1, 1), PreconditionError);
}

TEST(Generators, GnpDeterministicPerSeed) {
  const Graph a = gnp(100, 0.1, 5);
  const Graph b = gnp(100, 0.1, 5);
  const Graph c = gnp(100, 0.1, 6);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = gnm(120, 777, 3);
  EXPECT_EQ(g.edge_count(), 777u);
  EXPECT_EQ(gnm(10, 45, 1).edge_count(), 45u);  // complete
  EXPECT_EQ(gnm(10, 0, 1).edge_count(), 0u);
  EXPECT_THROW(gnm(10, 46, 1), PreconditionError);
}

TEST(Generators, RandomRegularDegrees) {
  const Graph g = random_regular(200, 4, 9);
  std::uint64_t deficit = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_LE(g.degree(v), 4u);
    deficit += 4 - g.degree(v);
  }
  // The configuration model with restarts nearly always lands simple;
  // tolerate a tiny deficit from the drop-conflicts fallback.
  EXPECT_LE(deficit, 4u);
  EXPECT_THROW(random_regular(10, 10, 1), PreconditionError);
  EXPECT_THROW(random_regular(9, 3, 1), PreconditionError);  // odd n*d
  EXPECT_EQ(random_regular(10, 0, 1).edge_count(), 0u);
}

TEST(Generators, BarabasiAlbertShape) {
  const Graph g = barabasi_albert(300, 4, 2, 21);
  EXPECT_EQ(g.node_count(), 300u);
  // m0 clique + 2 edges per subsequent node (deduplication can only merge
  // multi-proposals across different new nodes, which cannot happen here).
  EXPECT_EQ(g.edge_count(), 6u + 296u * 2);
  // Preferential attachment produces a hub far above the minimum degree.
  EXPECT_GE(g.max_degree(), 15u);
  EXPECT_THROW(barabasi_albert(10, 3, 4, 1), PreconditionError);
  EXPECT_THROW(barabasi_albert(4, 4, 2, 1), PreconditionError);
}

TEST(Generators, GeometricRespectsRadius) {
  const Graph g = random_geometric(300, 0.1, 31);
  EXPECT_EQ(g.node_count(), 300u);
  EXPECT_GT(g.edge_count(), 0u);
  // Expected degree ~ n π r² ≈ 9.4; allow wide slack.
  EXPECT_LT(g.average_degree(), 25.0);
  EXPECT_EQ(random_geometric(100, 0.0, 1).edge_count(), 0u);
  // radius sqrt(2) connects everything.
  EXPECT_EQ(random_geometric(40, 1.5, 1).edge_count(), 40u * 39 / 2);
}

TEST(Generators, StructuredFamilies) {
  EXPECT_EQ(cycle(10).edge_count(), 10u);
  EXPECT_EQ(cycle(2).edge_count(), 1u);
  EXPECT_EQ(cycle(1).edge_count(), 0u);
  EXPECT_EQ(path(10).edge_count(), 9u);
  EXPECT_EQ(path(1).edge_count(), 0u);
  EXPECT_EQ(complete(8).edge_count(), 28u);
  EXPECT_EQ(complete_bipartite(3, 5).edge_count(), 15u);
  EXPECT_EQ(star(9).edge_count(), 8u);
  EXPECT_EQ(star(9).degree(0), 8u);
  EXPECT_EQ(grid2d(4, 6).edge_count(), 4u * 5 + 3u * 6);
  EXPECT_EQ(grid2d(4, 6).max_degree(), 4u);
  EXPECT_EQ(empty_graph(7).edge_count(), 0u);
  EXPECT_EQ(disjoint_cliques(4, 5).edge_count(), 4u * 10);
  EXPECT_EQ(connected_component_sizes(disjoint_cliques(4, 5)).size(), 4u);
}

TEST(Generators, PlantedSetIsIndependent) {
  const NodeId n = 150;
  const NodeId planted = 30;
  const Graph g = planted_independent_set(n, planted, 0.15, 41);
  std::vector<char> mask(n, 0);
  for (NodeId v = 0; v < planted; ++v) mask[v] = 1;
  EXPECT_TRUE(is_independent_set(g, mask));
  // Each planted node is attached to the rest.
  for (NodeId v = 0; v < planted; ++v) {
    EXPECT_GE(g.degree(v), 1u);
  }
  EXPECT_THROW(planted_independent_set(10, 10, 0.1, 1), PreconditionError);
}

TEST(Generators, AllGeneratorsDeterministic) {
  EXPECT_EQ(gnm(80, 200, 9).edges(), gnm(80, 200, 9).edges());
  EXPECT_EQ(random_regular(60, 3, 9, 8).edges(),
            random_regular(60, 3, 9, 8).edges());
  EXPECT_EQ(barabasi_albert(90, 3, 2, 9).edges(),
            barabasi_albert(90, 3, 2, 9).edges());
  EXPECT_EQ(random_geometric(90, 0.15, 9).edges(),
            random_geometric(90, 0.15, 9).edges());
  EXPECT_EQ(planted_independent_set(90, 20, 0.1, 9).edges(),
            planted_independent_set(90, 20, 0.1, 9).edges());
}


TEST(Generators, Hypercube) {
  const Graph q4 = hypercube(4);
  EXPECT_EQ(q4.node_count(), 16u);
  EXPECT_EQ(q4.edge_count(), 32u);  // n*d/2
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(q4.degree(v), 4u);
  }
  EXPECT_TRUE(q4.has_edge(0b0000, 0b0100));
  EXPECT_FALSE(q4.has_edge(0b0000, 0b0110));
  EXPECT_EQ(hypercube(0).node_count(), 1u);
  EXPECT_EQ(triangle_count(hypercube(5)), 0u);  // bipartite
  EXPECT_THROW(hypercube(-1), PreconditionError);
  EXPECT_THROW(hypercube(25), PreconditionError);
}

TEST(Generators, BinaryTree) {
  const Graph t = binary_tree(15);  // perfect, depth 3
  EXPECT_EQ(t.edge_count(), 14u);
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.max_degree(), 3u);
  EXPECT_EQ(connected_component_sizes(t).size(), 1u);
  EXPECT_EQ(binary_tree(1).edge_count(), 0u);
  EXPECT_EQ(binary_tree(0).node_count(), 0u);
}

TEST(Generators, Caterpillar) {
  const Graph c = caterpillar(10, 3);
  EXPECT_EQ(c.node_count(), 40u);
  EXPECT_EQ(c.edge_count(), 9u + 30u);
  EXPECT_EQ(c.max_degree(), 5u);  // interior spine: 2 spine + 3 legs
  EXPECT_EQ(degeneracy(c), 1u);   // a tree
  EXPECT_EQ(connected_component_sizes(c).size(), 1u);
}

TEST(Generators, WattsStrogatz) {
  const Graph lattice = watts_strogatz(100, 3, 0.0, 1);
  EXPECT_EQ(lattice.edge_count(), 300u);  // no rewiring: exact ring lattice
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(lattice.degree(v), 6u);
  }
  const Graph small_world = watts_strogatz(100, 3, 0.3, 2);
  // Rewiring only moves endpoints (duplicates can merge): m <= 300.
  EXPECT_LE(small_world.edge_count(), 300u);
  EXPECT_GE(small_world.edge_count(), 270u);
  EXPECT_EQ(watts_strogatz(100, 3, 0.3, 2).edges(), small_world.edges());
  EXPECT_THROW(watts_strogatz(7, 3, 0.1, 1), PreconditionError);
  EXPECT_THROW(watts_strogatz(100, 3, 1.5, 1), PreconditionError);
}

TEST(Generators, MargulisExpander) {
  const Graph g = margulis_expander(16);
  EXPECT_EQ(g.node_count(), 256u);
  EXPECT_LE(g.max_degree(), 8u);
  EXPECT_GE(g.average_degree(), 5.0);
  // Expander: one connected component, and balls grow fast (the diameter is
  // O(log n)): the radius-4 ball around node 0 already covers most nodes.
  EXPECT_EQ(connected_component_sizes(g).size(), 1u);
  EXPECT_GT(bfs_ball(g, 0, 4).size(), 100u);
  EXPECT_THROW(margulis_expander(1), PreconditionError);
}

}  // namespace
}  // namespace dmis
