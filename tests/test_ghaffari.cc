#include <gtest/gtest.h>

#include "graph/ops.h"
#include "graph/properties.h"
#include "mis/ghaffari.h"
#include "test_helpers.h"

namespace dmis {
namespace {

using ::dmis::testing::GraphCase;
using ::dmis::testing::standard_suite;

class GhaffariSuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GhaffariSuite, ProducesMaximalIndependentSet) {
  const Graph& g = GetParam().graph;
  for (std::uint64_t seed : {21u, 22u}) {
    GhaffariOptions opts;
    opts.randomness = RandomSource(seed);
    const MisRun run = ghaffari_mis(g, opts);
    EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis)) << "seed " << seed;
    EXPECT_EQ(run.undecided_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GhaffariSuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

TEST(Ghaffari, DeterministicPerSeed) {
  const Graph g = gnp(200, 0.04, 31);
  GhaffariOptions opts;
  opts.randomness = RandomSource(5);
  const MisRun a = ghaffari_mis(g, opts);
  const MisRun b = ghaffari_mis(g, opts);
  EXPECT_EQ(a.in_mis, b.in_mis);
  EXPECT_EQ(a.decided_round, b.decided_round);
}

TEST(Ghaffari, PartialRunLeavesValidPartialState) {
  const Graph g = gnp(300, 0.1, 32);
  GhaffariOptions opts;
  opts.randomness = RandomSource(6);
  opts.max_iterations = 3;
  const MisRun run = ghaffari_mis(g, opts);
  // The partial set is independent; undecided nodes have no MIS neighbor.
  EXPECT_TRUE(is_independent_set(g, run.in_mis));
  const auto undecided = run.undecided_mask();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (undecided[v] == 0) continue;
    for (const NodeId u : g.neighbors(v)) {
      EXPECT_EQ(run.in_mis[u], 0) << "undecided node adjacent to MIS";
    }
  }
}

TEST(Ghaffari, ShatteringAfterLogDeltaRounds) {
  // Lemma 2.11's premise applied to the §2.1 dynamic: after C log2 Δ
  // iterations the residual graph should be a vanishing fraction.
  const Graph g = random_regular(600, 8, 33);
  GhaffariOptions opts;
  opts.randomness = RandomSource(7);
  opts.max_iterations = 6 * 3;  // C=6, log2(8)=3
  const MisRun run = ghaffari_mis(g, opts);
  const auto undecided = run.undecided_mask();
  const InducedSubgraph residual = induced_subgraph(g, undecided);
  EXPECT_LT(residual.graph.edge_count(), g.node_count() / 2);
}

TEST(Ghaffari, PersonalSeedDerivationIsStable) {
  RandomSource rs(77);
  const std::uint64_t s = ghaffari_personal_seed(rs, 42);
  EXPECT_EQ(s, ghaffari_personal_seed(rs, 42));
  EXPECT_NE(s, ghaffari_personal_seed(rs, 43));
  EXPECT_NE(ghaffari_mark_word(s, 0), ghaffari_mark_word(s, 1));
  EXPECT_EQ(ghaffari_mark_word(s, 9), ghaffari_mark_word(s, 9));
}

TEST(Ghaffari, FasterThanLogNOnLowDegree) {
  const Graph g = cycle(2000);
  GhaffariOptions opts;
  opts.randomness = RandomSource(8);
  const MisRun run = ghaffari_mis(g, opts);
  EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis));
  // O(log Δ) + shattering tail: far fewer than log2(2000) ~ 11 iterations
  // is not guaranteed, but 2*64 rounds is a safe sanity ceiling.
  EXPECT_LE(run.rounds, 128u);
}

}  // namespace
}  // namespace dmis
