#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"

namespace dmis {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, BuildTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, DuplicateEdgesAreMerged) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), PreconditionError);
  EXPECT_THROW(b.add_edge(0, 3), PreconditionError);
  EXPECT_THROW(b.add_edge(7, 0), PreconditionError);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 0);
  b.add_edge(3, 4);
  b.add_edge(3, 1);
  const Graph g = std::move(b).build();
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, EdgesListsEachEdgeOnce) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = std::move(b).build();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
  }
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(Graph, FromEdgesConvenience) {
  const std::vector<Edge> edges{{0, 1}, {2, 3}};
  const Graph g = graph_from_edges(4, edges);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Graph, DegreeQueriesValidateRange) {
  const Graph g = graph_from_edges(2, std::vector<Edge>{{0, 1}});
  EXPECT_THROW(g.degree(2), PreconditionError);
  EXPECT_THROW(g.neighbors(5), PreconditionError);
  EXPECT_THROW(g.has_edge(0, 9), PreconditionError);
}

TEST(Graph, AverageDegree) {
  const Graph g = graph_from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);  // 2m/n = 4/4
}

TEST(Graph, IsolatedNodesHaveZeroDegree) {
  GraphBuilder b(10);
  b.add_edge(0, 9);
  const Graph g = std::move(b).build();
  for (NodeId v = 1; v < 9; ++v) {
    EXPECT_EQ(g.degree(v), 0u);
    EXPECT_TRUE(g.neighbors(v).empty());
  }
  EXPECT_EQ(g.max_degree(), 1u);
}

TEST(Graph, LargeStarDegrees) {
  GraphBuilder b(1001);
  for (NodeId v = 1; v <= 1000; ++v) b.add_edge(0, v);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 1000u);
  EXPECT_EQ(g.max_degree(), 1000u);
  EXPECT_EQ(g.edge_count(), 1000u);
  EXPECT_TRUE(g.has_edge(0, 567));
  EXPECT_FALSE(g.has_edge(1, 2));
}

Graph graph_from_edges(NodeId n,
                       const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

TEST(GraphDigest, InsertionOrderInvariant) {
  // The digest is a function of the edge *set*: any insertion order (and
  // either endpoint order) of the same edges produces the same value.
  const std::vector<std::pair<NodeId, NodeId>> edges{
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph forward = graph_from_edges(5, edges);

  std::vector<std::pair<NodeId, NodeId>> shuffled(edges.rbegin(),
                                                  edges.rend());
  for (auto& [u, v] : shuffled) std::swap(u, v);
  const Graph backward = graph_from_edges(5, shuffled);

  EXPECT_EQ(forward.content_digest(), backward.content_digest());
  EXPECT_EQ(forward.content_digest(42), backward.content_digest(42));
}

TEST(GraphDigest, DistinguishesContent) {
  const Graph base = graph_from_edges(4, {{0, 1}, {2, 3}});
  // Different edge set, same counts.
  const Graph other = graph_from_edges(4, {{0, 2}, {1, 3}});
  EXPECT_NE(base.content_digest(), other.content_digest());
  // A relabeling is a different labeled graph: digests differ even though
  // the graphs are isomorphic (the digest is not an isomorphism invariant).
  const Graph relabeled = graph_from_edges(4, {{1, 2}, {3, 0}});
  EXPECT_NE(base.content_digest(), relabeled.content_digest());
  // More nodes with the same edges also changes the digest.
  const Graph padded = graph_from_edges(5, {{0, 1}, {2, 3}});
  EXPECT_NE(base.content_digest(), padded.content_digest());
  // Distinct digest seeds decorrelate the hash family.
  EXPECT_NE(base.content_digest(1), base.content_digest(2));
}

TEST(GraphDigest, CollisionSmoke) {
  // Hash a family of near-identical graphs (one edge toggled at a time) and
  // require all digests distinct — a weak combiner (plain XOR or sum of
  // unmixed pairs) fails this immediately.
  std::vector<std::uint64_t> digests;
  const NodeId n = 24;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    edges.emplace_back(u, (u + 1) % n);
  }
  digests.push_back(graph_from_edges(n, edges).content_digest());
  for (std::size_t skip = 0; skip < edges.size(); ++skip) {
    std::vector<std::pair<NodeId, NodeId>> subset;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i != skip) subset.push_back(edges[i]);
    }
    digests.push_back(graph_from_edges(n, subset).content_digest());
  }
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::adjacent_find(digests.begin(), digests.end()),
            digests.end());
}

}  // namespace
}  // namespace dmis
