#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/ops.h"
#include "graph/properties.h"
#include "util/check.h"

namespace dmis {
namespace {

TEST(Ops, InducedSubgraphOfCycle) {
  const Graph g = cycle(6);
  const std::vector<NodeId> keep{0, 1, 2, 4};
  const InducedSubgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.node_count(), 4u);
  // Edges kept: {0,1}, {1,2}; node 4 is isolated (3 and 5 are gone).
  EXPECT_EQ(sub.graph.edge_count(), 2u);
  EXPECT_EQ(sub.to_parent, keep);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_EQ(sub.graph.degree(3), 0u);  // local id of node 4
}

TEST(Ops, InducedSubgraphByMask) {
  const Graph g = complete(5);
  std::vector<char> keep{1, 0, 1, 0, 1};
  const InducedSubgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.node_count(), 3u);
  EXPECT_EQ(sub.graph.edge_count(), 3u);  // triangle on {0,2,4}
  EXPECT_EQ(sub.to_parent, (std::vector<NodeId>{0, 2, 4}));
}

TEST(Ops, InducedSubgraphRejectsDuplicatesAndRange) {
  const Graph g = cycle(5);
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{1, 1}),
               PreconditionError);
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{9}),
               PreconditionError);
  EXPECT_THROW(induced_subgraph(g, std::vector<char>{1, 1}),
               PreconditionError);  // mask size mismatch
}

TEST(Ops, BfsBallOnPath) {
  const Graph g = path(10);
  EXPECT_EQ(bfs_ball(g, 5, 0), (std::vector<NodeId>{5}));
  EXPECT_EQ(bfs_ball(g, 5, 1), (std::vector<NodeId>{4, 5, 6}));
  EXPECT_EQ(bfs_ball(g, 5, 2), (std::vector<NodeId>{3, 4, 5, 6, 7}));
  EXPECT_EQ(bfs_ball(g, 0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(bfs_ball(g, 0, 100).size(), 10u);
}

TEST(Ops, BfsDistances) {
  const Graph g = cycle(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[7], 1u);
  const Graph two = empty_graph(2);
  const auto d2 = bfs_distances(two, 0);
  EXPECT_EQ(d2[1], kUnreachable);
}

TEST(Ops, GraphPowerOfCycle) {
  const Graph g = cycle(8);
  const Graph g2 = graph_power(g, 2);
  EXPECT_EQ(g2.degree(0), 4u);  // ±1, ±2
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
  const Graph g3 = graph_power(g, 3);
  EXPECT_TRUE(g3.has_edge(0, 3));
  EXPECT_EQ(graph_power(g, 1).edge_count(), g.edge_count());
  EXPECT_THROW(graph_power(g, 0), PreconditionError);
}

TEST(Ops, GraphPowerSaturates) {
  const Graph g = path(5);
  const Graph g10 = graph_power(g, 10);
  EXPECT_EQ(g10.edge_count(), 10u);  // complete on 5 nodes
}

TEST(Ops, ConnectedComponents) {
  const Graph g = disjoint_cliques(3, 4);
  const auto sizes = connected_component_sizes(g);
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{4, 4, 4}));
  const auto single = connected_component_sizes(cycle(9));
  EXPECT_EQ(single, (std::vector<std::uint32_t>{9}));
  const auto empty = connected_component_sizes(empty_graph(5));
  EXPECT_EQ(empty.size(), 5u);
}

TEST(Properties, IndependentSetPredicates) {
  const Graph g = cycle(6);
  std::vector<char> alt{1, 0, 1, 0, 1, 0};
  EXPECT_TRUE(is_independent_set(g, alt));
  EXPECT_TRUE(is_maximal_independent_set(g, alt));
  std::vector<char> adjacent{1, 1, 0, 0, 0, 0};
  EXPECT_FALSE(is_independent_set(g, adjacent));
  std::vector<char> small{1, 0, 0, 0, 0, 0};
  EXPECT_TRUE(is_independent_set(g, small));
  EXPECT_FALSE(is_maximal_independent_set(g, small));
  EXPECT_EQ(uncovered_nodes(g, small), (std::vector<NodeId>{2, 3, 4}));
}

TEST(Properties, EmptySetOnEmptyGraphIsMaximal) {
  const Graph g = empty_graph(0);
  EXPECT_TRUE(is_maximal_independent_set(g, {}));
  // On a graph with nodes, the empty set is independent but not maximal.
  const Graph g5 = empty_graph(5);
  std::vector<char> none(5, 0);
  EXPECT_TRUE(is_independent_set(g5, none));
  EXPECT_FALSE(is_maximal_independent_set(g5, none));
}

TEST(Properties, Degeneracy) {
  EXPECT_EQ(degeneracy(empty_graph(4)), 0u);
  EXPECT_EQ(degeneracy(path(10)), 1u);
  EXPECT_EQ(degeneracy(cycle(10)), 2u);
  EXPECT_EQ(degeneracy(complete(6)), 5u);
  EXPECT_EQ(degeneracy(star(50)), 1u);
  EXPECT_EQ(degeneracy(grid2d(5, 5)), 2u);
  EXPECT_EQ(degeneracy(complete_bipartite(3, 7)), 3u);
}

TEST(Properties, TriangleCount) {
  EXPECT_EQ(triangle_count(complete(4)), 4u);
  EXPECT_EQ(triangle_count(complete(5)), 10u);
  EXPECT_EQ(triangle_count(cycle(3)), 1u);
  EXPECT_EQ(triangle_count(cycle(5)), 0u);
  EXPECT_EQ(triangle_count(complete_bipartite(4, 4)), 0u);
  EXPECT_EQ(triangle_count(grid2d(3, 3)), 0u);
}

TEST(Io, RoundTripThroughStream) {
  const Graph g = gnp(60, 0.1, 123);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.node_count(), g.node_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Io, MalformedInputThrows) {
  std::stringstream bad1("not a header");
  EXPECT_THROW(read_edge_list(bad1), PreconditionError);
  std::stringstream bad2("4 2\n0 1\n");  // promised 2 edges, gave 1
  EXPECT_THROW(read_edge_list(bad2), PreconditionError);
}

}  // namespace
}  // namespace dmis
