#include <gtest/gtest.h>

#include <numeric>

#include "graph/properties.h"
#include "mis/greedy.h"
#include "test_helpers.h"
#include "util/check.h"

namespace dmis {
namespace {

using ::dmis::testing::GraphCase;
using ::dmis::testing::standard_suite;

class GreedySuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GreedySuite, ProducesMaximalIndependentSet) {
  const Graph& g = GetParam().graph;
  const auto mis = greedy_mis(g);
  EXPECT_TRUE(is_maximal_independent_set(g, mis));
}

INSTANTIATE_TEST_SUITE_P(Families, GreedySuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

TEST(Greedy, IdOrderPicksLowestIds) {
  const Graph g = path(5);  // 0-1-2-3-4
  const auto mis = greedy_mis(g);
  EXPECT_EQ(mis, (std::vector<char>{1, 0, 1, 0, 1}));
}

TEST(Greedy, CustomOrderChangesTheResult) {
  const Graph g = path(3);
  const std::vector<NodeId> order{1, 0, 2};
  const auto mis = greedy_mis(g, order);
  EXPECT_EQ(mis, (std::vector<char>{0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, mis));
}

TEST(Greedy, StarAlwaysResolves) {
  const Graph g = star(10);
  const auto hub_first = greedy_mis(g);
  EXPECT_EQ(hub_first[0], 1);  // hub joins, leaves blocked
  EXPECT_EQ(std::accumulate(hub_first.begin(), hub_first.end(), 0), 1);
  std::vector<NodeId> leaves_first(10);
  std::iota(leaves_first.begin(), leaves_first.end(), NodeId{0});
  std::rotate(leaves_first.begin(), leaves_first.begin() + 1,
              leaves_first.end());  // 1..9, then 0
  const auto leaf_mis = greedy_mis(g, leaves_first);
  EXPECT_EQ(leaf_mis[0], 0);
  EXPECT_EQ(std::accumulate(leaf_mis.begin(), leaf_mis.end(), 0), 9);
}

TEST(Greedy, RejectsBadOrders) {
  const Graph g = path(3);
  EXPECT_THROW(greedy_mis(g, std::vector<NodeId>{0, 1}), PreconditionError);
  EXPECT_THROW(greedy_mis(g, std::vector<NodeId>{0, 1, 1}),
               PreconditionError);
  EXPECT_THROW(greedy_mis(g, std::vector<NodeId>{0, 1, 7}),
               PreconditionError);
}

}  // namespace
}  // namespace dmis
