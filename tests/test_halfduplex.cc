#include <gtest/gtest.h>

#include <memory>

#include "graph/properties.h"
#include "mis/beeping.h"
#include "mis/halfduplex_beeping.h"
#include "runtime/beeping.h"
#include "test_helpers.h"

namespace dmis {
namespace {

using ::dmis::testing::GraphCase;
using ::dmis::testing::standard_suite;

// Engine semantics first: in half duplex a beeping node senses nothing.
class AlwaysBeeper final : public BeepProgram {
 public:
  BeepAction act(std::uint64_t) override { return BeepAction::kBeep; }
  bool feedback(std::uint64_t, bool heard) override {
    heard_ = heard;
    halted_ = true;
    return true;
  }
  bool halted() const override { return halted_; }
  bool heard() const { return heard_; }

 private:
  bool heard_ = false;
  bool halted_ = false;
};

TEST(HalfDuplexEngine, BeepersAreDeaf) {
  const Graph g = complete(3);
  for (const DuplexMode mode :
       {DuplexMode::kFullDuplex, DuplexMode::kHalfDuplex}) {
    std::vector<std::unique_ptr<BeepProgram>> programs;
    std::vector<AlwaysBeeper*> views;
    for (int i = 0; i < 3; ++i) {
      auto p = std::make_unique<AlwaysBeeper>();
      views.push_back(p.get());
      programs.push_back(std::move(p));
    }
    BeepEngine engine(g, std::move(programs), mode);
    engine.step();
    for (const auto* v : views) {
      EXPECT_EQ(v->heard(), mode == DuplexMode::kFullDuplex);
    }
  }
}

class HalfDuplexSuite : public ::testing::TestWithParam<GraphCase> {};

TEST_P(HalfDuplexSuite, ProducesMaximalIndependentSet) {
  const Graph& g = GetParam().graph;
  for (const std::uint64_t seed : {501u, 502u}) {
    HalfDuplexBeepingOptions opts;
    opts.randomness = RandomSource(seed);
    const MisRun run = halfduplex_beeping_mis(g, opts);
    EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis)) << "seed " << seed;
    EXPECT_EQ(run.undecided_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, HalfDuplexSuite,
                         ::testing::ValuesIn(standard_suite()),
                         ::dmis::testing::CasePrinter{});

TEST(HalfDuplex, NoTwoAdjacentWinnersOnCompleteGraphs) {
  // The adversarial case for half duplex: everyone hears everyone, and the
  // deterministic id verification must always whittle candidates down to
  // exactly one winner per clique.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Graph g = complete(64);
    HalfDuplexBeepingOptions opts;
    opts.randomness = RandomSource(seed);
    const MisRun run = halfduplex_beeping_mis(g, opts);
    EXPECT_EQ(run.mis_size(), 1u) << "seed " << seed;
    EXPECT_TRUE(is_maximal_independent_set(g, run.in_mis));
  }
}

TEST(HalfDuplex, DeterministicPerSeed) {
  const Graph g = gnp(150, 0.08, 60);
  HalfDuplexBeepingOptions opts;
  opts.randomness = RandomSource(8);
  const MisRun a = halfduplex_beeping_mis(g, opts);
  const MisRun b = halfduplex_beeping_mis(g, opts);
  EXPECT_EQ(a.in_mis, b.in_mis);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(HalfDuplex, PaysTheLogNFactorOverFullDuplex) {
  // The footnote-2 comparison: losing carrier sensing costs a Theta(log n)
  // factor per iteration here (verification), so total rounds are
  // substantially larger than the full-duplex algorithm's on the same
  // input.
  const Graph g = gnp(512, 0.05, 61);
  BeepingOptions full;
  full.randomness = RandomSource(9);
  const MisRun full_run = beeping_mis(g, full);
  HalfDuplexBeepingOptions half;
  half.randomness = RandomSource(9);
  const MisRun half_run = halfduplex_beeping_mis(g, half);
  EXPECT_TRUE(is_maximal_independent_set(g, half_run.in_mis));
  EXPECT_GT(half_run.rounds, full_run.rounds);
  // ... but not by more than ~ the iteration-length ratio times slack.
  EXPECT_LT(half_run.rounds, 40 * full_run.rounds);
}

TEST(HalfDuplex, IterationLengthIsTwoPlusIdBits) {
  // n = 256 -> id verification takes 8 rounds, announce 1, candidacy 1.
  const Graph g = empty_graph(256);
  HalfDuplexBeepingOptions opts;
  opts.randomness = RandomSource(10);
  const MisRun run = halfduplex_beeping_mis(g, opts);
  EXPECT_EQ(run.mis_size(), 256u);
  EXPECT_EQ(run.rounds % 10, 0u);  // whole iterations of 2 + 8 rounds
}

}  // namespace
}  // namespace dmis
