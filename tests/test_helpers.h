// Shared fixtures: a suite of named graph families swept by the
// parameterized validity/property tests.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace dmis::testing {

struct GraphCase {
  std::string name;
  Graph graph;
};

/// Small-to-medium family suite: adversarial structures plus random models.
inline std::vector<GraphCase> standard_suite(std::uint64_t seed = 7) {
  std::vector<GraphCase> cases;
  cases.push_back({"empty16", empty_graph(16)});
  cases.push_back({"single", empty_graph(1)});
  cases.push_back({"path64", path(64)});
  cases.push_back({"cycle65", cycle(65)});
  cases.push_back({"star64", star(64)});
  cases.push_back({"complete32", complete(32)});
  cases.push_back({"bipartite16x24", complete_bipartite(16, 24)});
  cases.push_back({"grid8x9", grid2d(8, 9)});
  cases.push_back({"cliques8x8", disjoint_cliques(8, 8)});
  cases.push_back({"gnp200_sparse", gnp(200, 0.02, seed)});
  cases.push_back({"gnp200_dense", gnp(200, 0.3, seed + 1)});
  cases.push_back({"gnm300", gnm(300, 900, seed + 2)});
  cases.push_back({"regular128d6", random_regular(128, 6, seed + 3)});
  cases.push_back({"ba256", barabasi_albert(256, 5, 3, seed + 4)});
  cases.push_back({"geometric256", random_geometric(256, 0.12, seed + 5)});
  cases.push_back({"planted200", planted_independent_set(200, 40, 0.1, seed + 6)});
  cases.push_back({"hypercube6", hypercube(6)});
  cases.push_back({"caterpillar20x4", caterpillar(20, 4)});
  cases.push_back({"smallworld150", watts_strogatz(150, 3, 0.2, seed + 7)});
  cases.push_back({"expander12x12", margulis_expander(12)});
  cases.push_back({"binarytree127", binary_tree(127)});
  return cases;
}

struct CasePrinter {
  template <class ParamType>
  std::string operator()(
      const ::testing::TestParamInfo<ParamType>& info) const {
    return info.param.name;
  }
};

}  // namespace dmis::testing
