// Unit tests for the golden-round auditor (mis/instrumentation.h): feed
// hand-crafted state sequences and check every classification from the
// paper's definitions (§2.2/§2.3) fires exactly where it should.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/instrumentation.h"

namespace dmis {
namespace {

// Star with 4 leaves: hub 0, leaves 1..4. d(hub) = Σ leaf p; d(leaf) = p(hub).
class AuditorStar : public ::testing::Test {
 protected:
  AuditorStar() : g_(star(5)), auditor_(g_) {}
  Graph g_;
  GoldenRoundAuditor auditor_;
};

TEST_F(AuditorStar, GoldenType1Detection) {
  // All p = 1/2: d(hub) = 2 > 0.02 (not golden-1); each leaf sees
  // d = 0.5 > 0.02 (not golden-1 either).
  std::vector<char> alive(5, 1);
  std::vector<int> p(5, 1);
  auditor_.begin_iteration(alive, p, {});
  auditor_.end_iteration(alive);
  EXPECT_EQ(auditor_.report().golden1, 0u);
  // Leaves' probabilities collapse to 2^-10: hub sees d = 4/1024 <= 0.02 and
  // has p = 1/2 -> hub is golden-1. Leaves see d(hub) = 2^-10 <= 0.02 but
  // their own p != 1/2 -> not golden-1.
  GoldenRoundAuditor fresh(g_);
  std::vector<int> p2{1, 10, 10, 10, 10};
  fresh.begin_iteration(alive, p2, {});
  fresh.end_iteration(alive);
  EXPECT_EQ(fresh.report().golden1, 1u);
}

TEST_F(AuditorStar, GoldenType1ExcludesSuperHeavy) {
  std::vector<char> alive(5, 1);
  std::vector<int> p{1, 10, 10, 10, 10};
  std::vector<char> sh{1, 0, 0, 0, 0};  // hub super-heavy
  auditor_.begin_iteration(alive, p, sh);
  auditor_.end_iteration(alive);
  EXPECT_EQ(auditor_.report().golden1, 0u);
}

TEST_F(AuditorStar, GoldenType2Detection) {
  // Hub p = 1/2 and no node heavy (all d <= 10): every leaf has
  // d = 0.5 > 0.01 with d' = d -> golden-2. The hub has d = 4 * 2^-2 = 1:
  // also golden-2.
  std::vector<char> alive(5, 1);
  std::vector<int> p{1, 2, 2, 2, 2};
  auditor_.begin_iteration(alive, p, {});
  auditor_.end_iteration(alive);
  EXPECT_EQ(auditor_.report().golden2, 5u);
}

TEST_F(AuditorStar, HeavyNeighborsSuppressGolden2) {
  // Make the hub heavy via a super-heavy flag: leaves' d' excludes it, so
  // d' = 0 < 0.01 d -> leaves are NOT golden-2.
  std::vector<char> alive(5, 1);
  std::vector<int> p{1, 2, 2, 2, 2};
  std::vector<char> sh{1, 0, 0, 0, 0};
  auditor_.begin_iteration(alive, p, sh);
  auditor_.end_iteration(alive);
  // The hub itself: d(hub) = 1 > 0.01, its neighbors (leaves) are light, so
  // d' = d -> hub still golden-2. Leaves: suppressed.
  EXPECT_EQ(auditor_.report().golden2, 1u);
}

TEST_F(AuditorStar, WrongMoveType1Detection) {
  // Iteration 1: hub isolated-ish (leaves at 2^-10): d(hub) small, hub not
  // SH. Iteration 2: hub's p halved (1 -> 2): wrong move (1).
  std::vector<char> alive(5, 1);
  std::vector<int> p1{1, 10, 10, 10, 10};
  auditor_.begin_iteration(alive, p1, {});
  auditor_.end_iteration(alive);
  std::vector<int> p2{2, 10, 10, 10, 10};
  auditor_.begin_iteration(alive, p2, {});
  auditor_.end_iteration(alive);
  EXPECT_EQ(auditor_.report().wrong_moves, 1u);
  // Doubling instead is NOT a wrong move.
  GoldenRoundAuditor fresh(g_);
  std::vector<int> q1{2, 10, 10, 10, 10};
  fresh.begin_iteration(alive, q1, {});
  fresh.end_iteration(alive);
  std::vector<int> q2{1, 10, 10, 10, 10};
  fresh.begin_iteration(alive, q2, {});
  fresh.end_iteration(alive);
  EXPECT_EQ(fresh.report().wrong_moves, 0u);
}

TEST_F(AuditorStar, GammaCountsRemovalsInGoldenRounds) {
  std::vector<char> alive(5, 1);
  // Hub is golden-1 (p = 1/2, d tiny); each leaf is golden-2 (d = p(hub) =
  // 1/2 > 0.01, hub not heavy so d' = d): 5 golden node-rounds total.
  std::vector<int> p{1, 10, 10, 10, 10};
  auditor_.begin_iteration(alive, p, {});
  std::vector<char> after{0, 1, 1, 1, 1};  // hub removed this iteration
  auditor_.end_iteration(after);
  EXPECT_EQ(auditor_.report().golden_rounds_total, 5u);
  EXPECT_EQ(auditor_.report().golden_rounds_with_removal, 1u);
  EXPECT_DOUBLE_EQ(auditor_.report().gamma(), 0.2);
}

TEST_F(AuditorStar, DeadNodesAreInvisible) {
  std::vector<char> alive{0, 0, 0, 0, 0};
  std::vector<int> p(5, 1);
  auditor_.begin_iteration(alive, p, {});
  auditor_.end_iteration(alive);
  EXPECT_EQ(auditor_.report().observed_node_rounds, 0u);
  EXPECT_EQ(auditor_.report().golden_fraction(), 0.0);
  EXPECT_EQ(auditor_.report().wrong_move_rate(), 0.0);
  EXPECT_EQ(auditor_.report().gamma(), 0.0);
}

TEST_F(AuditorStar, PerNodeTalliesAccumulate) {
  std::vector<char> alive(5, 1);
  std::vector<int> p{1, 10, 10, 10, 10};
  for (int t = 0; t < 3; ++t) {
    auditor_.begin_iteration(alive, p, {});
    auditor_.end_iteration(alive);
  }
  EXPECT_EQ(auditor_.report().node_rounds_alive[0], 3u);
  EXPECT_EQ(auditor_.report().node_golden[0], 3u);  // hub golden-1 each time
  EXPECT_EQ(auditor_.report().observed_node_rounds, 15u);
}

TEST(Auditor, WrongMoveType2Detection) {
  // Two hubs sharing leaves so a node's d is dominated by a heavy neighbor.
  // Construct: v adjacent to heavy hub h (d(h) > 10 via many leaves).
  // If d(v) fails to shrink by 0.6x while d'(v) < 0.01 d(v), it's a wrong
  // move (2).
  GraphBuilder b(30);
  // h = 0 with leaves 2..28 (27 leaves); v = 1 adjacent only to h.
  for (NodeId l = 2; l < 29; ++l) b.add_edge(0, l);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  GoldenRoundAuditor auditor(g);
  std::vector<char> alive(30, 1);
  // All at p = 1/2: d(h) = 14 > 10 -> h heavy. v: d = 0.5 > 0.01,
  // d' = 0 (only neighbor is heavy) -> type-2 wrong-move candidate.
  std::vector<int> p(30, 1);
  auditor.begin_iteration(alive, p, {});
  auditor.end_iteration(alive);
  // Next iteration d(v) unchanged (h kept p = 1/2): 0.5 > 0.6*0.5? No —
  // 0.5 <= 0.3 is false, d stayed at 1.0x > 0.6x -> wrong move.
  auditor.begin_iteration(alive, p, {});
  auditor.end_iteration(alive);
  EXPECT_GE(auditor.report().wrong_moves, 1u);
}

}  // namespace
}  // namespace dmis
